//! The paper's Figure 4: dot product in two stages — per-group partial
//! sums on the device (cooperating through `__local` memory and a
//! barrier), reduced on the host.
//!
//! Run with `cargo run --release --example dot_product`.

use hpl::prelude::*;

const N: usize = 256;
const M: usize = 32;
const N_GROUP: usize = N / M;

/// Paper Figure 4's `dotp` kernel: thread `idx` multiplies one pair, the
/// group shares the products through scratchpad memory, and lane 0 of each
/// group accumulates the partial sum.
fn dotp(v1: &Array<f32, 1>, v2: &Array<f32, 1>, p_sums: &Array<f32, 1>) {
    let shared_m = Array::<f32, 1>::local([M]);
    shared_m.at(lidx()).assign(v1.at(idx()) * v2.at(idx()));
    barrier(LOCAL);
    if_(lidx().eq_(0), || {
        for_(0, M as i32, |i| {
            p_sums.at(gidx()).assign_add(shared_m.at(i));
        });
    });
}

fn main() -> Result<(), hpl::Error> {
    // v1 and v2 are filled in with data
    let v1 = Array::<f32, 1>::from_vec([N], (0..N).map(|i| (i % 7) as f32).collect());
    let v2 = Array::<f32, 1>::from_vec([N], (0..N).map(|i| (i % 5) as f32).collect());
    let p_sums = Array::<f32, 1>::new([N_GROUP]);

    eval(dotp)
        .global(&[N])
        .local(&[M])
        .run((&v1, &v2, &p_sums))?;

    // second stage: reduce the partial sums in the host
    let mut result = 0.0f32;
    for i in 0..N_GROUP {
        result += p_sums.get(i);
    }
    println!("Dot = {result}");

    // check against the host computation
    let expect: f32 = (0..N).map(|i| ((i % 7) * (i % 5)) as f32).sum();
    assert_eq!(result, expect);
    println!("matches host result {expect}");

    // the same computation via the patterns extension (§VII future work)
    let products = Array::<f32, 1>::new([N]);
    hpl::patterns::zip_map(&products, &v1, &v2, |a, b| a * b)?;
    let via_patterns = hpl::patterns::reduce_sum(&products)?;
    assert_eq!(via_patterns, expect);
    println!("patterns::zip_map + reduce_sum agree: {via_patterns}");
    Ok(())
}
