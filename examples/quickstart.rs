//! Quickstart: the paper's Figure 3 — SAXPY in HPL.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! The kernel is an ordinary Rust function over HPL datatypes. `eval`
//! records it on first use, generates OpenCL C, compiles it for the
//! default accelerator, manages every buffer and transfer, and returns a
//! profile that separates HPL's overhead from the modeled device time.

use hpl::prelude::*;

/// `y = a*x + y`, one element per work-item (paper Figure 3).
fn saxpy(y: &Array<f64, 1>, x: &Array<f64, 1>, a: &Double) {
    y.at(idx()).assign(a.v() * x.at(idx()) + y.at(idx()));
}

fn main() -> Result<(), hpl::Error> {
    const N: usize = 1000;

    // the vectors and `a` are filled in with data
    let y = Array::<f64, 1>::from_vec([N], (0..N).map(|i| i as f64).collect());
    let x = Array::<f64, 1>::from_vec([N], (0..N).map(|i| (2 * i) as f64).collect());
    let a = Double::new(1.5);

    // parallel evaluation on the default device; the global domain defaults
    // to the dimensions of the first argument
    let profile = eval(saxpy).run((&y, &x, &a))?;

    // results are synchronised back on demand
    for i in [0usize, 1, 500, 999] {
        let expect = 1.5 * (2 * i) as f64 + i as f64;
        assert_eq!(y.get(i), expect);
        println!("y[{i:>3}] = {}", y.get(i));
    }

    println!(
        "\ndevice:            {}",
        hpl::runtime().default_device().name()
    );
    println!(
        "first invocation:  {:.3} ms total",
        profile.host_seconds * 1e3
    );
    println!(
        "  capture {:.1} µs + codegen {:.1} µs + build {:.1} µs + modeled kernel {:.1} µs",
        profile.capture_seconds * 1e6,
        profile.codegen_seconds * 1e6,
        profile.build_seconds * 1e6,
        profile.kernel_modeled_seconds * 1e6
    );

    // a second invocation hits HPL's kernel cache
    let again = eval(saxpy).run((&y, &x, &a))?;
    assert!(again.cache_hit);
    println!("second invocation: cache hit, front-end cost {:.1} µs", {
        (again.capture_seconds + again.codegen_seconds + again.build_seconds) * 1e6
    });

    println!("\ngenerated OpenCL C:\n{}", profile.source);
    Ok(())
}
