//! Device query: enumerate the simulated platform the way `clinfo` would,
//! and demonstrate the paper's §II task parallelism — evaluating different
//! kernels on different devices.
//!
//! Run with `cargo run --release --example device_query`.

use hpl::prelude::*;

fn scale_up(out: &Array<f32, 1>, input: &Array<f32, 1>) {
    out.at(idx()).assign(input.at(idx()) * 2.0f32);
}

fn shift_down(out: &Array<f32, 1>, input: &Array<f32, 1>) {
    out.at(idx()).assign(input.at(idx()) - 1.0f32);
}

fn main() -> Result<(), hpl::Error> {
    let rt = hpl::runtime();

    println!("platform: {}\n", rt.platform().name());
    for device in rt.devices() {
        let p = device.profile();
        println!("{}", device.name());
        println!("  type:               {:?}", device.device_type());
        println!(
            "  compute units:      {} x {}-wide SIMT",
            p.compute_units, p.simd_width
        );
        println!("  clock:              {} MHz", p.clock_mhz);
        println!("  global memory:      {} MiB", p.global_mem_bytes >> 20);
        println!("  local memory:       {} KiB", p.local_mem_bytes >> 10);
        println!("  constant memory:    {} KiB", p.constant_mem_bytes >> 10);
        println!("  max work-group:     {}", p.max_work_group_size);
        println!(
            "  fp64 (cl_khr_fp64): {}",
            if p.fp64 { "yes" } else { "no" }
        );
        println!("  memory bandwidth:   {:.1} GB/s", p.global_bandwidth_gbps);
        println!();
    }

    println!(
        "default device (first non-CPU): {}\n",
        rt.default_device().name()
    );

    // task parallelism: two different kernels on two different devices
    let tesla = rt.device_named("tesla").expect("tesla present");
    let quadro = rt.device_named("quadro").expect("quadro present");
    let input = Array::<f32, 1>::from_vec([256], (0..256).map(|i| i as f32).collect());
    let a = Array::<f32, 1>::new([256]);
    let b = Array::<f32, 1>::new([256]);

    let pa = eval(scale_up).device(&tesla).run((&a, &input))?;
    let pb = eval(shift_down).device(&quadro).run((&b, &input))?;
    assert_eq!(a.get(10), 20.0);
    assert_eq!(b.get(10), 9.0);
    println!(
        "task parallelism: scale_up on Tesla ({:.1} µs modeled), shift_down on Quadro ({:.1} µs modeled)",
        pa.kernel_modeled_seconds * 1e6,
        pb.kernel_modeled_seconds * 1e6
    );
    println!("the same input array now has valid copies on both devices");
    Ok(())
}
