//! Mandelbrot set on the device: per-pixel iteration counts with a
//! data-dependent `while_` loop — the kind of divergent kernel GPUs (and
//! the SIMT simulator underneath) handle with per-lane masking.
//!
//! Run with `cargo run --release --example mandelbrot`.

use hpl::prelude::*;

const MAX_ITER: i32 = 64;

/// One work-item per pixel of a `height x width` grid over the complex
/// rectangle [-2.2, 0.8] x [-1.2, 1.2].
fn mandelbrot(iters: &Array<i32, 2>, width: &Int, height: &Int) {
    let cx = Float::new(0.0);
    let cy = Float::new(0.0);
    cx.assign(idx().cast::<f32>() / width.v().cast::<f32>() * 3.0f32 - 2.2f32);
    cy.assign(idy().cast::<f32>() / height.v().cast::<f32>() * 2.4f32 - 1.2f32);

    let zx = Float::new(0.0);
    let zy = Float::new(0.0);
    let count = Int::new(0);
    let zx2 = Float::new(0.0);
    let zy2 = Float::new(0.0);

    while_(
        (zx2.v() + zy2.v()).le(4.0f32).and(count.v().lt(MAX_ITER)),
        || {
            let tmp = Float::new(0.0);
            tmp.assign(zx2.v() - zy2.v() + cx.v());
            zy.assign(2.0f32 * zx.v() * zy.v() + cy.v());
            zx.assign(tmp.v());
            zx2.assign(zx.v() * zx.v());
            zy2.assign(zy.v() * zy.v());
            count.assign(count.v() + 1);
        },
    );
    iters.at((idy(), idx())).assign(count.v());
}

fn reference(px: usize, py: usize, w: usize, h: usize) -> i32 {
    let cx = px as f32 / w as f32 * 3.0 - 2.2;
    let cy = py as f32 / h as f32 * 2.4 - 1.2;
    let (mut zx, mut zy) = (0.0f32, 0.0f32);
    let mut count = 0;
    while zx * zx + zy * zy <= 4.0 && count < MAX_ITER {
        let tmp = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = tmp;
        count += 1;
    }
    count
}

fn main() -> Result<(), hpl::Error> {
    let (w, h) = (96usize, 48usize);
    let iters = Array::<i32, 2>::new([h, w]);
    let width = Int::new(w as i32);
    let height = Int::new(h as i32);

    let profile = eval(mandelbrot)
        .global(&[w, h])
        .local(&[16, 8])
        .run((&iters, &width, &height))?;

    // ASCII render
    let palette = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut inside = 0usize;
    for y in 0..h {
        let mut line = String::with_capacity(w);
        for x in 0..w {
            let c = iters.get((y, x));
            if c >= MAX_ITER {
                inside += 1;
            }
            let shade = (c.min(MAX_ITER) as usize * (palette.len() - 1)) / MAX_ITER as usize;
            line.push(palette[shade]);
        }
        println!("{line}");
    }

    // spot-verify against the host reference
    for (px, py) in [(0, 0), (w / 2, h / 2), (w - 1, h - 1), (w / 3, h / 4)] {
        assert_eq!(
            iters.get((py, px)),
            reference(px, py, w, h),
            "pixel ({px},{py})"
        );
    }

    println!(
        "\n{}x{} pixels, {inside} inside the set; modeled device time {:.1} µs on {}",
        w,
        h,
        profile.kernel_modeled_seconds * 1e6,
        hpl::runtime().default_device().name()
    );
    Ok(())
}
