//! Conjugate-gradient solver built on the paper's §IV-C spmv kernel.
//!
//! The paper motivates spmv as "the most computationally expensive part of
//! the Conjugate Gradient code of the NAS Parallel Benchmarks"; this
//! example closes the loop and solves `A x = b` for a symmetric
//! positive-definite sparse matrix, with every spmv evaluated on the
//! device through HPL (the kernel compiles once and is reused every
//! iteration thanks to the kernel cache).
//!
//! Run with `cargo run --release --example spmv_cg`.

use hpl::prelude::*;

const M: usize = 8; // lanes cooperating per row (paper Figure 5)

/// The paper's Figure 5(b) spmv kernel.
fn spmv(
    a: &Array<f32, 1>,
    vec: &Array<f32, 1>,
    cols: &Array<i32, 1>,
    rowptr: &Array<i32, 1>,
    out: &Array<f32, 1>,
) {
    let row = Int::new(0);
    let lane = Int::new(0);
    row.assign(gidx());
    lane.assign(lidx());
    let row_end = Int::new(0);
    row_end.assign(rowptr.at(row.v() + 1));
    let j = Int::var();
    let my_sum = Float::new(0.0);
    for_var(
        &j,
        rowptr.at(row.v()) + lane.v(),
        row_end.v(),
        M as i32,
        || {
            my_sum.assign_add(a.at(j.v()) * vec.at(cols.at(j.v())));
        },
    );
    let sdata = Array::<f32, 1>::local([M]);
    sdata.at(lane.v()).assign(my_sum.v());
    barrier(LOCAL);
    if_(lane.v().lt(4), || {
        sdata.at(lane.v()).assign_add(sdata.at(lane.v() + 4))
    });
    barrier(LOCAL);
    if_(lane.v().lt(2), || {
        sdata.at(lane.v()).assign_add(sdata.at(lane.v() + 2))
    });
    barrier(LOCAL);
    if_(lane.v().eq_(0), || {
        out.at(row.v()).assign(sdata.at(0) + sdata.at(1))
    });
}

/// A symmetric positive-definite tridiagonal test matrix in CSR:
/// 2 on the diagonal, -1 off-diagonal (the 1-D Laplacian).
fn laplacian_csr(n: usize) -> (Vec<f32>, Vec<i32>, Vec<i32>) {
    let mut val = Vec::new();
    let mut cols = Vec::new();
    let mut rowptr = vec![0i32];
    for i in 0..n {
        if i > 0 {
            val.push(-1.0);
            cols.push(i as i32 - 1);
        }
        val.push(2.0);
        cols.push(i as i32);
        if i + 1 < n {
            val.push(-1.0);
            cols.push(i as i32 + 1);
        }
        rowptr.push(val.len() as i32);
    }
    (val, cols, rowptr)
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

fn main() -> Result<(), hpl::Error> {
    let n = 512;
    let (val, cols, rowptr) = laplacian_csr(n);

    // device-resident matrix and the vector the kernel multiplies
    let a = Array::<f32, 1>::from_vec([val.len()], val);
    let cols_a = Array::<i32, 1>::from_vec([cols.len()], cols);
    let rowptr_a = Array::<i32, 1>::from_vec([n + 1], rowptr);
    let p_dev = Array::<f32, 1>::new([n]);
    let ap_dev = Array::<f32, 1>::new([n]);

    // right-hand side: b = A * ones  =>  the exact solution is all-ones
    let ones = vec![1.0f32; n];
    p_dev.write_from(&ones);
    eval(spmv)
        .global(&[n * M])
        .local(&[M])
        .run((&a, &p_dev, &cols_a, &rowptr_a, &ap_dev))?;
    let b = ap_dev.to_vec();

    // conjugate gradient, spmv on the device each iteration
    let mut x = vec![0.0f32; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);

    let mut iterations = 0;
    for it in 0..10 * n {
        p_dev.write_from(&p);
        eval(spmv)
            .global(&[n * M])
            .local(&[M])
            .run((&a, &p_dev, &cols_a, &rowptr_a, &ap_dev))?;
        let ap = ap_dev.to_vec();

        let alpha = rs_old / dot(&p, &ap);
        for i in 0..n {
            x[i] += (alpha * p[i] as f64) as f32;
            r[i] -= (alpha * ap[i] as f64) as f32;
        }
        let rs_new = dot(&r, &r);
        iterations = it + 1;
        if rs_new.sqrt() < 1e-4 {
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + (beta * p[i] as f64) as f32;
        }
        rs_old = rs_new;
    }

    let max_err = x.iter().map(|&xi| (xi - 1.0).abs()).fold(0.0f32, f32::max);
    println!("CG solved the {n}x{n} 1-D Laplacian in {iterations} iterations");
    println!("max |x_i - 1| = {max_err:.2e}  (exact solution is all-ones)");
    assert!(
        max_err < 1e-2,
        "CG failed to converge to the known solution"
    );

    let stats = hpl::runtime().transfer_stats();
    println!(
        "matrix uploaded once, reused across all iterations: {} h2d transfers total \
         (vector uploads dominate)",
        stats.h2d_count
    );
    Ok(())
}
