//! The paper's Figure 10: the naive matrix transpose, written in HPL.
//!
//! The paper contrasts EPGPU's string-macro kernels with HPL's natural
//! host-language integration using this example, and footnote 1 notes the
//! *benchmarked* transpose instead stages tiles in local memory so global
//! accesses coalesce. This example runs both and shows the coalescing
//! difference in the modeled device time.
//!
//! Run with `cargo run --release --example naive_transpose`.

use hpl::prelude::*;

/// Paper Figure 10(b): each work-item moves one element across the
/// diagonal (with the index roles fixed up so non-square matrices work:
/// `idx` spans the source's columns, which are the destination's rows).
fn naive_transpose(dest: &Array<f32, 2>, src: &Array<f32, 2>) {
    dest.at((idx(), idy())).assign(src.at((idy(), idx())));
}

/// The optimised variant: a BLOCK x BLOCK tile staged in local memory.
fn tiled_transpose(dest: &Array<f32, 2>, src: &Array<f32, 2>) {
    const BLOCK: i32 = 16;
    let tile = Array::<f32, 2>::local([16, 16]);
    let lx = Int::new(0);
    let ly = Int::new(0);
    lx.assign(lidx());
    ly.assign(lidy());
    tile.at((ly.v(), lx.v())).assign(src.at((idy(), idx())));
    barrier(LOCAL);
    let ox = Int::new(0);
    let oy = Int::new(0);
    ox.assign(gidy() * BLOCK + lx.v());
    oy.assign(gidx() * BLOCK + ly.v());
    dest.at((oy.v(), ox.v())).assign(tile.at((lx.v(), ly.v())));
}

fn main() -> Result<(), hpl::Error> {
    let (h, w) = (512usize, 512usize);
    let src_data: Vec<f32> = (0..h * w).map(|i| i as f32).collect();

    let src = Array::<f32, 2>::from_vec([h, w], src_data.clone());
    let dst = Array::<f32, 2>::new([w, h]);

    let naive = eval(naive_transpose)
        .global(&[w, h])
        .local(&[16, 16])
        .run((&dst, &src))?;
    let naive_result = dst.to_vec();

    let dst2 = Array::<f32, 2>::new([w, h]);
    let tiled = eval(tiled_transpose)
        .global(&[w, h])
        .local(&[16, 16])
        .run((&dst2, &src))?;
    let tiled_result = dst2.to_vec();

    // both must compute the same transpose
    assert_eq!(naive_result, tiled_result);
    for y in (0..h).step_by(97) {
        for x in (0..w).step_by(53) {
            assert_eq!(naive_result[x * h + y], src_data[y * w + x]);
        }
    }

    println!(
        "naive transpose (Figure 10): {:.1} µs modeled",
        naive.kernel_modeled_seconds * 1e6
    );
    println!(
        "tiled transpose (benchmark): {:.1} µs modeled",
        tiled.kernel_modeled_seconds * 1e6
    );
    println!(
        "coalescing the writes through local memory wins {:.1}x",
        naive.kernel_modeled_seconds / tiled.kernel_modeled_seconds
    );
    assert!(naive.kernel_modeled_seconds > tiled.kernel_modeled_seconds);
    Ok(())
}
