//! Explicit 1-D heat diffusion with the `patterns::stencil3` extension —
//! the scientific-workload shape the paper's introduction motivates
//! (finite differences iterated on an accelerator, data resident on the
//! device between steps).
//!
//! Run with `cargo run --release --example heat_diffusion`.

use hpl::patterns::stencil3;
use hpl::prelude::*;

const N: usize = 256;
const STEPS: usize = 400;
const ALPHA: f64 = 0.2; // diffusion number (stable: <= 0.5)

fn main() -> Result<(), hpl::Error> {
    // a hot spike in the middle of a cold rod
    let mut initial = vec![0.0f64; N];
    initial[N / 2] = 1000.0;

    let a = Array::<f64, 1>::from_vec([N], initial.clone());
    let b = Array::<f64, 1>::new([N]);

    hpl::runtime().reset_transfer_stats();
    let mut src = a.clone();
    let mut dst = b.clone();
    for _ in 0..STEPS {
        // u'[i] = u[i] + alpha * (u[i-1] - 2 u[i] + u[i+1])
        stencil3(&dst, &src, |l, c, r| c.clone() + ALPHA * (l - 2.0 * c + r))?;
        std::mem::swap(&mut src, &mut dst);
    }
    let result = src.to_vec();

    // host reference
    let mut u = initial;
    let mut next = vec![0.0f64; N];
    for _ in 0..STEPS {
        for i in 0..N {
            let l = u[i.saturating_sub(1)];
            let r = u[(i + 1).min(N - 1)];
            next[i] = u[i] + ALPHA * (l - 2.0 * u[i] + r);
        }
        std::mem::swap(&mut u, &mut next);
    }
    let max_err = result
        .iter()
        .zip(&u)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max);
    assert!(max_err < 1e-9, "device and host disagree: {max_err}");

    // crude temperature profile
    println!("temperature profile after {STEPS} steps (max err vs host {max_err:.1e}):\n");
    let max_t = result.iter().cloned().fold(0.0, f64::max);
    for row in (0..8).rev() {
        let threshold = max_t * (row as f64 + 0.5) / 8.0;
        let line: String = (0..64)
            .map(|c| {
                let t = result[c * (N / 64)];
                if t >= threshold {
                    '#'
                } else {
                    ' '
                }
            })
            .collect();
        println!("  |{line}|");
    }
    println!("  +{}+", "-".repeat(64));

    let stats = hpl::runtime().transfer_stats();
    println!(
        "\n{STEPS} stencil steps, {} host->device uploads (the rod stays resident on the device)",
        stats.h2d_count
    );
    // conservation: total heat is preserved by the scheme
    let total: f64 = result.iter().sum();
    println!("total heat: {total:.6} (initial 1000)");
    Ok(())
}
