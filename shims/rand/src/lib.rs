//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Provides the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::{random, random_range}`.
//! The generator is SplitMix64 — not cryptographic, but statistically fine
//! for the deterministic test-input generation done here, and seeds give
//! reproducible streams (the property the benchmark configs rely on).

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush when
            // used as a stream, one add + three xor-shift-multiply steps.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types samplable uniformly over their full domain ([0, 1) for floats).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random mantissa bits over [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits over [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable to a `T` (the `random_range` argument).
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "random_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range on empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniformly random value of `T` (full domain; [0, 1) for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..8).map(|_| a.random_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.random_range(0u32..1000)).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.random_range(0u32..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.random_range(3..=4);
            assert!(w == 3 || w == 4);
            let f: f32 = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f32 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_range_ints_hit_both_signs() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<i32> = (0..64).map(|_| rng.random()).collect();
        assert!(vals.iter().any(|&v| v < 0) && vals.iter().any(|&v| v > 0));
    }
}
