//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the subset of the proptest API this workspace uses:
//! [`strategy::Strategy`] with `prop_map` / `prop_recursive` / `boxed`,
//! [`strategy::Just`], [`arbitrary::any`], tuple and range strategies,
//! [`collection::vec`], the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, on purpose:
//!
//! - **No shrinking.** A failing case reports the case index and the RNG
//!   seed that reproduces it, but the input is not minimised.
//! - **Deterministic by default.** Case seeds derive from the test name and
//!   case index, so failures reproduce across runs; set `PROPTEST_SEED` to
//!   perturb the whole run.
//! - `prop_assume!` skips the case rather than drawing a replacement.

// Let the crate's own tests and macro expansions use `proptest::` paths
// exactly as downstream crates do.
extern crate self as proptest;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG handed to strategies while generating one test case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating random values of `Value`.
    ///
    /// Unlike real proptest there is no value tree: a strategy is just a
    /// deterministic function of the case RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy {
                gen: Arc::new(move |rng| s.gen_value(rng)),
            }
        }

        /// Build a recursive strategy: `self` generates the leaves and
        /// `recurse` wraps an inner strategy into branches. `depth` bounds
        /// the recursion; the size-budget parameters of real proptest are
        /// accepted and ignored (each level mixes leaves in with probability
        /// 1/2, which keeps expected sizes small).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let branch = recurse(current).boxed();
                current = Union::new(vec![self.clone().boxed(), branch]).boxed();
            }
            current
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Clone, F: Clone> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                source: self.source.clone(),
                f: self.f.clone(),
            }
        }
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        gen: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Arc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `arms` at every generation.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($S:ident . $i:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value (full domain, including float specials).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // arbitrary bit patterns: exercises subnormals, infs and NaNs
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<i32>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "vec() on empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    use super::TestRng;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert*` failure with its message.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure from a formatted message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError::Fail(msg)
        }
    }

    /// Drives the generated cases of one `proptest!` test function.
    pub struct TestRunner {
        config: ProptestConfig,
        base_seed: u64,
        name: &'static str,
    }

    impl TestRunner {
        /// Create a runner for the named test.
        pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
            // FNV-1a over the name, perturbed by PROPTEST_SEED if set, so
            // each test gets its own deterministic stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra.rotate_left(17);
                }
            }
            TestRunner {
                config,
                base_seed: h,
                name,
            }
        }

        /// Number of cases to run (honours `PROPTEST_CASES`).
        pub fn cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.config.cases)
        }

        /// The RNG for case `case`.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::from_seed(
                self.base_seed
                    .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        }

        /// Panic with diagnostics if the case failed.
        pub fn check(&self, case: u32, result: Result<(), TestCaseError>) {
            if let Err(TestCaseError::Fail(msg)) = result {
                panic!(
                    "proptest `{}` failed at case {} (seed {:#x}): {}",
                    self.name, case, self.base_seed, msg
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declare property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by test functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(
                    let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                )+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                runner.check(case, result);
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Discard the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(i8),
        Node(Box<Tree>, Box<Tree>),
    }

    impl Tree {
        fn sum(&self) -> i64 {
            match self {
                Tree::Leaf(v) => *v as i64,
                Tree::Node(a, b) => a.sum() + b.sum(),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn vec_lengths_in_range(v in proptest::collection::vec(-10i32..10, 3..9)) {
            prop_assert!(v.len() >= 3 && v.len() < 9, "len {}", v.len());
            for x in &v {
                prop_assert!((-10..10).contains(x));
            }
        }

        #[test]
        fn recursive_trees_generate_and_fold(
            t in Just(Tree::Leaf(1)).prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            }),
            offset in 0usize..4,
        ) {
            prop_assume!(offset < 10);
            prop_assert_eq!(t.sum() >= 1, true, "offset {}", offset);
        }

        #[test]
        fn oneof_covers_all_arms(choice in prop_oneof![Just(0u8), Just(1u8), any::<u8>()]) {
            prop_assert!(u32::from(choice) < 256);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig::default;
        let r1 = crate::test_runner::TestRunner::new(cfg(), "same_name");
        let r2 = crate::test_runner::TestRunner::new(cfg(), "same_name");
        let s = proptest::collection::vec(0i32..100, 1..20);
        let a = s.gen_value(&mut r1.rng_for(3));
        let b = s.gen_value(&mut r2.rng_for(3));
        assert_eq!(a, b);
    }
}
