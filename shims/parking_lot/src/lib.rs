//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the external dependencies are replaced by minimal path-dependency shims
//! (see `shims/README.md`). This one wraps `std::sync::Mutex` behind the
//! subset of the `parking_lot` API the workspace uses: `Mutex`,
//! `MutexGuard`, `MutexGuard::map`, and `MappedMutexGuard`.
//!
//! Semantic differences from the real crate are deliberate and benign here:
//! poisoning is ignored (parking_lot has no poisoning), and no fairness or
//! eventual-fairness guarantees are made beyond what std provides.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike std, a
    /// panic in another holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Project the guard to a component of the protected data, as
    /// `parking_lot::MutexGuard::map` does.
    pub fn map<U: ?Sized, F>(mut guard: MutexGuard<'a, T>, f: F) -> MappedMutexGuard<'a, U>
    where
        F: FnOnce(&mut T) -> &mut U,
    {
        // Take the raw address of the projected place, then keep the lock
        // alive by moving the guard into the mapped guard. The pointee
        // cannot move while the lock is held, so the pointer stays valid.
        let ptr: *mut U = f(&mut guard.inner);
        MappedMutexGuard {
            ptr,
            _guard: Box::new(guard.inner),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Guard projecting to a part of the locked data (see [`MutexGuard::map`]).
pub struct MappedMutexGuard<'a, U: ?Sized> {
    ptr: *mut U,
    _guard: Box<dyn Erased + 'a>,
}

/// Object-safe erasure target so the mapped guard does not need the source
/// guard's type as a parameter (matching parking_lot's public signature).
trait Erased {}
impl<T> Erased for T {}

impl<U: ?Sized> Deref for MappedMutexGuard<'_, U> {
    type Target = U;
    fn deref(&self) -> &U {
        // SAFETY: `ptr` was derived from data owned by the mutex whose
        // guard we still hold; the data is pinned for the guard's lifetime.
        unsafe { &*self.ptr }
    }
}

impl<U: ?Sized> DerefMut for MappedMutexGuard<'_, U> {
    fn deref_mut(&mut self) -> &mut U {
        // SAFETY: as above, plus the guard grants exclusive access.
        unsafe { &mut *self.ptr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn map_projects_and_holds_lock() {
        let m = Mutex::new((vec![1, 2, 3], "tag"));
        {
            let g = MutexGuard::map(m.lock(), |t| t.0.as_mut_slice());
            assert_eq!(&*g, &[1, 2, 3]);
        }
        assert_eq!(m.lock().1, "tag");
    }

    #[test]
    fn poisoning_is_ignored() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock usable after a holder panicked");
    }
}
