//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Supports the harness surface this workspace uses — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `black_box`, `criterion_group!`,
//! `criterion_main!` — but performs no statistical analysis: each
//! benchmark closure runs a bounded number of iterations and the median
//! wall-clock time is printed. That keeps `cargo bench` (and clippy over
//! bench targets) working without network access; the numbers are
//! indicative only.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations actually timed per benchmark, regardless of the configured
/// statistical sample size (we do no statistics, so large samples only
/// waste wall-clock time).
const MAX_TIMED_ITERS: u64 = 10;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Set the nominal sample size (capped internally).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size.unwrap_or(100), f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, recording one sample per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let iters = (sample_size as u64).clamp(1, MAX_TIMED_ITERS);
    let mut b = Bencher {
        iters,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    println!(
        "{name:<40} median {:>12} over {} iters (total {:?})",
        format_duration(median),
        b.samples.len(),
        total
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declare a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` invoking the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        Criterion::default()
            .sample_size(5)
            .bench_function("smoke", |b| {
                b.iter(|| {
                    calls += 1;
                    black_box(calls)
                })
            });
        assert_eq!(calls, 5, "iter count should equal the capped sample size");
    }

    #[test]
    fn groups_cap_iterations() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(5000);
        g.bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, MAX_TIMED_ITERS, "large sample sizes are capped");
    }
}
