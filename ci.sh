#!/usr/bin/env bash
# Tier-1 gate for this repository (see ROADMAP.md and README.md).
#
# Runs formatting and lint checks, a release build, and the full test
# suite twice — once single-threaded and once with a small worker pool —
# because the asynchronous command scheduler (oclsim::sched) must produce
# identical results no matter how the dispatcher interleaves commands.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (OCLSIM_THREADS=1)"
OCLSIM_THREADS=1 cargo test --workspace -q

echo "== cargo test (OCLSIM_THREADS=4)"
OCLSIM_THREADS=4 cargo test --workspace -q

# The execution backend must not change observable behaviour either: the
# default runs above exercise the compiled work-group bytecode VM (wg, the
# default); the same suite repeats with every launch pinned to the
# reference SIMT interpreter, under both dispatcher pool sizes.
echo "== cargo test (OCLSIM_BACKEND=ref, OCLSIM_THREADS=1)"
OCLSIM_BACKEND=ref OCLSIM_THREADS=1 cargo test --workspace -q

echo "== cargo test (OCLSIM_BACKEND=ref, OCLSIM_THREADS=4)"
OCLSIM_BACKEND=ref OCLSIM_THREADS=4 cargo test --workspace -q

# The optimizing mid-end must not change observable behaviour at any
# level: the full suite repeats with every HPL build pinned to -O0 (the
# untouched reference IR) and -O2 (all passes), each under both dispatcher
# pool sizes. The default runs above already cover -O1.
echo "== cargo test (HPL_OPT_LEVEL=-O0, OCLSIM_THREADS=1)"
HPL_OPT_LEVEL=-O0 OCLSIM_THREADS=1 cargo test --workspace -q

echo "== cargo test (HPL_OPT_LEVEL=-O0, OCLSIM_THREADS=4)"
HPL_OPT_LEVEL=-O0 OCLSIM_THREADS=4 cargo test --workspace -q

echo "== cargo test (HPL_OPT_LEVEL=-O2, OCLSIM_THREADS=1)"
HPL_OPT_LEVEL=-O2 OCLSIM_THREADS=1 cargo test --workspace -q

echo "== cargo test (HPL_OPT_LEVEL=-O2, OCLSIM_THREADS=4)"
HPL_OPT_LEVEL=-O2 OCLSIM_THREADS=4 cargo test --workspace -q

echo "== kernel sanitizer over the benchmark corpus (Deny gate)"
# lints every handwritten and HPL-generated benchmark kernel; exits
# nonzero if any kernel has a finding, so a regression that introduces a
# racy/divergent/out-of-bounds generated kernel fails the build
cargo run --release -p bench --bin report -- lint

echo "== report -- profile (counter table byte-identical across OCLSIM_THREADS)"
# runs every benchmark sync+async under hpl::profile; exits nonzero on any
# redundant host->device transfer or invalid Chrome trace, and the counter
# table must not depend on how many host threads simulate the launches
OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- profile > target/profile-t1.out
OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- profile > target/profile-t4.out
diff target/profile-t1.out target/profile-t4.out

echo "== report -- annotate (per-line source listings byte-identical across OCLSIM_THREADS)"
# perf-annotate-style per-line counter listings for every benchmark kernel
# (generated lines mapped to DSL recording sites); exits nonzero if any
# kernel's per-line counters fail to sum to its launch totals, and the
# attribution must not depend on how many host threads simulate the groups
OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- annotate > target/annotate-t1.out
OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- annotate > target/annotate-t4.out
diff target/annotate-t1.out target/annotate-t4.out

echo "== report -- annotate byte-identical across execution backends (ref vs wg)"
# the compiled work-group VM routes every counter delta through the same
# per-line chokepoints as the reference interpreter, so the entire
# annotate listing — launch totals, per-line counters, DSL provenance —
# must not depend on which engine executed the groups (the default runs
# above used the wg backend)
OCLSIM_BACKEND=ref OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- annotate > target/annotate-ref.out
diff target/annotate-t1.out target/annotate-ref.out
OCLSIM_BACKEND=ref OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- profile > target/profile-ref.out
diff target/profile-t1.out target/profile-ref.out

echo "== report -- annotate at -O2 (attribution survives the mid-end, byte-identical across OCLSIM_THREADS)"
# the same gate with every kernel optimized: DCE/CSE/LICM rewrite the IR
# but every statement keeps its source span, so per-line sums still equal
# launch totals and the listing cannot depend on the worker pool
HPL_OPT_LEVEL=-O2 OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- annotate > target/annotate-o2-t1.out
HPL_OPT_LEVEL=-O2 OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- annotate > target/annotate-o2-t4.out
diff target/annotate-o2-t1.out target/annotate-o2-t4.out

echo "== report -- passes (mid-end per-pass deltas; >=3 of 5 benchmarks reduced at -O2)"
# builds every benchmark at -O0/-O1/-O2, prints the per-pass rewrite
# counters with instruction and modeled-time deltas, writes
# target/passes.json; exits nonzero unless -O2 strictly reduces executed
# instructions or modeled time on at least three of the five benchmarks
cargo run --release -p bench --bin report -- passes

echo "== telemetry is zero-overhead when off (and invisible to the counter tables when on)"
# same profile run with span collection enabled: the counter tables, the
# transfer-minimality verdicts and the traces must be byte-identical —
# telemetry observes the runtime, it never perturbs it
HPL_TELEMETRY=1 OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- profile > target/profile-telemetry.out
diff target/profile-t1.out target/profile-telemetry.out

echo "== report -- metrics (canonical snapshot byte-identical across OCLSIM_THREADS)"
# drives every benchmark to its kernel-cache steady state and prints the
# canonical metrics snapshot; exits nonzero if any steady-state run misses
# the cache, and the whole output must not depend on the dispatcher pool
OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- metrics > target/metrics-t1.out
OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- metrics > target/metrics-t4.out
diff target/metrics-t1.out target/metrics-t4.out

echo "== report -- soak (multi-tenant service smoke, snapshot byte-identical across OCLSIM_THREADS)"
# short deterministic soak of the kernel service: concurrent tenants over
# mixed workloads against one shared binary cache. Exits nonzero unless
# every soak tenant ran with zero cache misses (identical kernels resolve
# to one resident binary regardless of interleaving), zero uploads were
# redundant, the quota rejection fired, and a partitioned launch beat the
# single-device reference bit-identically. The canonical metrics snapshot
# the run writes must not depend on the dispatcher pool
OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- soak
cp target/soak-metrics.txt target/soak-metrics-t1.txt
OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- soak
cp target/soak-metrics.txt target/soak-metrics-t4.txt
diff target/soak-metrics-t1.txt target/soak-metrics-t4.txt

echo "== report -- postmortem (causal traces and dumps byte-identical across OCLSIM_THREADS and backends)"
# drives a successful partitioned launch, a poisoned one and a quota
# rejection through the kernel service and prints the canonical request
# span tree plus both postmortem dumps (error chain, span tree,
# flight-recorder tail, cache/quota state). Trace ids are minted from
# tenant names and per-tenant sequence numbers, modeled times are pure
# functions of the workload, and wall-clock fields are omitted from the
# canonical renderings — so the ENTIRE stdout and the merged
# device+postmortem Chrome trace must be byte-identical no matter how
# many dispatcher threads run or which execution backend launches the
# groups. Exits nonzero if any causal chain, trace-id tag or recorder
# tail is missing
OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- postmortem > target/postmortem-t1.out
cp target/postmortem-trace.json target/postmortem-trace-t1.json
OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- postmortem > target/postmortem-t4.out
cp target/postmortem-trace.json target/postmortem-trace-t4.json
OCLSIM_BACKEND=ref OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- postmortem > target/postmortem-ref-t1.out
cp target/postmortem-trace.json target/postmortem-trace-ref-t1.json
OCLSIM_BACKEND=ref OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- postmortem > target/postmortem-ref-t4.out
cp target/postmortem-trace.json target/postmortem-trace-ref-t4.json
diff target/postmortem-t1.out target/postmortem-t4.out
diff target/postmortem-t1.out target/postmortem-ref-t1.out
diff target/postmortem-t1.out target/postmortem-ref-t4.out
diff target/postmortem-trace-t1.json target/postmortem-trace-t4.json
diff target/postmortem-trace-t1.json target/postmortem-trace-ref-t1.json
diff target/postmortem-trace-t1.json target/postmortem-trace-ref-t4.json
# the raw serve path never reads HPL_OPT_LEVEL, so the mid-end knob must
# not leak into the dumps either
HPL_OPT_LEVEL=-O2 OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- postmortem > target/postmortem-o2.out
diff target/postmortem-t1.out target/postmortem-o2.out

echo "== report -- cache (simulated L1/L2 counters byte-identical across OCLSIM_THREADS and backends)"
# runs the corpus on the cache-capable Tesla variant next to the
# roofline-only Tesla; exits nonzero if any cache-model invariant fails
# (per-line hit/miss sums vs launch totals, probe/transaction accounting,
# plain-device counter parity, or a frozen naive-vs-tiled transpose
# hit-rate gap). Group-private L1 replay plus the post-join linear-order
# shared-L2 replay make the whole listing independent of the worker pool
# and of which engine executed the groups
OCLSIM_THREADS=1 cargo run --release -p bench --bin report -- cache > target/cache-t1.out
OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- cache > target/cache-t4.out
diff target/cache-t1.out target/cache-t4.out
OCLSIM_BACKEND=ref OCLSIM_THREADS=4 cargo run --release -p bench --bin report -- cache > target/cache-ref.out
diff target/cache-t1.out target/cache-ref.out
# legacy profiles are untouched by the cache model: the profile/annotate
# diffs above all ran on the plain (no-cache-capability) Tesla, and the
# cache listing itself proves its non-cache counters match bit-for-bit

echo "== report -- bench (BENCH_pr4.json perf-trajectory gate)"
# regenerates the trajectory and diffs it against the committed baseline:
# fails on >10% modeled-time regression, any new redundant upload, or a
# vanished benchmark; also schema-checks the unified host+device trace
cargo run --release -p bench --bin report -- bench BENCH_pr4.json

echo "ci.sh: all green"
