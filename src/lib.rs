//! Umbrella crate for the HPL reproduction workspace.
//!
//! This package exists so that the repository root can host the cross-crate
//! integration tests in `tests/` and the runnable examples in `examples/`.
//! The actual functionality lives in the member crates:
//!
//! - [`hpl`] — the Heterogeneous Programming Library (the paper's contribution)
//! - [`oclsim`] — the simulated OpenCL platform HPL runs on
//! - [`benchsuite`] — the five evaluation benchmarks
//! - [`sloc`] — the SLOC counter used for the programmability study

pub use benchsuite;
pub use hpl;
pub use oclsim;
pub use sloc;
