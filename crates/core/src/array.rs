//! HPL arrays: `Array<type, ndim [, memoryFlag]>` of §III-A.
//!
//! One type serves three roles, as in the paper:
//!
//! - created in **host code**, it owns host storage plus lazily-created
//!   device buffers with validity tracking (the transfer minimiser);
//! - passed as a **kernel argument**, `at()` records element accesses;
//! - created **inside a kernel**, it declares a private (default) or
//!   `__local` array.
//!
//! Host code indexes with `get`/`set` (the paper's parentheses — a visible
//! reminder that host accesses carry overhead), kernels with `at` (the
//! paper's brackets).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{MappedMutexGuard, Mutex, MutexGuard};

use oclsim::{Buffer, Device, Event, EventStatus, MemAccess};

use crate::error::{Error, Result};
use crate::expr::{Expr, IntoExpr};
use crate::ir::{MemFlag, Node};
use crate::kernel::{is_recording, record_array_decl, try_with_recorder};
use crate::runtime::runtime;
use crate::scalar::HplScalar;

/// Process-wide handle allocator shared by arrays *and* scalars
/// ([`crate::scalar`] draws from it too). `eval`'s alias-pattern cache key
/// compares the handles of a mixed argument tuple pairwise, so a handle
/// must be unique across argument kinds: with separate per-kind counters
/// a fresh scalar could numerically collide with a fresh array and fake
/// an aliasing pair, splitting the kernel cache (and, worse, letting a
/// genuinely aliased tuple hit the entry recorded for the distinct one).
static NEXT_HANDLE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh kernel-argument handle (unique process-wide).
pub(crate) fn next_handle_id() -> u64 {
    NEXT_HANDLE_ID.fetch_add(1, Ordering::Relaxed)
}

struct DeviceCopy {
    device: Device,
    buffer: Buffer,
    valid: bool,
}

/// Per-array host↔device transfer accounting, updated at every transfer
/// the coherence machinery performs. The profiling surface for "did HPL
/// move this array more often than it had to?" — the global
/// [`crate::runtime::TransferStats`] aggregates across all arrays and
/// threads, which makes it useless under a parallel test harness; this is
/// scoped to one array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrayTransferStats {
    /// Host→device uploads of this array.
    pub h2d_count: u64,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host downloads of this array.
    pub d2h_count: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
}

struct HostState<T> {
    data: Vec<T>,
    host_valid: bool,
    copies: Vec<DeviceCopy>,
    /// Lifetime transfer counts for this array (see [`ArrayTransferStats`]).
    xfer: ArrayTransferStats,
    /// Event of the last asynchronously enqueued command that writes this
    /// array (kernel or host→device transfer). Future users of the data
    /// must wait on it — and are poisoned by it if it failed.
    last_write: Option<Event>,
    /// Events of asynchronously enqueued commands that read this array
    /// since its last write. A later writer must wait for them
    /// (write-after-read), but their failures do not poison it.
    readers: Vec<Event>,
}

impl<T> Drop for HostState<T> {
    fn drop(&mut self) {
        // return the device allocations to their contexts' accounting
        for c in self.copies.drain(..) {
            runtime().entry(&c.device).context.release_buffer(c.buffer);
        }
    }
}

enum Repr<T> {
    Host(Mutex<HostState<T>>),
    /// Declared inside a kernel while recording; no storage.
    KernelDecl,
}

/// An HPL array of `T` with `N` dimensions. Cheap to clone (shared handle).
pub struct Array<T: HplScalar, const N: usize> {
    id: u64,
    dims: [usize; N],
    mem: MemFlag,
    repr: Arc<Repr<T>>,
}

impl<T: HplScalar, const N: usize> Clone for Array<T, N> {
    fn clone(&self) -> Self {
        Array {
            id: self.id,
            dims: self.dims,
            mem: self.mem,
            repr: Arc::clone(&self.repr),
        }
    }
}

impl<T: HplScalar, const N: usize> Array<T, N> {
    fn check_dims(dims: [usize; N]) {
        assert!(N >= 1 && N <= 3, "HPL arrays have 1 to 3 dimensions");
        assert!(
            dims.iter().all(|&d| d > 0),
            "array dimensions must be positive: {dims:?}"
        );
    }

    #[track_caller]
    fn new_with(dims: [usize; N], mem: MemFlag, data: Option<Vec<T>>) -> Array<T, N> {
        Self::check_dims(dims);
        let id = next_handle_id();
        if is_recording() {
            assert!(
                data.is_none(),
                "arrays declared inside kernels cannot take initial host data"
            );
            assert!(
                mem != MemFlag::Constant && mem != MemFlag::Global,
                "arrays declared inside kernels are private (default) or Local"
            );
            record_array_decl(id, T::CTYPE, mem, &dims);
            return Array {
                id,
                dims,
                mem,
                repr: Arc::new(Repr::KernelDecl),
            };
        }
        assert!(
            mem != MemFlag::Local && mem != MemFlag::Private,
            "Local/Private arrays only exist inside kernels; host arrays are Global or Constant"
        );
        let len = dims.iter().product::<usize>();
        let data = match data {
            Some(d) => {
                assert_eq!(
                    d.len(),
                    len,
                    "initial data length does not match the dimensions"
                );
                d
            }
            None => vec![T::default(); len],
        };
        Array {
            id,
            dims,
            mem,
            repr: Arc::new(Repr::Host(Mutex::new(HostState {
                data,
                host_valid: true,
                copies: Vec::new(),
                xfer: ArrayTransferStats::default(),
                last_write: None,
                readers: Vec::new(),
            }))),
        }
    }

    /// Create an array. On the host this allocates zero-initialised global
    /// storage; inside a kernel it declares a **private** per-work-item
    /// array (the paper's rule for unflagged in-kernel declarations).
    #[track_caller]
    pub fn new(dims: [usize; N]) -> Array<T, N> {
        let mem = if is_recording() {
            MemFlag::Private
        } else {
            MemFlag::Global
        };
        Self::new_with(dims, mem, None)
    }

    /// Declare a `__local` (scratchpad) array. Only valid inside a kernel.
    #[track_caller]
    pub fn local(dims: [usize; N]) -> Array<T, N> {
        assert!(
            is_recording(),
            "Array::local declares work-group scratchpad and is only valid inside a kernel"
        );
        Self::new_with(dims, MemFlag::Local, None)
    }

    /// Create a host array placed in **constant** memory when used by
    /// kernels (host-writable, kernel-read-only).
    pub fn constant(dims: [usize; N]) -> Array<T, N> {
        Self::new_with(dims, MemFlag::Constant, None)
    }

    /// Create a host array initialised from `data` (the paper's
    /// constructor taking a pointer to existing storage).
    pub fn from_vec(dims: [usize; N], data: Vec<T>) -> Array<T, N> {
        Self::new_with(dims, MemFlag::Global, Some(data))
    }

    /// The dimensions.
    pub fn dims(&self) -> [usize; N] {
        self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Always false (dimensions are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The memory flag.
    pub fn mem_flag(&self) -> MemFlag {
        self.mem
    }

    pub(crate) fn handle_id(&self) -> u64 {
        self.id
    }

    fn host_state(&self) -> &Mutex<HostState<T>> {
        match &*self.repr {
            Repr::Host(s) => s,
            Repr::KernelDecl => panic!(
                "host access to an array declared inside a kernel; kernel-local arrays \
                 have no host storage"
            ),
        }
    }

    // ---- kernel-side access -------------------------------------------------

    /// Index the array inside a kernel (the paper's bracket indexing).
    /// 1-D arrays take one index, 2-D a pair, 3-D a triple.
    pub fn at(&self, index: impl KernelIndex<N>) -> Expr<T> {
        let idxs = index.index_nodes();
        let resolved = try_with_recorder(|r| {
            if let Some(&param) = r.array_params.get(&self.id) {
                Some(Node::ParamElem {
                    param,
                    idxs: idxs.clone(),
                })
            } else {
                r.local_arrays.get(&self.id).map(|&decl| Node::LocalElem {
                    decl,
                    idxs: idxs.clone(),
                })
            }
        });
        match resolved {
            Some(Some(node)) => Expr::from_node(Arc::new(node)),
            Some(None) => panic!(
                "array is used inside the kernel but is neither a kernel argument nor \
                 declared inside the kernel: HPL kernels only communicate with the host \
                 through their arguments (§III-C)"
            ),
            None => panic!("Array::at records a kernel access and is only valid inside a kernel"),
        }
    }

    // ---- host-side access -----------------------------------------------------

    /// Read one element in host code (the paper's parenthesis indexing).
    /// Synchronises from the device if the host copy is stale.
    pub fn get(&self, index: impl HostIndex<N>) -> T {
        assert!(
            !is_recording(),
            "host indexing (get) inside a kernel; use at()"
        );
        let i = self.linear(index.host_index());
        let mut st = self.host_state().lock();
        self.sync_host(&mut st)
            .expect("device-to-host synchronisation failed");
        st.data[i]
    }

    /// Write one element in host code; invalidates device copies.
    pub fn set(&self, index: impl HostIndex<N>, v: T) {
        assert!(
            !is_recording(),
            "host indexing (set) inside a kernel; use at().assign()"
        );
        let i = self.linear(index.host_index());
        let mut st = self.host_state().lock();
        self.sync_host(&mut st)
            .expect("device-to-host synchronisation failed");
        st.data[i] = v;
        st.host_valid = true;
        for c in &mut st.copies {
            c.valid = false;
        }
    }

    /// Copy the whole array into a Vec (synchronising if needed). The
    /// paper's `data()` raw-pointer access, adapted to safe Rust.
    pub fn to_vec(&self) -> Vec<T> {
        let mut st = self.host_state().lock();
        self.sync_host(&mut st)
            .expect("device-to-host synchronisation failed");
        st.data.clone()
    }

    /// Run `f` over the host data (synchronising first). Cheaper than
    /// [`Array::to_vec`] for read-only scans.
    pub fn with_data<R>(&self, f: impl FnOnce(&[T]) -> R) -> R {
        let mut st = self.host_state().lock();
        self.sync_host(&mut st)
            .expect("device-to-host synchronisation failed");
        f(&st.data)
    }

    /// Borrow the host data read-only (the paper's `data()` accessor,
    /// adapted to safe Rust: a guard instead of a raw pointer).
    /// Synchronises from the device first if the host copy is stale; the
    /// array is locked while the guard lives.
    pub fn data(&self) -> MappedMutexGuard<'_, [T]> {
        let mut st = self.host_state().lock();
        self.sync_host(&mut st)
            .expect("device-to-host synchronisation failed");
        MutexGuard::map(st, |st| st.data.as_mut_slice())
    }

    /// Borrow the host data mutably. Synchronises first; when the guard is
    /// dropped, every device copy is invalidated (the runtime cannot know
    /// which elements were written).
    pub fn data_mut(&self) -> HostDataMut<'_, T> {
        let mut st = self.host_state().lock();
        self.sync_host(&mut st)
            .expect("device-to-host synchronisation failed");
        HostDataMut { guard: st }
    }

    /// Overwrite the entire contents from a slice; device copies are
    /// invalidated without being synchronised first.
    pub fn write_from(&self, data: &[T]) {
        let mut st = self.host_state().lock();
        // wait out pending async work; its outcome (even failure) is
        // irrelevant because every element is about to be replaced
        let _ = Self::settle(&mut st);
        assert_eq!(data.len(), st.data.len(), "write_from length mismatch");
        st.data.copy_from_slice(data);
        st.host_valid = true;
        for c in &mut st.copies {
            c.valid = false;
        }
    }

    /// Fill every element with `v` (host side).
    pub fn fill(&self, v: T) {
        let mut st = self.host_state().lock();
        let _ = Self::settle(&mut st);
        st.data.iter_mut().for_each(|x| *x = v);
        st.host_valid = true;
        for c in &mut st.copies {
            c.valid = false;
        }
    }

    fn linear(&self, idx: [usize; N]) -> usize {
        let mut lin = 0usize;
        for d in 0..N {
            assert!(
                idx[d] < self.dims[d],
                "index {:?} out of bounds for dims {:?}",
                idx,
                self.dims
            );
            lin = lin * self.dims[d] + idx[d];
        }
        lin
    }

    // ---- coherence machinery (the transfer minimiser) ---------------------------

    /// Wait out every pending asynchronous command touching this array.
    ///
    /// The synchronous paths call this before reading or replacing device
    /// data so that mixed sync/async programs stay coherent. A failed
    /// asynchronous writer surfaces here: the data it was supposed to
    /// produce never materialised, so the caller gets its error (the
    /// paper-level analogue of oclsim's dependency poisoning). Failed
    /// *readers* are ignored — they consumed data, they did not corrupt it.
    fn settle(st: &mut HostState<T>) -> Result<()> {
        for ev in st.readers.drain(..) {
            let _ = ev.wait();
        }
        if let Some(ev) = st.last_write.take() {
            ev.wait().map_err(Error::Backend)?;
        }
        Ok(())
    }

    /// Bring the host copy up to date from whichever device copy is valid.
    fn sync_host(&self, st: &mut HostState<T>) -> Result<()> {
        Self::settle(st)?;
        if st.host_valid {
            return Ok(());
        }
        let mut span = oclsim::telemetry::span("coherence", "sync_host");
        let copy = st
            .copies
            .iter()
            .find(|c| c.valid)
            .ok_or_else(|| Error::Internal("array has no valid copy anywhere".into()))?;
        let queue = &runtime().entry(&copy.device).queue;
        let (data, ev) = queue.enqueue_read::<T>(&copy.buffer, 0, st.data.len())?;
        let bytes = st.data.len() * std::mem::size_of::<T>();
        runtime().note_d2h(bytes, ev.modeled_seconds());
        st.xfer.d2h_count += 1;
        st.xfer.d2h_bytes += bytes as u64;
        let m = oclsim::telemetry::metrics();
        m.d2h_transfers.inc();
        m.d2h_bytes.add(bytes as u64);
        m.transfer_bytes.observe(bytes as u64);
        if oclsim::telemetry::enabled() {
            span.note("action", "download");
            span.note("reason", "host copy stale, data lives on device");
            span.note("from", copy.device.name());
            span.note("bytes", bytes);
        }
        crate::profile::note_transfer(oclsim::TransferDir::DeviceToHost, bytes as u64, Some(&ev));
        st.data = data;
        st.host_valid = true;
        Ok(())
    }

    /// Make sure a valid device copy exists on `device`; returns the buffer
    /// and the modeled seconds of any transfer performed (0.0 on a
    /// coherence hit — the case HPL's analysis exists to maximise).
    pub(crate) fn ensure_on_device(
        &self,
        device: &Device,
        needs_data: bool,
    ) -> Result<(Buffer, f64)> {
        let mut span = oclsim::telemetry::span("coherence", "ensure_on_device");
        let mut st = self.host_state().lock();
        // the synchronous path orders commands only through its in-order
        // queue, so any pending asynchronous work on this array must be
        // waited out before its buffer is reused or replaced
        Self::settle(&mut st)?;
        if oclsim::telemetry::enabled() {
            span.note("device", device.name());
            span.note("needs_data", needs_data);
            span.note("host_valid_before", st.host_valid);
        }
        // make the host copy current first if the data lives on another device
        if needs_data && !st.host_valid && !st.copies.iter().any(|c| c.valid && &c.device == device)
        {
            self.sync_host(&mut st)?;
        }
        let entry = runtime().entry(device);
        let pos = match st.copies.iter().position(|c| &c.device == device) {
            Some(p) => p,
            None => {
                let bytes = st.data.len() * std::mem::size_of::<T>();
                let buffer = entry.context.create_buffer(bytes, MemAccess::ReadWrite)?;
                st.copies.push(DeviceCopy {
                    device: device.clone(),
                    buffer,
                    valid: false,
                });
                st.copies.len() - 1
            }
        };
        let m = oclsim::telemetry::metrics();
        if st.copies[pos].valid || !needs_data {
            // a copy the kernel merely writes is NOT marked valid here:
            // another argument slot may alias the same array and still
            // need the host data uploaded. Validity is established after
            // the launch by `mark_device_written`, as on the async path.
            if needs_data && st.copies[pos].valid {
                m.coherence_hits.inc();
            }
            if oclsim::telemetry::enabled() {
                span.note("device_valid_before", st.copies[pos].valid);
                span.note(
                    "action",
                    if st.copies[pos].valid {
                        "none (device copy valid)"
                    } else {
                        "none (write-only, upload skipped)"
                    },
                );
            }
            return Ok((st.copies[pos].buffer.clone(), 0.0));
        }
        // host is valid here (ensured above)
        if st.copies[pos].valid {
            // tripwire: an upload past the early return above would be
            // redundant by definition; the bench gate fails on any count
            m.redundant_uploads.inc();
        }
        let buffer = st.copies[pos].buffer.clone();
        let ev = entry.queue.enqueue_write(&buffer, 0, &st.data)?;
        let bytes = st.data.len() * std::mem::size_of::<T>();
        runtime().note_h2d(bytes, ev.modeled_seconds());
        st.xfer.h2d_count += 1;
        st.xfer.h2d_bytes += bytes as u64;
        m.h2d_transfers.inc();
        m.h2d_bytes.add(bytes as u64);
        m.transfer_bytes.observe(bytes as u64);
        if oclsim::telemetry::enabled() {
            span.note("device_valid_before", false);
            span.note("action", "upload");
            span.note("reason", "device copy stale and kernel reads it");
            span.note("bytes", bytes);
        }
        crate::profile::note_transfer(oclsim::TransferDir::HostToDevice, bytes as u64, Some(&ev));
        st.copies[pos].valid = true;
        Ok((buffer, ev.modeled_seconds()))
    }

    /// Mark the copy on `device` as the only valid one (called after a
    /// kernel wrote through this array).
    pub(crate) fn mark_device_written(&self, device: &Device) {
        let mut st = self.host_state().lock();
        st.host_valid = false;
        for c in &mut st.copies {
            c.valid = &c.device == device;
        }
    }

    /// Asynchronous analogue of [`Array::ensure_on_device`], used by
    /// `eval(..).run_async(..)`.
    ///
    /// Makes sure a buffer exists on `device`, enqueues any needed
    /// host→device transfer on the device's **out-of-order** queue without
    /// waiting for it, and returns the inferred wait list the consuming
    /// command must pass to the scheduler: the array's last pending writer
    /// (read-after-write), plus — when `writes` — its pending readers
    /// (write-after-read), plus the transfer just enqueued, if any.
    /// The third element is the modeled seconds of that transfer (0.0 on a
    /// coherence hit). The only synchronous wait on this path is migration
    /// from another device, which goes through the host copy.
    pub(crate) fn prepare_async(
        &self,
        device: &Device,
        reads: bool,
        writes: bool,
    ) -> Result<(Buffer, Vec<Event>, f64)> {
        let mut span = oclsim::telemetry::span("coherence", "prepare_async");
        let mut st = self.host_state().lock();
        if oclsim::telemetry::enabled() {
            span.note("device", device.name());
            span.note("reads", reads);
            span.note("writes", writes);
            span.note("host_valid_before", st.host_valid);
        }
        // drop resolved readers: completed ones impose no ordering, and a
        // failed reader never poisons anything. The last writer stays even
        // after it completes: a consumer's *execution* no longer needs the
        // ordering, but its modeled start must still come after the
        // producer's modeled end, and the dispatcher derives that from the
        // wait list — dropping the event here would let the timeline
        // overlap them whenever the writer happens to finish (in wall
        // time) before the consumer enqueues.
        st.readers
            .retain(|ev| !matches!(ev.status(), EventStatus::Complete | EventStatus::Error));
        if reads && !st.host_valid && !st.copies.iter().any(|c| c.valid && &c.device == device) {
            self.sync_host(&mut st)?;
        }
        let entry = runtime().entry(device);
        let pos = match st.copies.iter().position(|c| &c.device == device) {
            Some(p) => p,
            None => {
                let bytes = st.data.len() * std::mem::size_of::<T>();
                let buffer = entry.context.create_buffer(bytes, MemAccess::ReadWrite)?;
                st.copies.push(DeviceCopy {
                    device: device.clone(),
                    buffer,
                    valid: false,
                });
                st.copies.len() - 1
            }
        };
        let buffer = st.copies[pos].buffer.clone();
        let mut deps: Vec<Event> = Vec::new();
        if let Some(ev) = &st.last_write {
            deps.push(ev.clone());
        }
        if writes {
            deps.extend(st.readers.iter().cloned());
        }
        let m = oclsim::telemetry::metrics();
        if reads && st.copies[pos].valid {
            // mirrors the synchronous path's hit accounting exactly, so
            // canonical metrics match between in-order and out-of-order runs
            m.coherence_hits.inc();
        }
        if oclsim::telemetry::enabled() {
            span.note("device_valid_before", st.copies[pos].valid);
            span.note(
                "action",
                match (reads, st.copies[pos].valid) {
                    (true, true) => "none (device copy valid)",
                    (true, false) => "upload",
                    (false, _) => "none (write-only, upload skipped)",
                },
            );
        }
        let mut transfer_seconds = 0.0;
        if reads && !st.copies[pos].valid {
            // the transfer overwrites the buffer, so it must itself wait
            // for the pending readers even when the kernel does not
            let mut wait = deps.clone();
            if !writes {
                wait.extend(st.readers.iter().cloned());
            }
            let bytes = st.data.len() * std::mem::size_of::<T>();
            let ev = entry
                .async_queue
                .enqueue_write_async(&buffer, 0, &st.data, &wait)?;
            // the transfer's modeled cost is deterministic, so it can be
            // accounted without waiting for the event to resolve
            transfer_seconds = oclsim::timing::model_transfer(device.profile(), bytes);
            runtime().note_h2d(bytes, transfer_seconds);
            st.xfer.h2d_count += 1;
            st.xfer.h2d_bytes += bytes as u64;
            m.h2d_transfers.inc();
            m.h2d_bytes.add(bytes as u64);
            m.transfer_bytes.observe(bytes as u64);
            if oclsim::telemetry::enabled() {
                span.note("bytes", bytes);
                span.note("reason", "device copy stale and kernel reads it");
            }
            crate::profile::note_transfer(
                oclsim::TransferDir::HostToDevice,
                bytes as u64,
                Some(&ev),
            );
            st.copies[pos].valid = true;
            deps.push(ev);
        }
        Ok((buffer, deps, transfer_seconds))
    }

    /// Record an asynchronously enqueued command that uses this array
    /// (called right after the enqueue whose wait list came from
    /// [`Array::prepare_async`]). A writer becomes the array's
    /// `last_write` — device validity flips to `device` at *enqueue* time,
    /// matching enqueue-order semantics — and clears the reader set its
    /// wait list already ordered it after; a reader just joins the set.
    pub(crate) fn record_async_use(&self, device: &Device, event: &Event, wrote: bool) {
        let mut st = self.host_state().lock();
        if wrote {
            st.host_valid = false;
            for c in &mut st.copies {
                c.valid = &c.device == device;
            }
            st.last_write = Some(event.clone());
            st.readers.clear();
        } else {
            st.readers.push(event.clone());
        }
    }

    /// True if the copy on `device` is present and valid (test hook for the
    /// transfer minimiser).
    pub fn device_copy_valid(&self, device: &Device) -> bool {
        let st = self.host_state().lock();
        st.copies.iter().any(|c| c.valid && &c.device == device)
    }

    /// True if the host copy is current (test hook).
    pub fn host_copy_valid(&self) -> bool {
        self.host_state().lock().host_valid
    }

    /// Lifetime host↔device transfer counts for this array. The assertion
    /// surface for HPL's transfer minimiser: an array read by `k` evals on
    /// one device should show `h2d_count == 1`.
    pub fn transfer_stats(&self) -> ArrayTransferStats {
        self.host_state().lock().xfer
    }
}

impl<T: HplScalar, const N: usize> std::fmt::Debug for Array<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Array<{}, {}>({:?}, {:?})",
            T::CTYPE.cl_name(),
            N,
            self.dims,
            self.mem
        )
    }
}

/// Write guard returned by [`Array::data_mut`]: dereferences to the host
/// slice and invalidates all device copies when dropped.
pub struct HostDataMut<'a, T> {
    guard: MutexGuard<'a, HostState<T>>,
}

impl<T> std::ops::Deref for HostDataMut<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.guard.data
    }
}

impl<T> std::ops::DerefMut for HostDataMut<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.guard.data
    }
}

impl<T> Drop for HostDataMut<'_, T> {
    fn drop(&mut self) {
        self.guard.host_valid = true;
        for c in &mut self.guard.copies {
            c.valid = false;
        }
    }
}

/// Kernel index argument(s) for an `N`-dimensional array.
pub trait KernelIndex<const N: usize> {
    /// The recorded index expressions, outermost dimension first.
    fn index_nodes(self) -> Vec<Arc<Node>>;
}

impl<I: IntoExpr<i32>> KernelIndex<1> for I {
    fn index_nodes(self) -> Vec<Arc<Node>> {
        vec![self.into_expr().node()]
    }
}

impl<I: IntoExpr<i32>, J: IntoExpr<i32>> KernelIndex<2> for (I, J) {
    fn index_nodes(self) -> Vec<Arc<Node>> {
        vec![self.0.into_expr().node(), self.1.into_expr().node()]
    }
}

impl<I: IntoExpr<i32>, J: IntoExpr<i32>, K: IntoExpr<i32>> KernelIndex<3> for (I, J, K) {
    fn index_nodes(self) -> Vec<Arc<Node>> {
        vec![
            self.0.into_expr().node(),
            self.1.into_expr().node(),
            self.2.into_expr().node(),
        ]
    }
}

/// Host index argument(s) for an `N`-dimensional array.
pub trait HostIndex<const N: usize> {
    /// The concrete index, outermost dimension first.
    fn host_index(self) -> [usize; N];
}

impl HostIndex<1> for usize {
    fn host_index(self) -> [usize; 1] {
        [self]
    }
}

impl HostIndex<2> for (usize, usize) {
    fn host_index(self) -> [usize; 2] {
        [self.0, self.1]
    }
}

impl HostIndex<3> for (usize, usize, usize) {
    fn host_index(self) -> [usize; 3] {
        [self.0, self.1, self.2]
    }
}

impl<const N: usize> HostIndex<N> for [usize; N] {
    fn host_index(self) -> [usize; N] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::capture;
    use crate::predef::idx;

    #[test]
    fn host_array_get_set() {
        let a = Array::<f32, 1>::new([10]);
        assert_eq!(a.len(), 10);
        assert_eq!(a.get(3), 0.0);
        a.set(3, 1.5);
        assert_eq!(a.get(3), 1.5);
        assert_eq!(a.to_vec()[3], 1.5);
    }

    #[test]
    fn two_dimensional_row_major() {
        let a = Array::<i32, 2>::from_vec([2, 3], vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(a.get((0, 0)), 1);
        assert_eq!(a.get((0, 2)), 3);
        assert_eq!(a.get((1, 0)), 4);
        assert_eq!(a.get([1, 2]), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn host_bounds_checked() {
        let a = Array::<i32, 1>::new([4]);
        let _ = a.get(4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Array::<i32, 1>::new([0]);
    }

    #[test]
    fn from_vec_checks_length() {
        let r = std::panic::catch_unwind(|| Array::<i32, 1>::from_vec([3], vec![1, 2]));
        assert!(r.is_err());
    }

    #[test]
    fn clones_share_storage() {
        let a = Array::<i32, 1>::new([4]);
        let b = a.clone();
        b.set(0, 9);
        assert_eq!(a.get(0), 9);
    }

    #[test]
    fn fill_and_write_from() {
        let a = Array::<f64, 1>::new([4]);
        a.fill(2.0);
        assert_eq!(a.to_vec(), vec![2.0; 4]);
        a.write_from(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn kernel_local_array_records_decl() {
        let k = capture("t".into(), || {
            let s = Array::<f32, 1>::local([32]);
            s.at(idx()).assign(1.0f32);
            let p = Array::<f32, 1>::new([8]); // private inside kernel
            p.at(0).assign(2.0f32);
        });
        use crate::ir::HStmtKind;
        assert!(
            matches!(
                k.body[0].kind,
                HStmtKind::DeclArray {
                    mem: MemFlag::Local,
                    ..
                }
            ),
            "{:?}",
            k.body[0]
        );
        assert!(matches!(
            k.body[2].kind,
            HStmtKind::DeclArray {
                mem: MemFlag::Private,
                ..
            }
        ));
        assert!(
            k.body[0].site.is_some_and(|s| s.file.ends_with("array.rs")),
            "Array::local records the declaration site: {:?}",
            k.body[0].site
        );
    }

    #[test]
    #[should_panic(expected = "only valid inside a kernel")]
    fn local_on_host_panics() {
        let _ = Array::<f32, 1>::local([8]);
    }

    #[test]
    #[should_panic(expected = "only valid inside a kernel")]
    fn at_on_host_panics() {
        let a = Array::<f32, 1>::new([8]);
        let _ = a.at(0);
    }

    #[test]
    #[should_panic(expected = "neither a kernel argument nor declared")]
    fn unregistered_array_in_kernel_panics() {
        let a = Array::<f32, 1>::new([8]);
        capture("t".into(), || {
            let _ = a.at(0);
        });
    }

    #[test]
    fn dropping_an_array_releases_device_memory_accounting() {
        // use the quadro so concurrent tests (which run on the default
        // tesla) cannot perturb the accounting
        let device = runtime().device_named("quadro").expect("quadro present");
        let before = runtime().entry(&device).context.allocated_bytes();
        {
            let a = Array::<f64, 1>::from_vec([1024], vec![1.0; 1024]);
            let (_buf, _) = a.ensure_on_device(&device, true).unwrap();
            let during = runtime().entry(&device).context.allocated_bytes();
            assert_eq!(during, before + 8 * 1024);
        }
        let after = runtime().entry(&device).context.allocated_bytes();
        assert_eq!(after, before, "allocation must be returned on drop");
    }

    #[test]
    fn data_guard_reads_and_locks() {
        let a = Array::<i32, 1>::from_vec([4], vec![1, 2, 3, 4]);
        {
            let d = a.data();
            assert_eq!(&*d, &[1, 2, 3, 4]);
        }
        // lock released: normal access works again
        assert_eq!(a.get(0), 1);
    }

    #[test]
    fn data_mut_invalidates_device_copies_on_drop() {
        let a = Array::<i32, 1>::from_vec([4], vec![1, 2, 3, 4]);
        {
            let mut d = a.data_mut();
            d[2] = 99;
        }
        assert_eq!(a.get(2), 99);
        assert!(a.host_copy_valid());
    }

    #[test]
    fn with_data_scans_without_copy() {
        let a = Array::<i32, 1>::from_vec([5], vec![1, 2, 3, 4, 5]);
        let sum = a.with_data(|d| d.iter().sum::<i32>());
        assert_eq!(sum, 15);
    }
}
