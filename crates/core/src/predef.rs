//! The predefined kernel variables of §III-B: global/local/group ids and
//! domain sizes, exposed as expression builders.

use std::sync::Arc;

use crate::expr::Expr;
use crate::ir::{Node, Predef};

fn predef(p: Predef) -> Expr<i32> {
    Expr::from_node(Arc::new(Node::Predef(p)))
}

/// Global id in the first dimension (paper: `idx`).
pub fn idx() -> Expr<i32> {
    predef(Predef::GlobalId(0))
}
/// Global id in the second dimension (paper: `idy`).
pub fn idy() -> Expr<i32> {
    predef(Predef::GlobalId(1))
}
/// Global id in the third dimension (paper: `idz`).
pub fn idz() -> Expr<i32> {
    predef(Predef::GlobalId(2))
}

/// Local id within the group, first dimension (paper: `lidx`).
pub fn lidx() -> Expr<i32> {
    predef(Predef::LocalId(0))
}
/// Local id within the group, second dimension (paper: `lidy`).
pub fn lidy() -> Expr<i32> {
    predef(Predef::LocalId(1))
}
/// Local id within the group, third dimension (paper: `lidz`).
pub fn lidz() -> Expr<i32> {
    predef(Predef::LocalId(2))
}

/// Group id, first dimension (paper: `gidx`).
pub fn gidx() -> Expr<i32> {
    predef(Predef::GroupId(0))
}
/// Group id, second dimension (paper: `gidy`).
pub fn gidy() -> Expr<i32> {
    predef(Predef::GroupId(1))
}
/// Group id, third dimension (paper: `gidz`).
pub fn gidz() -> Expr<i32> {
    predef(Predef::GroupId(2))
}

/// Global domain size, first dimension (paper: `szx`).
pub fn szx() -> Expr<i32> {
    predef(Predef::GlobalSize(0))
}
/// Global domain size, second dimension (paper: `szy`).
pub fn szy() -> Expr<i32> {
    predef(Predef::GlobalSize(1))
}
/// Global domain size, third dimension (paper: `szz`).
pub fn szz() -> Expr<i32> {
    predef(Predef::GlobalSize(2))
}

/// Local domain size, first dimension (paper: `lszx`).
pub fn lszx() -> Expr<i32> {
    predef(Predef::LocalSize(0))
}
/// Local domain size, second dimension (paper: `lszy`).
pub fn lszy() -> Expr<i32> {
    predef(Predef::LocalSize(1))
}
/// Local domain size, third dimension (paper: `lszz`).
pub fn lszz() -> Expr<i32> {
    predef(Predef::LocalSize(2))
}

/// Number of groups, first dimension (paper: `ngroupsx`).
pub fn ngroupsx() -> Expr<i32> {
    predef(Predef::NumGroups(0))
}
/// Number of groups, second dimension (paper: `ngroupsy`).
pub fn ngroupsy() -> Expr<i32> {
    predef(Predef::NumGroups(1))
}
/// Number of groups, third dimension (paper: `ngroupsz`).
pub fn ngroupsz() -> Expr<i32> {
    predef(Predef::NumGroups(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefs_build_expected_nodes() {
        for (e, p) in [
            (idx(), Predef::GlobalId(0)),
            (idy(), Predef::GlobalId(1)),
            (idz(), Predef::GlobalId(2)),
            (lidx(), Predef::LocalId(0)),
            (gidy(), Predef::GroupId(1)),
            (szx(), Predef::GlobalSize(0)),
            (lszz(), Predef::LocalSize(2)),
            (ngroupsx(), Predef::NumGroups(0)),
        ] {
            assert_eq!(*e.node(), Node::Predef(p));
        }
    }

    #[test]
    fn predefs_compose_without_recording() {
        // building expressions from predefs must not require an active
        // recorder (only statements do)
        let _ = idx() * 2 + lidx();
    }
}
