//! `hpl::profile` — scoped profiling of HPL activity.
//!
//! [`profile`] runs a closure with backend profiling enabled on every
//! runtime queue and returns, alongside the closure's value, a
//! [`ProfileReport`] listing each kernel launch and each host↔device
//! transfer the closure caused on this thread. The launches carry their
//! backend [`Event`]s, so after the report is in hand the caller can read
//! modeled timeline stamps ([`Event::profiling_info`]) and simulated
//! hardware counters ([`Event::counters`]) from them.
//!
//! Enabling is refcounted globally (nested or concurrent [`profile`]
//! scopes keep the queues' profiling flags on until the outermost scope
//! ends), but *collection* is per-thread: a scope only records the
//! launches and transfers made by its own thread, so concurrently running
//! tests do not pollute each other's reports. A panic inside the closure
//! propagates, but the scope's refcount and thread-local stack entry are
//! released by a drop guard on the way out — a failing benchmark cannot
//! leave profiling enabled (or a stale scope collecting) for subsequent
//! tests in the process.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use oclsim::{Device, Event, TransferDir};

use crate::runtime::runtime;

/// One kernel launch observed by a [`profile`] scope.
#[derive(Debug, Clone)]
pub struct ProfiledLaunch {
    /// The generated kernel's name (e.g. `hpl_saxpy_0`).
    pub kernel: String,
    /// The device it ran on.
    pub device: Device,
    /// The backend event: completed for synchronous launches, possibly
    /// still pending for asynchronous ones. Its
    /// [`counters`](Event::counters) and
    /// [`profiling_info`](Event::profiling_info) are available once
    /// complete, because the scope enabled queue profiling.
    pub event: Event,
}

/// One host↔device transfer observed by a [`profile`] scope.
#[derive(Debug, Clone)]
pub struct ProfiledTransfer {
    /// Which way the data moved.
    pub direction: TransferDir,
    /// Bytes moved.
    pub bytes: u64,
    /// The transfer's backend event, when the transfer ran through a
    /// queue command HPL kept a handle to (`None` for the synchronous
    /// read path, which consumes its event internally).
    pub event: Option<Event>,
}

/// Everything one [`profile`] scope observed.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Kernel launches, in enqueue order.
    pub launches: Vec<ProfiledLaunch>,
    /// Host↔device transfers, in enqueue order.
    pub transfers: Vec<ProfiledTransfer>,
}

impl ProfileReport {
    /// Total host→device bytes moved in the scope.
    pub fn h2d_bytes(&self) -> u64 {
        self.dir_bytes(TransferDir::HostToDevice)
    }

    /// Number of host→device transfers in the scope.
    pub fn h2d_count(&self) -> usize {
        self.dir_count(TransferDir::HostToDevice)
    }

    /// Total device→host bytes moved in the scope.
    pub fn d2h_bytes(&self) -> u64 {
        self.dir_bytes(TransferDir::DeviceToHost)
    }

    /// Number of device→host transfers in the scope.
    pub fn d2h_count(&self) -> usize {
        self.dir_count(TransferDir::DeviceToHost)
    }

    fn dir_bytes(&self, dir: TransferDir) -> u64 {
        self.transfers
            .iter()
            .filter(|t| t.direction == dir)
            .map(|t| t.bytes)
            .sum()
    }

    fn dir_count(&self, dir: TransferDir) -> usize {
        self.transfers.iter().filter(|t| t.direction == dir).count()
    }
}

thread_local! {
    /// Stack of open profile scopes on this thread (innermost last).
    static SCOPES: RefCell<Vec<ProfileReport>> = const { RefCell::new(Vec::new()) };
}

/// Process-wide count of open profile scopes; queue profiling is enabled
/// while it is non-zero.
static DEPTH: AtomicUsize = AtomicUsize::new(0);

fn set_all_queues_profiling(enabled: bool) {
    for device in runtime().devices() {
        let entry = runtime().entry(&device);
        entry.queue.set_profiling(enabled);
        entry.async_queue.set_profiling(enabled);
    }
}

/// Run `f` with profiling enabled and collect what it does.
///
/// ```
/// use hpl::prelude::*;
///
/// fn double(y: &Array<f64, 1>, x: &Array<f64, 1>) {
///     y.at(idx()).assign(x.at(idx()) * 2.0f64);
/// }
///
/// let x = Array::<f64, 1>::from_vec([256], vec![1.0; 256]);
/// let y = Array::<f64, 1>::new([256]);
/// let (_, report) = hpl::profile(|| {
///     eval(double).run((&y, &x)).unwrap();
/// });
/// assert_eq!(report.launches.len(), 1);
/// assert_eq!(report.h2d_count(), 1, "only x needs uploading");
/// let counters = report.launches[0].event.counters().unwrap();
/// assert!(counters.totals.instr.total() > 0);
/// ```
pub fn profile<R>(f: impl FnOnce() -> R) -> (R, ProfileReport) {
    /// Unwinds the scope on panic: pops this thread's stack entry and
    /// releases the refcount so a panicking closure cannot leave queue
    /// profiling enabled for the rest of the process. Forgotten on the
    /// success path, which pops the report itself (the guard's pop would
    /// discard it).
    struct ScopeGuard;
    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
            if DEPTH.fetch_sub(1, Ordering::SeqCst) == 1 {
                set_all_queues_profiling(false);
            }
        }
    }

    if DEPTH.fetch_add(1, Ordering::SeqCst) == 0 {
        set_all_queues_profiling(true);
    }
    SCOPES.with(|s| s.borrow_mut().push(ProfileReport::default()));
    let guard = ScopeGuard;
    let value = f();
    std::mem::forget(guard);
    let report = SCOPES.with(|s| s.borrow_mut().pop().expect("profile scope stack underflow"));
    if DEPTH.fetch_sub(1, Ordering::SeqCst) == 1 {
        set_all_queues_profiling(false);
    }
    (value, report)
}

/// Record a kernel launch in every open scope on this thread. No-op when
/// none are open (the common, unprofiled case).
pub(crate) fn note_launch(kernel: &str, device: &Device, event: &Event) {
    SCOPES.with(|s| {
        for scope in s.borrow_mut().iter_mut() {
            scope.launches.push(ProfiledLaunch {
                kernel: kernel.to_string(),
                device: device.clone(),
                event: event.clone(),
            });
        }
    });
}

/// Record a host↔device transfer in every open scope on this thread.
pub(crate) fn note_transfer(direction: TransferDir, bytes: u64, event: Option<&Event>) {
    SCOPES.with(|s| {
        for scope in s.borrow_mut().iter_mut() {
            scope.transfers.push(ProfiledTransfer {
                direction,
                bytes,
                event: event.cloned(),
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::eval::eval;
    use crate::predef::idx;

    /// The enable refcount is process-global, so tests that assert on the
    /// profiled/unprofiled state of queues must not overlap.
    static SERIAL: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    fn inc(y: &Array<f64, 1>) {
        y.at(idx()).assign(y.at(idx()) + 1.0f64);
    }

    #[test]
    fn scope_collects_launches_and_transfers() {
        let _guard = SERIAL.lock();
        let y = Array::<f64, 1>::from_vec([128], vec![0.0; 128]);
        let ((), report) = profile(|| {
            eval(inc).run((&y,)).unwrap();
            eval(inc).run((&y,)).unwrap();
        });
        assert_eq!(report.launches.len(), 2);
        assert_eq!(report.h2d_count(), 1, "second eval reuses the device copy");
        assert_eq!(report.h2d_bytes(), 128 * 8);
        for launch in &report.launches {
            let c = launch.event.counters().expect("profiling was enabled");
            assert!(c.totals.instr.total() > 0);
            assert!(launch.event.profiling_info().is_ok());
        }
        assert_eq!(y.get(5), 2.0);
    }

    #[test]
    fn nested_scopes_both_observe_inner_work() {
        let _guard = SERIAL.lock();
        let y = Array::<f64, 1>::from_vec([64], vec![0.0; 64]);
        let (((), inner), outer) = profile(|| {
            profile(|| {
                eval(inc).run((&y,)).unwrap();
            })
        });
        assert_eq!(inner.launches.len(), 1);
        assert_eq!(outer.launches.len(), 1);
    }

    #[test]
    fn panicking_scope_restores_profiling_state() {
        let _guard = SERIAL.lock();
        let y = Array::<f64, 1>::from_vec([32], vec![0.0; 32]);
        let result = std::panic::catch_unwind(|| {
            profile(|| {
                panic!("benchmark exploded");
            })
        });
        assert!(result.is_err(), "the panic propagates");
        // the refcount was released: a launch outside any scope is
        // unprofiled, exactly as if the panicking scope never existed
        let h = eval(inc).run_async((&y,)).unwrap();
        let ev = h.event().clone();
        h.wait().unwrap();
        assert!(!ev.is_profiled(), "panic must not leave profiling enabled");
        // and the thread-local stack was unwound: a fresh scope still
        // collects only its own work
        let ((), report) = profile(|| {
            eval(inc).run((&y,)).unwrap();
        });
        assert_eq!(report.launches.len(), 1);
    }

    #[test]
    fn outside_scope_nothing_is_recorded_and_events_are_unprofiled() {
        let _guard = SERIAL.lock();
        let y = Array::<f64, 1>::from_vec([64], vec![0.0; 64]);
        let ((), report) = profile(|| {});
        assert!(report.launches.is_empty());
        assert!(report.transfers.is_empty());
        // a launch outside any scope has no counters attached
        let h = eval(inc).run_async((&y,)).unwrap();
        let ev = h.event().clone();
        h.wait().unwrap();
        assert!(!ev.is_profiled());
        assert!(ev.counters().is_none());
        assert!(ev.profiling_info().is_err());
    }
}
