//! OpenCL C code generation from the recorded kernel IR.
//!
//! This is HPL's backend of the paper's §III: "our current implementation
//! of the library generates OpenCL C versions of the HPL kernels, which are
//! then compiled to binary with the OpenCL compiler". Array parameters are
//! emitted as pointers plus trailing `int` size arguments (one per
//! dimension), which is how multi-dimensional indexing is flattened.

use std::fmt::Write;
use std::sync::Arc;

use crate::ir::{CType, HStmt, HStmtKind, MemFlag, Node, ParamKind, RecordSite, RecordedKernel};

/// One statement-bearing line of the generated OpenCL C and where the
/// user recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMapEntry {
    /// 1-based line number in the generated source.
    pub cl_line: usize,
    /// The DSL recording site, when capture knew it (`None` for
    /// synthetic IR built without a recording site).
    pub site: Option<RecordSite>,
}

/// A `#line`-style provenance table for one generated kernel: maps each
/// generated OpenCL C line that carries a statement (or a control-flow
/// header) back to the [`RecordSite`] of the originating DSL expression.
/// The backend's per-line hardware counters key on generated-source lines
/// — this table is what turns them back into user terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineMap {
    entries: Vec<LineMapEntry>,
}

impl LineMap {
    /// All entries, in generated-line order.
    pub fn entries(&self) -> &[LineMapEntry] {
        &self.entries
    }

    /// The recording site of generated line `cl_line`, if that line
    /// carries a statement whose site capture knew.
    pub fn site_for_line(&self, cl_line: usize) -> Option<RecordSite> {
        self.entries
            .iter()
            .find(|e| e.cl_line == cl_line)
            .and_then(|e| e.site)
    }
}

/// Generate the complete OpenCL C source for a recorded kernel.
pub fn generate(kernel: &RecordedKernel) -> String {
    generate_with_map(kernel).0
}

/// 1-based number of the line `src` is currently writing into.
fn cur_line(src: &str) -> usize {
    src.bytes().filter(|&b| b == b'\n').count() + 1
}

/// Like [`generate`], but also return the provenance [`LineMap`].
pub fn generate_with_map(kernel: &RecordedKernel) -> (String, LineMap) {
    let mut span = oclsim::telemetry::span("hpl", "codegen");
    if oclsim::telemetry::enabled() {
        span.note("kernel", &kernel.name);
        span.note("params", kernel.params.len());
    }
    let written = kernel.written_params();
    let mut src = String::with_capacity(1024);
    let _ = write!(src, "__kernel void {}(", kernel.name);

    let mut parts: Vec<String> = Vec::new();
    for (i, p) in kernel.params.iter().enumerate() {
        match &p.kind {
            ParamKind::Array { cty, mem, .. } => {
                let space = match mem {
                    MemFlag::Constant => "__constant",
                    _ => "__global",
                };
                let constness = if written[i] || *mem == MemFlag::Constant {
                    ""
                } else {
                    "const "
                };
                parts.push(format!("{space} {constness}{}* p{i}", cty.cl_name()));
            }
            ParamKind::Scalar { cty } => parts.push(format!("{} p{i}", cty.cl_name())),
        }
    }
    // trailing dimension arguments, in parameter order
    for (i, p) in kernel.params.iter().enumerate() {
        if let ParamKind::Array { ndim, .. } = &p.kind {
            for d in 0..*ndim {
                parts.push(format!("const int p{i}_d{d}"));
            }
        }
    }
    let _ = write!(src, "{}", parts.join(", "));
    src.push_str(") {\n");
    let mut map = LineMap::default();
    gen_block(&mut src, &mut map, &kernel.body, kernel, 1);
    src.push_str("}\n");
    (src, map)
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn gen_block(
    out: &mut String,
    map: &mut LineMap,
    stmts: &[HStmt],
    k: &RecordedKernel,
    level: usize,
) {
    for s in stmts {
        gen_stmt(out, map, s, k, level);
    }
}

fn gen_stmt(out: &mut String, map: &mut LineMap, s: &HStmt, k: &RecordedKernel, level: usize) {
    map.entries.push(LineMapEntry {
        cl_line: cur_line(out),
        site: s.site,
    });
    indent(out, level);
    match &s.kind {
        HStmtKind::DeclScalar { var, cty, init } => {
            match init {
                Some(e) => {
                    let _ = writeln!(out, "{} v{var} = {};", cty.cl_name(), expr(e, k));
                }
                None => {
                    let _ = writeln!(out, "{} v{var};", cty.cl_name());
                }
            };
        }
        HStmtKind::DeclArray {
            decl,
            cty,
            mem,
            dims,
        } => {
            let space = match mem {
                MemFlag::Local => "__local ",
                _ => "",
            };
            let total: usize = dims.iter().product();
            let _ = writeln!(out, "{space}{} a{decl}[{total}];", cty.cl_name());
        }
        HStmtKind::Assign { lhs, rhs } => {
            let _ = writeln!(out, "{} = {};", expr(lhs, k), expr(rhs, k));
        }
        HStmtKind::CompoundAssign { lhs, op, rhs } => {
            let _ = writeln!(out, "{} {}= {};", expr(lhs, k), op.token(), expr(rhs, k));
        }
        HStmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond, k));
            gen_block(out, map, then_blk, k, level + 1);
            indent(out, level);
            if else_blk.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                gen_block(out, map, else_blk, k, level + 1);
                indent(out, level);
                out.push_str("}\n");
            }
        }
        HStmtKind::For {
            var,
            cty,
            declares,
            from,
            to,
            step,
            body,
        } => {
            let decl = if *declares {
                format!("{} ", cty.cl_name())
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "for ({decl}v{var} = {}; v{var} < {}; v{var} += {}) {{",
                expr(from, k),
                expr(to, k),
                expr(step, k)
            );
            gen_block(out, map, body, k, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        HStmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr(cond, k));
            gen_block(out, map, body, k, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        HStmtKind::Barrier { local, global } => {
            let flags = match (local, global) {
                (true, true) => "CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE",
                (false, true) => "CLK_GLOBAL_MEM_FENCE",
                _ => "CLK_LOCAL_MEM_FENCE",
            };
            let _ = writeln!(out, "barrier({flags});");
        }
        HStmtKind::ReturnVoid => {
            out.push_str("return;\n");
        }
    }
}

/// Flatten a multi-dimensional index against runtime dim arguments
/// (`p{i}_d{d}`) for parameters, or against compile-time dims for
/// kernel-local arrays.
fn linear_index(
    idxs: &[Arc<Node>],
    dim_name: &dyn Fn(usize) -> String,
    k: &RecordedKernel,
) -> String {
    let mut s = format!("({})", expr(&idxs[0], k));
    for (d, i) in idxs.iter().enumerate().skip(1) {
        s = format!("({s} * {} + ({}))", dim_name(d), expr(i, k));
    }
    s
}

fn expr(n: &Node, k: &RecordedKernel) -> String {
    match n {
        Node::LitI(v, cty) => match cty {
            CType::I64 => format!("{v}L"),
            CType::I32 => {
                if *v < 0 {
                    format!("({v})")
                } else {
                    format!("{v}")
                }
            }
            _ => format!("(({}){v})", cty.cl_name()),
        },
        Node::LitU(v, cty) => match cty {
            CType::U64 => format!("{v}UL"),
            CType::U32 => format!("{v}u"),
            _ => format!("(({}){v})", cty.cl_name()),
        },
        Node::LitF(v, cty) => {
            let mut body = format!("{v:?}");
            if !body.contains('.')
                && !body.contains('e')
                && !body.contains("inf")
                && !body.contains("NaN")
            {
                body.push_str(".0");
            }
            if *cty == CType::F32 {
                format!("{body}f")
            } else {
                body
            }
        }
        Node::LitBool(b) => if *b { "1" } else { "0" }.to_string(),
        Node::ScalarParam(i) => format!("p{i}"),
        Node::Var(v, _) => format!("v{v}"),
        Node::Predef(p) => p.cl_expr(),
        Node::ParamElem { param, idxs } => {
            let name = |d: usize| format!("p{param}_d{d}");
            format!("p{param}[{}]", linear_index(idxs, &name, k))
        }
        Node::LocalElem { decl, idxs } => {
            // kernel-local dims are compile-time constants
            let dims = find_local_dims(k, *decl);
            let name = |d: usize| format!("{}", dims[d]);
            format!("a{decl}[{}]", linear_index(idxs, &name, k))
        }
        Node::Bin { op, l, r } => {
            format!("({} {} {})", expr(l, k), op.token(), expr(r, k))
        }
        Node::Neg(e) => format!("(-({}))", expr(e, k)),
        Node::Not(e) => format!("(!({}))", expr(e, k)),
        Node::Cast { to, e } => format!("(({})({}))", to.cl_name(), expr(e, k)),
        Node::Call { name, args } => {
            let args: Vec<String> = args.iter().map(|a| expr(a, k)).collect();
            format!("{name}({})", args.join(", "))
        }
        Node::Ternary { cond, t, f } => {
            format!(
                "(({}) ? ({}) : ({}))",
                expr(cond, k),
                expr(t, k),
                expr(f, k)
            )
        }
    }
}

fn find_local_dims(k: &RecordedKernel, decl: u32) -> Vec<usize> {
    fn walk(stmts: &[HStmt], decl: u32) -> Option<Vec<usize>> {
        for s in stmts {
            match &s.kind {
                HStmtKind::DeclArray { decl: d, dims, .. } if *d == decl => {
                    return Some(dims.clone())
                }
                HStmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    if let Some(r) = walk(then_blk, decl).or_else(|| walk(else_blk, decl)) {
                        return Some(r);
                    }
                }
                HStmtKind::For { body, .. } | HStmtKind::While { body, .. } => {
                    if let Some(r) = walk(body, decl) {
                        return Some(r);
                    }
                }
                _ => {}
            }
        }
        None
    }
    walk(&k.body, decl).unwrap_or_else(|| panic!("local array a{decl} has no declaration"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::kernel::{barrier, capture, for_, if_, LOCAL};
    use crate::predef::{idx, lidx};
    use crate::scalar::{Double, HplScalar};

    fn register_arrays<T: HplScalar, const N: usize>(arrays: &[&Array<T, N>]) {
        // test-only registration of arrays as parameters
        for a in arrays {
            crate::kernel::with_recorder(|r| {
                let p = r.params.len();
                r.params.push(crate::ir::ParamRecord {
                    kind: ParamKind::Array {
                        cty: T::CTYPE,
                        ndim: N,
                        mem: a.mem_flag(),
                    },
                });
                r.array_params.insert(a.handle_id(), p);
            });
        }
    }

    #[test]
    fn saxpy_source_shape() {
        let y = Array::<f64, 1>::new([8]);
        let x = Array::<f64, 1>::new([8]);
        let k = capture("saxpy".into(), || {
            register_arrays(&[&y, &x]);
            let a = Double::new(3.0);
            y.at(idx()).assign(a.v() * x.at(idx()) + y.at(idx()));
        });
        let src = generate(&k);
        assert!(src.contains("__kernel void saxpy("), "{src}");
        assert!(
            src.contains("__global double* p0"),
            "y is written: not const\n{src}"
        );
        assert!(
            src.contains("__global const double* p1"),
            "x is read-only\n{src}"
        );
        assert!(src.contains("const int p0_d0"), "dim args appended\n{src}");
        assert!(src.contains("get_global_id(0)"), "{src}");
        // a was captured as a literal (not a registered param)
        assert!(src.contains("3.0"), "{src}");
    }

    #[test]
    fn local_array_and_barrier() {
        let k = capture("red".into(), || {
            let s = Array::<f32, 1>::local([32]);
            s.at(lidx()).assign(1.0f32);
            barrier(LOCAL);
            if_(lidx().eq_(0), || {
                s.at(0).assign(s.at(0) + s.at(1));
            });
        });
        let src = generate(&k);
        assert!(src.contains("__local float a1[32];"), "{src}");
        assert!(src.contains("barrier(CLK_LOCAL_MEM_FENCE);"), "{src}");
        assert!(src.contains("if ("), "{src}");
    }

    #[test]
    fn two_dimensional_flattening() {
        let m = Array::<f32, 2>::new([4, 8]);
        let k = capture("t".into(), || {
            register_arrays(&[&m]);
            m.at((idx(), 0)).assign(m.at((0, idx())));
        });
        let src = generate(&k);
        assert!(
            src.contains("p0_d1"),
            "row-major flattening uses dim 1:\n{src}"
        );
    }

    #[test]
    fn for_loop_forms() {
        let k = capture("t".into(), || {
            for_(0, 10, |i| {
                let _ = i;
            });
        });
        let src = generate(&k);
        assert!(src.contains("for (int v1 = 0; v1 < 10; v1 += 1)"), "{src}");

        let k = capture("t".into(), || {
            let j = crate::scalar::Int::var();
            crate::kernel::for_var(&j, 0, 8, 2, || {});
        });
        let src = generate(&k);
        assert!(
            src.contains("int v1;"),
            "user variable declared separately:\n{src}"
        );
        assert!(src.contains("for (v1 = 0; v1 < 8; v1 += 2)"), "{src}");
    }

    #[test]
    fn float_literals_keep_type_suffixes() {
        let k = capture("t".into(), || {
            let a = crate::scalar::Float::new(0.0);
            let b = crate::scalar::Double::new(0.0);
            a.assign(1.5f32);
            b.assign(2.0f64);
            a.assign(3f32); // integral-valued float must still print as float
        });
        let src = generate(&k);
        assert!(src.contains("1.5f"), "{src}");
        assert!(src.contains("= 2.0;"), "{src}");
        assert!(src.contains("3.0f"), "{src}");
    }

    #[test]
    fn line_map_points_statement_lines_at_recording_sites() {
        let y = Array::<f64, 1>::new([8]);
        let x = Array::<f64, 1>::new([8]);
        let k = capture("mapped".into(), || {
            register_arrays(&[&y, &x]);
            y.at(idx()).assign(x.at(idx()) * 2.0f64);
            y.at(idx()).assign_add(1.0f64);
        });
        let (src, map) = generate_with_map(&k);
        assert_eq!(map.entries().len(), 2, "one entry per statement");
        let lines: Vec<&str> = src.lines().collect();
        for e in map.entries() {
            let text = lines[e.cl_line - 1];
            assert!(
                text.contains('='),
                "entry points at a statement line: {text}"
            );
            let site = e.site.expect("DSL statements carry recording sites");
            assert!(site.file.ends_with("codegen.rs"), "{site}");
        }
        let a = map.entries()[0].site.unwrap();
        let b = map.entries()[1].site.unwrap();
        assert_eq!(b.line, a.line + 1, "consecutive DSL lines stay in order");
        assert_eq!(
            map.site_for_line(map.entries()[0].cl_line),
            Some(a),
            "lookup by generated line"
        );
        assert_eq!(map.site_for_line(9999), None);
    }

    #[test]
    fn line_map_covers_control_flow_headers() {
        let k = capture("cf".into(), || {
            for_(0, 4, |_i| {
                barrier(LOCAL);
            });
        });
        let (src, map) = generate_with_map(&k);
        let lines: Vec<&str> = src.lines().collect();
        assert_eq!(map.entries().len(), 2, "for header + barrier");
        assert!(lines[map.entries()[0].cl_line - 1].contains("for ("));
        assert!(lines[map.entries()[1].cl_line - 1].contains("barrier("));
    }

    #[test]
    fn generated_source_compiles_under_oclsim() {
        let y = Array::<f32, 1>::new([64]);
        let x = Array::<f32, 1>::new([64]);
        let k = capture("combined".into(), || {
            register_arrays(&[&y, &x]);
            let s = Array::<f32, 1>::local([16]);
            let acc = crate::scalar::Float::new(0.0);
            for_(0, 4, |j| {
                acc.assign_add(x.at(idx() * 4 + j));
            });
            s.at(lidx()).assign(acc.v());
            barrier(LOCAL);
            if_(lidx().eq_(0), || {
                y.at(crate::predef::gidx()).assign(s.at(0));
            });
        });
        let src = generate(&k);
        let device = oclsim::Device::new(oclsim::DeviceProfile::tesla_c2050());
        let ctx = oclsim::Context::new(&[device]).unwrap();
        let prog = oclsim::Program::from_source(&ctx, &src);
        prog.build("")
            .unwrap_or_else(|e| panic!("generated source must compile: {e}\n{src}"));
        assert_eq!(prog.kernel_names().unwrap(), vec!["combined".to_string()]);
    }
}
