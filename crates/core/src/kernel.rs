//! Kernel capture: the thread-local recorder and the control-flow
//! constructs of the HPL kernel language.
//!
//! The paper's C++ HPL closes blocks with `endif_`/`endfor_` macros; in
//! Rust, closures delimit blocks, so `if_(cond, || { ... })` needs no
//! terminator. The semantics are identical: executing the kernel function
//! under an active recorder emits IR instead of computing.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crate::expr::{Expr, IntoExpr};
use crate::ir::{CType, HStmt, HStmtKind, MemFlag, Node, ParamRecord, RecordSite, RecordedKernel};
use crate::scalar::{HplScalar, Scalar};

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// The in-progress recording of one kernel.
pub(crate) struct Recorder {
    pub params: Vec<ParamRecord>,
    /// array handle id → parameter index
    pub array_params: HashMap<u64, usize>,
    /// scalar handle id → parameter index
    pub scalar_params: HashMap<u64, usize>,
    /// array handle id → kernel-local declaration id
    pub local_arrays: HashMap<u64, u32>,
    /// scalar handle id → kernel-local variable id
    pub local_vars: HashMap<u64, (u32, CType)>,
    /// statement block stack; index 0 is the kernel body
    pub blocks: Vec<Vec<HStmt>>,
    next_id: u32,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            params: Vec::new(),
            array_params: HashMap::new(),
            scalar_params: HashMap::new(),
            local_arrays: HashMap::new(),
            local_vars: HashMap::new(),
            blocks: vec![Vec::new()],
            next_id: 0,
        }
    }

    /// Allocate a fresh variable/declaration id.
    pub fn fresh_id(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id
    }

    /// Append a statement to the innermost open block.
    pub fn push_stmt(&mut self, s: HStmt) {
        self.blocks
            .last_mut()
            .expect("block stack never empty")
            .push(s);
    }
}

/// Is a kernel currently being captured on this thread?
pub fn is_recording() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// Run `f` with the active recorder. Panics if no capture is in progress —
/// which means an HPL kernel construct was used outside `eval()`.
pub(crate) fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        let rec = r.as_mut().unwrap_or_else(|| {
            panic!(
                "HPL kernel construct used outside a kernel: control flow (if_/for_/...), \
                 `Array::at`, and `barrier` are only valid while `eval()` records a kernel"
            )
        });
        f(rec)
    })
}

/// Like [`with_recorder`] but returns `None` when not recording.
pub(crate) fn try_with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> Option<R> {
    RECORDER.with(|r| r.borrow_mut().as_mut().map(f))
}

/// Capture a kernel: runs `body` (which registers params and then invokes
/// the user kernel function) under a fresh recorder and returns the
/// recorded kernel. Used by [`crate::eval`].
pub(crate) fn capture(name: String, body: impl FnOnce()) -> RecordedKernel {
    RECORDER.with(|r| {
        let prev = r.borrow_mut().replace(Recorder::new());
        assert!(
            prev.is_none(),
            "nested kernel capture: eval() called inside a kernel function"
        );
    });
    // ensure the recorder is cleared even if body panics
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            RECORDER.with(|r| *r.borrow_mut() = None);
        }
    }
    let guard = Guard;
    body();
    let rec = RECORDER
        .with(|r| r.borrow_mut().take())
        .expect("recorder present");
    drop(guard);
    assert_eq!(
        rec.blocks.len(),
        1,
        "unbalanced control-flow blocks during capture"
    );
    RecordedKernel {
        name,
        params: rec.params,
        body: rec.blocks.into_iter().next().expect("body block"),
    }
}

// ---- control flow constructs ---------------------------------------------------

fn record_block(body: impl FnOnce()) -> Vec<HStmt> {
    with_recorder(|r| r.blocks.push(Vec::new()));
    body();
    with_recorder(|r| r.blocks.pop().expect("matching block"))
}

/// `if_(cond, || { ... })` — conditional execution inside a kernel.
#[track_caller]
pub fn if_(cond: Expr<bool>, body: impl FnOnce()) {
    let site = RecordSite::here();
    let then_blk = record_block(body);
    with_recorder(|r| {
        r.push_stmt(HStmt::new(
            HStmtKind::If {
                cond: cond.node(),
                then_blk,
                else_blk: Vec::new(),
            },
            site,
        ))
    });
}

/// `if_else(cond, || { ... }, || { ... })`.
#[track_caller]
pub fn if_else(cond: Expr<bool>, then_body: impl FnOnce(), else_body: impl FnOnce()) {
    let site = RecordSite::here();
    let then_blk = record_block(then_body);
    let else_blk = record_block(else_body);
    with_recorder(|r| {
        r.push_stmt(HStmt::new(
            HStmtKind::If {
                cond: cond.node(),
                then_blk,
                else_blk,
            },
            site,
        ))
    });
}

/// `for_(from, to, |i| { ... })` — counted loop `for (i = from; i < to; i++)`.
/// The closure receives the loop variable as an expression.
#[track_caller]
pub fn for_(from: impl IntoExpr<i32>, to: impl IntoExpr<i32>, body: impl FnOnce(Expr<i32>)) {
    for_step(from, to, 1, body)
}

/// `for_step(from, to, step, |i| { ... })` — `for (i = from; i < to; i += step)`.
#[track_caller]
pub fn for_step(
    from: impl IntoExpr<i32>,
    to: impl IntoExpr<i32>,
    step: impl IntoExpr<i32>,
    body: impl FnOnce(Expr<i32>),
) {
    let site = RecordSite::here();
    let from = from.into_expr();
    let to = to.into_expr();
    let step = step.into_expr();
    let var = with_recorder(|r| r.fresh_id());
    let loop_var = Expr::<i32>::from_node(Arc::new(Node::Var(var, CType::I32)));
    let body_blk = record_block(|| body(loop_var));
    with_recorder(|r| {
        r.push_stmt(HStmt::new(
            HStmtKind::For {
                var,
                cty: CType::I32,
                declares: true,
                from: from.node(),
                to: to.node(),
                step: step.node(),
                body: body_blk,
            },
            site,
        ))
    });
}

/// Counted loop over an existing kernel variable (the paper's
/// `for_(i = from, i < to, i += step)` shape with a user-declared `Int i`).
#[track_caller]
pub fn for_var<T: HplScalar>(
    var: &Scalar<T>,
    from: impl IntoExpr<T>,
    to: impl IntoExpr<T>,
    step: impl IntoExpr<T>,
    body: impl FnOnce(),
) {
    let site = RecordSite::here();
    let from = from.into_expr();
    let to = to.into_expr();
    let step = step.into_expr();
    let var_id = var.kernel_var_id().unwrap_or_else(|| {
        panic!("for_var requires a kernel-local variable (a Scalar created inside the kernel)")
    });
    let body_blk = record_block(body);
    with_recorder(|r| {
        r.push_stmt(HStmt::new(
            HStmtKind::For {
                var: var_id,
                cty: T::CTYPE,
                declares: false,
                from: from.node(),
                to: to.node(),
                step: step.node(),
                body: body_blk,
            },
            site,
        ))
    });
}

/// `while_(cond, || { ... })`.
#[track_caller]
pub fn while_(cond: Expr<bool>, body: impl FnOnce()) {
    let site = RecordSite::here();
    let body_blk = record_block(body);
    with_recorder(|r| {
        r.push_stmt(HStmt::new(
            HStmtKind::While {
                cond: cond.node(),
                body: body_blk,
            },
            site,
        ))
    });
}

/// Early exit of the current work-item (`return;`).
#[track_caller]
pub fn return_() {
    let site = RecordSite::here();
    with_recorder(|r| r.push_stmt(HStmt::new(HStmtKind::ReturnVoid, site)));
}

// ---- barrier ---------------------------------------------------------------------

/// Memory-consistency scope of a [`barrier`] (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncFlags(u8);

/// Consistent view of local (scratchpad) memory after the barrier.
pub const LOCAL: SyncFlags = SyncFlags(1);
/// Consistent view of global memory after the barrier.
pub const GLOBAL: SyncFlags = SyncFlags(2);

impl std::ops::BitOr for SyncFlags {
    type Output = SyncFlags;
    fn bitor(self, rhs: SyncFlags) -> SyncFlags {
        SyncFlags(self.0 | rhs.0)
    }
}

/// Work-group barrier: synchronises all threads of the local domain.
/// `barrier(LOCAL)`, `barrier(GLOBAL)` or `barrier(LOCAL | GLOBAL)`.
#[track_caller]
pub fn barrier(flags: SyncFlags) {
    let site = RecordSite::here();
    with_recorder(|r| {
        r.push_stmt(HStmt::new(
            HStmtKind::Barrier {
                local: flags.0 & 1 != 0,
                global: flags.0 & 2 != 0,
            },
            site,
        ))
    });
}

// ---- local array declaration helper used by Array -----------------------------------

#[track_caller]
pub(crate) fn record_array_decl(array_id: u64, cty: CType, mem: MemFlag, dims: &[usize]) -> u32 {
    let site = RecordSite::here();
    with_recorder(|r| {
        let decl = r.fresh_id();
        r.local_arrays.insert(array_id, decl);
        r.push_stmt(HStmt::new(
            HStmtKind::DeclArray {
                decl,
                cty,
                mem,
                dims: dims.to_vec(),
            },
            site,
        ));
        decl
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_produces_balanced_body() {
        let k = capture("t".into(), || {
            if_(
                Expr::<bool>::from_node(Arc::new(Node::LitBool(true))),
                || {},
            );
        });
        assert_eq!(k.name, "t");
        assert_eq!(k.body.len(), 1);
        assert!(matches!(k.body[0].kind, HStmtKind::If { .. }));
        assert!(
            k.body[0]
                .site
                .is_some_and(|s| s.file.ends_with("kernel.rs")),
            "capture records the DSL call site: {:?}",
            k.body[0].site
        );
        assert!(!is_recording(), "recorder cleared after capture");
    }

    #[test]
    fn nested_blocks_nest_statements() {
        let k = capture("t".into(), || {
            for_(0, 4, |_i| {
                if_(
                    Expr::<bool>::from_node(Arc::new(Node::LitBool(true))),
                    || {
                        barrier(LOCAL);
                    },
                );
            });
        });
        let HStmtKind::For { body, .. } = &k.body[0].kind else {
            panic!()
        };
        let HStmtKind::If { then_blk, .. } = &body[0].kind else {
            panic!()
        };
        assert!(matches!(
            then_blk[0].kind,
            HStmtKind::Barrier {
                local: true,
                global: false
            }
        ));
    }

    #[test]
    fn barrier_flags_combine() {
        let k = capture("t".into(), || barrier(LOCAL | GLOBAL));
        assert!(matches!(
            k.body[0].kind,
            HStmtKind::Barrier {
                local: true,
                global: true
            }
        ));
        let k = capture("t".into(), || barrier(GLOBAL));
        assert!(matches!(
            k.body[0].kind,
            HStmtKind::Barrier {
                local: false,
                global: true
            }
        ));
    }

    #[test]
    #[should_panic(expected = "outside a kernel")]
    fn constructs_outside_eval_panic() {
        barrier(LOCAL);
    }

    #[test]
    fn recorder_cleared_on_panic() {
        let result = std::panic::catch_unwind(|| {
            capture("t".into(), || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(
            !is_recording(),
            "poisoned recorder would break the next eval"
        );
    }

    #[test]
    fn for_step_records_step() {
        let k = capture("t".into(), || {
            for_step(0, 64, 8, |_i| {});
        });
        let HStmtKind::For { step, .. } = &k.body[0].kind else {
            panic!()
        };
        assert_eq!(**step, Node::LitI(8, CType::I32));
    }
}
