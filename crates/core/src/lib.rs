//! # HPL — Heterogeneous Programming Library
//!
//! A Rust reproduction of the library presented in *"A Portable
//! High-Productivity Approach to Program Heterogeneous Systems"* (Bozkus &
//! Fraguela, IPDPS 2012). HPL lets you write data-parallel **kernels** as
//! ordinary Rust functions over HPL datatypes; invoking them through
//! [`eval()`](eval()) records the computation, generates OpenCL C at runtime,
//! compiles it with the backend (here the [`oclsim`] simulated OpenCL
//! platform), caches the result, and manages every buffer and host↔device
//! transfer automatically.
//!
//! ## Quick start (the paper's SAXPY, Figure 3)
//!
//! ```
//! use hpl::prelude::*;
//!
//! // an HPL kernel: an ordinary function over HPL datatypes
//! fn saxpy(y: &Array<f64, 1>, x: &Array<f64, 1>, a: &Double) {
//!     y.at(idx()).assign(a.v() * x.at(idx()) + y.at(idx()));
//! }
//!
//! let y = Array::<f64, 1>::from_vec([1000], vec![1.0; 1000]);
//! let x = Array::<f64, 1>::from_vec([1000], vec![2.0; 1000]);
//! let a = Double::new(3.0);
//!
//! eval(saxpy).run((&y, &x, &a)).unwrap();
//!
//! assert_eq!(y.get(0), 3.0 * 2.0 + 1.0);
//! ```
//!
//! ## The programming model (paper §II)
//!
//! - The **host** runs ordinary Rust; kernels run on **devices** in SPMD
//!   fashion over a *global domain* of up to three dimensions, optionally
//!   tiled into *local domains* (work-groups) that share scratchpad memory
//!   and synchronise with [`barrier`].
//! - [`Array<T, N>`](Array) values live in global, constant, local, or
//!   private memory ([`MemFlag`]); scalars ([`Int`], [`Double`], ...) are
//!   passed by value.
//! - Kernels identify their work-item through the predefined variables
//!   [`idx`]/[`idy`]/[`idz`], [`lidx`].., [`gidx`].., and the domain sizes
//!   [`szx`].., [`lszx`].., [`ngroupsx`]...
//! - Control flow inside kernels uses [`if_`], [`if_else`], [`for_`],
//!   [`for_step`], [`for_var`], [`while_`] — closures replace the paper's
//!   `endif_`/`endfor_` terminators.
//!
//! ## Performance model
//!
//! [`eval()`](eval()) returns an [`EvalProfile`] separating HPL's own (measured)
//! overheads — capture, code generation, backend compilation — from the
//! (modeled) device execution and transfer times, which is exactly the
//! decomposition the paper's evaluation reports.

pub mod array;
pub mod codegen;
pub mod error;
pub mod eval;
pub mod expr;
pub mod ir;
pub mod kernel;
pub mod math;
pub mod patterns;
pub mod predef;
pub mod profile;
pub mod runtime;
pub mod scalar;
pub mod session;
pub mod telemetry;

pub use array::{Array, ArrayTransferStats, HostDataMut, HostIndex, KernelIndex};
pub use codegen::{LineMap, LineMapEntry};
pub use error::{Error, Result};
pub use eval::{
    cache_stats, clear_kernel_cache, eval, kernel_cache_len, kernel_provenance, opt_level,
    set_opt_level, take_kernel_lints, AsyncEval, CacheEntryInfo, CacheStats, Eval, EvalProfile,
    KernelArg, KernelProvenance,
};
pub use expr::{Expr, IntoExpr};
pub use ir::{MemFlag, RecordSite};
pub use kernel::{
    barrier, for_, for_step, for_var, if_, if_else, return_, while_, SyncFlags, GLOBAL, LOCAL,
};
pub use predef::{
    gidx, gidy, gidz, idx, idy, idz, lidx, lidy, lidz, lszx, lszy, lszz, ngroupsx, ngroupsy,
    ngroupsz, szx, szy, szz,
};
pub use profile::{profile, ProfileReport, ProfiledLaunch, ProfiledTransfer};
pub use runtime::{runtime, Runtime, TransferStats};
pub use scalar::{Double, Float, HplScalar, Int, Long, Scalar, Uint, Ulong};
pub use session::{current_tenant, current_tenant_name, enter_tenant, with_tenant, TenantScope};

/// Everything a typical HPL program needs.
pub mod prelude {
    pub use crate::array::Array;
    pub use crate::eval::eval;
    pub use crate::kernel::{
        barrier, for_, for_step, for_var, if_, if_else, return_, while_, GLOBAL, LOCAL,
    };
    pub use crate::math;
    pub use crate::predef::*;
    pub use crate::scalar::{Double, Float, Int, Long, Scalar, Uint, Ulong};
}
