//! The HPL kernel intermediate representation.
//!
//! When a kernel function runs in *capture mode* (under [`crate::eval()`]),
//! every operation on HPL data types records a node of this IR instead of
//! computing anything. The code generator ([`crate::codegen`]) then prints
//! the IR as OpenCL C, which the `oclsim` backend compiles — exactly the
//! paper's architecture, where HPL "builds from the original C++
//! expressions code that can be compiled at runtime for the desired
//! device".

use std::sync::Arc;

/// OpenCL-facing element types HPL arrays and scalars can have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CType {
    I8,
    U8,
    I16,
    U16,
    I32,
    U32,
    I64,
    U64,
    F32,
    F64,
}

impl CType {
    /// The OpenCL C spelling.
    pub fn cl_name(self) -> &'static str {
        match self {
            CType::I8 => "char",
            CType::U8 => "uchar",
            CType::I16 => "short",
            CType::U16 => "ushort",
            CType::I32 => "int",
            CType::U32 => "uint",
            CType::I64 => "long",
            CType::U64 => "ulong",
            CType::F32 => "float",
            CType::F64 => "double",
        }
    }

    /// True for `float`/`double`.
    pub fn is_float(self) -> bool {
        matches!(self, CType::F32 | CType::F64)
    }
}

/// The memory kind of an HPL array (the paper's `memoryFlag` template
/// argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemFlag {
    /// Device global memory (the default).
    #[default]
    Global,
    /// Per-work-group scratchpad; only meaningful inside kernels.
    Local,
    /// Host-writable, kernel-read-only memory.
    Constant,
    /// Work-item private memory (arrays declared inside kernels without a
    /// flag).
    Private,
}

/// The predefined kernel variables of §III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predef {
    /// `idx`/`idy`/`idz`: global id in dimension 0/1/2.
    GlobalId(u8),
    /// `lidx`/`lidy`/`lidz`: local id within the group.
    LocalId(u8),
    /// `gidx`/`gidy`/`gidz`: group id.
    GroupId(u8),
    /// `szx`/`szy`/`szz`: global domain size.
    GlobalSize(u8),
    /// `lszx`/`lszy`/`lszz`: local domain size.
    LocalSize(u8),
    /// `ngroupsx`/...: number of groups.
    NumGroups(u8),
}

impl Predef {
    /// The OpenCL C expression this variable maps to.
    pub fn cl_expr(self) -> String {
        let (f, d) = match self {
            Predef::GlobalId(d) => ("get_global_id", d),
            Predef::LocalId(d) => ("get_local_id", d),
            Predef::GroupId(d) => ("get_group_id", d),
            Predef::GlobalSize(d) => ("get_global_size", d),
            Predef::LocalSize(d) => ("get_local_size", d),
            Predef::NumGroups(d) => ("get_num_groups", d),
        };
        format!("((int){f}({d}))")
    }
}

/// Binary operators in the recorded IR (printed verbatim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl HBinOp {
    /// OpenCL C operator token.
    pub fn token(self) -> &'static str {
        match self {
            HBinOp::Add => "+",
            HBinOp::Sub => "-",
            HBinOp::Mul => "*",
            HBinOp::Div => "/",
            HBinOp::Rem => "%",
            HBinOp::Lt => "<",
            HBinOp::Le => "<=",
            HBinOp::Gt => ">",
            HBinOp::Ge => ">=",
            HBinOp::Eq => "==",
            HBinOp::Ne => "!=",
            HBinOp::And => "&&",
            HBinOp::Or => "||",
            HBinOp::BitAnd => "&",
            HBinOp::BitOr => "|",
            HBinOp::BitXor => "^",
            HBinOp::Shl => "<<",
            HBinOp::Shr => ">>",
        }
    }
}

/// A recorded expression node. Reference-counted so Rust-side expression
/// values can be cloned freely while recording.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    LitI(i64, CType),
    LitU(u64, CType),
    LitF(f64, CType),
    LitBool(bool),
    /// A scalar kernel parameter (by parameter index).
    ScalarParam(usize),
    /// A kernel-local scalar variable.
    Var(u32, CType),
    /// A predefined work-item variable.
    Predef(Predef),
    /// `array[i0][i1]...` — array is a parameter index.
    ParamElem {
        param: usize,
        idxs: Vec<Arc<Node>>,
    },
    /// Element of an array declared inside the kernel (by declaration id).
    LocalElem {
        decl: u32,
        idxs: Vec<Arc<Node>>,
    },
    Bin {
        op: HBinOp,
        l: Arc<Node>,
        r: Arc<Node>,
    },
    Neg(Arc<Node>),
    Not(Arc<Node>),
    Cast {
        to: CType,
        e: Arc<Node>,
    },
    /// Built-in function call (sqrt, exp, ...): printed as `name(args...)`.
    Call {
        name: &'static str,
        args: Vec<Arc<Node>>,
    },
    /// Ternary `cond ? t : f`.
    Ternary {
        cond: Arc<Node>,
        t: Arc<Node>,
        f: Arc<Node>,
    },
}

/// Where in the user's Rust source a statement was recorded. Captured
/// via `#[track_caller]` at the public DSL entry points (`assign`,
/// `if_`, `for_`, `barrier`, `Scalar::new`, `Array::local`, ...), so it
/// names the HPL *expression* the user wrote — not the library internals
/// that recorded it. The code generator threads these through to a
/// [`crate::codegen::LineMap`], which is what lets per-line hardware
/// counters from the simulated device surface in user terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordSite {
    /// Rust source file (as `file!()` spells it: workspace-relative for
    /// local crates, so stable across machines building the same tree).
    pub file: &'static str,
    /// 1-based line of the recording call.
    pub line: u32,
}

impl RecordSite {
    /// The caller's source location. Only meaningful when every frame
    /// between the user's code and this call is `#[track_caller]`.
    #[track_caller]
    pub fn here() -> RecordSite {
        let loc = std::panic::Location::caller();
        RecordSite {
            file: loc.file(),
            line: loc.line(),
        }
    }
}

impl std::fmt::Display for RecordSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// A recorded statement: what to emit plus where the user wrote it.
#[derive(Debug, Clone, PartialEq)]
pub struct HStmt {
    pub kind: HStmtKind,
    /// The DSL recording site, when capture knew it (`None` only for
    /// statements constructed programmatically, e.g. in tests).
    pub site: Option<RecordSite>,
}

impl HStmt {
    /// A statement with provenance.
    pub fn new(kind: HStmtKind, site: RecordSite) -> HStmt {
        HStmt {
            kind,
            site: Some(site),
        }
    }
}

impl From<HStmtKind> for HStmt {
    /// A statement without provenance (tests, synthetic IR).
    fn from(kind: HStmtKind) -> HStmt {
        HStmt { kind, site: None }
    }
}

/// The operational content of a recorded statement.
#[derive(Debug, Clone, PartialEq)]
pub enum HStmtKind {
    /// Declaration of a kernel-local scalar: `int v3 = init;`
    DeclScalar {
        var: u32,
        cty: CType,
        init: Option<Arc<Node>>,
    },
    /// Declaration of a kernel-local array (private or `__local`).
    DeclArray {
        decl: u32,
        cty: CType,
        mem: MemFlag,
        dims: Vec<usize>,
    },
    /// `lhs = rhs;` — lhs must be a Var / ParamElem / LocalElem node.
    Assign {
        lhs: Arc<Node>,
        rhs: Arc<Node>,
    },
    /// `lhs op= rhs;`
    CompoundAssign {
        lhs: Arc<Node>,
        op: HBinOp,
        rhs: Arc<Node>,
    },
    If {
        cond: Arc<Node>,
        then_blk: Vec<HStmt>,
        else_blk: Vec<HStmt>,
    },
    /// `for (var = from; var < to; var += step) body`. `declares` is true
    /// when the loop variable is fresh (declared in the for-init) rather
    /// than a user-declared kernel variable.
    For {
        var: u32,
        cty: CType,
        declares: bool,
        from: Arc<Node>,
        to: Arc<Node>,
        step: Arc<Node>,
        body: Vec<HStmt>,
    },
    While {
        cond: Arc<Node>,
        body: Vec<HStmt>,
    },
    /// `barrier(flags)`
    Barrier {
        local: bool,
        global: bool,
    },
    /// `return;` (early exit for the work-item)
    ReturnVoid,
}

/// The kind of one kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamKind {
    Array {
        cty: CType,
        ndim: usize,
        mem: MemFlag,
    },
    Scalar {
        cty: CType,
    },
}

/// A kernel parameter record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamRecord {
    pub kind: ParamKind,
}

/// A fully recorded kernel, ready for code generation.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedKernel {
    pub name: String,
    pub params: Vec<ParamRecord>,
    pub body: Vec<HStmt>,
}

impl RecordedKernel {
    /// Parameter indices of array parameters the kernel writes (syntactic
    /// analysis over the recorded IR; used for `const` qualification and as
    /// a cross-check of the backend's transfer analysis).
    pub fn written_params(&self) -> Vec<bool> {
        let mut written = vec![false; self.params.len()];
        fn walk(stmts: &[HStmt], written: &mut [bool]) {
            for s in stmts {
                match &s.kind {
                    HStmtKind::Assign { lhs, .. } | HStmtKind::CompoundAssign { lhs, .. } => {
                        if let Node::ParamElem { param, .. } = &**lhs {
                            written[*param] = true;
                        }
                    }
                    HStmtKind::If {
                        then_blk, else_blk, ..
                    } => {
                        walk(then_blk, written);
                        walk(else_blk, written);
                    }
                    HStmtKind::For { body, .. } | HStmtKind::While { body, .. } => {
                        walk(body, written)
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, &mut written);
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predef_spelling() {
        assert_eq!(Predef::GlobalId(0).cl_expr(), "((int)get_global_id(0))");
        assert_eq!(Predef::NumGroups(2).cl_expr(), "((int)get_num_groups(2))");
    }

    #[test]
    fn written_params_analysis() {
        let idx = Arc::new(Node::Predef(Predef::GlobalId(0)));
        let read = Arc::new(Node::ParamElem {
            param: 1,
            idxs: vec![idx.clone()],
        });
        let write = Arc::new(Node::ParamElem {
            param: 0,
            idxs: vec![idx],
        });
        let k = RecordedKernel {
            name: "k".into(),
            params: vec![
                ParamRecord {
                    kind: ParamKind::Array {
                        cty: CType::F32,
                        ndim: 1,
                        mem: MemFlag::Global,
                    },
                },
                ParamRecord {
                    kind: ParamKind::Array {
                        cty: CType::F32,
                        ndim: 1,
                        mem: MemFlag::Global,
                    },
                },
            ],
            body: vec![HStmtKind::Assign {
                lhs: write,
                rhs: read,
            }
            .into()],
        };
        assert_eq!(k.written_params(), vec![true, false]);
    }

    #[test]
    fn written_params_inside_control_flow() {
        let idx = Arc::new(Node::Predef(Predef::GlobalId(0)));
        let write = Arc::new(Node::ParamElem {
            param: 0,
            idxs: vec![idx.clone()],
        });
        let k = RecordedKernel {
            name: "k".into(),
            params: vec![ParamRecord {
                kind: ParamKind::Array {
                    cty: CType::F32,
                    ndim: 1,
                    mem: MemFlag::Global,
                },
            }],
            body: vec![HStmtKind::If {
                cond: Arc::new(Node::LitBool(true)),
                then_blk: vec![HStmtKind::CompoundAssign {
                    lhs: write,
                    op: HBinOp::Add,
                    rhs: Arc::new(Node::LitF(1.0, CType::F32)),
                }
                .into()],
                else_blk: vec![],
            }
            .into()],
        };
        assert_eq!(k.written_params(), vec![true]);
    }

    #[test]
    fn written_params_when_capture_aliases_parameters() {
        // When the same Array is registered for two parameters, capture
        // resolves handle → param with last-insert-wins, so a kernel
        // written as `dst[i] = dst[i] + src[i]` records every access on
        // param 1 and leaves param 0 orphaned. written_params is a
        // syntactic analysis over that recording: it must report the write
        // on param 1 only. (This is why eval keys its kernel cache on the
        // argument aliasing pattern, not just the function type.)
        let idx = Arc::new(Node::Predef(Predef::GlobalId(0)));
        let elem = Arc::new(Node::ParamElem {
            param: 1,
            idxs: vec![idx],
        });
        let arr = ParamRecord {
            kind: ParamKind::Array {
                cty: CType::F64,
                ndim: 1,
                mem: MemFlag::Global,
            },
        };
        let k = RecordedKernel {
            name: "aliased".into(),
            params: vec![arr.clone(), arr],
            body: vec![HStmtKind::CompoundAssign {
                lhs: elem.clone(),
                op: HBinOp::Add,
                rhs: elem,
            }
            .into()],
        };
        assert_eq!(k.written_params(), vec![false, true]);
    }

    #[test]
    fn ctype_names() {
        assert_eq!(CType::F64.cl_name(), "double");
        assert_eq!(CType::U32.cl_name(), "uint");
        assert!(CType::F32.is_float() && !CType::I32.is_float());
    }
}
