//! Tenant scopes: run HPL workloads as clients of an
//! [`oclsim::serve::Service`].
//!
//! The kernel service (see `oclsim::serve`) admits launches against
//! per-tenant quotas and shares one binary cache between tenants. HPL
//! programs join in by entering a **tenant scope**: while a scope is
//! active on the current thread, every `eval(..).run(..)` on that thread
//! is admitted as a launch of the scope's tenant, and every backend
//! compilation goes through the service's shared [`BinaryCache`] —
//! charging the tenant's compile-byte quota on misses and riding other
//! tenants' builds for free on hits. Outside any scope, compilations use
//! the process-wide [`oclsim::serve::global_binary_cache`], so the
//! single-client behaviour (and its metrics) is the degenerate
//! one-tenant case of the same machinery.
//!
//! ```
//! use hpl::prelude::*;
//! use oclsim::serve::{Service, ServiceConfig, TenantQuota};
//!
//! fn scale(y: &Array<f64, 1>, a: &Double) {
//!     y.at(idx()).assign(y.at(idx()) * a.v());
//! }
//!
//! let service = Service::new(ServiceConfig::default()).unwrap();
//! let session = std::sync::Arc::new(service.session("demo", TenantQuota::unlimited()));
//! let y = Array::<f64, 1>::from_vec([64], vec![1.0; 64]);
//! let a = Double::new(2.0);
//! {
//!     let _scope = hpl::session::enter_tenant(session);
//!     eval(scale).run((&y, &a)).unwrap(); // admitted + built as "demo"
//! }
//! eval(scale).run((&y, &a)).unwrap(); // back to the anonymous path
//! ```

use std::cell::RefCell;
use std::sync::Arc;

use oclsim::serve::Session;

thread_local! {
    static CURRENT: RefCell<Option<Arc<Session>>> = const { RefCell::new(None) };
}

/// RAII guard of an active tenant scope (see [`enter_tenant`]). Dropping
/// it restores the previously active scope, so scopes nest.
pub struct TenantScope {
    previous: Option<Arc<Session>>,
}

impl Drop for TenantScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// Make `session`'s tenant the owner of every HPL eval on this thread
/// until the returned guard drops. Scopes nest; the innermost wins.
pub fn enter_tenant(session: Arc<Session>) -> TenantScope {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(session));
    TenantScope { previous }
}

/// The tenant session active on this thread, if any.
pub fn current_tenant() -> Option<Arc<Session>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Name of the tenant active on this thread, if any.
pub fn current_tenant_name() -> Option<String> {
    current_tenant().map(|s| s.tenant().to_string())
}

/// Run `f` inside a tenant scope for `session`.
pub fn with_tenant<R>(session: Arc<Session>, f: impl FnOnce() -> R) -> R {
    let _scope = enter_tenant(session);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::error::Error;
    use crate::eval::eval;
    use crate::predef::idx;
    use oclsim::serve::{Service, ServiceConfig, TenantQuota};

    fn bump(y: &Array<f64, 1>) {
        y.at(idx()).assign(y.at(idx()) + 1.0f64);
    }

    #[test]
    fn scoped_evals_are_attributed_and_quota_limited() {
        let service = Service::new(ServiceConfig::default()).unwrap();
        let session = Arc::new(service.session(
            "metered",
            TenantQuota {
                max_launches: Some(2),
                ..TenantQuota::default()
            },
        ));
        let y = Array::<f64, 1>::from_vec([32], vec![0.0; 32]);
        let _scope = enter_tenant(Arc::clone(&session));
        assert_eq!(current_tenant_name().as_deref(), Some("metered"));
        eval(bump).run((&y,)).unwrap();
        eval(bump).run((&y,)).unwrap();
        assert_eq!(session.launches(), 2);
        // the tenant's builds live in the service's shared cache
        assert!(!session.binary_cache().is_empty());
        let err = eval(bump).run((&y,)).unwrap_err();
        match err {
            Error::Backend(e) => {
                assert!(matches!(e, oclsim::Error::AdmissionRejected { .. }), "{e}");
                assert!(
                    matches!(
                        e.root_cause(),
                        oclsim::Error::QuotaExceeded {
                            resource: "launches",
                            ..
                        }
                    ),
                    "{e}"
                );
            }
            other => panic!("expected a backend admission error, got {other}"),
        }
        assert_eq!(y.get(0), 2.0, "the rejected launch must not have run");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let service = Service::new(ServiceConfig::default()).unwrap();
        let outer = Arc::new(service.session("outer", TenantQuota::unlimited()));
        let inner = Arc::new(service.session("inner", TenantQuota::unlimited()));
        assert_eq!(current_tenant_name(), None);
        {
            let _a = enter_tenant(outer);
            assert_eq!(current_tenant_name().as_deref(), Some("outer"));
            {
                let _b = enter_tenant(inner);
                assert_eq!(current_tenant_name().as_deref(), Some("inner"));
            }
            assert_eq!(current_tenant_name().as_deref(), Some("outer"));
        }
        assert_eq!(current_tenant_name(), None);
    }
}
