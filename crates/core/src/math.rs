//! Kernel math functions (§III-B: "HPL provides a series of functions to
//! perform typical computations … within the kernels").
//!
//! All functions build IR call nodes; they are only meaningful inside a
//! kernel. Functions taking one floating-point expression work for both
//! `f32` and `f64`; the backend dispatches on the operand type.

use std::sync::Arc;

use crate::expr::{Expr, IntoExpr};
use crate::ir::Node;
use crate::scalar::HplScalar;

/// Floating-point element types (`f32`/`f64`).
pub trait HplFloat: HplScalar {}
impl HplFloat for f32 {}
impl HplFloat for f64 {}

fn call1<T>(name: &'static str, a: Expr<T>) -> Expr<T> {
    Expr::from_node(Arc::new(Node::Call {
        name,
        args: vec![a.node()],
    }))
}

fn call2<T>(name: &'static str, a: Expr<T>, b: Expr<T>) -> Expr<T> {
    Expr::from_node(Arc::new(Node::Call {
        name,
        args: vec![a.node(), b.node()],
    }))
}

macro_rules! unary_math {
    ($($(#[$doc:meta])* $rust:ident => $cl:literal),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $rust<T: HplFloat>(e: impl IntoExpr<T>) -> Expr<T> {
                call1($cl, e.into_expr())
            }
        )*
    };
}

unary_math! {
    /// Square root.
    sqrt => "sqrt",
    /// Reciprocal square root.
    rsqrt => "rsqrt",
    /// Absolute value.
    fabs => "fabs",
    /// Natural exponential.
    exp => "exp",
    /// Natural logarithm.
    log => "log",
    /// Base-2 logarithm.
    log2 => "log2",
    /// Sine.
    sin => "sin",
    /// Cosine.
    cos => "cos",
    /// Tangent.
    tan => "tan",
    /// Round towards negative infinity.
    floor => "floor",
    /// Round towards positive infinity.
    ceil => "ceil",
    /// Round towards zero.
    trunc => "trunc",
    /// Round to nearest.
    round => "round",
}

/// `x` raised to the power `y`.
pub fn pow<T: HplFloat>(x: impl IntoExpr<T>, y: impl IntoExpr<T>) -> Expr<T> {
    call2("pow", x.into_expr(), y.into_expr())
}

/// Floating-point remainder.
pub fn fmod<T: HplFloat>(x: impl IntoExpr<T>, y: impl IntoExpr<T>) -> Expr<T> {
    call2("fmod", x.into_expr(), y.into_expr())
}

/// Maximum of two floating-point expressions.
pub fn fmax<T: HplFloat>(x: impl IntoExpr<T>, y: impl IntoExpr<T>) -> Expr<T> {
    call2("fmax", x.into_expr(), y.into_expr())
}

/// Minimum of two floating-point expressions.
pub fn fmin<T: HplFloat>(x: impl IntoExpr<T>, y: impl IntoExpr<T>) -> Expr<T> {
    call2("fmin", x.into_expr(), y.into_expr())
}

/// Fused/contracted multiply-add `x*y + z`.
pub fn mad<T: HplFloat>(x: impl IntoExpr<T>, y: impl IntoExpr<T>, z: impl IntoExpr<T>) -> Expr<T> {
    Expr::from_node(Arc::new(Node::Call {
        name: "mad",
        args: vec![
            x.into_expr().node(),
            y.into_expr().node(),
            z.into_expr().node(),
        ],
    }))
}

/// Integer maximum.
pub fn max<T: HplScalar>(x: impl IntoExpr<T>, y: impl IntoExpr<T>) -> Expr<T> {
    call2("max", x.into_expr(), y.into_expr())
}

/// Integer minimum.
pub fn min<T: HplScalar>(x: impl IntoExpr<T>, y: impl IntoExpr<T>) -> Expr<T> {
    call2("min", x.into_expr(), y.into_expr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_nodes_have_expected_names() {
        let e = sqrt(2.0f64.into_expr());
        let Node::Call { name, args } = &*e.node() else {
            panic!()
        };
        assert_eq!(*name, "sqrt");
        assert_eq!(args.len(), 1);

        let e = pow(2.0f32, 3.0f32);
        let Node::Call { name, args } = &*e.node() else {
            panic!()
        };
        assert_eq!(*name, "pow");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn math_composes_with_operators() {
        let e = sqrt(2.0f64.into_expr() * 3.0) + log(10.0f64.into_expr());
        assert!(matches!(&*e.node(), Node::Bin { .. }));
    }

    #[test]
    fn mad_takes_three_args() {
        let e = mad(1.0f32, 2.0f32, 3.0f32);
        let Node::Call { args, .. } = &*e.node() else {
            panic!()
        };
        assert_eq!(args.len(), 3);
    }
}
