//! Convenience functions for typical patterns of computation.
//!
//! The paper's §VII names this as the first planned extension: "we are
//! working to add new features to HPL in order to improve further the
//! programmability by providing functions for typical patterns of
//! computation". This module provides device-executed `fill`, `map`,
//! `zip_map` and a two-stage tree `reduce_sum` built entirely on the
//! public kernel DSL.
//!
//! Each call site gets its own cached kernel: the user's closure type keys
//! HPL's kernel cache, so a pattern used in a loop compiles exactly once.

use crate::array::Array;
use crate::error::Result;
use crate::eval::eval;
use crate::expr::{Expr, IntoExpr};
use crate::kernel::{barrier, if_, if_else, while_, LOCAL};
use crate::math::HplFloat;
use crate::predef::szx;
use crate::predef::{gidx, idx, lidx};
use crate::scalar::{HplScalar, Int, Scalar};

/// Set every element of `dst` to `value`, on the device.
pub fn fill<T: HplScalar>(dst: &Array<T, 1>, value: T) -> Result<()> {
    let v = Scalar::new(value);
    fn fill_kernel<T: HplScalar>(dst: &Array<T, 1>, v: &Scalar<T>) {
        dst.at(idx()).assign(v.v());
    }
    eval(fill_kernel::<T>).run((dst, &v))?;
    Ok(())
}

/// `dst[i] = g(src[i])` on the device. `g` builds the per-element
/// expression from the source element.
pub fn map<T, G>(dst: &Array<T, 1>, src: &Array<T, 1>, g: G) -> Result<()>
where
    T: HplScalar,
    G: Fn(Expr<T>) -> Expr<T> + Copy + 'static,
{
    assert_eq!(dst.len(), src.len(), "map requires equally-sized arrays");
    let kernel = move |dst: &Array<T, 1>, src: &Array<T, 1>| {
        dst.at(idx()).assign(g(src.at(idx())));
    };
    eval(kernel).run((dst, src))?;
    Ok(())
}

/// `dst[i] = g(a[i], b[i])` on the device.
pub fn zip_map<T, G>(dst: &Array<T, 1>, a: &Array<T, 1>, b: &Array<T, 1>, g: G) -> Result<()>
where
    T: HplScalar,
    G: Fn(Expr<T>, Expr<T>) -> Expr<T> + Copy + 'static,
{
    assert_eq!(dst.len(), a.len(), "zip_map requires equally-sized arrays");
    assert_eq!(a.len(), b.len(), "zip_map requires equally-sized arrays");
    let kernel = move |dst: &Array<T, 1>, a: &Array<T, 1>, b: &Array<T, 1>| {
        dst.at(idx()).assign(g(a.at(idx()), b.at(idx())));
    };
    eval(kernel).run((dst, a, b))?;
    Ok(())
}

/// Work-group size used by [`reduce_sum`]'s device stage.
const REDUCE_GROUP: usize = 64;

/// Sum all elements of `src` using a device-side tree reduction per
/// work-group (the efficient variant the paper's dot-product example
/// alludes to) followed by a host-side sum of the partials.
pub fn reduce_sum<T: HplFloat + std::ops::Add<Output = T>>(src: &Array<T, 1>) -> Result<T> {
    let n = src.len();
    let main = (n / REDUCE_GROUP) * REDUCE_GROUP;
    let mut total = T::default();

    if main > 0 {
        let groups = main / REDUCE_GROUP;
        let partials = Array::<T, 1>::new([groups]);

        fn reduce_kernel<T: HplFloat>(partials: &Array<T, 1>, src: &Array<T, 1>) {
            let shared = Array::<T, 1>::local([REDUCE_GROUP]);
            shared.at(lidx()).assign(src.at(idx()));
            barrier(LOCAL);
            let s = Int::new((REDUCE_GROUP / 2) as i32);
            while_(s.v().gt(0), || {
                if_(lidx().lt(s.v()), || {
                    shared
                        .at(lidx())
                        .assign(shared.at(lidx()) + shared.at(lidx() + s.v()));
                });
                barrier(LOCAL);
                s.assign(s.v() >> 1);
            });
            if_(lidx().eq_(0), || {
                partials.at(gidx()).assign(shared.at(0));
            });
        }

        eval(reduce_kernel::<T>)
            .global(&[main])
            .local(&[REDUCE_GROUP])
            .run((&partials, src))?;

        total = partials.with_data(|d| {
            let mut acc = T::default();
            for &x in d {
                acc = acc + x;
            }
            acc
        });
    }
    // tail that does not fill a whole group: summed on the host
    if main < n {
        total = src.with_data(|d| {
            let mut acc = total;
            for &x in &d[main..] {
                acc = acc + x;
            }
            acc
        });
    }
    Ok(total)
}

/// `dst[i] = g(src[i-1], src[i], src[i+1])` with clamped boundaries — the
/// 3-point stencil shape of explicit finite-difference schemes.
pub fn stencil3<T, G>(dst: &Array<T, 1>, src: &Array<T, 1>, g: G) -> Result<()>
where
    T: HplScalar,
    G: Fn(Expr<T>, Expr<T>, Expr<T>) -> Expr<T> + Copy + 'static,
{
    assert_eq!(
        dst.len(),
        src.len(),
        "stencil3 requires equally-sized arrays"
    );
    let kernel = move |dst: &Array<T, 1>, src: &Array<T, 1>| {
        let i = Int::new(0);
        i.assign(idx());
        let left = Int::new(0);
        let right = Int::new(0);
        left.assign(crate::math::max(i.v() - 1, 0));
        right.assign(crate::math::min(i.v() + 1, szx() - 1));
        dst.at(i.v())
            .assign(g(src.at(left.v()), src.at(i.v()), src.at(right.v())));
    };
    eval(kernel).run((dst, src))?;
    Ok(())
}

/// Work-group size used by [`exclusive_scan`]'s device stage.
const SCAN_GROUP: usize = 128;

/// Exclusive prefix sum of `src` into `dst` (`dst[0] = 0`,
/// `dst[i] = src[0] + ... + src[i-1]`): per-group Hillis–Steele scan in
/// local memory, then host-side carry propagation across groups — the
/// classic two-phase GPU scan.
pub fn exclusive_scan<T>(dst: &Array<T, 1>, src: &Array<T, 1>) -> Result<()>
where
    T: HplFloat + std::ops::Add<Output = T>,
{
    assert_eq!(
        dst.len(),
        src.len(),
        "exclusive_scan requires equally-sized arrays"
    );
    let n = src.len();
    let main = (n / SCAN_GROUP) * SCAN_GROUP;

    fn scan_kernel<T: HplFloat>(dst: &Array<T, 1>, sums: &Array<T, 1>, src: &Array<T, 1>) {
        let a = Array::<T, 1>::local([SCAN_GROUP]);
        let b = Array::<T, 1>::local([SCAN_GROUP]);
        let lid = Int::new(0);
        lid.assign(lidx());
        a.at(lid.v()).assign(src.at(idx()));
        barrier(LOCAL);
        // Hillis-Steele inclusive scan, ping-ponging between two tiles
        let stride = Int::new(1);
        let flip = Int::new(0);
        while_(stride.v().lt(SCAN_GROUP as i32), || {
            if_else(
                flip.v().eq_(0),
                || {
                    if_else(
                        lid.v().ge(stride.v()),
                        || {
                            b.at(lid.v())
                                .assign(a.at(lid.v()) + a.at(lid.v() - stride.v()))
                        },
                        || b.at(lid.v()).assign(a.at(lid.v())),
                    );
                },
                || {
                    if_else(
                        lid.v().ge(stride.v()),
                        || {
                            a.at(lid.v())
                                .assign(b.at(lid.v()) + b.at(lid.v() - stride.v()))
                        },
                        || a.at(lid.v()).assign(b.at(lid.v())),
                    );
                },
            );
            barrier(LOCAL);
            flip.assign(1 - flip.v());
            stride.assign(stride.v() * 2);
        });
        // `flip` tracks which tile the next round would read: after the
        // loop, flip == 1 means the last round wrote into `b`, flip == 0
        // means it wrote into `a`
        let last = Int::new(0);
        last.assign(flip.v());
        // exclusive output: shift right by one
        if_else(
            lid.v().eq_(0),
            || dst.at(idx()).assign(T::default().into_expr()),
            || {
                if_else(
                    last.v().eq_(1),
                    || dst.at(idx()).assign(b.at(lid.v() - 1)),
                    || dst.at(idx()).assign(a.at(lid.v() - 1)),
                );
            },
        );
        // group total for the carry pass
        if_(lid.v().eq_((SCAN_GROUP - 1) as i32), || {
            if_else(
                last.v().eq_(1),
                || sums.at(gidx()).assign(b.at(lid.v())),
                || sums.at(gidx()).assign(a.at(lid.v())),
            );
        });
    }

    let mut carry = T::default();
    if main > 0 {
        let groups = main / SCAN_GROUP;
        let sums = Array::<T, 1>::new([groups]);
        eval(scan_kernel::<T>)
            .global(&[main])
            .local(&[SCAN_GROUP])
            .run((dst, &sums, src))?;
        // carry propagation on the host
        let group_sums = sums.to_vec();
        let partial = dst.to_vec();
        let mut adjusted = partial;
        let mut offset = T::default();
        for (g, &sum) in group_sums.iter().enumerate().take(groups) {
            if g > 0 {
                for a in &mut adjusted[g * SCAN_GROUP..(g + 1) * SCAN_GROUP] {
                    *a = *a + offset;
                }
            }
            offset = offset + sum;
        }
        carry = offset;
        dst.write_from(&adjusted);
    }
    // tail on the host
    if main < n {
        let src_tail = src.with_data(|d| d[main..].to_vec());
        let mut acc = carry;
        let mut tail = Vec::with_capacity(n - main);
        for v in src_tail {
            tail.push(acc);
            acc = acc + v;
        }
        let mut full = dst.to_vec();
        full[main..].copy_from_slice(&tail);
        dst.write_from(&full);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_sets_every_element() {
        let a = Array::<f32, 1>::new([100]);
        fill(&a, 7.5).unwrap();
        assert!(a.to_vec().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn map_applies_expression() {
        let src = Array::<f64, 1>::from_vec([64], (0..64).map(|i| i as f64).collect());
        let dst = Array::<f64, 1>::new([64]);
        map(&dst, &src, |x| x * 2.0 + 1.0).unwrap();
        for i in 0..64 {
            assert_eq!(dst.get(i), 2.0 * i as f64 + 1.0);
        }
    }

    #[test]
    fn zip_map_combines_two_arrays() {
        let a = Array::<f32, 1>::from_vec([32], (0..32).map(|i| i as f32).collect());
        let b = Array::<f32, 1>::from_vec([32], vec![10.0; 32]);
        let dst = Array::<f32, 1>::new([32]);
        zip_map(&dst, &a, &b, |x, y| x * y).unwrap();
        assert_eq!(dst.get(3), 30.0);
        assert_eq!(dst.get(31), 310.0);
    }

    #[test]
    fn reduce_sum_exact_multiple() {
        let src = Array::<f64, 1>::from_vec([256], vec![0.5; 256]);
        assert_eq!(reduce_sum(&src).unwrap(), 128.0);
    }

    #[test]
    fn reduce_sum_with_tail() {
        let n = 200; // 3 groups of 64 + tail of 8
        let src = Array::<f64, 1>::from_vec([n], (1..=n).map(|i| i as f64).collect());
        let want = (n * (n + 1) / 2) as f64;
        assert_eq!(reduce_sum(&src).unwrap(), want);
    }

    #[test]
    fn reduce_sum_smaller_than_one_group() {
        let src = Array::<f64, 1>::from_vec([5], vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(reduce_sum(&src).unwrap(), 15.0);
    }

    #[test]
    fn stencil3_averages_with_clamped_boundaries() {
        let src = Array::<f64, 1>::from_vec([8], vec![0.0, 3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0]);
        let dst = Array::<f64, 1>::new([8]);
        stencil3(&dst, &src, |l, c, r| (l + c + r) / 3.0).unwrap();
        let host: Vec<f64> = (0..8)
            .map(|i: usize| {
                let l = src.get(i.saturating_sub(1));
                let c = src.get(i);
                let r = src.get((i + 1).min(7));
                (l + c + r) / 3.0
            })
            .collect();
        assert_eq!(dst.to_vec(), host);
    }

    #[test]
    fn exclusive_scan_matches_host_prefix_sum() {
        for n in [5usize, 128, 200, 384, 1000] {
            let data: Vec<f64> = (0..n).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
            let src = Array::<f64, 1>::from_vec([n], data.clone());
            let dst = Array::<f64, 1>::new([n]);
            exclusive_scan(&dst, &src).unwrap();
            let mut acc = 0.0;
            let host: Vec<f64> = data
                .iter()
                .map(|&v| {
                    let out = acc;
                    acc += v;
                    out
                })
                .collect();
            assert_eq!(dst.to_vec(), host, "n = {n}");
        }
    }

    #[test]
    fn patterns_reuse_cached_kernels() {
        let a = Array::<f32, 1>::new([64]);
        let before = crate::eval::kernel_cache_len();
        fill(&a, 1.0).unwrap();
        let after_first = crate::eval::kernel_cache_len();
        fill(&a, 2.0).unwrap();
        fill(&a, 3.0).unwrap();
        assert_eq!(
            crate::eval::kernel_cache_len(),
            after_first,
            "one kernel per pattern"
        );
        assert!(after_first >= before);
        assert_eq!(a.get(0), 3.0);
    }
}
