//! HPL error type.

use std::fmt;

/// Errors surfaced by the HPL runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An error reported by the OpenCL backend (`oclsim`).
    Backend(oclsim::Error),
    /// The eval request was malformed (bad domains, missing device, ...).
    InvalidEval(String),
    /// An internal invariant failed.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Backend(e) => write!(f, "backend error: {e}"),
            Error::InvalidEval(msg) => write!(f, "invalid eval: {msg}"),
            Error::Internal(msg) => write!(f, "internal HPL error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<oclsim::Error> for Error {
    fn from(e: oclsim::Error) -> Error {
        Error::Backend(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_errors_convert_and_display() {
        let e: Error = oclsim::Error::NoSuchKernel("k".into()).into();
        assert!(e.to_string().contains("`k`"));
        assert!(matches!(e, Error::Backend(_)));
    }

    #[test]
    fn source_chain() {
        use std::error::Error as _;
        let e: Error = oclsim::Error::InvalidLaunch("x".into()).into();
        assert!(e.source().is_some());
        assert!(Error::Internal("y".into()).source().is_none());
    }
}
