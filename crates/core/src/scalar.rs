//! HPL scalar types: the `Int`, `Uint`, `Float`, `Double`, ... of §III-A.
//!
//! A [`Scalar`] created in host code holds a host value and can be passed
//! to kernels by value. A `Scalar` created *inside* a kernel function
//! (while a capture is active) records a private variable declaration
//! instead — mirroring HPL, where the same datatypes serve both roles.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::expr::{Expr, IntoExpr};
use crate::ir::{CType, HStmt, HStmtKind, Node, RecordSite};
use crate::kernel::{is_recording, try_with_recorder, with_recorder};

/// Rust types usable as HPL scalar/array element types.
pub trait HplScalar: oclsim::DeviceScalar + PartialEq + std::fmt::Debug + Default {
    /// The OpenCL-facing type.
    const CTYPE: CType;
    /// Literal IR node for a value of this type.
    fn lit_node(self) -> Node;
    /// Host-side tagged value (for kernel scalar arguments).
    fn to_value(self) -> oclsim::Value;
}

macro_rules! impl_hpl_scalar {
    ($($t:ty => $ct:ident, $lit:ident, $conv:ty);* $(;)?) => {
        $(impl HplScalar for $t {
            const CTYPE: CType = CType::$ct;
            fn lit_node(self) -> Node { Node::$lit(self as $conv, CType::$ct) }
            fn to_value(self) -> oclsim::Value { oclsim::Value::from(self) }
        })*
    };
}
impl_hpl_scalar! {
    i8  => I8,  LitI, i64;
    i16 => I16, LitI, i64;
    i32 => I32, LitI, i64;
    i64 => I64, LitI, i64;
    u8  => U8,  LitU, u64;
    u16 => U16, LitU, u64;
    u32 => U32, LitU, u64;
    u64 => U64, LitU, u64;
    f32 => F32, LitF, f64;
    f64 => F64, LitF, f64;
}

// scalar handles come from the allocator shared with arrays (see
// `crate::array::next_handle_id`): the alias-pattern cache key compares
// handles across argument kinds, so they must never collide

enum Repr<T> {
    /// Host-side scalar with a current value.
    Host(Mutex<T>),
    /// Kernel-local private variable.
    KernelVar(u32),
}

/// An HPL scalar (see the `Int`, `Uint`, `Float`, `Double`, ... aliases).
///
/// Cheap to clone — clones share the underlying value, like the
/// reference-semantics HPL types in the paper.
pub struct Scalar<T: HplScalar> {
    id: u64,
    repr: Arc<Repr<T>>,
}

impl<T: HplScalar> Clone for Scalar<T> {
    fn clone(&self) -> Self {
        Scalar {
            id: self.id,
            repr: Arc::clone(&self.repr),
        }
    }
}

impl<T: HplScalar> Scalar<T> {
    /// Create a scalar. On the host this holds `v`; inside a kernel it
    /// declares a private variable initialised to `v`.
    #[track_caller]
    pub fn new(v: T) -> Scalar<T> {
        if is_recording() {
            Self::kernel_var(Some(Arc::new(v.lit_node())))
        } else {
            Scalar {
                id: crate::array::next_handle_id(),
                repr: Arc::new(Repr::Host(Mutex::new(v))),
            }
        }
    }

    /// Declare an uninitialised kernel variable (`Int i;` in the paper).
    /// Panics outside a kernel — host scalars always have a value.
    #[track_caller]
    pub fn var() -> Scalar<T> {
        assert!(
            is_recording(),
            "Scalar::var() declares a kernel variable and is only valid inside a kernel; \
             use Scalar::new(value) on the host"
        );
        Self::kernel_var(None)
    }

    #[track_caller]
    fn kernel_var(init: Option<Arc<Node>>) -> Scalar<T> {
        let site = RecordSite::here();
        let var = with_recorder(|r| {
            let var = r.fresh_id();
            r.push_stmt(HStmt::new(
                HStmtKind::DeclScalar {
                    var,
                    cty: T::CTYPE,
                    init,
                },
                site,
            ));
            var
        });
        let s = Scalar {
            id: crate::array::next_handle_id(),
            repr: Arc::new(Repr::KernelVar(var)),
        };
        with_recorder(|r| {
            r.local_vars.insert(s.id, (var, T::CTYPE));
        });
        s
    }

    /// Unique handle id (used by the recorder's parameter registry).
    pub(crate) fn handle_id(&self) -> u64 {
        self.id
    }

    /// The kernel variable id, when this is a kernel-local variable.
    pub(crate) fn kernel_var_id(&self) -> Option<u32> {
        match &*self.repr {
            Repr::KernelVar(v) => Some(*v),
            Repr::Host(_) => None,
        }
    }

    /// Host value. Panics for kernel variables.
    pub fn get(&self) -> T {
        match &*self.repr {
            Repr::Host(v) => *v.lock(),
            Repr::KernelVar(_) => {
                panic!("Scalar::get() reads a host value; use .v() inside kernels")
            }
        }
    }

    /// Set the host value. Panics for kernel variables.
    pub fn set(&self, v: T) {
        match &*self.repr {
            Repr::Host(slot) => *slot.lock() = v,
            Repr::KernelVar(_) => {
                panic!("Scalar::set() writes a host value; use .assign() inside kernels")
            }
        }
    }

    /// The scalar as a kernel expression. Valid only while recording:
    /// resolves to the kernel parameter, the kernel variable, or — for a
    /// host scalar that is not a parameter — its captured literal value
    /// (HPL "captures variables defined outside kernels").
    pub fn v(&self) -> Expr<T> {
        let node = match &*self.repr {
            Repr::KernelVar(var) => Node::Var(*var, T::CTYPE),
            Repr::Host(value) => {
                let param = try_with_recorder(|r| r.scalar_params.get(&self.id).copied());
                match param {
                    Some(Some(p)) => Node::ScalarParam(p),
                    Some(None) => value.lock().lit_node(),
                    None => panic!(
                        "Scalar::v() builds a kernel expression and is only valid inside a kernel"
                    ),
                }
            }
        };
        Expr::from_node(Arc::new(node))
    }

    /// Kernel-side assignment: `s.assign(e)` records `s = e;`.
    #[track_caller]
    pub fn assign(&self, e: impl IntoExpr<T>) {
        self.v().assign(e)
    }

    /// Kernel-side compound assignment `s += e`.
    #[track_caller]
    pub fn assign_add(&self, e: impl IntoExpr<T>) {
        self.v().assign_add(e)
    }

    /// Kernel-side compound assignment `s -= e`.
    #[track_caller]
    pub fn assign_sub(&self, e: impl IntoExpr<T>) {
        self.v().assign_sub(e)
    }

    /// Kernel-side compound assignment `s *= e`.
    #[track_caller]
    pub fn assign_mul(&self, e: impl IntoExpr<T>) {
        self.v().assign_mul(e)
    }

    /// Kernel-side compound assignment `s /= e`.
    #[track_caller]
    pub fn assign_div(&self, e: impl IntoExpr<T>) {
        self.v().assign_div(e)
    }
}

impl<T: HplScalar> std::fmt::Debug for Scalar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.repr {
            Repr::Host(v) => write!(f, "Scalar({:?})", *v.lock()),
            Repr::KernelVar(id) => write!(f, "Scalar(kernel var v{id})"),
        }
    }
}

/// `int` scalar (paper: `Int`).
pub type Int = Scalar<i32>;
/// `uint` scalar (paper: `Uint`).
pub type Uint = Scalar<u32>;
/// `long` scalar.
pub type Long = Scalar<i64>;
/// `ulong` scalar.
pub type Ulong = Scalar<u64>;
/// `float` scalar (paper: `Float`).
pub type Float = Scalar<f32>;
/// `double` scalar (paper: `Double`).
pub type Double = Scalar<f64>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::capture;

    #[test]
    fn host_scalar_get_set() {
        let a = Double::new(1.5);
        assert_eq!(a.get(), 1.5);
        a.set(2.5);
        assert_eq!(a.get(), 2.5);
        let b = a.clone();
        b.set(3.0);
        assert_eq!(a.get(), 3.0, "clones share state (reference semantics)");
    }

    #[test]
    fn kernel_scalar_records_declaration() {
        let k = capture("t".into(), || {
            let i = Int::new(5);
            i.assign(i.v() + 1);
        });
        assert!(matches!(
            k.body[0].kind,
            HStmtKind::DeclScalar {
                cty: CType::I32,
                init: Some(_),
                ..
            }
        ));
        assert!(matches!(k.body[1].kind, HStmtKind::Assign { .. }));
        assert!(
            k.body[0]
                .site
                .is_some_and(|s| s.file.ends_with("scalar.rs")),
            "Int::new records the declaration site: {:?}",
            k.body[0].site
        );
    }

    #[test]
    fn var_records_uninitialised_declaration() {
        let k = capture("t".into(), || {
            let _i = Int::var();
        });
        assert!(matches!(
            k.body[0].kind,
            HStmtKind::DeclScalar { init: None, .. }
        ));
    }

    #[test]
    fn unregistered_host_scalar_is_captured_as_literal() {
        let outside = Float::new(4.25);
        let k = capture("t".into(), || {
            let x = Float::new(0.0);
            x.assign(outside.v());
        });
        let HStmtKind::Assign { rhs, .. } = &k.body[1].kind else {
            panic!()
        };
        assert_eq!(**rhs, Node::LitF(4.25, CType::F32));
    }

    #[test]
    #[should_panic(expected = "only valid inside a kernel")]
    fn v_outside_kernel_panics() {
        let a = Int::new(1);
        let _ = a.v();
    }

    #[test]
    #[should_panic(expected = "only valid inside a kernel")]
    fn var_outside_kernel_panics() {
        let _ = Int::var();
    }

    #[test]
    fn type_aliases_have_expected_ctypes() {
        assert_eq!(<i32 as HplScalar>::CTYPE, CType::I32);
        assert_eq!(<f64 as HplScalar>::CTYPE, CType::F64);
        assert_eq!(<u64 as HplScalar>::CTYPE, CType::U64);
    }
}
