//! Kernel invocation: `eval(f).global(..).local(..).device(..).run(args)`.
//!
//! The first `run` for a kernel function captures it (records the IR),
//! generates OpenCL C, and builds it for the target device; the results are
//! cached per kernel function and per device, so "second and later
//! invocations of an HPL kernel do not incur in overheads of analysis,
//! backend code generation and compilation" (§V-B) — the behaviour the
//! paper credits for diluting HPL's overhead.

use std::any::TypeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use oclsim::{Device, Event, EventStatus};

use crate::array::Array;
use crate::codegen::{generate, generate_with_map, LineMap};
use crate::error::{Error, Result};
use crate::ir::{ParamKind, ParamRecord, RecordedKernel};
use crate::kernel::{capture, with_recorder};
use crate::runtime::runtime;
use crate::scalar::{HplScalar, Scalar};

/// Profiling record returned by [`Eval::run`].
///
/// `*_seconds` fields measured on the host (capture/codegen/build) are real
/// wall time; `kernel_modeled_seconds` and `transfer_modeled_seconds` come
/// from the backend's analytic device model. The paper's Figures 6–9 time
/// "the generation of the backend code, the compilation and the execution
/// of the kernel" — that is [`EvalProfile::paper_seconds`].
#[derive(Debug, Clone)]
pub struct EvalProfile {
    /// Whether the kernel came from HPL's kernel cache.
    pub cache_hit: bool,
    /// Wall seconds spent running the kernel function in capture mode
    /// (zero on cache hits).
    pub capture_seconds: f64,
    /// Wall seconds spent generating OpenCL C (zero on cache hits).
    pub codegen_seconds: f64,
    /// Wall seconds the backend compiler took (zero when the device binary
    /// was cached).
    pub build_seconds: f64,
    /// Modeled seconds of host↔device transfers this eval had to perform.
    pub transfer_modeled_seconds: f64,
    /// Modeled device seconds of the kernel execution itself.
    pub kernel_modeled_seconds: f64,
    /// Total measured host wall seconds for the whole eval call.
    pub host_seconds: f64,
    /// The generated OpenCL C source (shared with the cache).
    pub source: Arc<String>,
}

impl EvalProfile {
    /// The quantity the paper's speedup figures report: backend code
    /// generation + compilation + kernel execution, *excluding* transfers
    /// (§V-B explains why transfers are excluded).
    pub fn paper_seconds(&self) -> f64 {
        self.capture_seconds
            + self.codegen_seconds
            + self.build_seconds
            + self.kernel_modeled_seconds
    }

    /// Like [`EvalProfile::paper_seconds`] but including modeled transfer
    /// time (the paper's variant used for the matrix-transpose discussion).
    pub fn paper_seconds_with_transfers(&self) -> f64 {
        self.paper_seconds() + self.transfer_modeled_seconds
    }
}

// ---- kernel cache -----------------------------------------------------------------

struct CacheEntry {
    recorded: RecordedKernel,
    source: Arc<String>,
    /// Generated-line → DSL-recording-site provenance for `source`.
    line_map: Arc<LineMap>,
    capture_seconds: f64,
    codegen_seconds: f64,
}

/// Cache key for a captured kernel: the kernel function's type plus the
/// aliasing pattern of its arguments. The pattern matters because capture
/// resolves array references through handle identity — if the same
/// [`Array`] is passed for two parameters, every access in the recorded IR
/// collapses onto the last parameter, and that recording is only valid for
/// launches with the same aliasing. Keying on the pattern keeps an aliased
/// first invocation from poisoning later distinct-argument calls (and vice
/// versa).
type CacheKey = (TypeId, u64);

static CACHE: OnceLock<Mutex<HashMap<CacheKey, Arc<CacheEntry>>>> = OnceLock::new();
static KERNEL_COUNTER: AtomicU64 = AtomicU64::new(0);
static KERNEL_LINTS: OnceLock<Mutex<Vec<oclsim::Diagnostic>>> = OnceLock::new();
// Lifetime cache statistics (never reset — unlike the telemetry metrics
// registry, which tests and report subcommands zero between workloads).
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<CacheKey, Arc<CacheEntry>>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn kernel_lints() -> &'static Mutex<Vec<oclsim::Diagnostic>> {
    KERNEL_LINTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drain the kernel-sanitizer findings accumulated while building HPL
/// kernels (each [`eval`] run lints its generated OpenCL C as part of the
/// backend build). HPL-generated code is expected to lint clean; anything
/// returned here points at a codegen bug or a genuinely racy kernel
/// function.
pub fn take_kernel_lints() -> Vec<oclsim::Diagnostic> {
    std::mem::take(&mut *kernel_lints().lock())
}

// process-global mid-end optimization level for HPL backend builds;
// stored as the enum discriminant so reads stay lock-free on the hot path
static OPT_LEVEL: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(1);

// one-time seed from `HPL_OPT_LEVEL` (accepts `0`/`1`/`2` or
// `-O0`/`-O1`/`-O2`); lets `ci.sh` run the whole test suite at a pinned
// level. Runs before the first read *or* write, so an explicit
// `set_opt_level` always wins over the environment.
fn seed_opt_level_from_env() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if let Ok(v) = std::env::var("HPL_OPT_LEVEL") {
            let lvl = match v.trim() {
                "0" | "-O0" => 0,
                "2" | "-O2" => 2,
                _ => 1,
            };
            OPT_LEVEL.store(lvl, Ordering::Relaxed);
        }
    });
}

/// Set the `oclsim` mid-end [`oclsim::OptLevel`] used when compiling
/// HPL-generated kernels (default `O1`, or `HPL_OPT_LEVEL` from the
/// environment). Takes effect for subsequent builds; already-cached
/// binaries are keyed by build options, so kernels compiled at different
/// levels coexist in the binary cache.
pub fn set_opt_level(level: oclsim::OptLevel) {
    seed_opt_level_from_env();
    let v = match level {
        oclsim::OptLevel::O0 => 0,
        oclsim::OptLevel::O1 => 1,
        oclsim::OptLevel::O2 => 2,
    };
    OPT_LEVEL.store(v, Ordering::Relaxed);
}

/// The mid-end optimization level applied to HPL backend builds.
pub fn opt_level() -> oclsim::OptLevel {
    seed_opt_level_from_env();
    match OPT_LEVEL.load(Ordering::Relaxed) {
        0 => oclsim::OptLevel::O0,
        2 => oclsim::OptLevel::O2,
        _ => oclsim::OptLevel::O1,
    }
}

/// Drop every cached kernel (test/bench hook: lets harnesses measure
/// first-invocation behaviour repeatedly). Dropped entries count as
/// evictions in [`cache_stats`].
pub fn clear_kernel_cache() {
    let mut map = cache().lock();
    let dropped = map.len() as u64;
    map.clear();
    drop(map);
    CACHE_EVICTIONS.fetch_add(dropped, Ordering::Relaxed);
    oclsim::telemetry::metrics()
        .kernel_cache_evictions
        .add(dropped);
}

/// Number of kernels currently cached.
pub fn kernel_cache_len() -> usize {
    cache().lock().len()
}

/// Per-entry view of the kernel cache (one entry per kernel function ×
/// argument aliasing pattern — see `CacheKey`).
#[derive(Debug, Clone)]
pub struct CacheEntryInfo {
    /// The generated kernel's name (`hpl_<fn>_<counter>`).
    pub kernel: String,
    /// The alias pattern half of the cache key (4 bits per argument;
    /// `0x01` in the low byte means argument 1 aliased argument 0).
    pub alias_pattern: u64,
    /// How many devices hold a compiled binary of this entry.
    pub devices_built: usize,
}

/// Lifetime kernel-cache statistics (see [`cache_stats`]).
#[derive(Debug, Clone)]
pub struct CacheStats {
    /// `eval` front-ends served from the cache.
    pub hits: u64,
    /// `eval` front-ends that captured + generated code.
    pub misses: u64,
    /// Entries dropped by [`clear_kernel_cache`].
    pub evictions: u64,
    /// Current entries, sorted by kernel name then alias pattern.
    pub entries: Vec<CacheEntryInfo>,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none happened yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Snapshot the kernel cache: lifetime hit/miss/eviction counts plus the
/// per-key alias info of every live entry.
pub fn cache_stats() -> CacheStats {
    // device binaries live in the serve layer's shared binary cache: the
    // active tenant's service cache, or the process-global one
    let tenant = crate::session::current_tenant();
    let binaries = |source: &str| match &tenant {
        Some(s) => s.binary_cache().devices_built(source),
        None => oclsim::serve::global_binary_cache().devices_built(source),
    };
    let mut entries: Vec<CacheEntryInfo> = cache()
        .lock()
        .iter()
        .map(|((_, alias_pattern), e)| CacheEntryInfo {
            kernel: e.recorded.name.clone(),
            alias_pattern: *alias_pattern,
            devices_built: binaries(e.source.as_str()),
        })
        .collect();
    entries.sort_by(|a, b| {
        a.kernel
            .cmp(&b.kernel)
            .then(a.alias_pattern.cmp(&b.alias_pattern))
    });
    CacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
        evictions: CACHE_EVICTIONS.load(Ordering::Relaxed),
        entries,
    }
}

/// Generated source plus generated-line → DSL-recording-site provenance
/// for a cached kernel (see [`kernel_provenance`]).
#[derive(Debug, Clone)]
pub struct KernelProvenance {
    /// The generated kernel's name (`hpl_<fn>_<counter>`).
    pub kernel: String,
    /// The generated OpenCL C source.
    pub source: Arc<String>,
    /// Generated-line → recording-site map for `source`.
    pub line_map: Arc<LineMap>,
}

/// Look up the generated source and line map for a cached kernel by its
/// generated name (`hpl_<fn>_<counter>`). Returns `None` when no cache
/// entry produced a kernel with that name — e.g. before the kernel's
/// first launch or after [`clear_kernel_cache`].
pub fn kernel_provenance(kernel: &str) -> Option<KernelProvenance> {
    cache()
        .lock()
        .values()
        .find(|e| e.recorded.name == kernel)
        .map(|e| KernelProvenance {
            kernel: e.recorded.name.clone(),
            source: Arc::clone(&e.source),
            line_map: Arc::clone(&e.line_map),
        })
}

fn kernel_name_for<F: 'static>() -> String {
    let full = std::any::type_name::<F>();
    let last = full.rsplit("::").next().unwrap_or(full);
    let base: String = last
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let base = if base.is_empty() || base.starts_with(|c: char| c.is_ascii_digit()) {
        format!("k{base}")
    } else {
        base
    };
    // the counter makes names unique even for same-named fns in different
    // modules (the cache itself is keyed by TypeId, not by name)
    format!(
        "hpl_{base}_{}",
        KERNEL_COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

// ---- argument plumbing ---------------------------------------------------------------

/// A value passable to an HPL kernel: [`Array`] or [`Scalar`].
pub trait KernelArg {
    /// Record this argument as the next kernel parameter (capture time).
    fn register(&self);
    /// Bind the argument to the backend kernel at `index`; returns the
    /// modeled seconds of any host→device transfer this required.
    fn bind(&self, kernel: &oclsim::Kernel, index: usize, device: &Device) -> Result<f64>;
    /// Bind the argument for an asynchronous launch: like
    /// [`KernelArg::bind`], but any host→device transfer is enqueued
    /// *without waiting*, and every event the launch must wait on — the
    /// array's pending writer/readers and that transfer — is appended to
    /// `deps`. This is how `run_async` infers its wait lists.
    fn bind_async(
        &self,
        kernel: &oclsim::Kernel,
        index: usize,
        device: &Device,
        deps: &mut Vec<Event>,
    ) -> Result<f64>;
    /// Bind this argument's trailing dimension arguments starting at
    /// `*next`, advancing it.
    fn bind_dims(&self, kernel: &oclsim::Kernel, next: &mut usize) -> Result<()>;
    /// Update coherence state after the launch.
    fn post_launch(&self, kernel: &oclsim::Kernel, index: usize, device: &Device);
    /// Record an asynchronous launch's event in the argument's coherence
    /// state (writer or reader, depending on how the kernel uses it).
    fn post_async(&self, kernel: &oclsim::Kernel, index: usize, device: &Device, event: &Event);
    /// The dimensions, for arrays (used for the default global domain).
    fn dims_vec(&self) -> Option<Vec<usize>>;
    /// Identity of the underlying handle, for alias detection across the
    /// argument tuple (see [`ArgTuple::alias_pattern`]).
    fn handle(&self) -> u64;
}

impl<T: HplScalar, const N: usize> KernelArg for Array<T, N> {
    fn register(&self) {
        with_recorder(|r| {
            let p = r.params.len();
            r.params.push(ParamRecord {
                kind: ParamKind::Array {
                    cty: T::CTYPE,
                    ndim: N,
                    mem: self.mem_flag(),
                },
            });
            r.array_params.insert(self.handle_id(), p);
        });
    }

    fn bind(&self, kernel: &oclsim::Kernel, index: usize, device: &Device) -> Result<f64> {
        let needs_data = kernel.arg_is_read(index);
        let (buffer, transfer_s) = self.ensure_on_device(device, needs_data)?;
        kernel.set_arg_buffer(index, &buffer)?;
        Ok(transfer_s)
    }

    fn bind_async(
        &self,
        kernel: &oclsim::Kernel,
        index: usize,
        device: &Device,
        deps: &mut Vec<Event>,
    ) -> Result<f64> {
        let reads = kernel.arg_is_read(index);
        let writes = kernel.arg_is_written(index);
        let (buffer, mut events, transfer_s) = self.prepare_async(device, reads, writes)?;
        deps.append(&mut events);
        kernel.set_arg_buffer(index, &buffer)?;
        Ok(transfer_s)
    }

    fn bind_dims(&self, kernel: &oclsim::Kernel, next: &mut usize) -> Result<()> {
        for d in self.dims() {
            kernel.set_arg_scalar(*next, d as i32)?;
            *next += 1;
        }
        Ok(())
    }

    fn post_launch(&self, kernel: &oclsim::Kernel, index: usize, device: &Device) {
        if kernel.arg_is_written(index) {
            self.mark_device_written(device);
        }
    }

    fn post_async(&self, kernel: &oclsim::Kernel, index: usize, device: &Device, event: &Event) {
        self.record_async_use(device, event, kernel.arg_is_written(index));
    }

    fn dims_vec(&self) -> Option<Vec<usize>> {
        Some(self.dims().to_vec())
    }

    fn handle(&self) -> u64 {
        self.handle_id()
    }
}

impl<T: HplScalar> KernelArg for Scalar<T> {
    fn register(&self) {
        with_recorder(|r| {
            let p = r.params.len();
            r.params.push(ParamRecord {
                kind: ParamKind::Scalar { cty: T::CTYPE },
            });
            r.scalar_params.insert(self.handle_id(), p);
        });
    }

    fn bind(&self, kernel: &oclsim::Kernel, index: usize, _device: &Device) -> Result<f64> {
        kernel.set_arg_scalar(index, self.get().to_value())?;
        Ok(0.0)
    }

    fn bind_async(
        &self,
        kernel: &oclsim::Kernel,
        index: usize,
        device: &Device,
        _deps: &mut Vec<Event>,
    ) -> Result<f64> {
        // scalars are captured by value at enqueue time: no buffer, no deps
        self.bind(kernel, index, device)
    }

    fn bind_dims(&self, _kernel: &oclsim::Kernel, _next: &mut usize) -> Result<()> {
        Ok(())
    }

    fn post_launch(&self, _kernel: &oclsim::Kernel, _index: usize, _device: &Device) {}

    fn post_async(
        &self,
        _kernel: &oclsim::Kernel,
        _index: usize,
        _device: &Device,
        _event: &Event,
    ) {
    }

    fn dims_vec(&self) -> Option<Vec<usize>> {
        None
    }

    fn handle(&self) -> u64 {
        self.handle_id()
    }
}

/// A tuple of references to kernel arguments.
pub trait ArgTuple {
    /// Register all arguments in order (capture time).
    fn register_all(&self);
    /// Bind all arguments; returns total modeled transfer seconds.
    fn bind_all(&self, kernel: &oclsim::Kernel, device: &Device) -> Result<f64>;
    /// Bind all arguments for an asynchronous launch, appending the
    /// inferred wait-list events to `deps`; returns total modeled transfer
    /// seconds.
    fn bind_all_async(
        &self,
        kernel: &oclsim::Kernel,
        device: &Device,
        deps: &mut Vec<Event>,
    ) -> Result<f64>;
    /// Post-launch coherence updates.
    fn post_all(&self, kernel: &oclsim::Kernel, device: &Device);
    /// Record an asynchronous launch's event in every argument's
    /// coherence state.
    fn post_all_async(&self, kernel: &oclsim::Kernel, device: &Device, event: &Event);
    /// Dimensions of the first array argument (default global domain).
    fn first_dims(&self) -> Option<Vec<usize>>;
    /// Number of primary (non-dimension) arguments.
    fn arity(&self) -> usize;
    /// Canonical encoding of which arguments alias each other: for each
    /// argument, the index of the first argument sharing its handle,
    /// packed 4 bits per argument. Distinct tuples `(x, y)` and `(p, q)`
    /// produce the same pattern; `(x, x)` produces a different one.
    fn alias_pattern(&self) -> u64;
}

/// A kernel function callable with argument tuple `A`.
pub trait KernelFun<A>: Copy + 'static {
    /// Invoke the kernel function for capture.
    fn invoke(&self, args: &A);
}

macro_rules! impl_arg_tuples {
    ($(($($T:ident . $i:tt),+))*) => {$(
        impl<'a, $($T: KernelArg),+> ArgTuple for ($(&'a $T,)+) {
            fn register_all(&self) {
                $(self.$i.register();)+
            }
            fn bind_all(&self, kernel: &oclsim::Kernel, device: &Device) -> Result<f64> {
                let mut transfer = 0.0;
                let mut _index = 0usize;
                $(
                    transfer += self.$i.bind(kernel, _index, device)?;
                    _index += 1;
                )+
                let mut next = _index;
                $(self.$i.bind_dims(kernel, &mut next)?;)+
                Ok(transfer)
            }
            fn bind_all_async(
                &self,
                kernel: &oclsim::Kernel,
                device: &Device,
                deps: &mut Vec<Event>,
            ) -> Result<f64> {
                let mut transfer = 0.0;
                let mut _index = 0usize;
                $(
                    transfer += self.$i.bind_async(kernel, _index, device, deps)?;
                    _index += 1;
                )+
                let mut next = _index;
                $(self.$i.bind_dims(kernel, &mut next)?;)+
                Ok(transfer)
            }
            fn post_all(&self, kernel: &oclsim::Kernel, device: &Device) {
                let mut _index = 0usize;
                $(
                    self.$i.post_launch(kernel, _index, device);
                    _index += 1;
                )+
            }
            fn post_all_async(&self, kernel: &oclsim::Kernel, device: &Device, event: &Event) {
                let mut _index = 0usize;
                $(
                    self.$i.post_async(kernel, _index, device, event);
                    _index += 1;
                )+
            }
            fn first_dims(&self) -> Option<Vec<usize>> {
                $(
                    if let Some(d) = self.$i.dims_vec() {
                        return Some(d);
                    }
                )+
                None
            }
            fn arity(&self) -> usize {
                let mut n = 0usize;
                $( n += 1; let _ = self.$i; )+
                n
            }
            fn alias_pattern(&self) -> u64 {
                let handles = [ $(self.$i.handle()),+ ];
                let mut pattern = 0u64;
                for (i, h) in handles.iter().enumerate() {
                    let first = handles[..i].iter().position(|p| p == h).unwrap_or(i);
                    pattern = (pattern << 4) | first as u64;
                }
                pattern
            }
        }

        impl<'a, F, $($T: KernelArg),+> KernelFun<($(&'a $T,)+)> for F
        where
            F: Fn($(&$T),+) + Copy + 'static,
        {
            fn invoke(&self, args: &($(&'a $T,)+)) {
                (self)($(args.$i),+)
            }
        }
    )*};
}

impl_arg_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, G.5)
    (A.0, B.1, C.2, D.3, E.4, G.5, H.6)
    (A.0, B.1, C.2, D.3, E.4, G.5, H.6, I.7)
}

/// Measure the front-end cost (kernel capture + code generation) of a
/// kernel function without executing it, as the minimum over `repeats`
/// runs. One-shot wall measurements of sub-millisecond work are noisy on a
/// loaded host; benchmark harnesses use this to report a stable figure for
/// what a first invocation's analysis costs.
pub fn measure_front<F, A>(f: F, args: &A, repeats: usize) -> (f64, f64)
where
    F: KernelFun<A>,
    A: ArgTuple,
{
    let mut best_capture = f64::INFINITY;
    let mut best_codegen = f64::INFINITY;
    for i in 0..repeats.max(1) {
        let t0 = Instant::now();
        let recorded = capture(format!("hpl_probe_{i}"), || {
            args.register_all();
            f.invoke(args);
        });
        let capture_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let source = generate(&recorded);
        let codegen_s = t1.elapsed().as_secs_f64();
        std::hint::black_box(&source);
        best_capture = best_capture.min(capture_s);
        best_codegen = best_codegen.min(codegen_s);
    }
    (best_capture, best_codegen)
}

/// When a tenant scope is active on this thread, admit the launch against
/// the tenant's quotas (counting it in the per-tenant metrics); a no-op
/// outside any scope.
fn admit_tenant_launch(kernel: &str) -> Result<()> {
    if let Some(session) = crate::session::current_tenant() {
        session
            .admit_external_launch(&format!("eval of `{kernel}`"))
            .map_err(Error::Backend)?;
    }
    Ok(())
}

// ---- per-request tracing -----------------------------------------------------------

/// One eval's observability context when a tenant scope is active: the
/// request trace under construction plus the session that emits the
/// postmortem dump if the request fails. Outside a tenant scope evals
/// stay untraced (there is no tenant to attribute the flight-recorder
/// events and quota/cache snapshots to).
struct TenantRequest {
    session: Arc<oclsim::serve::Session>,
    req: oclsim::obs::Request,
}

impl TenantRequest {
    fn begin(what: String) -> Option<TenantRequest> {
        crate::session::current_tenant().map(|session| {
            let req = session.begin_request(what);
            TenantRequest { session, req }
        })
    }

    /// Close the trace as failed, attributing `err` to the root node, and
    /// emit the postmortem dump ([`oclsim::take_postmortems`]).
    fn fail(mut self, err: &Error) {
        let root = self.req.root();
        set_obs_error(&mut self.req, root, err);
        let backend_owned;
        let backend = match err {
            Error::Backend(e) => e,
            other => {
                backend_owned = oclsim::Error::InvalidOperation(other.to_string());
                &backend_owned
            }
        };
        self.session.emit_postmortem(self.req.finish(true), backend);
    }
}

/// Attribute a front-end [`Error`] to a trace node; non-backend errors
/// (bad eval geometry, internal invariants) are wrapped so the span tree
/// still carries their message.
fn set_obs_error(req: &mut oclsim::obs::Request, node: oclsim::obs::NodeId, err: &Error) {
    match err {
        Error::Backend(e) => req.set_error(node, e),
        other => req.set_error(node, &oclsim::Error::InvalidOperation(other.to_string())),
    }
}

/// The `exec.launch` node detail for one resolved launch — built from the
/// event's modeled timing on the request thread, identical for both exec
/// backends.
fn launch_node_detail(kernel: &str, timing: &Option<oclsim::TimingBreakdown>) -> String {
    match timing {
        Some(t) => format!("kernel `{kernel}`: {} instrs", t.totals.instructions),
        None => format!("kernel `{kernel}`"),
    }
}

// ---- the eval builder ---------------------------------------------------------------------

/// Request the parallel evaluation of an HPL kernel function (§III-C).
///
/// `eval(f)` returns a builder; `.global()`, `.local()` and `.device()`
/// refine the launch; `.run((args...))` executes. By default the kernel
/// runs on the first non-CPU device, with the global domain given by the
/// dimensions of the first array argument and a library-chosen local
/// domain.
pub fn eval<F: Copy + 'static>(f: F) -> Eval<F> {
    Eval {
        f,
        global: None,
        local: None,
        device: None,
    }
}

/// Builder returned by [`eval`].
pub struct Eval<F> {
    f: F,
    global: Option<Vec<usize>>,
    local: Option<Vec<usize>>,
    device: Option<Device>,
}

impl<F: Copy + 'static> Eval<F> {
    /// Set the global domain (1-3 dimensions).
    pub fn global(mut self, dims: &[usize]) -> Self {
        self.global = Some(dims.to_vec());
        self
    }

    /// Set the local domain; must divide the global domain dimension-wise.
    pub fn local(mut self, dims: &[usize]) -> Self {
        self.local = Some(dims.to_vec());
        self
    }

    /// Select the execution device.
    pub fn device(mut self, device: &Device) -> Self {
        self.device = Some(device.clone());
        self
    }

    /// Execute the kernel with `args` (a tuple of `&Array`/`&Scalar`
    /// references, e.g. `(&y, &x, &a)`). Inside a tenant scope the whole
    /// request is traced (admission, cache lookups, transfers, launch)
    /// and a failure emits a postmortem dump.
    pub fn run<A: ArgTuple>(self, args: A) -> Result<EvalProfile>
    where
        F: KernelFun<A>,
    {
        let device = match &self.device {
            Some(d) => d.clone(),
            None => runtime().default_device(),
        };
        let mut tr = TenantRequest::begin(format!("hpl eval on `{}`", device.name()));
        let _guard = tr.as_ref().map(|t| t.req.thread_guard());
        match self.run_traced(args, &device, tr.as_mut().map(|t| &mut t.req)) {
            Ok(profile) => {
                if let Some(t) = tr {
                    t.req.finish(false);
                }
                Ok(profile)
            }
            Err(e) => {
                if let Some(t) = tr {
                    t.fail(&e);
                }
                Err(e)
            }
        }
    }

    fn run_traced<A: ArgTuple>(
        self,
        args: A,
        device: &Device,
        mut req: Option<&mut oclsim::obs::Request>,
    ) -> Result<EvalProfile>
    where
        F: KernelFun<A>,
    {
        let t_start = Instant::now();
        let front = self.front(&args, device, req.as_deref_mut())?;
        match admit_tenant_launch(front.kernel.name()) {
            Ok(()) => {
                if let Some(r) = req.as_mut() {
                    let root = r.root();
                    r.child(
                        root,
                        "admission",
                        format!("ok (eval of `{}`)", front.kernel.name()),
                    );
                }
            }
            Err(e) => {
                if let Some(r) = req.as_mut() {
                    let root = r.root();
                    let node = r.child(
                        root,
                        "admission",
                        format!("eval of `{}`", front.kernel.name()),
                    );
                    set_obs_error(r, node, &e);
                }
                return Err(e);
            }
        }

        // bind arguments (performing only the transfers the analysis
        // requires), resolve the launch geometry, and execute blockingly
        // on the device's in-order queue
        let transfer_modeled_seconds = args.bind_all(&front.kernel, device)?;
        if transfer_modeled_seconds > 0.0 {
            if let Some(r) = req.as_mut() {
                let root = r.root();
                let dma = r.child(root, "sched.dma", "host -> device transfers");
                r.set_modeled(dma, transfer_modeled_seconds);
            }
        }
        let global = self.resolved_global(&args)?;
        let queue = &runtime().entry(device).queue;
        let sched = req.as_deref_mut().map(|r| {
            let root = r.root();
            r.child(root, "sched.enqueue", format!("ndrange global {global:?}"))
        });
        let event = match queue.enqueue_ndrange(&front.kernel, &global, self.local.as_deref()) {
            Ok(ev) => ev,
            Err(e) => {
                if let (Some(r), Some(node)) = (req.as_mut(), sched) {
                    r.set_error(node, &e);
                }
                return Err(Error::Backend(e));
            }
        };
        crate::profile::note_launch(front.kernel.name(), device, &event);
        args.post_all(&front.kernel, device);
        if let (Some(r), Some(node)) = (req.as_mut(), sched) {
            let timing = event.kernel_timing();
            let modeled = timing
                .as_ref()
                .map(|t| t.device_seconds)
                .unwrap_or_else(|| event.modeled_seconds());
            r.set_modeled(node, modeled);
            let launch = r.child(
                node,
                "exec.launch",
                launch_node_detail(front.kernel.name(), &timing),
            );
            r.set_modeled(launch, modeled);
        }

        Ok(EvalProfile {
            cache_hit: front.cache_hit,
            capture_seconds: front.capture_seconds,
            codegen_seconds: front.codegen_seconds,
            build_seconds: front.build_seconds,
            transfer_modeled_seconds,
            kernel_modeled_seconds: event.modeled_seconds(),
            host_seconds: t_start.elapsed().as_secs_f64(),
            source: front.source,
        })
    }

    /// Enqueue the kernel **asynchronously** and return immediately with a
    /// joinable [`AsyncEval`] handle.
    ///
    /// The launch goes to the device's out-of-order queue with a wait list
    /// inferred from each array argument's pending operations (its last
    /// writer for reads, plus its readers for writes), so independent
    /// evals — and the transfers they trigger — overlap on the modeled
    /// device timeline while data dependences are preserved exactly. Any
    /// synchronous access to an involved array (`get`, `to_vec`, a
    /// blocking `run`, ...) waits for the pending commands first, and a
    /// failed dependency poisons this launch with the causal error chain.
    pub fn run_async<A: ArgTuple>(self, args: A) -> Result<AsyncEval>
    where
        F: KernelFun<A>,
    {
        let device = match &self.device {
            Some(d) => d.clone(),
            None => runtime().default_device(),
        };
        let mut tr = TenantRequest::begin(format!("hpl async eval on `{}`", device.name()));
        let _guard = tr.as_ref().map(|t| t.req.thread_guard());
        match self.run_async_traced(args, &device, tr.as_mut().map(|t| &mut t.req)) {
            Ok((event, profile, sched, kernel)) => Ok(AsyncEval {
                event,
                profile,
                obs: tr.map(|t| AsyncObs {
                    session: t.session,
                    req: t.req,
                    sched: sched.unwrap_or_default(),
                    kernel,
                }),
            }),
            Err(e) => {
                if let Some(t) = tr {
                    t.fail(&e);
                }
                Err(e)
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn run_async_traced<A: ArgTuple>(
        self,
        args: A,
        device: &Device,
        mut req: Option<&mut oclsim::obs::Request>,
    ) -> Result<(Event, EvalProfile, Option<oclsim::obs::NodeId>, String)>
    where
        F: KernelFun<A>,
    {
        let t_start = Instant::now();
        let front = self.front(&args, device, req.as_deref_mut())?;
        match admit_tenant_launch(front.kernel.name()) {
            Ok(()) => {
                if let Some(r) = req.as_mut() {
                    let root = r.root();
                    r.child(
                        root,
                        "admission",
                        format!("ok (eval of `{}`)", front.kernel.name()),
                    );
                }
            }
            Err(e) => {
                if let Some(r) = req.as_mut() {
                    let root = r.root();
                    let node = r.child(
                        root,
                        "admission",
                        format!("eval of `{}`", front.kernel.name()),
                    );
                    set_obs_error(r, node, &e);
                }
                return Err(e);
            }
        }

        let mut deps: Vec<Event> = Vec::new();
        let transfer_modeled_seconds = args.bind_all_async(&front.kernel, device, &mut deps)?;
        if transfer_modeled_seconds > 0.0 {
            if let Some(r) = req.as_mut() {
                let root = r.root();
                let dma = r.child(root, "sched.dma", "host -> device transfers (async)");
                r.set_modeled(dma, transfer_modeled_seconds);
            }
        }
        let global = self.resolved_global(&args)?;
        let queue = &runtime().entry(device).async_queue;
        let sched = req.as_deref_mut().map(|r| {
            let root = r.root();
            r.child(
                root,
                "sched.enqueue",
                format!(
                    "ndrange global {global:?}{}",
                    if deps.is_empty() {
                        String::new()
                    } else {
                        format!(", {} inferred dep(s)", deps.len())
                    }
                ),
            )
        });
        let event =
            match queue.enqueue_ndrange_async(&front.kernel, &global, self.local.as_deref(), &deps)
            {
                Ok(ev) => ev,
                Err(e) => {
                    if let (Some(r), Some(node)) = (req.as_mut(), sched) {
                        r.set_error(node, &e);
                    }
                    return Err(Error::Backend(e));
                }
            };
        crate::profile::note_launch(front.kernel.name(), device, &event);
        args.post_all_async(&front.kernel, device, &event);

        let kernel = front.kernel.name().to_string();
        Ok((
            event,
            EvalProfile {
                cache_hit: front.cache_hit,
                capture_seconds: front.capture_seconds,
                codegen_seconds: front.codegen_seconds,
                build_seconds: front.build_seconds,
                transfer_modeled_seconds,
                // filled in by AsyncEval::wait once the event resolves
                kernel_modeled_seconds: 0.0,
                host_seconds: t_start.elapsed().as_secs_f64(),
                source: front.source,
            },
            sched,
            kernel,
        ))
    }

    /// The launch geometry: explicit `.global(..)` or the first array
    /// argument's dimensions.
    fn resolved_global<A: ArgTuple>(&self, args: &A) -> Result<Vec<usize>> {
        match &self.global {
            Some(g) => Ok(g.clone()),
            None => args.first_dims().ok_or_else(|| {
                Error::InvalidEval(
                    "no global domain given and the kernel has no array argument to take it from"
                        .into(),
                )
            }),
        }
    }

    /// The shared front half of `run`/`run_async`: capture + codegen
    /// (cached per kernel function) and backend compilation (cached per
    /// device), yielding a bindable kernel. When a request trace is open,
    /// both lookups become `cache.lookup` nodes in its span tree.
    fn front<A: ArgTuple>(
        &self,
        args: &A,
        device: &Device,
        mut req: Option<&mut oclsim::obs::Request>,
    ) -> Result<Front>
    where
        F: KernelFun<A>,
    {
        // 1. kernel capture + codegen (cached per kernel function and
        //    argument aliasing pattern — see `CacheKey`)
        let key = (TypeId::of::<F>(), args.alias_pattern());
        let mut lookup_span = oclsim::telemetry::span("hpl", "cache_lookup");
        let cached = cache().lock().get(&key).cloned();
        let (entry, cache_hit) = match cached {
            Some(e) => {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                oclsim::telemetry::metrics().kernel_cache_hits.inc();
                if oclsim::telemetry::enabled() {
                    lookup_span.note("outcome", "hit");
                    lookup_span.note("kernel", &e.recorded.name);
                    lookup_span.note("alias_pattern", format!("{:#x}", key.1));
                }
                drop(lookup_span);
                (e, true)
            }
            None => {
                CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                oclsim::telemetry::metrics().kernel_cache_misses.inc();
                lookup_span.note("outcome", "miss");
                if oclsim::telemetry::enabled() {
                    lookup_span.note("alias_pattern", format!("{:#x}", key.1));
                }
                drop(lookup_span);
                let t0 = Instant::now();
                let name = kernel_name_for::<F>();
                let f = self.f;
                let recorded = {
                    let mut record_span = oclsim::telemetry::span("hpl", "record");
                    record_span.note("kernel", &name);
                    capture(name, || {
                        args.register_all();
                        f.invoke(args);
                    })
                };
                let capture_seconds = t0.elapsed().as_secs_f64();
                if recorded.params.len() != args.arity() {
                    return Err(Error::Internal(
                        "argument registration mismatch during capture".into(),
                    ));
                }
                let t1 = Instant::now();
                let (source, line_map) = generate_with_map(&recorded);
                let codegen_seconds = t1.elapsed().as_secs_f64();
                let entry = Arc::new(CacheEntry {
                    recorded,
                    source: Arc::new(source),
                    line_map: Arc::new(line_map),
                    capture_seconds,
                    codegen_seconds,
                });
                cache().lock().insert(key, Arc::clone(&entry));
                (entry, false)
            }
        };
        if let Some(r) = req.as_mut() {
            let root = r.root();
            r.child(
                root,
                "cache.lookup",
                format!(
                    "hpl kernel cache: {} (`{}`)",
                    if cache_hit {
                        "hit"
                    } else {
                        "miss (capture + codegen)"
                    },
                    entry.recorded.name
                ),
            );
        }

        // 2. per-device backend compilation, routed through the serve
        //    layer's shared kernel-binary cache: the active tenant's
        //    service cache when a tenant scope is entered (charging that
        //    tenant's compile quota on misses), the process-global cache
        //    otherwise
        let mut build_span = oclsim::telemetry::span("hpl", "backend_build");
        if oclsim::telemetry::enabled() {
            build_span.note("kernel", &entry.recorded.name);
            build_span.note("device", device.name());
        }
        let ctx = &runtime().entry(device).context;
        let build_options = opt_level().flag();
        let built = match crate::session::current_tenant() {
            Some(session) => {
                session.build_program(ctx, device, entry.source.as_str(), build_options)
            }
            None => oclsim::serve::global_binary_cache().get_or_build(
                ctx,
                device,
                entry.source.as_str(),
                build_options,
                None,
            ),
        }
        .map_err(|e| match e {
            oclsim::Error::BuildFailure(_) => Error::Internal(format!(
                "HPL-generated source failed to compile (this is an HPL codegen bug): \
                 {e}\nsource:\n{}",
                entry.source
            )),
            other => Error::Backend(other),
        })?;
        build_span.note("outcome", if built.hit { "hit" } else { "miss" });
        drop(build_span);
        if let Some(r) = req.as_mut() {
            let root = r.root();
            r.child(
                root,
                "cache.lookup",
                format!(
                    "binary cache, device `{}`: {}",
                    device.name(),
                    if built.hit { "hit" } else { "miss (build)" }
                ),
            );
        }
        let build_seconds = built.build_seconds;
        if !built.hit {
            let lints = built.program.diagnostics();
            if !lints.is_empty() {
                kernel_lints().lock().extend(lints);
            }
        }

        let kernel = built.program.kernel(&entry.recorded.name)?;
        Ok(Front {
            kernel,
            cache_hit,
            capture_seconds: if cache_hit {
                0.0
            } else {
                entry.capture_seconds
            },
            codegen_seconds: if cache_hit {
                0.0
            } else {
                entry.codegen_seconds
            },
            build_seconds,
            source: Arc::clone(&entry.source),
        })
    }
}

/// Output of the cached eval front-end (capture/codegen/build).
struct Front {
    kernel: oclsim::Kernel,
    cache_hit: bool,
    capture_seconds: f64,
    codegen_seconds: f64,
    build_seconds: f64,
    source: Arc<String>,
}

/// Joinable handle returned by [`Eval::run_async`]: the launch's backend
/// [`Event`] plus the front-end half of its [`EvalProfile`].
pub struct AsyncEval {
    event: Event,
    profile: EvalProfile,
    /// Open request trace when the eval ran inside a tenant scope; closed
    /// (and, on failure, dumped as a postmortem) by [`AsyncEval::wait`].
    obs: Option<AsyncObs>,
}

struct AsyncObs {
    session: Arc<oclsim::serve::Session>,
    req: oclsim::obs::Request,
    /// The request's `sched.enqueue` node, completed at wait time.
    sched: oclsim::obs::NodeId,
    kernel: String,
}

impl std::fmt::Debug for AsyncEval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncEval")
            .field("status", &self.event.status())
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

impl AsyncEval {
    /// The backend event of the enqueued kernel launch. Useful for
    /// building explicit dependency graphs (`oclsim::wait_for_events`,
    /// markers, user-event gating) or for inspecting the modeled
    /// profiling stamps after completion.
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// Current lifecycle state of the launch (non-blocking).
    pub fn status(&self) -> EventStatus {
        self.event.status()
    }

    /// Block until the launch resolves and return the completed
    /// [`EvalProfile`]. If the launch failed — including when a command it
    /// depended on failed and poisoned it — the error carries the causal
    /// chain (`oclsim::Error::root_cause`), and inside a tenant scope the
    /// request trace is closed as failed and dumped as a postmortem
    /// ([`oclsim::take_postmortems`]).
    pub fn wait(self) -> Result<EvalProfile> {
        match self.event.wait() {
            Ok(()) => {
                let mut profile = self.profile;
                profile.kernel_modeled_seconds = self.event.modeled_seconds();
                if let Some(mut obs) = self.obs {
                    let timing = self.event.kernel_timing();
                    let modeled = timing
                        .as_ref()
                        .map(|t| t.device_seconds)
                        .unwrap_or(profile.kernel_modeled_seconds);
                    obs.req.set_modeled(obs.sched, modeled);
                    let launch = obs.req.child(
                        obs.sched,
                        "exec.launch",
                        launch_node_detail(&obs.kernel, &timing),
                    );
                    obs.req.set_modeled(launch, modeled);
                    obs.req.finish(false);
                }
                Ok(profile)
            }
            Err(e) => {
                if let Some(mut obs) = self.obs {
                    obs.req.set_error(obs.sched, &e);
                    let root = obs.req.root();
                    obs.req.set_error(root, &e);
                    obs.session.emit_postmortem(obs.req.finish(true), &e);
                }
                Err(Error::Backend(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::predef::idx;
    use crate::scalar::Double;

    fn saxpy(y: &Array<f64, 1>, x: &Array<f64, 1>, a: &Double) {
        y.at(idx()).assign(a.v() * x.at(idx()) + y.at(idx()));
    }

    /// Tests that clear the kernel cache (or assert a hit that a clear
    /// could race away) serialize on this.
    static CACHE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn saxpy_end_to_end() {
        let n = 1000;
        let y = Array::<f64, 1>::from_vec([n], (0..n).map(|i| i as f64).collect());
        let x = Array::<f64, 1>::from_vec([n], (0..n).map(|i| 2.0 * i as f64).collect());
        let a = Double::new(3.0);
        let profile = eval(saxpy).run((&y, &x, &a)).unwrap();
        assert!(!profile.cache_hit);
        assert!(profile.capture_seconds > 0.0);
        assert!(profile.kernel_modeled_seconds > 0.0);
        for i in (0..n).step_by(97) {
            assert_eq!(y.get(i), 3.0 * 2.0 * i as f64 + i as f64);
        }
        // second invocation hits the cache
        let p2 = eval(saxpy).run((&y, &x, &a)).unwrap();
        assert!(p2.cache_hit);
        assert_eq!(p2.capture_seconds, 0.0);
        assert_eq!(p2.build_seconds, 0.0);
        assert!(p2.paper_seconds() < profile.paper_seconds());
    }

    #[test]
    fn alias_pattern_never_pairs_distinct_argument_kinds() {
        // arrays and scalars share one handle allocator; with separate
        // counters a fresh scalar's id could equal a fresh array's id and
        // the pattern would fake an aliasing pair (seen as a duplicate
        // cache entry on the first process-wide run of a benchmark)
        let y = Array::<f64, 1>::new([8]);
        let x = Array::<f64, 1>::new([8]);
        let a = Double::new(1.0);
        assert_ne!(y.handle_id(), a.handle_id());
        assert_eq!(
            (&y, &x, &a).alias_pattern(),
            0x012,
            "three distinct arguments: every nibble names its own position"
        );
        assert_eq!(
            (&y, &y, &a).alias_pattern(),
            0x002,
            "a genuinely repeated array folds onto its first position"
        );
    }

    #[test]
    fn scalar_value_read_at_eval_time() {
        fn fill(out: &Array<f64, 1>, v: &Double) {
            out.at(idx()).assign(v.v());
        }
        let out = Array::<f64, 1>::new([16]);
        let v = Double::new(1.0);
        eval(fill).run((&out, &v)).unwrap();
        assert_eq!(out.get(0), 1.0);
        v.set(9.0);
        eval(fill).run((&out, &v)).unwrap();
        assert_eq!(
            out.get(0),
            9.0,
            "cached kernel must still see fresh scalar values"
        );
    }

    #[test]
    fn explicit_global_and_local() {
        fn touch(out: &Array<f64, 1>) {
            out.at(idx()).assign(crate::predef::lidx().cast::<f64>());
        }
        let out = Array::<f64, 1>::new([64]);
        eval(touch).global(&[64]).local(&[16]).run((&out,)).unwrap();
        assert_eq!(out.get(0), 0.0);
        assert_eq!(out.get(15), 15.0);
        assert_eq!(out.get(16), 0.0, "local id restarts per group");
    }

    #[test]
    fn eval_without_arrays_needs_explicit_global() {
        fn nothing(v: &Double) {
            let x = Double::new(0.0);
            x.assign(v.v());
        }
        let v = Double::new(1.0);
        let err = eval(nothing).run((&v,)).unwrap_err();
        assert!(matches!(err, Error::InvalidEval(_)));
        eval(nothing).global(&[4]).run((&v,)).unwrap();
    }

    #[test]
    fn transfer_minimisation_second_eval_no_h2d() {
        fn scale(y: &Array<f64, 1>, a: &Double) {
            y.at(idx()).assign(y.at(idx()) * a.v());
        }
        let y = Array::<f64, 1>::from_vec([256], vec![1.0; 256]);
        let a = Double::new(2.0);
        let p1 = eval(scale).run((&y, &a)).unwrap();
        assert!(
            p1.transfer_modeled_seconds > 0.0,
            "first eval must upload y"
        );
        let p2 = eval(scale).run((&y, &a)).unwrap();
        assert_eq!(
            p2.transfer_modeled_seconds, 0.0,
            "y is already valid on the device: HPL's analysis avoids the transfer"
        );
        assert_eq!(y.get(0), 4.0, "both scalings applied");
    }

    #[test]
    fn kernel_cache_management() {
        let _guard = CACHE_LOCK.lock();
        clear_kernel_cache();
        assert_eq!(kernel_cache_len(), 0);
        fn k1(out: &Array<f64, 1>) {
            out.at(idx()).assign(1.0f64);
        }
        let out = Array::<f64, 1>::new([8]);
        eval(k1).run((&out,)).unwrap();
        assert_eq!(kernel_cache_len(), 1);
        eval(k1).run((&out,)).unwrap();
        assert_eq!(kernel_cache_len(), 1, "same fn reuses the entry");
        clear_kernel_cache();
        assert_eq!(kernel_cache_len(), 0);
    }

    #[test]
    fn cache_stats_reports_double_eval_as_hit() {
        fn stats_probe(out: &Array<f64, 1>) {
            out.at(idx()).assign(2.0f64);
        }
        let _guard = CACHE_LOCK.lock();
        let before = cache_stats();
        let out = Array::<f64, 1>::new([16]);
        let p1 = eval(stats_probe).run((&out,)).unwrap();
        assert!(!p1.cache_hit);
        let mid = cache_stats();
        assert!(mid.misses > before.misses, "first eval is a miss");
        let p2 = eval(stats_probe).run((&out,)).unwrap();
        assert!(p2.cache_hit, "second eval of the same kernel is a hit");
        let after = cache_stats();
        assert!(after.hits > mid.hits, "the hit shows up in cache_stats");
        assert!(after.hit_ratio() > 0.0);
        let entry = after
            .entries
            .iter()
            .find(|e| e.kernel.contains("stats_probe"))
            .expect("the probe kernel has a cache entry");
        assert_eq!(entry.alias_pattern, 0, "single distinct argument");
        assert!(entry.devices_built >= 1, "binary built for the run device");
    }

    #[test]
    fn cache_eviction_counts_cleared_entries() {
        fn evict_probe(out: &Array<f64, 1>) {
            out.at(idx()).assign(5.0f64);
        }
        let _guard = CACHE_LOCK.lock();
        let out = Array::<f64, 1>::new([8]);
        eval(evict_probe).run((&out,)).unwrap();
        let before = cache_stats();
        clear_kernel_cache();
        let after = cache_stats();
        assert!(after.evictions > before.evictions, "clear counts evictions");
    }

    #[test]
    fn generated_source_is_inspectable() {
        fn twice(out: &Array<f32, 1>, input: &Array<f32, 1>) {
            out.at(idx()).assign(input.at(idx()) * 2.0f32);
        }
        let out = Array::<f32, 1>::new([8]);
        let input = Array::<f32, 1>::new([8]);
        let p = eval(twice).run((&out, &input)).unwrap();
        assert!(p.source.contains("__kernel void hpl_twice"), "{}", p.source);
        assert!(p.source.contains("2.0f"), "{}", p.source);
    }

    #[test]
    fn run_async_chains_through_inferred_dependencies() {
        fn scale2(y: &Array<f64, 1>, x: &Array<f64, 1>) {
            y.at(idx()).assign(x.at(idx()) * 2.0f64);
        }
        fn plus_one(z: &Array<f64, 1>, y: &Array<f64, 1>) {
            z.at(idx()).assign(y.at(idx()) + 1.0f64);
        }
        let n = 256;
        let x = Array::<f64, 1>::from_vec([n], (0..n).map(|i| i as f64).collect());
        let y = Array::<f64, 1>::new([n]);
        let z = Array::<f64, 1>::new([n]);
        let h1 = eval(scale2).run_async((&y, &x)).unwrap();
        let ev1 = h1.event().clone();
        // the second launch must be inferred to depend on the first
        // through y (read-after-write), despite the out-of-order queue
        let h2 = eval(plus_one).run_async((&z, &y)).unwrap();
        let ev2 = h2.event().clone();
        let p2 = h2.wait().unwrap();
        let p1 = h1.wait().unwrap();
        assert!(p1.kernel_modeled_seconds > 0.0);
        assert!(p2.kernel_modeled_seconds > 0.0);
        for i in (0..n).step_by(41) {
            assert_eq!(z.get(i), 2.0 * i as f64 + 1.0);
        }
        assert!(
            ev2.profile().started >= ev1.profile().ended,
            "dependent kernel cannot start on the modeled timeline before its producer ends"
        );
    }

    #[test]
    fn run_async_status_and_sync_settling() {
        fn triple(y: &Array<f64, 1>, x: &Array<f64, 1>) {
            y.at(idx()).assign(x.at(idx()) * 3.0f64);
        }
        let x = Array::<f64, 1>::from_vec([128], vec![2.0; 128]);
        let y = Array::<f64, 1>::new([128]);
        let h = eval(triple).run_async((&y, &x)).unwrap();
        assert!(h.status() != oclsim::EventStatus::Error);
        // a plain host read must wait out the pending async writer
        assert_eq!(y.get(7), 6.0);
        assert_eq!(h.status(), oclsim::EventStatus::Complete);
        h.wait().unwrap();
    }

    #[test]
    fn written_params_reflect_capture_aliasing() {
        fn add_into(dst: &Array<f64, 1>, src: &Array<f64, 1>) {
            dst.at(idx()).assign(dst.at(idx()) + src.at(idx()));
        }
        // aliased: handle → param is last-insert-wins, so every access
        // lands on param 1 and param 0 is recorded as untouched
        let a = Array::<f64, 1>::new([8]);
        let args = (&a, &a);
        let recorded = capture("alias_probe".into(), || {
            args.register_all();
            add_into(args.0, args.1);
        });
        assert_eq!(recorded.written_params(), vec![false, true]);
        // distinct arrays: the write is attributed where it belongs
        let b = Array::<f64, 1>::new([8]);
        let args = (&a, &b);
        let recorded = capture("noalias_probe".into(), || {
            args.register_all();
            add_into(args.0, args.1);
        });
        assert_eq!(recorded.written_params(), vec![true, false]);
    }

    #[test]
    fn aliased_arguments_do_not_poison_the_kernel_cache() {
        fn add_into(dst: &Array<f64, 1>, src: &Array<f64, 1>) {
            dst.at(idx()).assign(dst.at(idx()) + src.at(idx()));
        }
        // first invocation aliases both parameters onto one array; the
        // recording collapses onto the last parameter but both argument
        // slots bind the same buffer, so the result is still right
        let a = Array::<f64, 1>::from_vec([64], vec![3.0; 64]);
        eval(add_into).run((&a, &a)).unwrap();
        assert_eq!(a.get(5), 6.0, "aliased call doubles in place");
        // the same function with distinct arrays must NOT reuse that
        // recording (it only references one of the two parameters)
        let p = Array::<f64, 1>::from_vec([64], vec![10.0; 64]);
        let q = Array::<f64, 1>::from_vec([64], vec![4.0; 64]);
        let prof = eval(add_into).run((&p, &q)).unwrap();
        assert!(
            !prof.cache_hit,
            "aliasing pattern must be part of the cache key"
        );
        assert_eq!(p.get(9), 14.0, "dst += src with distinct arrays");
        assert_eq!(q.get(9), 4.0, "source operand must be untouched");
        // and re-running either pattern now hits its own entry
        assert!(eval(add_into).run((&p, &q)).unwrap().cache_hit);
        assert!(eval(add_into).run((&a, &a)).unwrap().cache_hit);
    }

    #[test]
    fn failed_async_eval_poisons_dependents() {
        use crate::predef::szx;
        fn oob(y: &Array<f64, 1>) {
            // every work item writes y[szx], one past the end: trapped
            y.at(szx()).assign(1.0f64);
        }
        fn consume(z: &Array<f64, 1>, y: &Array<f64, 1>) {
            z.at(idx()).assign(y.at(idx()));
        }
        let y = Array::<f64, 1>::new([32]);
        let z = Array::<f64, 1>::new([32]);
        let h1 = eval(oob).run_async((&y,)).unwrap();
        let h2 = eval(consume).run_async((&z, &y)).unwrap();
        let ev2 = h2.event().clone();
        let err2 = h2.wait().unwrap_err();
        assert_eq!(ev2.status(), oclsim::EventStatus::Error);
        match err2 {
            Error::Backend(e) => {
                assert!(
                    matches!(e, oclsim::Error::DependencyFailed { .. }),
                    "dependent must carry the causal chain, got: {e}"
                );
                assert!(
                    matches!(e.root_cause(), oclsim::Error::MemoryFault { .. }),
                    "root cause must be the out-of-bounds trap, got: {}",
                    e.root_cause()
                );
            }
            other => panic!("expected a backend error, got: {other}"),
        }
        assert!(
            h1.wait().is_err(),
            "the faulting launch itself reports the trap"
        );
    }
}
