//! The HPL runtime: device discovery, per-device contexts and queues, and
//! global transfer accounting.
//!
//! The paper's HPL hides "the manual setup of the environment, management
//! of the buffers … and the transfers between them" behind the library;
//! this module is that hidden machinery.

use std::sync::OnceLock;

use parking_lot::Mutex;

use oclsim::{CommandQueue, Context, Device, DeviceType, Platform};

/// One usable device with its context and queue.
pub struct DeviceEntry {
    /// The simulated device.
    pub device: Device,
    /// A context private to this device (so each device's memory capacity
    /// is enforced independently).
    pub context: Context,
    /// The in-order queue used for synchronous transfers and kernel
    /// launches (`eval(..).run(..)`).
    pub queue: CommandQueue,
    /// The out-of-order queue used by the asynchronous path
    /// (`eval(..).run_async(..)`): commands are ordered only by their
    /// inferred wait lists, so independent transfers and kernels overlap
    /// on the modeled device timeline.
    pub async_queue: CommandQueue,
}

/// Cumulative host↔device transfer statistics, used by tests and by the
/// transfer-minimisation ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferStats {
    /// Host→device transfer count.
    pub h2d_count: u64,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host transfer count.
    pub d2h_count: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
    /// Modeled seconds spent on all transfers.
    pub modeled_seconds: f64,
}

/// The global HPL runtime.
pub struct Runtime {
    platform: Platform,
    entries: Vec<DeviceEntry>,
    default_device: usize,
    stats: Mutex<TransferStats>,
}

static RUNTIME: OnceLock<Runtime> = OnceLock::new();

/// Access the global runtime (initialised on first use with the default
/// platform: Tesla-class GPU, Quadro-class GPU, CPU).
pub fn runtime() -> &'static Runtime {
    RUNTIME.get_or_init(|| Runtime::new(Platform::default_platform()))
}

impl Runtime {
    fn new(platform: Platform) -> Runtime {
        let mut span = oclsim::telemetry::span("runtime", "init");
        span.note("devices", platform.devices().len());
        let entries: Vec<DeviceEntry> = platform
            .devices()
            .iter()
            .map(|d| {
                let context = Context::new(std::slice::from_ref(d))
                    .expect("single-device context creation cannot fail");
                let queue = CommandQueue::new(&context, d)
                    .expect("queue creation on own context cannot fail");
                let async_queue = CommandQueue::new_out_of_order(&context, d)
                    .expect("queue creation on own context cannot fail");
                DeviceEntry {
                    device: d.clone(),
                    context,
                    queue,
                    async_queue,
                }
            })
            .collect();
        let default_device = entries
            .iter()
            .position(|e| e.device.device_type() != DeviceType::Cpu)
            .unwrap_or(0);
        Runtime {
            platform,
            entries,
            default_device,
            stats: Mutex::new(TransferStats::default()),
        }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// All devices, in discovery order.
    pub fn devices(&self) -> Vec<Device> {
        self.entries.iter().map(|e| e.device.clone()).collect()
    }

    /// The default execution device: "the first device found in the system
    /// that is not a standard general-purpose CPU" (§III-C).
    pub fn default_device(&self) -> Device {
        self.entries[self.default_device].device.clone()
    }

    /// The entry (context + queue) for a device.
    pub fn entry(&self, device: &Device) -> &DeviceEntry {
        self.entries
            .iter()
            .find(|e| &e.device == device)
            .unwrap_or_else(|| {
                panic!(
                    "device `{}` is not managed by the HPL runtime",
                    device.name()
                )
            })
    }

    /// Find a device by a case-insensitive name fragment (convenience for
    /// examples and benches: `device_named("quadro")`).
    pub fn device_named(&self, fragment: &str) -> Option<Device> {
        let frag = fragment.to_lowercase();
        self.entries
            .iter()
            .map(|e| &e.device)
            .find(|d| d.name().to_lowercase().contains(&frag))
            .cloned()
    }

    /// Record a host→device transfer.
    pub(crate) fn note_h2d(&self, bytes: usize, modeled_seconds: f64) {
        let mut s = self.stats.lock();
        s.h2d_count += 1;
        s.h2d_bytes += bytes as u64;
        s.modeled_seconds += modeled_seconds;
    }

    /// Record a device→host transfer.
    pub(crate) fn note_d2h(&self, bytes: usize, modeled_seconds: f64) {
        let mut s = self.stats.lock();
        s.d2h_count += 1;
        s.d2h_bytes += bytes as u64;
        s.modeled_seconds += modeled_seconds;
    }

    /// Snapshot the cumulative transfer statistics.
    pub fn transfer_stats(&self) -> TransferStats {
        *self.stats.lock()
    }

    /// Reset the transfer statistics (benchmark harness bookkeeping).
    pub fn reset_transfer_stats(&self) {
        *self.stats.lock() = TransferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_discovers_paper_devices() {
        let rt = runtime();
        assert_eq!(rt.devices().len(), 5);
        assert_eq!(rt.default_device().device_type(), DeviceType::Gpu);
        assert!(rt.default_device().name().contains("Tesla"));
        // the default device stays the plain (roofline-only) Tesla
        assert!(rt.default_device().profile().cache.is_none());
    }

    #[test]
    fn device_lookup_by_name() {
        let rt = runtime();
        assert!(rt.device_named("quadro").is_some());
        assert!(rt.device_named("TESLA").is_some());
        assert!(rt.device_named("does-not-exist").is_none());
        // "tesla" keeps resolving to the paper's cache-less device; the
        // cached variants are reachable by their L1-size fragments
        assert!(rt.device_named("tesla").unwrap().profile().cache.is_none());
        let d48 = rt.device_named("48k").unwrap();
        assert!(d48.profile().cache.is_some());
        let d16 = rt.device_named("16k").unwrap();
        assert!(d16.profile().cache.is_some());
        assert_ne!(d48, d16);
    }

    #[test]
    fn entries_pair_queue_and_device() {
        let rt = runtime();
        for d in rt.devices() {
            let e = rt.entry(&d);
            assert_eq!(e.queue.device(), &d);
            assert!(e.context.contains(&d));
            assert!(!e.queue.is_out_of_order());
            assert!(e.async_queue.is_out_of_order());
            assert_eq!(e.async_queue.device(), &d);
        }
    }

    #[test]
    fn transfer_stats_accumulate_and_reset() {
        let rt = runtime();
        rt.reset_transfer_stats();
        rt.note_h2d(100, 1e-6);
        rt.note_d2h(50, 2e-6);
        let s = rt.transfer_stats();
        assert_eq!(s.h2d_count, 1);
        assert_eq!(s.h2d_bytes, 100);
        assert_eq!(s.d2h_count, 1);
        assert_eq!(s.d2h_bytes, 50);
        assert!(s.modeled_seconds > 2.9e-6);
        rt.reset_transfer_stats();
        assert_eq!(rt.transfer_stats(), TransferStats::default());
    }
}
