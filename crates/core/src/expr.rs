//! Typed kernel expressions and their operators.
//!
//! [`Expr<T>`] wraps a recorded IR node with a compile-time element type,
//! so kernels get Rust's type checking on top of the runtime capture: you
//! cannot add a `float` expression to a `double` expression without an
//! explicit [`Expr::cast`], exactly as in C++ HPL where the template types
//! enforce it.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::ir::{HBinOp, HStmt, HStmtKind, Node, RecordSite};
use crate::kernel::with_recorder;
use crate::scalar::{HplScalar, Scalar};

/// A kernel expression of element type `T` (`bool` for conditions).
pub struct Expr<T> {
    node: Arc<Node>,
    _t: PhantomData<T>,
}

impl<T> Clone for Expr<T> {
    fn clone(&self) -> Self {
        Expr {
            node: Arc::clone(&self.node),
            _t: PhantomData,
        }
    }
}

impl<T> Expr<T> {
    /// Wrap a raw node (crate-internal plumbing).
    pub(crate) fn from_node(node: Arc<Node>) -> Expr<T> {
        Expr {
            node,
            _t: PhantomData,
        }
    }

    /// The underlying IR node.
    pub(crate) fn node(&self) -> Arc<Node> {
        Arc::clone(&self.node)
    }

    fn is_lvalue(&self) -> bool {
        matches!(
            &*self.node,
            Node::Var(..) | Node::ParamElem { .. } | Node::LocalElem { .. }
        )
    }
}

/// Conversion into a kernel expression of element type `T`. Implemented by
/// expressions themselves, by plain Rust values (captured as literals), and
/// by HPL scalars.
pub trait IntoExpr<T> {
    /// Build the expression.
    fn into_expr(self) -> Expr<T>;
}

impl<T> IntoExpr<T> for Expr<T> {
    fn into_expr(self) -> Expr<T> {
        self
    }
}

impl<T> IntoExpr<T> for &Expr<T> {
    fn into_expr(self) -> Expr<T> {
        self.clone()
    }
}

impl<T: HplScalar> IntoExpr<T> for T {
    fn into_expr(self) -> Expr<T> {
        Expr::from_node(Arc::new(self.lit_node()))
    }
}

impl<T: HplScalar> IntoExpr<T> for &Scalar<T> {
    fn into_expr(self) -> Expr<T> {
        self.v()
    }
}

impl<T: HplScalar> IntoExpr<T> for Scalar<T> {
    fn into_expr(self) -> Expr<T> {
        self.v()
    }
}

fn bin<T>(op: HBinOp, l: Arc<Node>, r: Arc<Node>) -> Expr<T> {
    Expr::from_node(Arc::new(Node::Bin { op, l, r }))
}

// ---- arithmetic operators ---------------------------------------------------

macro_rules! impl_arith {
    ($($trait:ident :: $method:ident => $op:ident),* $(,)?) => {
        $(
            impl<T: HplScalar, R: IntoExpr<T>> std::ops::$trait<R> for Expr<T> {
                type Output = Expr<T>;
                fn $method(self, rhs: R) -> Expr<T> {
                    bin(HBinOp::$op, self.node(), rhs.into_expr().node())
                }
            }
            impl<T: HplScalar, R: IntoExpr<T>> std::ops::$trait<R> for &Expr<T> {
                type Output = Expr<T>;
                fn $method(self, rhs: R) -> Expr<T> {
                    bin(HBinOp::$op, self.node(), rhs.into_expr().node())
                }
            }
        )*
    };
}
impl_arith!(
    Add::add => Add,
    Sub::sub => Sub,
    Mul::mul => Mul,
    Div::div => Div,
    Rem::rem => Rem,
    BitAnd::bitand => BitAnd,
    BitOr::bitor => BitOr,
    BitXor::bitxor => BitXor,
    Shl::shl => Shl,
    Shr::shr => Shr,
);

// literal on the left: `2.0 * expr`
macro_rules! impl_left_literal {
    ($($t:ty),*) => {
        $(
            impl std::ops::Add<Expr<$t>> for $t {
                type Output = Expr<$t>;
                fn add(self, rhs: Expr<$t>) -> Expr<$t> {
                    bin(HBinOp::Add, self.into_expr().node(), rhs.node())
                }
            }
            impl std::ops::Sub<Expr<$t>> for $t {
                type Output = Expr<$t>;
                fn sub(self, rhs: Expr<$t>) -> Expr<$t> {
                    bin(HBinOp::Sub, self.into_expr().node(), rhs.node())
                }
            }
            impl std::ops::Mul<Expr<$t>> for $t {
                type Output = Expr<$t>;
                fn mul(self, rhs: Expr<$t>) -> Expr<$t> {
                    bin(HBinOp::Mul, self.into_expr().node(), rhs.node())
                }
            }
            impl std::ops::Div<Expr<$t>> for $t {
                type Output = Expr<$t>;
                fn div(self, rhs: Expr<$t>) -> Expr<$t> {
                    bin(HBinOp::Div, self.into_expr().node(), rhs.node())
                }
            }
        )*
    };
}
impl_left_literal!(i8, u8, i16, u16, i32, u32, i64, u64, f32, f64);

impl<T: HplScalar> std::ops::Neg for Expr<T> {
    type Output = Expr<T>;
    fn neg(self) -> Expr<T> {
        Expr::from_node(Arc::new(Node::Neg(self.node())))
    }
}

// ---- comparisons and logic -----------------------------------------------------

impl<T: HplScalar> Expr<T> {
    /// `self < rhs`
    pub fn lt(&self, rhs: impl IntoExpr<T>) -> Expr<bool> {
        bin(HBinOp::Lt, self.node(), rhs.into_expr().node())
    }

    /// `self <= rhs`
    pub fn le(&self, rhs: impl IntoExpr<T>) -> Expr<bool> {
        bin(HBinOp::Le, self.node(), rhs.into_expr().node())
    }

    /// `self > rhs`
    pub fn gt(&self, rhs: impl IntoExpr<T>) -> Expr<bool> {
        bin(HBinOp::Gt, self.node(), rhs.into_expr().node())
    }

    /// `self >= rhs`
    pub fn ge(&self, rhs: impl IntoExpr<T>) -> Expr<bool> {
        bin(HBinOp::Ge, self.node(), rhs.into_expr().node())
    }

    /// `self == rhs`
    pub fn eq_(&self, rhs: impl IntoExpr<T>) -> Expr<bool> {
        bin(HBinOp::Eq, self.node(), rhs.into_expr().node())
    }

    /// `self != rhs`
    pub fn ne_(&self, rhs: impl IntoExpr<T>) -> Expr<bool> {
        bin(HBinOp::Ne, self.node(), rhs.into_expr().node())
    }

    /// Explicit conversion to another element type: `(U)(self)`.
    pub fn cast<U: HplScalar>(&self) -> Expr<U> {
        Expr::from_node(Arc::new(Node::Cast {
            to: U::CTYPE,
            e: self.node(),
        }))
    }

    /// `cond ? self : other` — requires the receiver via [`Expr::select`]
    /// on the condition for readability; kept here for symmetric access.
    pub fn select_with(cond: Expr<bool>, t: impl IntoExpr<T>, f: impl IntoExpr<T>) -> Expr<T> {
        Expr::from_node(Arc::new(Node::Ternary {
            cond: cond.node(),
            t: t.into_expr().node(),
            f: f.into_expr().node(),
        }))
    }
}

impl Expr<bool> {
    /// Logical `&&` (short-circuit in the generated code).
    pub fn and(&self, rhs: Expr<bool>) -> Expr<bool> {
        bin(HBinOp::And, self.node(), rhs.node())
    }

    /// Logical `||`.
    pub fn or(&self, rhs: Expr<bool>) -> Expr<bool> {
        bin(HBinOp::Or, self.node(), rhs.node())
    }

    /// Logical negation.
    pub fn not(&self) -> Expr<bool> {
        Expr::from_node(Arc::new(Node::Not(self.node())))
    }

    /// `self ? t : f`.
    pub fn select<T: HplScalar>(&self, t: impl IntoExpr<T>, f: impl IntoExpr<T>) -> Expr<T> {
        Expr::<T>::select_with(self.clone(), t, f)
    }
}

// ---- assignment -----------------------------------------------------------------

impl<T: HplScalar> Expr<T> {
    fn check_lvalue(&self, what: &str) {
        assert!(
            self.is_lvalue(),
            "{what} requires an assignable expression (a variable or an array element), \
             got a computed value"
        );
    }

    /// Record `self = rhs;`. `self` must be an array element or variable.
    #[track_caller]
    pub fn assign(&self, rhs: impl IntoExpr<T>) {
        let site = RecordSite::here();
        self.check_lvalue("assign");
        let rhs = rhs.into_expr();
        with_recorder(|r| {
            r.push_stmt(HStmt::new(
                HStmtKind::Assign {
                    lhs: self.node(),
                    rhs: rhs.node(),
                },
                site,
            ))
        });
    }

    #[track_caller]
    fn compound(&self, op: HBinOp, rhs: impl IntoExpr<T>) {
        let site = RecordSite::here();
        self.check_lvalue("compound assignment");
        let rhs = rhs.into_expr();
        with_recorder(|r| {
            r.push_stmt(HStmt::new(
                HStmtKind::CompoundAssign {
                    lhs: self.node(),
                    op,
                    rhs: rhs.node(),
                },
                site,
            ))
        });
    }

    /// Record `self += rhs;`.
    #[track_caller]
    pub fn assign_add(&self, rhs: impl IntoExpr<T>) {
        self.compound(HBinOp::Add, rhs)
    }

    /// Record `self -= rhs;`.
    #[track_caller]
    pub fn assign_sub(&self, rhs: impl IntoExpr<T>) {
        self.compound(HBinOp::Sub, rhs)
    }

    /// Record `self *= rhs;`.
    #[track_caller]
    pub fn assign_mul(&self, rhs: impl IntoExpr<T>) {
        self.compound(HBinOp::Mul, rhs)
    }

    /// Record `self /= rhs;`.
    #[track_caller]
    pub fn assign_div(&self, rhs: impl IntoExpr<T>) {
        self.compound(HBinOp::Div, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::CType;
    use crate::kernel::capture;
    use crate::predef::idx;

    fn lit_i(v: i64) -> Node {
        Node::LitI(v, CType::I32)
    }

    #[test]
    fn arithmetic_builds_tree() {
        let e = 2i32.into_expr() + 3 * 4i32.into_expr();
        let Node::Bin {
            op: HBinOp::Add,
            l,
            r,
        } = &*e.node()
        else {
            panic!()
        };
        assert_eq!(**l, lit_i(2));
        assert!(matches!(
            &**r,
            Node::Bin {
                op: HBinOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn mixed_literal_sides() {
        let e: Expr<f64> = 2.0 * 3.0f64.into_expr() + 1.0;
        assert!(matches!(
            &*e.node(),
            Node::Bin {
                op: HBinOp::Add,
                ..
            }
        ));
        let e: Expr<f32> = 1.5f32.into_expr() - 0.5;
        assert!(matches!(
            &*e.node(),
            Node::Bin {
                op: HBinOp::Sub,
                ..
            }
        ));
    }

    #[test]
    fn comparisons_yield_bool_exprs() {
        let c = 1i32
            .into_expr()
            .lt(2)
            .and(3i32.into_expr().ge(3))
            .or(4i32.into_expr().eq_(5).not());
        assert!(matches!(&*c.node(), Node::Bin { op: HBinOp::Or, .. }));
    }

    #[test]
    fn cast_node() {
        let e = 1i32.into_expr().cast::<f64>();
        assert!(matches!(&*e.node(), Node::Cast { to: CType::F64, .. }));
    }

    #[test]
    fn select_builds_ternary() {
        let e: Expr<i32> = 1i32.into_expr().lt(2).select(10, 20);
        assert!(matches!(&*e.node(), Node::Ternary { .. }));
    }

    #[test]
    fn assignment_records_statement() {
        let k = capture("t".into(), || {
            let i = crate::scalar::Int::new(0);
            i.v().assign(idx() + 1);
            i.v().assign_add(2);
        });
        assert!(matches!(k.body[1].kind, HStmtKind::Assign { .. }));
        assert!(matches!(
            k.body[2].kind,
            HStmtKind::CompoundAssign {
                op: HBinOp::Add,
                ..
            }
        ));
        // both sites point at this test's assignment lines, in order
        let s1 = k.body[1].site.expect("assign records its site");
        let s2 = k.body[2].site.expect("assign_add records its site");
        assert!(s1.file.ends_with("expr.rs"), "{s1}");
        assert_eq!(s2.line, s1.line + 1, "{s1} then {s2}");
    }

    #[test]
    #[should_panic(expected = "assignable")]
    fn assigning_to_computed_value_panics() {
        capture("t".into(), || {
            (1i32.into_expr() + 2).assign(3);
        });
    }

    #[test]
    fn neg_and_bitops() {
        let e = -(1i32.into_expr());
        assert!(matches!(&*e.node(), Node::Neg(_)));
        let e = (1i32.into_expr() & 3) | (4i32.into_expr() ^ 5);
        assert!(matches!(
            &*e.node(),
            Node::Bin {
                op: HBinOp::BitOr,
                ..
            }
        ));
        let e = 8u32.into_expr() >> 2u32;
        assert!(matches!(
            &*e.node(),
            Node::Bin {
                op: HBinOp::Shr,
                ..
            }
        ));
    }
}
