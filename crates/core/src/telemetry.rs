//! Host-runtime telemetry, re-exported from the backend.
//!
//! HPL and its backend share one telemetry layer (spans + the metrics
//! registry live in [`oclsim::telemetry`]; both crates' instrumented
//! sites feed the same process-wide sinks), so this module is a facade:
//! it re-exports the full API under `hpl::telemetry` and adds the
//! HPL-level convenience [`collect`].
//!
//! Span categories emitted across the two crates:
//!
//! | category    | sites |
//! |-------------|-------|
//! | `hpl`       | `cache_lookup` (hit/miss + key), `record` (kernel capture), `codegen`, `backend_build` |
//! | `clc`       | `build`, `preprocess`, `lex`, `parse`, `sema`, `lower`, `analysis` |
//! | `coherence` | `ensure_on_device`, `sync_host`, `prepare_async` (state before/after, bytes, reason) |
//! | `sched`     | `enqueue`, `dispatch` (modeled start/end attached via `note_modeled`) |
//! | `runtime`   | `init` (platform discovery, queue creation) |

pub use oclsim::telemetry::{
    check_nesting, drain_spans, enabled, metrics, metrics_text, render_span_tree, reset_metrics,
    set_enabled, span, spans_jsonl, Counter, Gauge, Histogram, Metrics, Span, SpanRecord,
};

/// Run `f` with span collection enabled and return its result together
/// with every span the closure emitted (spans from other threads of the
/// process are drained too — callers wanting isolation should not run
/// concurrent work). Restores the previous enablement state afterwards,
/// even on panic.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_enabled(self.0);
        }
    }
    let restore = Restore(enabled());
    set_enabled(true);
    drain_spans();
    let result = f();
    let spans = drain_spans();
    drop(restore);
    (result, spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::eval::eval;
    use crate::predef::idx;

    #[test]
    fn collect_captures_an_eval_pipeline() {
        fn tele_probe(out: &Array<f64, 1>) {
            out.at(idx()).assign(1.0f64);
        }
        let out = Array::<f64, 1>::new([32]);
        let (result, spans) = collect(|| eval(tele_probe).run((&out,)));
        result.unwrap();
        check_nesting(&spans).unwrap();
        for name in ["cache_lookup", "record", "codegen", "backend_build"] {
            assert!(
                spans.iter().any(|s| s.name == name),
                "missing span `{name}` in: {:?}",
                spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
            );
        }
        // the clc pipeline ran under backend_build
        assert!(spans
            .iter()
            .any(|s| s.category == "clc" && s.name == "parse"));
        assert!(spans
            .iter()
            .any(|s| s.category == "clc" && s.name == "sema"));
    }
}
