//! End-to-end coverage of the HPL kernel DSL: every control-flow
//! construct, predefined variable, math function, cast, and datatype is
//! exercised through the full capture → codegen → compile → execute path
//! and checked against host-computed expectations.

use hpl::prelude::*;

#[test]
fn while_loop_collatz_steps() {
    fn collatz(out: &Array<i32, 1>, input: &Array<i32, 1>) {
        let x = Int::new(0);
        let steps = Int::new(0);
        x.assign(input.at(idx()));
        while_(x.v().gt(1), || {
            if_else(
                (x.v() % 2).eq_(0),
                || x.assign(x.v() / 2),
                || x.assign(3 * x.v() + 1),
            );
            steps.assign(steps.v() + 1);
        });
        out.at(idx()).assign(steps.v());
    }

    let inputs: Vec<i32> = (1..=32).collect();
    let input = Array::<i32, 1>::from_vec([32], inputs.clone());
    let out = Array::<i32, 1>::new([32]);
    eval(collatz).run((&out, &input)).unwrap();

    for (i, &n) in inputs.iter().enumerate() {
        let mut x = n;
        let mut steps = 0;
        while x > 1 {
            x = if x % 2 == 0 { x / 2 } else { 3 * x + 1 };
            steps += 1;
        }
        assert_eq!(out.get(i), steps, "collatz({n})");
    }
}

#[test]
fn for_var_with_non_unit_bounds() {
    fn strided(out: &Array<i32, 1>, lo: &Int, hi: &Int) {
        let j = Int::var();
        let acc = Int::new(0);
        for_var(&j, lo.v(), hi.v(), 3, || {
            acc.assign_add(j.v());
        });
        out.at(idx()).assign(acc.v());
    }
    let out = Array::<i32, 1>::new([4]);
    let lo = Int::new(2);
    let hi = Int::new(20);
    eval(strided).run((&out, &lo, &hi)).unwrap();
    let expect: i32 = (2..20).step_by(3).sum();
    assert_eq!(out.get(0), expect);
}

#[test]
fn early_return_skips_rest_of_work_item() {
    fn guarded(out: &Array<i32, 1>, n: &Int) {
        if_(idx().ge(n.v()), || {
            return_();
        });
        out.at(idx()).assign(idx() + 100);
    }
    let out = Array::<i32, 1>::new([8]);
    let n = Int::new(3);
    eval(guarded).run((&out, &n)).unwrap();
    assert_eq!(out.to_vec(), vec![100, 101, 102, 0, 0, 0, 0, 0]);
}

#[test]
fn deeply_nested_control_flow() {
    fn nested(out: &Array<i32, 1>) {
        let acc = Int::new(0);
        for_(0, 4, |i| {
            let i2 = i.clone();
            if_((i.clone() % 2).eq_(0), || {
                for_(0, 3, |j| {
                    let c = Int::new(0);
                    c.assign(i2.clone() * 10 + j);
                    while_(c.v().gt(0), || {
                        acc.assign_add(1);
                        c.assign(c.v() - 7);
                    });
                });
            });
        });
        out.at(idx()).assign(acc.v());
    }
    let out = Array::<i32, 1>::new([2]);
    eval(nested).run((&out,)).unwrap();

    // host replication
    let mut acc = 0;
    for i in 0..4 {
        if i % 2 == 0 {
            for j in 0..3 {
                let mut c = i * 10 + j;
                while c > 0 {
                    acc += 1;
                    c -= 7;
                }
            }
        }
    }
    assert_eq!(out.get(0), acc);
}

#[test]
fn math_functions_match_rust_f64() {
    fn m(out: &Array<f64, 1>, x: &Array<f64, 1>) {
        out.at(0).assign(math::sqrt(x.at(0)));
        out.at(1).assign(math::exp(x.at(1)));
        out.at(2).assign(math::log(x.at(2)));
        out.at(3).assign(math::sin(x.at(3)));
        out.at(4).assign(math::cos(x.at(4)));
        out.at(5).assign(math::fabs(-x.at(5)));
        out.at(6).assign(math::pow(x.at(6), 3.0f64));
        out.at(7).assign(math::fmax(x.at(7), 2.5f64));
        out.at(8).assign(math::fmin(x.at(8), 2.5f64));
        out.at(9).assign(math::floor(x.at(9)));
        out.at(10).assign(math::ceil(x.at(10)));
        out.at(11).assign(math::rsqrt(x.at(11)));
    }
    // `.into()` on literals needs the trait in scope; give the values
    let vals: Vec<f64> = vec![2.0, 0.5, 3.0, 1.2, 0.7, 4.5, 2.0, 1.0, 9.0, 2.7, 2.2, 4.0];
    let x = Array::<f64, 1>::from_vec([12], vals.clone());
    let out = Array::<f64, 1>::new([12]);
    eval(m).global(&[1]).run((&out, &x)).unwrap();

    let expect = [
        2.0f64.sqrt(),
        0.5f64.exp(),
        3.0f64.ln(),
        1.2f64.sin(),
        0.7f64.cos(),
        4.5f64,
        8.0,
        2.5,
        2.5,
        2.0,
        3.0,
        1.0 / 4.0f64.sqrt(),
    ];
    for (i, &e) in expect.iter().enumerate() {
        assert!(
            (out.get(i) - e).abs() < 1e-12,
            "slot {i}: {} vs {e}",
            out.get(i)
        );
    }
}

use hpl::IntoExpr;

#[test]
fn casts_between_every_scalar_pair_used_in_kernels() {
    fn casts(out_i: &Array<i32, 1>, out_f: &Array<f32, 1>, out_u: &Array<u64, 1>) {
        let d = Double::new(3.9);
        out_i.at(0).assign(d.v().cast::<i32>());
        let f = Float::new(-2.7);
        out_i.at(1).assign(f.v().cast::<i32>());
        let i = Int::new(-1);
        out_u.at(0).assign(i.v().cast::<u64>());
        let u = Ulong::new(1u64 << 40);
        out_f.at(0).assign(u.v().cast::<f32>());
        out_f.at(1).assign(7i32.into_expr().cast::<f32>() / 2.0f32);
    }
    let out_i = Array::<i32, 1>::new([2]);
    let out_f = Array::<f32, 1>::new([2]);
    let out_u = Array::<u64, 1>::new([1]);
    eval(casts)
        .global(&[1])
        .run((&out_i, &out_f, &out_u))
        .unwrap();
    assert_eq!(out_i.get(0), 3, "trunc toward zero");
    assert_eq!(out_i.get(1), -2);
    assert_eq!(out_u.get(0), u64::MAX, "-1 as u64");
    assert_eq!(out_f.get(0), (1u64 << 40) as f32);
    assert_eq!(out_f.get(1), 3.5);
}

#[test]
fn three_dimensional_arrays_and_domains() {
    fn vol(out: &Array<i32, 3>) {
        out.at((idz(), idy(), idx()))
            .assign(idz() * 100 + idy() * 10 + idx());
    }
    let out = Array::<i32, 3>::new([2, 3, 4]);
    // global (x=4, y=3, z=2): idx over dim0 of the launch
    eval(vol).global(&[4, 3, 2]).run((&out,)).unwrap();
    for z in 0..2 {
        for y in 0..3 {
            for x in 0..4 {
                assert_eq!(
                    out.get((z, y, x)),
                    (z * 100 + y * 10 + x) as i32,
                    "element ({z},{y},{x})"
                );
            }
        }
    }
}

#[test]
fn unsigned_64bit_arithmetic() {
    fn u64ops(out: &Array<u64, 1>, a: &Ulong, b: &Ulong) {
        out.at(0).assign(a.v() + b.v());
        out.at(1).assign(a.v() * b.v());
        out.at(2).assign(a.v() >> 3u64);
        out.at(3).assign((a.v() & b.v()) | 1u64);
        out.at(4).assign(a.v() % b.v());
    }
    let a = Ulong::new(0xDEAD_BEEF_CAFE_1234);
    let b = Ulong::new(0x1234_5678);
    let out = Array::<u64, 1>::new([5]);
    eval(u64ops).global(&[1]).run((&out, &a, &b)).unwrap();
    let (av, bv) = (0xDEAD_BEEF_CAFE_1234u64, 0x1234_5678u64);
    assert_eq!(out.get(0), av.wrapping_add(bv));
    assert_eq!(out.get(1), av.wrapping_mul(bv));
    assert_eq!(out.get(2), av >> 3);
    assert_eq!(out.get(3), (av & bv) | 1);
    assert_eq!(out.get(4), av % bv);
}

#[test]
fn select_and_logical_operators() {
    fn classify(out: &Array<i32, 1>, x: &Array<i32, 1>) {
        let v = Int::new(0);
        v.assign(x.at(idx()));
        let in_range = v.v().ge(10).and(v.v().le(20));
        let special = v.v().eq_(0).or(v.v().eq_(99));
        out.at(idx())
            .assign(in_range.select(1, special.select(2, 0)));
    }
    let data = vec![5, 10, 15, 20, 25, 0, 99, -3];
    let x = Array::<i32, 1>::from_vec([8], data.clone());
    let out = Array::<i32, 1>::new([8]);
    eval(classify).run((&out, &x)).unwrap();
    let expect: Vec<i32> = data
        .iter()
        .map(|&v| {
            if (10..=20).contains(&v) {
                1
            } else if v == 0 || v == 99 {
                2
            } else {
                0
            }
        })
        .collect();
    assert_eq!(out.to_vec(), expect);
}

#[test]
fn eight_argument_kernel() {
    #[allow(clippy::too_many_arguments)] // eight arguments is the point of the test
    fn k8(
        out: &Array<f64, 1>,
        a: &Array<f64, 1>,
        b: &Array<f64, 1>,
        c: &Array<f64, 1>,
        s1: &Double,
        s2: &Double,
        s3: &Int,
        s4: &Int,
    ) {
        out.at(idx()).assign(
            a.at(idx()) * s1.v()
                + b.at(idx()) * s2.v()
                + c.at(idx()) * (s3.v() + s4.v()).cast::<f64>(),
        );
    }
    let n = 16;
    let mk = |v: f64| Array::<f64, 1>::from_vec([n], vec![v; n]);
    let (out, a, b, c) = (Array::<f64, 1>::new([n]), mk(1.0), mk(2.0), mk(3.0));
    let s1 = Double::new(10.0);
    let s2 = Double::new(100.0);
    let s3 = Int::new(4);
    let s4 = Int::new(6);
    eval(k8)
        .run((&out, &a, &b, &c, &s1, &s2, &s3, &s4))
        .unwrap();
    assert_eq!(out.get(0), 10.0 + 200.0 + 30.0);
}

#[test]
fn private_array_histogram_per_work_item() {
    fn hist(out: &Array<i32, 1>, data: &Array<i32, 1>, chunk: &Int) {
        let counts = Array::<i32, 1>::new([4]); // private
        for_(0, 4, |b| counts.at(b).assign(0));
        for_(0, chunk.v(), |j| {
            let v = Int::new(0);
            v.assign(data.at(idx() * chunk.v() + j) & 3);
            counts.at(v.v()).assign_add(1);
        });
        for_(0, 4, |b| {
            out.at(idx() * 4 + b.clone()).assign(counts.at(b));
        });
    }
    let threads = 8;
    let chunk = 16;
    let data: Vec<i32> = (0..threads * chunk).map(|i| (i * 7 + 3) as i32).collect();
    let d = Array::<i32, 1>::from_vec([threads * chunk], data.clone());
    let out = Array::<i32, 1>::new([threads * 4]);
    let c = Int::new(chunk as i32);
    eval(hist).global(&[threads]).run((&out, &d, &c)).unwrap();

    for t in 0..threads {
        let mut expect = [0i32; 4];
        for j in 0..chunk {
            expect[(data[t * chunk + j] & 3) as usize] += 1;
        }
        for (b, &want) in expect.iter().enumerate() {
            assert_eq!(out.get(t * 4 + b), want, "thread {t} bin {b}");
        }
    }
}

#[test]
fn generated_source_is_stable_across_captures() {
    fn stable(out: &Array<f32, 1>) {
        out.at(idx()).assign(math::sqrt(2.0f32.into_expr()) + 1.0);
    }
    let out = Array::<f32, 1>::new([4]);
    hpl::clear_kernel_cache();
    let p1 = eval(stable).run((&out,)).unwrap();
    hpl::clear_kernel_cache();
    let p2 = eval(stable).run((&out,)).unwrap();
    // names carry a counter; strip the kernel-name line before comparing
    let body = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
    assert_eq!(
        body(&p1.source),
        body(&p2.source),
        "codegen must be deterministic"
    );
}

#[test]
fn local_and_global_barrier_flags_generate() {
    fn sync_both(out: &Array<f32, 1>) {
        let tile = Array::<f32, 1>::local([16]);
        tile.at(lidx()).assign(out.at(idx()));
        barrier(LOCAL | GLOBAL);
        out.at(idx()).assign(tile.at(lidx()) + 1.0f32);
    }
    let out = Array::<f32, 1>::from_vec([32], vec![5.0; 32]);
    let p = eval(sync_both)
        .global(&[32])
        .local(&[16])
        .run((&out,))
        .unwrap();
    assert!(
        p.source
            .contains("CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE"),
        "{}",
        p.source
    );
    assert_eq!(out.get(0), 6.0);
}

#[test]
fn kernels_compose_through_rust_helper_functions() {
    // HPL kernels build abstractions with plain Rust functions over Expr —
    // inlined at capture (paper: kernels "use only standard C++ features")
    fn horner(x: hpl::Expr<f64>, coeffs: &[f64]) -> hpl::Expr<f64> {
        let mut acc: hpl::Expr<f64> = coeffs[0].into_expr();
        for &c in &coeffs[1..] {
            acc = acc * x.clone() + c;
        }
        acc
    }
    fn poly(out: &Array<f64, 1>, input: &Array<f64, 1>) {
        let x = Double::new(0.0);
        x.assign(input.at(idx()));
        out.at(idx()).assign(horner(x.v(), &[2.0, -3.0, 1.0, 5.0]));
    }
    let xs: Vec<f64> = (0..8).map(|i| i as f64 / 2.0).collect();
    let input = Array::<f64, 1>::from_vec([8], xs.clone());
    let out = Array::<f64, 1>::new([8]);
    eval(poly).run((&out, &input)).unwrap();
    for (i, &x) in xs.iter().enumerate() {
        let expect = ((2.0 * x - 3.0) * x + 1.0) * x + 5.0;
        assert_eq!(out.get(i), expect);
    }
}
