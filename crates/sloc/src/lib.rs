//! # sloc — source lines of code
//!
//! A work-alike of David A. Wheeler's *Sloccount*, the instrument the HPL
//! paper uses for its programmability study (§V-A): it "counts the number
//! of source lines of code excluding comments and empty lines (SLOC)".
//!
//! Supported languages: C-family (C, C++, OpenCL C — `//` and `/* */`
//! comments, string/char literals respected) and Rust (additionally
//! handles nested block comments and treats `///` / `//!` doc comments as
//! comments, as they are).

use std::path::Path;

/// Language syntaxes the counter understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// C, C++, OpenCL C: `//`, `/* */`, no nesting.
    CFamily,
    /// Rust: `//`, nested `/* */`.
    Rust,
}

impl Language {
    /// Guess the language from a file extension.
    pub fn from_extension(ext: &str) -> Option<Language> {
        match ext {
            "c" | "h" | "cpp" | "cc" | "cxx" | "hpp" | "cl" | "cu" => Some(Language::CFamily),
            "rs" => Some(Language::Rust),
            _ => None,
        }
    }

    /// Guess the language from a path.
    pub fn from_path(path: &Path) -> Option<Language> {
        path.extension()
            .and_then(|e| e.to_str())
            .and_then(Language::from_extension)
    }
}

/// Count the source lines of code in `source`: physical lines that contain
/// at least one token that is neither whitespace nor comment.
pub fn count(source: &str, lang: Language) -> usize {
    strip_comments(source, lang)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

/// Replace comments with spaces (preserving newlines), respecting string
/// and character literals.
pub fn strip_comments(source: &str, lang: Language) -> String {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'"' => {
                // string literal: copy until unescaped closing quote
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    out.push(b as char);
                    i += 1;
                    if b == b'\\' && i < bytes.len() {
                        out.push(bytes[i] as char);
                        i += 1;
                    } else if b == b'"' {
                        break;
                    }
                }
            }
            b'\'' => {
                // char literal (or Rust lifetime — a lone quote followed by
                // an identifier; copied verbatim either way)
                out.push('\'');
                i += 1;
                // look ahead for a closing quote within a char-literal span
                let mut j = i;
                let mut saw_close = false;
                let mut len = 0;
                while j < bytes.len() && len < 6 {
                    if bytes[j] == b'\\' {
                        j += 2;
                        len += 2;
                        continue;
                    }
                    if bytes[j] == b'\'' {
                        saw_close = true;
                        break;
                    }
                    if bytes[j] == b'\n' {
                        break;
                    }
                    j += 1;
                    len += 1;
                }
                if saw_close {
                    for &b in &bytes[i..=j] {
                        out.push(b as char);
                    }
                    i = j + 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        out.push('\n');
                        i += 1;
                    } else if lang == Language::Rust
                        && bytes[i] == b'/'
                        && i + 1 < bytes.len()
                        && bytes[i + 1] == b'*'
                    {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.push(' ');
            }
            _ => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// Drop the trailing `#[cfg(test)] mod tests { ... }` block from a Rust
/// source. The programmability study counts implementation code, not its
/// tests — the Sloccount-measured programs in the paper carry no test
/// modules.
pub fn strip_rust_tests(source: &str) -> String {
    match source.find("#[cfg(test)]") {
        Some(pos) => source[..pos].to_string(),
        None => source.to_string(),
    }
}

/// Per-file count result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCount {
    /// The path as given.
    pub path: String,
    /// Detected language.
    pub language: Language,
    /// Source lines of code.
    pub sloc: usize,
}

/// Count a file on disk.
pub fn count_file(path: &Path) -> std::io::Result<FileCount> {
    let lang = Language::from_path(path).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("unknown source language for {}", path.display()),
        )
    })?;
    let source = std::fs::read_to_string(path)?;
    Ok(FileCount {
        path: path.display().to_string(),
        language: lang,
        sloc: count(&source, lang),
    })
}

/// Count several files; returns per-file counts and the total.
pub fn count_files(paths: &[&Path]) -> std::io::Result<(Vec<FileCount>, usize)> {
    let mut out = Vec::with_capacity(paths.len());
    let mut total = 0;
    for p in paths {
        let fc = count_file(p)?;
        total += fc.sloc;
        out.push(fc);
    }
    Ok((out, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_excluded() {
        let src = "\n// comment only\nint a;\n\n/* block */\nint b; // trailing\n";
        assert_eq!(count(src, Language::CFamily), 2);
    }

    #[test]
    fn multiline_block_comment() {
        let src = "int a;\n/* spans\nseveral\nlines */\nint b;\n";
        assert_eq!(count(src, Language::CFamily), 2);
    }

    #[test]
    fn code_and_comment_on_same_line_counts() {
        let src = "int a; /* note */\n/* note */ int b;\n";
        assert_eq!(count(src, Language::CFamily), 2);
    }

    #[test]
    fn comment_markers_inside_strings_ignored() {
        let src = "const char* s = \"// not a comment\";\nconst char* t = \"/* neither */\";\n";
        assert_eq!(count(src, Language::CFamily), 2);
        let src = "char c = '/'; char d = '*'; int x;\n";
        assert_eq!(count(src, Language::CFamily), 1);
    }

    #[test]
    fn escaped_quote_in_string() {
        let src = "const char* s = \"say \\\"hi\\\" // still string\"; int a;\n";
        assert_eq!(count(src, Language::CFamily), 1);
    }

    #[test]
    fn rust_nested_block_comments() {
        let src = "fn a() {}\n/* outer /* inner */ still comment */\nfn b() {}\n";
        assert_eq!(count(src, Language::Rust), 2);
        // C does not nest: the same text leaves a trailing token
        let c_like = "int a;\n/* outer /* inner */ int b;\n";
        assert_eq!(count(c_like, Language::CFamily), 2);
    }

    #[test]
    fn rust_doc_comments_are_comments() {
        let src = "//! module docs\n/// item docs\npub fn f() {}\n";
        assert_eq!(count(src, Language::Rust), 1);
    }

    #[test]
    fn rust_lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // comment\n";
        assert_eq!(count(src, Language::Rust), 1);
    }

    #[test]
    fn strip_rust_tests_drops_test_module() {
        let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let stripped = strip_rust_tests(src);
        assert!(stripped.contains("pub fn f"));
        assert!(!stripped.contains("mod tests"));
        assert_eq!(count(&stripped, Language::Rust), 1);
    }

    #[test]
    fn language_detection() {
        assert_eq!(Language::from_extension("cl"), Some(Language::CFamily));
        assert_eq!(Language::from_extension("rs"), Some(Language::Rust));
        assert_eq!(Language::from_extension("py"), None);
        assert_eq!(
            Language::from_path(Path::new("a/b/kernel.cl")),
            Some(Language::CFamily)
        );
    }

    #[test]
    fn empty_source_counts_zero() {
        assert_eq!(count("", Language::CFamily), 0);
        assert_eq!(count("\n\n\n", Language::Rust), 0);
        assert_eq!(count("/* everything\nis\ncomment */", Language::CFamily), 0);
    }

    #[test]
    fn real_kernel_source_counts_sanely() {
        let src = "// header\n__kernel void f(__global float* a) {\n    int i = get_global_id(0);\n    a[i] = 0.0f; // set\n}\n";
        assert_eq!(count(src, Language::CFamily), 4);
    }
}
