//! `sloc` CLI: count source lines of code (Sloccount work-alike).
//!
//! Usage: `sloc FILE...` — prints per-file SLOC and the total.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: sloc FILE...");
        return ExitCode::from(2);
    }
    let mut total = 0usize;
    let mut failed = false;
    for arg in &args {
        match sloc::count_file(Path::new(arg)) {
            Ok(fc) => {
                println!("{:>8}  {:?}  {}", fc.sloc, fc.language, fc.path);
                total += fc.sloc;
            }
            Err(e) => {
                eprintln!("sloc: {arg}: {e}");
                failed = true;
            }
        }
    }
    if args.len() > 1 {
        println!("{total:>8}  total");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
