//! EP — hand-written OpenCL version (the Table I / Figure 6–8 baseline).
//!
//! Deliberately written in classic OpenCL host style, the way the NAS/SHOC
//! C sources the paper measured are written: every API call is followed by
//! an explicit status check, the build log is surfaced on compilation
//! failure, buffers are created/released explicitly, and each argument is
//! bound by index. Together with `kernels/ep.cl` this file is what the
//! programmability study counts against the HPL version.

use oclsim::{Buffer, CommandQueue, Context, Device, Error, MemAccess, Program};

use super::{reduce_outputs, thread_seeds, EpConfig, EpResult};
use crate::common::{serial_device, RunMetrics};

/// The hand-written kernel source.
pub const SOURCE: &str = include_str!("../kernels/ep.cl");

const ARG_SEEDS: usize = 0;
const ARG_SX: usize = 1;
const ARG_SY: usize = 2;
const ARG_Q: usize = 3;
const ARG_PPT: usize = 4;

/// Run EP with manual OpenCL on `device`.
pub fn run(cfg: &EpConfig, device: &Device) -> Result<(EpResult, RunMetrics), Error> {
    let threads = cfg.threads();
    let seeds = thread_seeds(cfg);
    let mut metrics = RunMetrics::default();

    // ---- environment setup ------------------------------------------------
    let context = match Context::new(std::slice::from_ref(device)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("ep: clCreateContext failed: {e}");
            return Err(e);
        }
    };
    let queue = match CommandQueue::new(&context, device) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("ep: clCreateCommandQueue failed: {e}");
            return Err(e);
        }
    };

    // ---- program load and build --------------------------------------------
    let program = Program::from_source(&context, SOURCE);
    if let Err(e) = program.build(hpl::opt_level().flag()) {
        eprintln!(
            "ep: clBuildProgram failed, build log:\n{}",
            program.build_log()
        );
        return Err(e);
    }
    metrics.build_seconds = program.build_duration().as_secs_f64();
    let kernel = match program.kernel("ep") {
        Ok(k) => k,
        Err(e) => {
            eprintln!("ep: clCreateKernel failed: {e}");
            return Err(e);
        }
    };

    // ---- buffer creation ----------------------------------------------------
    let seeds_bytes = 8 * threads;
    let sums_bytes = 8 * threads;
    let q_bytes = 4 * threads * 10;
    let seeds_buf = create_buffer(&context, "seeds", seeds_bytes, MemAccess::ReadOnly)?;
    let sx_buf = create_buffer(&context, "sx", sums_bytes, MemAccess::ReadWrite)?;
    let sy_buf = create_buffer(&context, "sy", sums_bytes, MemAccess::ReadWrite)?;
    let q_buf = create_buffer(&context, "q", q_bytes, MemAccess::ReadWrite)?;

    // ---- host -> device transfers ---------------------------------------------
    match queue.enqueue_write(&seeds_buf, 0, &seeds) {
        Ok(ev) => metrics.transfer_modeled_seconds += ev.modeled_seconds(),
        Err(e) => {
            eprintln!("ep: clEnqueueWriteBuffer(seeds) failed: {e}");
            return Err(e);
        }
    }

    // ---- argument binding ----------------------------------------------------
    kernel.set_arg_buffer(ARG_SEEDS, &seeds_buf)?;
    kernel.set_arg_buffer(ARG_SX, &sx_buf)?;
    kernel.set_arg_buffer(ARG_SY, &sy_buf)?;
    kernel.set_arg_buffer(ARG_Q, &q_buf)?;
    kernel.set_arg_scalar(ARG_PPT, cfg.pairs_per_thread as i32)?;

    // ---- launch -----------------------------------------------------------------
    let global = [threads];
    let local = [64.min(threads)];
    let event = match queue.enqueue_ndrange(&kernel, &global, Some(&local)) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("ep: clEnqueueNDRangeKernel failed: {e}");
            return Err(e);
        }
    };
    // clFinish: blocks until the dispatcher has drained every command
    // enqueued above and their events have resolved.
    queue.finish();
    metrics.kernel_modeled_seconds += event.modeled_seconds();

    // ---- device -> host transfers --------------------------------------------------
    let (sx, ev) = queue.enqueue_read::<f64>(&sx_buf, 0, threads)?;
    metrics.transfer_modeled_seconds += ev.modeled_seconds();
    let (sy, ev) = queue.enqueue_read::<f64>(&sy_buf, 0, threads)?;
    metrics.transfer_modeled_seconds += ev.modeled_seconds();
    let (q, ev) = queue.enqueue_read::<i32>(&q_buf, 0, threads * 10)?;
    metrics.transfer_modeled_seconds += ev.modeled_seconds();

    // ---- cleanup ----------------------------------------------------------------------
    context.release_buffer(seeds_buf);
    context.release_buffer(sx_buf);
    context.release_buffer(sy_buf);
    context.release_buffer(q_buf);

    let result = reduce_outputs(&sx, &sy, &q);
    Ok((result, metrics))
}

fn create_buffer(
    context: &Context,
    name: &str,
    bytes: usize,
    access: MemAccess,
) -> Result<Buffer, Error> {
    match context.create_buffer(bytes, access) {
        Ok(b) => Ok(b),
        Err(e) => {
            eprintln!("ep: clCreateBuffer({name}, {bytes} bytes) failed: {e}");
            Err(e)
        }
    }
}

/// Modeled seconds of the serial single-core CPU baseline (the same kernel
/// executed under the 1-core CPU profile; see DESIGN.md).
pub fn modeled_serial_seconds(cfg: &EpConfig) -> Result<f64, Error> {
    let (result, metrics) = run(cfg, serial_device())?;
    // sanity: the serial device computes the same answer
    debug_assert!(result.q.iter().sum::<i64>() > 0);
    Ok(metrics.kernel_modeled_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oclsim::{DeviceProfile, Platform};

    #[test]
    fn opencl_matches_serial_reference() {
        let cfg = EpConfig::default();
        let device = Platform::default_platform().default_accelerator().unwrap();
        let (result, metrics) = run(&cfg, &device).unwrap();
        let reference = super::super::serial(&cfg);
        assert!(
            reference.matches(&result),
            "\nref {reference:?}\ngot {result:?}"
        );
        assert!(metrics.kernel_modeled_seconds > 0.0);
        assert!(metrics.build_seconds > 0.0);
        assert!(metrics.transfer_modeled_seconds > 0.0);
    }

    #[test]
    fn serial_cpu_profile_is_much_slower() {
        let cfg = EpConfig::default();
        let device = Platform::default_platform().default_accelerator().unwrap();
        let (_, gpu) = run(&cfg, &device).unwrap();
        let serial = modeled_serial_seconds(&cfg).unwrap();
        // EP is embarrassingly parallel: the Tesla-class GPU must win big
        assert!(
            serial / gpu.kernel_modeled_seconds > 20.0,
            "speedup only {}",
            serial / gpu.kernel_modeled_seconds
        );
    }

    #[test]
    fn ep_rejected_on_fp64_less_device() {
        // the paper excludes EP from the Quadro FX 380 experiment because
        // the device lacks double support; the runtime enforces that
        let cfg = EpConfig::default();
        let quadro = oclsim::Device::new(DeviceProfile::quadro_fx380());
        let err = run(&cfg, &quadro).unwrap_err();
        assert!(matches!(err, Error::UnsupportedCapability(_)), "{err}");
    }

    #[test]
    fn buffers_released_after_run() {
        let cfg = EpConfig::default();
        let device = Platform::default_platform().default_accelerator().unwrap();
        // the run creates its own context, so a second run must not
        // accumulate allocations anywhere
        let (_, _) = run(&cfg, &device).unwrap();
        let (_, _) = run(&cfg, &device).unwrap();
    }
}
