//! NAS EP (Embarrassingly Parallel) benchmark.
//!
//! Generates pairs of uniform deviates with the NAS 46-bit linear
//! congruential generator, converts them to Gaussian deviates with the
//! Marsaglia polar method, and tallies the deviates into square annuli.
//! The paper runs classes W/A/B/C (2^25–2^32 pairs); the simulated device
//! cannot execute that many interpreted pairs in reasonable wall time, so
//! the classes are scaled down by a factor of 2^6–2^9 (see DESIGN.md); EP's
//! speedup is nearly size-independent, which is what Figure 6 shows.

pub mod async_version;
pub mod hpl_version;
pub mod opencl_version;

use crate::common::{close, BenchReport};

/// NAS LCG multiplier 5^13.
pub const EP_A: u64 = 1_220_703_125;
/// NAS seed.
pub const EP_SEED: u64 = 271_828_183;
/// Modulus 2^46.
pub const EP_MOD: u64 = 1 << 46;

/// Scaled problem classes (paper classes with sizes reduced for the
/// simulated device; relative growth between classes preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpClass {
    /// Test-sized.
    S,
    /// Paper W = 2^25 pairs; scaled to 2^19.
    W,
    /// Paper A = 2^28 pairs; scaled to 2^21.
    A,
    /// Paper B = 2^30 pairs; scaled to 2^22.
    B,
    /// Paper C = 2^32 pairs; scaled to 2^23.
    C,
}

impl EpClass {
    /// log2 of the number of pairs.
    pub fn log2_pairs(self) -> u32 {
        match self {
            EpClass::S => 12,
            EpClass::W => 19,
            EpClass::A => 21,
            EpClass::B => 22,
            EpClass::C => 23,
        }
    }

    /// Number of Gaussian pairs to generate.
    pub fn pairs(self) -> usize {
        1usize << self.log2_pairs()
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EpClass::S => "S",
            EpClass::W => "W",
            EpClass::A => "A",
            EpClass::B => "B",
            EpClass::C => "C",
        }
    }
}

/// EP configuration.
#[derive(Debug, Clone, Copy)]
pub struct EpConfig {
    /// Problem class.
    pub class: EpClass,
    /// Pairs each work-item generates.
    pub pairs_per_thread: usize,
}

impl Default for EpConfig {
    fn default() -> Self {
        EpConfig {
            class: EpClass::S,
            pairs_per_thread: 16,
        }
    }
}

impl EpConfig {
    /// A configuration for `class` with the default chunking.
    pub fn class(class: EpClass) -> Self {
        EpConfig {
            class,
            pairs_per_thread: 16,
        }
    }

    /// Number of work-items.
    pub fn threads(&self) -> usize {
        (self.class.pairs() / self.pairs_per_thread).max(1)
    }
}

/// Benchmark output: annulus counts and deviate sums.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Counts per square annulus.
    pub q: [i64; 10],
    /// Sum of the X deviates.
    pub sx: f64,
    /// Sum of the Y deviates.
    pub sy: f64,
}

impl EpResult {
    /// Compare against another result (counts exactly, sums to fp
    /// tolerance).
    pub fn matches(&self, other: &EpResult) -> bool {
        self.q == other.q && close(self.sx, other.sx, 1e-12) && close(self.sy, other.sy, 1e-12)
    }
}

/// One NAS LCG step: `x <- a*x mod 2^46`.
#[inline]
pub fn lcg_next(x: u64) -> u64 {
    ((EP_A as u128 * x as u128) % EP_MOD as u128) as u64
}

/// Jump the stream `k` steps ahead of `seed`: `a^k * seed mod 2^46`.
pub fn lcg_skip(seed: u64, k: u64) -> u64 {
    let mut result = seed as u128;
    let mut base = EP_A as u128;
    let mut k = k;
    let m = EP_MOD as u128;
    while k > 0 {
        if k & 1 == 1 {
            result = result * base % m;
        }
        base = base * base % m;
        k >>= 1;
    }
    result as u64
}

/// Per-thread starting seeds (thread `t` starts `2 * pairs_per_thread * t`
/// steps into the stream).
pub fn thread_seeds(cfg: &EpConfig) -> Vec<u64> {
    (0..cfg.threads())
        .map(|t| lcg_skip(EP_SEED, 2 * cfg.pairs_per_thread as u64 * t as u64))
        .collect()
}

/// Serial native-Rust reference, structured per-thread-chunk so its
/// floating-point accumulation order matches the device versions exactly.
pub fn serial(cfg: &EpConfig) -> EpResult {
    let seeds = thread_seeds(cfg);
    let mut q = [0i64; 10];
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    for &seed in &seeds {
        let mut x = seed;
        let mut lsx = 0.0f64;
        let mut lsy = 0.0f64;
        for _ in 0..cfg.pairs_per_thread {
            x = lcg_next(x);
            let u1 = x as f64 / EP_MOD as f64;
            x = lcg_next(x);
            let u2 = x as f64 / EP_MOD as f64;
            let a = 2.0 * u1 - 1.0;
            let b = 2.0 * u2 - 1.0;
            let t = a * a + b * b;
            if t <= 1.0 {
                let f = (-2.0 * t.ln() / t).sqrt();
                let gx = a * f;
                let gy = b * f;
                lsx += gx;
                lsy += gy;
                let l = (gx.abs().max(gy.abs()) as i32).min(9) as usize;
                q[l] += 1;
            }
        }
        sx += lsx;
        sy += lsy;
    }
    EpResult { q, sx, sy }
}

/// Reduce per-thread outputs into an [`EpResult`] (device versions).
pub fn reduce_outputs(sx: &[f64], sy: &[f64], q: &[i32]) -> EpResult {
    let mut result = EpResult {
        q: [0; 10],
        sx: 0.0,
        sy: 0.0,
    };
    for (i, (&x, &y)) in sx.iter().zip(sy).enumerate() {
        result.sx += x;
        result.sy += y;
        for l in 0..10 {
            result.q[l] += q[i * 10 + l] as i64;
        }
    }
    result
}

/// Run the full comparison (serial reference, OpenCL + serial-CPU
/// baseline, HPL) on `device` and assemble the Figure 6/7 row.
pub fn run(cfg: &EpConfig, device: &oclsim::Device) -> Result<BenchReport, crate::Error> {
    let reference = serial(cfg);

    let (ocl_result, opencl) = opencl_version::run(cfg, device)?;
    let serial_modeled_seconds = opencl_version::modeled_serial_seconds(cfg)?;
    let (hpl_result, hpl) = hpl_version::run(cfg, device)?;

    let verified = reference.matches(&ocl_result) && reference.matches(&hpl_result);
    Ok(BenchReport {
        name: "EP",
        opencl,
        hpl,
        serial_modeled_seconds,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_skip_matches_stepping() {
        let mut x = EP_SEED;
        for k in 0..100u64 {
            assert_eq!(lcg_skip(EP_SEED, k), x, "k={k}");
            x = lcg_next(x);
        }
    }

    #[test]
    fn lcg_values_stay_in_range() {
        let mut x = EP_SEED;
        for _ in 0..1000 {
            x = lcg_next(x);
            assert!(x < EP_MOD);
            assert!(x > 0, "LCG must not collapse to zero");
        }
    }

    #[test]
    fn thread_seeds_partition_the_stream() {
        let cfg = EpConfig {
            class: EpClass::S,
            pairs_per_thread: 8,
        };
        let seeds = thread_seeds(&cfg);
        assert_eq!(seeds.len(), cfg.threads());
        // seed[1] is exactly 16 steps past seed[0]
        let mut x = seeds[0];
        for _ in 0..16 {
            x = lcg_next(x);
        }
        assert_eq!(x, seeds[1]);
    }

    #[test]
    fn serial_results_are_plausible() {
        let cfg = EpConfig::default();
        let r = serial(&cfg);
        let total: i64 = r.q.iter().sum();
        let pairs = cfg.class.pairs() as f64;
        // acceptance rate of the polar method is pi/4 ~ 0.785
        let rate = total as f64 / pairs;
        assert!((rate - 0.785).abs() < 0.02, "acceptance rate {rate}");
        // Gaussian sums hover near zero relative to the count
        assert!(r.sx.abs() < pairs.sqrt() * 4.0);
        assert!(
            r.q[0] > r.q[2],
            "most deviates fall in the innermost annuli"
        );
    }

    #[test]
    fn class_sizes_are_ordered() {
        assert!(EpClass::W.pairs() < EpClass::A.pairs());
        assert!(EpClass::A.pairs() < EpClass::B.pairs());
        assert!(EpClass::B.pairs() < EpClass::C.pairs());
    }

    #[test]
    fn serial_is_deterministic() {
        let cfg = EpConfig::default();
        assert_eq!(serial(&cfg), serial(&cfg));
    }
}
