//! EP — HPL version.
//!
//! Compare with `opencl_version.rs` + `kernels/ep.cl`: the environment
//! setup, buffer management, transfers, compilation and argument binding
//! all disappear — HPL's eval() handles them. This file is what the
//! programmability study (Table I) counts for HPL.

use hpl::prelude::*;
use hpl::{eval, EvalProfile, Expr};
use oclsim::Device;

use super::{reduce_outputs, thread_seeds, EpConfig, EpResult};
use crate::common::RunMetrics;

/// One NAS LCG step as an HPL expression (inlined at capture time —
/// HPL kernels compose through ordinary Rust helper functions).
fn lcg_next(x: Expr<u64>) -> Expr<u64> {
    let a = 1_220_703_125u64;
    let lo_mask = 8_388_607u64;
    let x1 = x.clone() >> 23u64;
    let x0 = x & lo_mask;
    let t = (((x1 * a) & lo_mask) << 23u64) + x0 * a;
    t & 70_368_744_177_663u64
}

/// The EP kernel written with the HPL embedded DSL.
pub(super) fn ep_kernel(
    seeds: &Array<u64, 1>,
    sx: &Array<f64, 1>,
    sy: &Array<f64, 1>,
    q: &Array<i32, 1>,
    ppt: &Int,
) {
    let tid = Int::new(0);
    tid.assign(idx());
    let x = Ulong::var();
    x.assign(seeds.at(tid.v()));
    let lsx = Double::new(0.0);
    let lsy = Double::new(0.0);
    let qcnt = Array::<i32, 1>::new([10]); // private per-work-item tallies
    for_(0, 10, |i| qcnt.at(i).assign(0));

    for_(0, ppt.v(), |_i| {
        let u1 = Double::var();
        let u2 = Double::var();
        x.assign(lcg_next(x.v()));
        u1.assign(x.v().cast::<f64>() / 70_368_744_177_664.0f64);
        x.assign(lcg_next(x.v()));
        u2.assign(x.v().cast::<f64>() / 70_368_744_177_664.0f64);
        let a = Double::var();
        let b = Double::var();
        a.assign(2.0 * u1.v() - 1.0);
        b.assign(2.0 * u2.v() - 1.0);
        let t = Double::var();
        t.assign(a.v() * a.v() + b.v() * b.v());
        if_(t.v().le(1.0), || {
            let f = Double::var();
            f.assign(math::sqrt(-(2.0f64.into_expr()) * math::log(t.v()) / t.v()));
            let gx = Double::var();
            let gy = Double::var();
            gx.assign(a.v() * f.v());
            gy.assign(b.v() * f.v());
            lsx.assign_add(gx.v());
            lsy.assign_add(gy.v());
            let l = Int::var();
            l.assign(math::fmax(math::fabs(gx.v()), math::fabs(gy.v())).cast::<i32>());
            l.assign(math::min(l.v(), 9));
            qcnt.at(l.v()).assign_add(1);
        });
    });

    sx.at(tid.v()).assign(lsx.v());
    sy.at(tid.v()).assign(lsy.v());
    for_(0, 10, |i| {
        q.at(tid.v() * 10 + i.clone()).assign(qcnt.at(i));
    });
}

use hpl::IntoExpr;

/// Single HPL evaluation of EP (no cache manipulation). Returns the result
/// and the eval profile.
pub fn launch(cfg: &EpConfig, device: &Device) -> Result<(EpResult, EvalProfile), hpl::Error> {
    let threads = cfg.threads();
    let seeds = Array::<u64, 1>::from_vec([threads], thread_seeds(cfg));
    let sx = Array::<f64, 1>::new([threads]);
    let sy = Array::<f64, 1>::new([threads]);
    let q = Array::<i32, 1>::new([threads * 10]);
    let ppt = Int::new(cfg.pairs_per_thread as i32);

    let profile = eval(ep_kernel)
        .device(device)
        .local(&[64.min(threads)])
        .run((&seeds, &sx, &sy, &q, &ppt))?;

    let result = reduce_outputs(&sx.to_vec(), &sy.to_vec(), &q.to_vec());
    Ok((result, profile))
}

/// The OpenCL C that HPL generates for the EP kernel (captured from a
/// tiny instance; the source does not depend on the problem size). Used by
/// `report -- lint` to run the kernel sanitizer over generated code.
pub fn generated_source(device: &Device) -> Result<String, hpl::Error> {
    let seeds = Array::<u64, 1>::from_vec([1], vec![super::EP_SEED]);
    let sx = Array::<f64, 1>::new([1]);
    let sy = Array::<f64, 1>::new([1]);
    let q = Array::<i32, 1>::new([10]);
    let ppt = Int::new(1);
    let p = eval(ep_kernel)
        .device(device)
        .global(&[1])
        .local(&[1])
        .run((&seeds, &sx, &sy, &q, &ppt))?;
    Ok((*p.source).clone())
}

/// Run EP with HPL the way the paper measures it: from a cold kernel cache
/// (first invocation pays capture, code generation and compilation).
pub fn run(cfg: &EpConfig, device: &Device) -> Result<(EpResult, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(cfg: &EpConfig, device: &Device) -> Result<(EpResult, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let (result, profile) = launch(cfg, device)?;
    let stats_after = hpl::runtime().transfer_stats();

    let mut metrics = RunMetrics::default();
    metrics.add_eval(&profile);
    // include the result read-back like the OpenCL version's metrics do
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    // stabilise the one-shot front-end wall measurement against host noise
    let seeds = Array::<u64, 1>::from_vec([1], vec![super::EP_SEED]);
    let sx = Array::<f64, 1>::new([1]);
    let sy = Array::<f64, 1>::new([1]);
    let q = Array::<i32, 1>::new([10]);
    let ppt = Int::new(1);
    let (cap, gen) = hpl::eval::measure_front(ep_kernel, &(&seeds, &sx, &sy, &q, &ppt), 3);
    metrics.front_seconds = metrics.front_seconds.min(cap + gen);
    Ok((result, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpl_matches_serial_reference() {
        let cfg = EpConfig::default();
        let device = hpl::runtime().default_device();
        let (result, metrics) = run(&cfg, &device).unwrap();
        let reference = super::super::serial(&cfg);
        assert!(
            reference.matches(&result),
            "\nref {reference:?}\ngot {result:?}"
        );
        assert!(
            metrics.front_seconds > 0.0,
            "cold cache pays capture+codegen"
        );
        assert!(metrics.build_seconds > 0.0);
    }

    #[test]
    fn second_launch_skips_front_end() {
        let cfg = EpConfig::default();
        let device = hpl::runtime().default_device();
        let (_, first) = launch(&cfg, &device).unwrap();
        let (_, second) = launch(&cfg, &device).unwrap();
        // the first may or may not be cached depending on test order; the
        // second is always a cache hit
        assert!(second.cache_hit);
        assert_eq!(second.capture_seconds, 0.0);
        assert!(second.paper_seconds() <= first.paper_seconds());
    }

    #[test]
    fn hpl_and_opencl_agree_bitwise_on_sums() {
        let cfg = EpConfig::default();
        let device = hpl::runtime().default_device();
        let (hpl_result, _) = launch(&cfg, &device).unwrap();
        let (ocl_result, _) = super::super::opencl_version::run(&cfg, &device).unwrap();
        assert_eq!(hpl_result.q, ocl_result.q);
        assert_eq!(hpl_result.sx.to_bits(), ocl_result.sx.to_bits());
        assert_eq!(hpl_result.sy.to_bits(), ocl_result.sy.to_bits());
    }
}
