//! ep — asynchronous HPL variant: the same kernel as
//! `hpl_version`, launched through `eval(..).run_async(..)` on the
//! device's out-of-order queue. Kept out of `hpl_version.rs` so the
//! Table I SLOC instrument keeps counting exactly the paper's
//! synchronous program.

use hpl::eval;
use hpl::prelude::*;
use oclsim::Device;

use super::hpl_version::ep_kernel;
use super::{reduce_outputs, thread_seeds, EpConfig, EpResult};
use crate::common::RunMetrics;

/// Like [`super::hpl_version::run`], but the launch goes through `run_async` on the device's
/// out-of-order queue; the result read-back settles the event.
pub fn run(cfg: &EpConfig, device: &Device) -> Result<(EpResult, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(cfg: &EpConfig, device: &Device) -> Result<(EpResult, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let threads = cfg.threads();
    let seeds = Array::<u64, 1>::from_vec([threads], thread_seeds(cfg));
    let sx = Array::<f64, 1>::new([threads]);
    let sy = Array::<f64, 1>::new([threads]);
    let q = Array::<i32, 1>::new([threads * 10]);
    let ppt = Int::new(cfg.pairs_per_thread as i32);

    let handle = eval(ep_kernel)
        .device(device)
        .local(&[64.min(threads)])
        .run_async((&seeds, &sx, &sy, &q, &ppt))?;
    let profile = handle.wait()?;

    let result = reduce_outputs(&sx.to_vec(), &sy.to_vec(), &q.to_vec());
    let stats_after = hpl::runtime().transfer_stats();
    let mut metrics = RunMetrics::default();
    metrics.add_eval(&profile);
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    Ok((result, metrics))
}
