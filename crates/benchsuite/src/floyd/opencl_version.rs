//! Floyd–Warshall — hand-written OpenCL version (Table I baseline).
//!
//! Classic OpenCL host style, as in the AMD APP SDK sample the paper
//! measured: explicit context/queue setup with status checks, program
//! build with build-log reporting, one buffer, n kernel launches (one per
//! intermediate vertex) with per-launch argument rebinding, explicit
//! read-back and cleanup.

use oclsim::{CommandQueue, Context, Device, Error, MemAccess, Program};

use super::FloydConfig;
use crate::common::{serial_device, RunMetrics};

/// The hand-written kernel source.
pub const SOURCE: &str = include_str!("../kernels/floyd.cl");

const ARG_DIST: usize = 0;
const ARG_N: usize = 1;
const ARG_K: usize = 2;

/// Run Floyd–Warshall with manual OpenCL on `device`.
pub fn run(
    cfg: &FloydConfig,
    graph: &[u32],
    device: &Device,
) -> Result<(Vec<u32>, RunMetrics), Error> {
    let n = cfg.nodes;
    let mut metrics = RunMetrics::default();

    // ---- environment setup ------------------------------------------------
    let context = match Context::new(std::slice::from_ref(device)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("floyd: clCreateContext failed: {e}");
            return Err(e);
        }
    };
    let queue = match CommandQueue::new(&context, device) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("floyd: clCreateCommandQueue failed: {e}");
            return Err(e);
        }
    };

    // ---- program load and build --------------------------------------------
    let program = Program::from_source(&context, SOURCE);
    if let Err(e) = program.build(hpl::opt_level().flag()) {
        eprintln!(
            "floyd: clBuildProgram failed, build log:\n{}",
            program.build_log()
        );
        return Err(e);
    }
    metrics.build_seconds = program.build_duration().as_secs_f64();
    let kernel = match program.kernel("floyd_pass") {
        Ok(k) => k,
        Err(e) => {
            eprintln!("floyd: clCreateKernel failed: {e}");
            return Err(e);
        }
    };

    // ---- buffer creation and upload -----------------------------------------
    let dist_bytes = 4 * n * n;
    let dist_buf = match context.create_buffer(dist_bytes, MemAccess::ReadWrite) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("floyd: clCreateBuffer(dist, {dist_bytes} bytes) failed: {e}");
            return Err(e);
        }
    };
    match queue.enqueue_write(&dist_buf, 0, graph) {
        Ok(ev) => metrics.transfer_modeled_seconds += ev.modeled_seconds(),
        Err(e) => {
            eprintln!("floyd: clEnqueueWriteBuffer(dist) failed: {e}");
            return Err(e);
        }
    }

    // ---- n passes: one launch per intermediate vertex -----------------------------
    kernel.set_arg_buffer(ARG_DIST, &dist_buf)?;
    kernel.set_arg_scalar(ARG_N, n as i32)?;
    let tile = 16.min(n);
    let global = [n, n];
    let local = [tile, tile];
    for k in 0..n {
        kernel.set_arg_scalar(ARG_K, k as i32)?;
        match queue.enqueue_ndrange(&kernel, &global, Some(&local)) {
            Ok(ev) => metrics.kernel_modeled_seconds += ev.modeled_seconds(),
            Err(e) => {
                eprintln!("floyd: clEnqueueNDRangeKernel(k={k}) failed: {e}");
                return Err(e);
            }
        }
    }
    // clFinish: blocks until the dispatcher has drained every command
    // enqueued above and their events have resolved.
    queue.finish();

    // ---- read back and cleanup -------------------------------------------------------
    let (result, ev) = queue.enqueue_read::<u32>(&dist_buf, 0, n * n)?;
    metrics.transfer_modeled_seconds += ev.modeled_seconds();
    context.release_buffer(dist_buf);

    Ok((result, metrics))
}

/// Modeled seconds of the serial CPU baseline.
pub fn modeled_serial_seconds(cfg: &FloydConfig, graph: &[u32]) -> Result<f64, Error> {
    let (_, metrics) = run(cfg, graph, serial_device())?;
    Ok(metrics.kernel_modeled_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floyd::{generate_graph, serial};
    use oclsim::Platform;

    #[test]
    fn opencl_matches_serial_reference() {
        let cfg = FloydConfig {
            nodes: 32,
            seed: 11,
        };
        let graph = generate_graph(&cfg);
        let device = Platform::default_platform().default_accelerator().unwrap();
        let (result, metrics) = run(&cfg, &graph, &device).unwrap();
        assert_eq!(result, serial(&graph, cfg.nodes));
        assert!(metrics.kernel_modeled_seconds > 0.0);
    }

    #[test]
    fn many_launches_accumulate_time() {
        let device = Platform::default_platform().default_accelerator().unwrap();
        let small = FloydConfig { nodes: 16, seed: 1 };
        let big = FloydConfig { nodes: 64, seed: 1 };
        let (_, ms) = run(&small, &generate_graph(&small), &device).unwrap();
        let (_, mb) = run(&big, &generate_graph(&big), &device).unwrap();
        assert!(mb.kernel_modeled_seconds > ms.kernel_modeled_seconds * 3.0);
    }
}
