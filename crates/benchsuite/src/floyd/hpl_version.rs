//! Floyd–Warshall — HPL version. The host loop over intermediate vertices
//! simply re-evaluates the cached kernel with a new `k`; HPL keeps the
//! distance matrix resident on the device across all n launches (its
//! transfer analysis sees that the host never touches it in between).

use hpl::prelude::*;
use hpl::{eval, math};
use oclsim::Device;

use super::FloydConfig;
use crate::common::RunMetrics;

/// The Floyd–Warshall pass written with the HPL embedded DSL.
pub(super) fn floyd_kernel(dist: &Array<u32, 2>, k: &Int) {
    let x = Int::new(0);
    let y = Int::new(0);
    x.assign(idx());
    y.assign(idy());
    let direct = dist.at((y.v(), x.v()));
    let through = dist.at((y.v(), k.v())) + dist.at((k.v(), x.v()));
    dist.at((y.v(), x.v())).assign(math::min(direct, through));
}

/// The OpenCL C that HPL generates for the Floyd–Warshall pass (captured
/// from a tiny instance; the source does not depend on the problem size).
/// Used by `report -- lint` to run the kernel sanitizer over generated
/// code.
pub fn generated_source(device: &Device) -> Result<String, hpl::Error> {
    let dist = Array::<u32, 2>::from_vec([4, 4], vec![0; 16]);
    let k = Int::new(0);
    let p = eval(floyd_kernel)
        .device(device)
        .global(&[4, 4])
        .local(&[2, 2])
        .run((&dist, &k))?;
    Ok((*p.source).clone())
}

/// Run Floyd–Warshall with HPL on `device` (cold kernel cache, as the
/// paper measures).
pub fn run(
    cfg: &FloydConfig,
    graph: &[u32],
    device: &Device,
) -> Result<(Vec<u32>, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, graph, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(
    cfg: &FloydConfig,
    graph: &[u32],
    device: &Device,
) -> Result<(Vec<u32>, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let n = cfg.nodes;
    let dist = Array::<u32, 2>::from_vec([n, n], graph.to_vec());
    let k = Int::new(0);

    let mut metrics = RunMetrics::default();
    let local = 16.min(n);
    for pass in 0..n {
        k.set(pass as i32);
        let profile = eval(floyd_kernel)
            .device(device)
            .global(&[n, n])
            .local(&[local, local])
            .run((&dist, &k))?;
        metrics.add_eval(&profile);
    }

    let result = dist.to_vec();
    let stats_after = hpl::runtime().transfer_stats();
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    // stabilise the one-shot front-end wall measurement against host noise
    let front = metrics.front_seconds;
    let (cap, gen) = hpl::eval::measure_front(floyd_kernel, &(&dist, &k), 3);
    metrics.front_seconds = front.min(cap + gen);
    Ok((result, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floyd::{generate_graph, serial};

    #[test]
    fn hpl_matches_serial_reference() {
        let cfg = FloydConfig {
            nodes: 32,
            seed: 11,
        };
        let graph = generate_graph(&cfg);
        let device = hpl::runtime().default_device();
        let (result, metrics) = run(&cfg, &graph, &device).unwrap();
        assert_eq!(result, serial(&graph, cfg.nodes));
        // n launches but the kernel is captured/compiled exactly once
        assert!(metrics.front_seconds > 0.0);
        assert!(metrics.build_seconds > 0.0);
    }

    #[test]
    fn matrix_stays_resident_across_passes() {
        let cfg = FloydConfig { nodes: 16, seed: 2 };
        let graph = generate_graph(&cfg);
        let device = hpl::runtime().default_device();
        hpl::runtime().reset_transfer_stats();
        let _ = run(&cfg, &graph, &device).unwrap();
        let stats = hpl::runtime().transfer_stats();
        assert_eq!(
            stats.h2d_count, 1,
            "one upload despite {} passes",
            cfg.nodes
        );
        assert_eq!(stats.d2h_count, 1, "one download at the end");
    }
}
