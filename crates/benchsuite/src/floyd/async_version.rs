//! floyd — asynchronous HPL variant: the same kernel as
//! `hpl_version`, launched through `eval(..).run_async(..)` on the
//! device's out-of-order queue. Kept out of `hpl_version.rs` so the
//! Table I SLOC instrument keeps counting exactly the paper's
//! synchronous program.

use hpl::eval;
use hpl::prelude::*;
use oclsim::Device;

use super::hpl_version::floyd_kernel;
use super::FloydConfig;
use crate::common::RunMetrics;

/// Like [`super::hpl_version::run`], but every pass goes through `run_async`: the host fires
/// all n launches without waiting, and HPL's inferred wait lists (each
/// pass both reads and writes `dist`) chain them on the device's
/// out-of-order queue. `dist.to_vec()` at the end settles the whole chain.
pub fn run(
    cfg: &FloydConfig,
    graph: &[u32],
    device: &Device,
) -> Result<(Vec<u32>, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, graph, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(
    cfg: &FloydConfig,
    graph: &[u32],
    device: &Device,
) -> Result<(Vec<u32>, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let n = cfg.nodes;
    let dist = Array::<u32, 2>::from_vec([n, n], graph.to_vec());
    let k = Int::new(0);

    let local = 16.min(n);
    let mut handles = Vec::with_capacity(n);
    for pass in 0..n {
        k.set(pass as i32);
        handles.push(
            eval(floyd_kernel)
                .device(device)
                .global(&[n, n])
                .local(&[local, local])
                .run_async((&dist, &k))?,
        );
    }
    let mut metrics = RunMetrics::default();
    for h in handles {
        metrics.add_eval(&h.wait()?);
    }
    let result = dist.to_vec();
    let stats_after = hpl::runtime().transfer_stats();
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    Ok((result, metrics))
}
