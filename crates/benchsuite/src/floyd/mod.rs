//! Floyd–Warshall all-pairs shortest paths.
//!
//! The paper runs the AMD APP SDK version on 1024 nodes (512 on the
//! Quadro); scaled here to 256/128 nodes — the algorithm launches one
//! kernel per intermediate vertex, so the scaling is quadratic per launch
//! and linear in launches.

pub mod async_version;
pub mod hpl_version;
pub mod opencl_version;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::common::BenchReport;

/// "No edge" marker: large but safely below overflow when two are added.
pub const INF: u32 = 1 << 29;

/// Floyd–Warshall configuration.
#[derive(Debug, Clone, Copy)]
pub struct FloydConfig {
    /// Number of graph nodes.
    pub nodes: usize,
    /// RNG seed for the random graph.
    pub seed: u64,
}

impl Default for FloydConfig {
    fn default() -> Self {
        FloydConfig { nodes: 64, seed: 7 }
    }
}

impl FloydConfig {
    /// The scaled counterpart of the paper's 1024-node graph (Fig. 7).
    pub fn paper_scaled() -> Self {
        FloydConfig {
            nodes: 256,
            seed: 7,
        }
    }

    /// The scaled counterpart of the 512-node portability run (Fig. 9).
    pub fn paper_scaled_small() -> Self {
        FloydConfig {
            nodes: 128,
            seed: 7,
        }
    }
}

/// Generate a random directed graph as a dense adjacency matrix with ~25%
/// edge density and weights in 1..100.
pub fn generate_graph(cfg: &FloydConfig) -> Vec<u32> {
    let n = cfg.nodes;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut dist = vec![INF; n * n];
    for (i, d) in dist.iter_mut().enumerate() {
        let (y, x) = (i / n, i % n);
        if y == x {
            *d = 0;
        } else if rng.random::<f32>() < 0.25 {
            *d = rng.random_range(1..100);
        }
    }
    dist
}

/// Serial native-Rust reference (classic triple loop).
pub fn serial(dist: &[u32], n: usize) -> Vec<u32> {
    let mut d = dist.to_vec();
    for k in 0..n {
        for y in 0..n {
            for x in 0..n {
                let through = d[y * n + k] + d[k * n + x];
                if through < d[y * n + x] {
                    d[y * n + x] = through;
                }
            }
        }
    }
    d
}

/// Run the full comparison on `device` and assemble the Figure 7 row.
pub fn run(cfg: &FloydConfig, device: &oclsim::Device) -> Result<BenchReport, crate::Error> {
    let graph = generate_graph(cfg);
    let reference = serial(&graph, cfg.nodes);

    let (ocl_result, opencl) = opencl_version::run(cfg, &graph, device)?;
    let serial_modeled_seconds = opencl_version::modeled_serial_seconds(cfg, &graph)?;
    let (hpl_result, hpl) = hpl_version::run(cfg, &graph, device)?;

    let verified = reference == ocl_result && reference == hpl_result;
    Ok(BenchReport {
        name: "Floyd",
        opencl,
        hpl,
        serial_modeled_seconds,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_zero_diagonal_and_bounded_weights() {
        let cfg = FloydConfig { nodes: 16, seed: 1 };
        let g = generate_graph(&cfg);
        for i in 0..16 {
            assert_eq!(g[i * 16 + i], 0);
        }
        assert!(g
            .iter()
            .all(|&w| w == 0 || w == INF || (1..100).contains(&w)));
        assert!(g.iter().any(|&w| w != INF && w != 0), "some edges exist");
    }

    #[test]
    fn serial_shortest_paths_on_known_graph() {
        // 0 -> 1 (5), 1 -> 2 (3), 0 -> 2 (100): best 0->2 is 8
        let n = 3;
        let mut g = vec![INF; 9];
        g[0] = 0;
        g[4] = 0;
        g[8] = 0;
        g[1] = 5;
        g[5] = 3;
        g[2] = 100;
        let d = serial(&g, n);
        assert_eq!(d[2], 8);
        assert_eq!(d[1], 5);
        assert_eq!(d[3], INF, "no path 1 -> 0");
    }

    #[test]
    fn triangle_inequality_holds_after_serial() {
        let cfg = FloydConfig { nodes: 24, seed: 3 };
        let g = generate_graph(&cfg);
        let d = serial(&g, cfg.nodes);
        let n = cfg.nodes;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    assert!(
                        d[i * n + j] <= d[i * n + k].saturating_add(d[k * n + j]),
                        "triangle inequality violated at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FloydConfig::default();
        assert_eq!(generate_graph(&cfg), generate_graph(&cfg));
    }
}
