//! Shared plumbing for the benchmark suite: timing records matching the
//! paper's measurement methodology, and the serial-CPU baseline device.

use std::sync::OnceLock;

use oclsim::{CommandQueue, Context, Device, DeviceProfile, Program};

/// Timing of one benchmark run (one code version on one device), split the
/// way the paper's §V-B measures: "the generation of the backend code (in
/// the case of HPL) and the compilation and execution of the kernel, but
/// not the transfers".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunMetrics {
    /// Modeled device seconds over all kernel launches of the benchmark.
    pub kernel_modeled_seconds: f64,
    /// Measured wall seconds of backend (OpenCL) compilation.
    pub build_seconds: f64,
    /// Measured wall seconds of HPL front-end work (kernel capture and
    /// OpenCL C generation); zero for hand-written OpenCL runs.
    pub front_seconds: f64,
    /// Modeled seconds of host↔device transfers.
    pub transfer_modeled_seconds: f64,
}

impl RunMetrics {
    /// The paper's Figure 6/7/8 time: HPL front-end work + kernel
    /// execution, excluding transfers.
    ///
    /// The backend (OpenCL) compilation wall time is tracked in
    /// [`RunMetrics::build_seconds`] but *excluded* here: both systems use
    /// the identical backend compiler, and at the scaled-down problem sizes
    /// of this reproduction its host wall-clock noise would swamp the
    /// modeled kernel times that carry the figures' signal (the paper runs
    /// problems ~2000x larger, where compilation amortises the same way
    /// for both systems). See EXPERIMENTS.md.
    pub fn paper_seconds(&self) -> f64 {
        self.kernel_modeled_seconds + self.front_seconds
    }

    /// The transfer-inclusive variant (used in the paper's transpose
    /// discussion at the end of §V-B).
    pub fn paper_seconds_with_transfers(&self) -> f64 {
        self.paper_seconds() + self.transfer_modeled_seconds
    }

    /// Merge an [`hpl::EvalProfile`] into this record.
    pub fn add_eval(&mut self, p: &hpl::EvalProfile) {
        self.kernel_modeled_seconds += p.kernel_modeled_seconds;
        self.build_seconds += p.build_seconds;
        self.front_seconds += p.capture_seconds + p.codegen_seconds;
        self.transfer_modeled_seconds += p.transfer_modeled_seconds;
    }
}

/// Comparison of the three code versions of one benchmark on one device —
/// the row format behind Figures 6–9.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark name.
    pub name: &'static str,
    /// Hand-written OpenCL on the accelerator.
    pub opencl: RunMetrics,
    /// HPL on the accelerator.
    pub hpl: RunMetrics,
    /// Modeled seconds of the serial single-core CPU baseline.
    pub serial_modeled_seconds: f64,
    /// All three versions produced matching results.
    pub verified: bool,
}

impl BenchReport {
    /// Speedup of the OpenCL version over the serial CPU (Figure 6/7 bars).
    pub fn opencl_speedup(&self) -> f64 {
        self.serial_modeled_seconds / self.opencl.paper_seconds()
    }

    /// Speedup of the HPL version over the serial CPU.
    pub fn hpl_speedup(&self) -> f64 {
        self.serial_modeled_seconds / self.hpl.paper_seconds()
    }

    /// Slowdown of HPL relative to OpenCL in percent (Figure 8/9 bars).
    pub fn hpl_slowdown_percent(&self) -> f64 {
        (self.hpl.paper_seconds() / self.opencl.paper_seconds() - 1.0) * 100.0
    }
}

struct SerialRig {
    device: Device,
    #[allow(dead_code)]
    context: Context,
    queue: CommandQueue,
}

static SERIAL: OnceLock<SerialRig> = OnceLock::new();

fn serial_rig() -> &'static SerialRig {
    SERIAL.get_or_init(|| {
        let device = Device::new(DeviceProfile::serial_cpu());
        let context = Context::new(std::slice::from_ref(&device)).expect("serial context");
        let queue = CommandQueue::new(&context, &device).expect("serial queue");
        SerialRig {
            device,
            context,
            queue,
        }
    })
}

/// The single-core CPU device used as the "serial execution in a regular
/// CPU" baseline of Figures 6 and 7 (see DESIGN.md for why the baseline is
/// the same kernel run under the serial CPU profile).
pub fn serial_device() -> &'static Device {
    &serial_rig().device
}

/// The serial baseline's context (needed to create buffers for it).
pub fn serial_context() -> &'static Context {
    &serial_rig().context
}

/// The serial baseline's queue.
pub fn serial_queue() -> &'static CommandQueue {
    &serial_rig().queue
}

/// Build an OpenCL program on a fresh context for `device`; returns the
/// program, its context, queue and the measured build seconds.
pub fn build_for(
    device: &Device,
    source: &str,
    options: &str,
) -> oclsim::Result<(Program, Context, CommandQueue, f64)> {
    let context = Context::new(std::slice::from_ref(device))?;
    let queue = CommandQueue::new(&context, device)?;
    let program = Program::from_source(&context, source);
    program.build(options)?;
    let build = program.build_duration().as_secs_f64();
    Ok((program, context, queue, build))
}

/// Relative-error float comparison for verification.
pub fn close(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-30);
    (a - b).abs() / scale <= rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_seconds_composition() {
        let m = RunMetrics {
            kernel_modeled_seconds: 1.0,
            build_seconds: 0.25,
            front_seconds: 0.05,
            transfer_modeled_seconds: 0.5,
        };
        assert_eq!(m.paper_seconds(), 1.05, "backend build wall time excluded");
        assert_eq!(m.paper_seconds_with_transfers(), 1.55);
    }

    #[test]
    fn report_derivations() {
        let r = BenchReport {
            name: "t",
            opencl: RunMetrics {
                kernel_modeled_seconds: 1.0,
                ..Default::default()
            },
            hpl: RunMetrics {
                kernel_modeled_seconds: 1.02,
                ..Default::default()
            },
            serial_modeled_seconds: 10.0,
            verified: true,
        };
        assert!((r.opencl_speedup() - 10.0).abs() < 1e-12);
        assert!(r.hpl_speedup() < r.opencl_speedup());
        assert!((r.hpl_slowdown_percent() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn serial_device_is_one_core() {
        let d = serial_device();
        assert_eq!(d.profile().compute_units, 1);
        assert_eq!(serial_queue().device(), d);
    }

    #[test]
    fn close_comparisons() {
        assert!(close(1.0, 1.0 + 1e-9, 1e-6));
        assert!(!close(1.0, 1.1, 1e-6));
        assert!(close(0.0, 0.0, 1e-12));
    }
}
