//! Tiled matrix transpose.
//!
//! The paper transposes a 16K×16K matrix (5K×5K on the Quadro); scaled
//! here to 1K×1K / 320×320. The optimised kernel stages BLOCK×BLOCK tiles
//! in local memory so both global reads and writes coalesce — the paper's
//! footnote 1 distinguishes this from the naive one-liner of Figure 10.

pub mod async_version;
pub mod hpl_version;
pub mod opencl_version;

use crate::common::BenchReport;

/// Tile edge used by both device versions.
pub const BLOCK: usize = 16;

/// Transpose configuration (matrix is `rows` × `cols`).
#[derive(Debug, Clone, Copy)]
pub struct TransposeConfig {
    /// Rows of the source matrix; must be a multiple of [`BLOCK`].
    pub rows: usize,
    /// Columns of the source matrix; must be a multiple of [`BLOCK`].
    pub cols: usize,
}

impl Default for TransposeConfig {
    fn default() -> Self {
        TransposeConfig {
            rows: 128,
            cols: 64,
        }
    }
}

impl TransposeConfig {
    /// Scaled counterpart of the paper's 16K×16K run (Fig. 7): 2K×2K.
    pub fn paper_scaled() -> Self {
        TransposeConfig {
            rows: 2048,
            cols: 2048,
        }
    }

    /// Scaled counterpart of the 5K×5K portability run (Fig. 9): 1K×1K.
    pub fn paper_scaled_small() -> Self {
        TransposeConfig {
            rows: 1024,
            cols: 1024,
        }
    }

    fn validate(&self) {
        assert!(
            self.rows.is_multiple_of(BLOCK) && self.cols.is_multiple_of(BLOCK),
            "matrix dimensions must be multiples of the {BLOCK}-element tile"
        );
    }
}

/// Deterministic source matrix.
pub fn generate_matrix(cfg: &TransposeConfig) -> Vec<f32> {
    cfg.validate();
    (0..cfg.rows * cfg.cols)
        .map(|i| (i % 1013) as f32 * 0.5)
        .collect()
}

/// Serial native-Rust reference.
pub fn serial(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut dst = vec![0.0f32; rows * cols];
    for y in 0..rows {
        for x in 0..cols {
            dst[x * rows + y] = src[y * cols + x];
        }
    }
    dst
}

/// Run the full comparison on `device` and assemble the Figure 7 row.
pub fn run(cfg: &TransposeConfig, device: &oclsim::Device) -> Result<BenchReport, crate::Error> {
    let src = generate_matrix(cfg);
    let reference = serial(&src, cfg.rows, cfg.cols);

    let (ocl_result, opencl) = opencl_version::run(cfg, &src, device)?;
    let serial_modeled_seconds = opencl_version::modeled_serial_seconds(cfg, &src)?;
    let (hpl_result, hpl) = hpl_version::run(cfg, &src, device)?;

    let verified = reference == ocl_result && reference == hpl_result;
    Ok(BenchReport {
        name: "transpose",
        opencl,
        hpl,
        serial_modeled_seconds,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_transpose_is_involutive() {
        let cfg = TransposeConfig { rows: 32, cols: 16 };
        let src = generate_matrix(&cfg);
        let once = serial(&src, cfg.rows, cfg.cols);
        let twice = serial(&once, cfg.cols, cfg.rows);
        assert_eq!(src, twice);
    }

    #[test]
    fn serial_transpose_moves_elements() {
        let src = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
                                                      // transpose of a 2x3 laid out row-major... use BLOCK-free serial
        let dst = serial(&src, 2, 3);
        assert_eq!(dst, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "multiples")]
    fn non_tile_multiple_rejected() {
        let cfg = TransposeConfig { rows: 30, cols: 16 };
        let _ = generate_matrix(&cfg);
    }
}
