//! Matrix transpose — HPL version, using a 2-D `__local` tile so the
//! global accesses coalesce, exactly like the hand-written kernel.

use hpl::eval;
use hpl::prelude::*;
use oclsim::Device;

use super::{TransposeConfig, BLOCK};
use crate::common::RunMetrics;

/// The tiled transpose written with the HPL embedded DSL. `dst` is the
/// transposed (cols × rows) matrix.
pub(super) fn transpose_kernel(dst: &Array<f32, 2>, src: &Array<f32, 2>) {
    let tile = Array::<f32, 2>::local([BLOCK, BLOCK]);
    let lx = Int::new(0);
    let ly = Int::new(0);
    lx.assign(lidx());
    ly.assign(lidy());
    tile.at((ly.v(), lx.v())).assign(src.at((idy(), idx())));
    barrier(LOCAL);
    let ox = Int::new(0);
    let oy = Int::new(0);
    ox.assign(gidy() * BLOCK as i32 + lx.v());
    oy.assign(gidx() * BLOCK as i32 + ly.v());
    dst.at((oy.v(), ox.v())).assign(tile.at((lx.v(), ly.v())));
}

/// The OpenCL C that HPL generates for the tiled transpose (captured from
/// a tiny instance; the source does not depend on the problem size). Used
/// by `report -- lint` to run the kernel sanitizer over generated code.
pub fn generated_source(device: &Device) -> Result<String, hpl::Error> {
    let src = Array::<f32, 2>::from_vec([BLOCK, BLOCK], vec![0.0; BLOCK * BLOCK]);
    let dst = Array::<f32, 2>::new([BLOCK, BLOCK]);
    let p = eval(transpose_kernel)
        .device(device)
        .global(&[BLOCK, BLOCK])
        .local(&[BLOCK, BLOCK])
        .run((&dst, &src))?;
    Ok((*p.source).clone())
}

/// Run the tiled transpose with HPL on `device` (cold kernel cache).
pub fn run(
    cfg: &TransposeConfig,
    src_data: &[f32],
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, src_data, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(
    cfg: &TransposeConfig,
    src_data: &[f32],
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let (h, w) = (cfg.rows, cfg.cols);
    let src = Array::<f32, 2>::from_vec([h, w], src_data.to_vec());
    let dst = Array::<f32, 2>::new([w, h]);

    let profile = eval(transpose_kernel)
        .device(device)
        .global(&[w, h])
        .local(&[BLOCK, BLOCK])
        .run((&dst, &src))?;

    let result = dst.to_vec();
    let stats_after = hpl::runtime().transfer_stats();
    let mut metrics = RunMetrics::default();
    metrics.add_eval(&profile);
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    // stabilise the one-shot front-end wall measurement against host noise
    let (cap, gen) = hpl::eval::measure_front(transpose_kernel, &(&dst, &src), 3);
    metrics.front_seconds = metrics.front_seconds.min(cap + gen);
    Ok((result, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpose::{generate_matrix, serial};

    #[test]
    fn hpl_matches_serial_reference() {
        let cfg = TransposeConfig { rows: 64, cols: 32 };
        let src = generate_matrix(&cfg);
        let device = hpl::runtime().default_device();
        let (result, metrics) = run(&cfg, &src, &device).unwrap();
        assert_eq!(result, serial(&src, cfg.rows, cfg.cols));
        assert!(metrics.front_seconds > 0.0);
    }

    #[test]
    fn hpl_generates_local_tile() {
        let cfg = TransposeConfig { rows: 32, cols: 32 };
        let src = generate_matrix(&cfg);
        let device = hpl::runtime().default_device();
        hpl::clear_kernel_cache();
        let s = Array::<f32, 2>::from_vec([32, 32], src.clone());
        let d = Array::<f32, 2>::new([32, 32]);
        let p = eval(transpose_kernel)
            .device(&device)
            .global(&[32, 32])
            .local(&[BLOCK, BLOCK])
            .run((&d, &s))
            .unwrap();
        assert!(p.source.contains("__local float"), "{}", p.source);
        assert!(
            p.source.contains("barrier(CLK_LOCAL_MEM_FENCE)"),
            "{}",
            p.source
        );
    }
}
