//! Matrix transpose — hand-written OpenCL version (Table I baseline).
//!
//! Classic OpenCL host style, as in the AMD APP SDK sample the paper
//! measured: explicit setup with status checks, build-log reporting,
//! explicit buffers/transfers/argument binding/cleanup.

use oclsim::{CommandQueue, Context, Device, Error, MemAccess, Program};

use super::{TransposeConfig, BLOCK};
use crate::common::{serial_device, RunMetrics};

/// The hand-written kernel source.
pub const SOURCE: &str = include_str!("../kernels/transpose.cl");

const ARG_DST: usize = 0;
const ARG_SRC: usize = 1;
const ARG_H: usize = 2;
const ARG_W: usize = 3;

/// Run the tiled transpose with manual OpenCL on `device`.
pub fn run(
    cfg: &TransposeConfig,
    src: &[f32],
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), Error> {
    let (h, w) = (cfg.rows, cfg.cols);
    let mut metrics = RunMetrics::default();

    // ---- environment setup ------------------------------------------------
    let context = match Context::new(std::slice::from_ref(device)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("transpose: clCreateContext failed: {e}");
            return Err(e);
        }
    };
    let queue = match CommandQueue::new(&context, device) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("transpose: clCreateCommandQueue failed: {e}");
            return Err(e);
        }
    };

    // ---- program load and build --------------------------------------------
    let program = Program::from_source(&context, SOURCE);
    if let Err(e) = program.build(hpl::opt_level().flag()) {
        eprintln!(
            "transpose: clBuildProgram failed, build log:\n{}",
            program.build_log()
        );
        return Err(e);
    }
    metrics.build_seconds = program.build_duration().as_secs_f64();
    let kernel = match program.kernel("transpose") {
        Ok(k) => k,
        Err(e) => {
            eprintln!("transpose: clCreateKernel failed: {e}");
            return Err(e);
        }
    };

    // ---- buffers and upload ----------------------------------------------------
    let bytes = 4 * h * w;
    let src_buf = match context.create_buffer(bytes, MemAccess::ReadOnly) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("transpose: clCreateBuffer(src, {bytes} bytes) failed: {e}");
            return Err(e);
        }
    };
    let dst_buf = match context.create_buffer(bytes, MemAccess::ReadWrite) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("transpose: clCreateBuffer(dst, {bytes} bytes) failed: {e}");
            return Err(e);
        }
    };
    match queue.enqueue_write(&src_buf, 0, src) {
        Ok(ev) => metrics.transfer_modeled_seconds += ev.modeled_seconds(),
        Err(e) => {
            eprintln!("transpose: clEnqueueWriteBuffer(src) failed: {e}");
            return Err(e);
        }
    }

    // ---- argument binding and launch --------------------------------------------
    kernel.set_arg_buffer(ARG_DST, &dst_buf)?;
    kernel.set_arg_buffer(ARG_SRC, &src_buf)?;
    kernel.set_arg_scalar(ARG_H, h as i32)?;
    kernel.set_arg_scalar(ARG_W, w as i32)?;
    let global = [w, h];
    let local = [BLOCK, BLOCK];
    let event = match queue.enqueue_ndrange(&kernel, &global, Some(&local)) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("transpose: clEnqueueNDRangeKernel failed: {e}");
            return Err(e);
        }
    };
    // clFinish: blocks until the dispatcher has drained every command
    // enqueued above and their events have resolved.
    queue.finish();
    metrics.kernel_modeled_seconds += event.modeled_seconds();

    // ---- read back and cleanup ------------------------------------------------------
    let (result, ev) = queue.enqueue_read::<f32>(&dst_buf, 0, h * w)?;
    metrics.transfer_modeled_seconds += ev.modeled_seconds();
    context.release_buffer(src_buf);
    context.release_buffer(dst_buf);

    Ok((result, metrics))
}

/// Modeled seconds of the serial CPU baseline.
pub fn modeled_serial_seconds(cfg: &TransposeConfig, src: &[f32]) -> Result<f64, Error> {
    let (_, metrics) = run(cfg, src, serial_device())?;
    Ok(metrics.kernel_modeled_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpose::{generate_matrix, serial};
    use oclsim::Platform;

    #[test]
    fn opencl_matches_serial_reference() {
        let cfg = TransposeConfig { rows: 64, cols: 32 };
        let src = generate_matrix(&cfg);
        let device = Platform::default_platform().default_accelerator().unwrap();
        let (result, metrics) = run(&cfg, &src, &device).unwrap();
        assert_eq!(result, serial(&src, cfg.rows, cfg.cols));
        assert!(metrics.kernel_modeled_seconds > 0.0);
    }

    #[test]
    fn transfers_dominate_kernel_time() {
        // the paper singles transpose out: transfer time is long compared
        // to the transposition itself (§V-B end)
        let cfg = TransposeConfig {
            rows: 256,
            cols: 256,
        };
        let src = generate_matrix(&cfg);
        let device = Platform::default_platform().default_accelerator().unwrap();
        let (_, m) = run(&cfg, &src, &device).unwrap();
        assert!(
            m.transfer_modeled_seconds > m.kernel_modeled_seconds,
            "transfer {} vs kernel {}",
            m.transfer_modeled_seconds,
            m.kernel_modeled_seconds
        );
    }
}
