//! transpose — asynchronous HPL variant: the same kernel as
//! `hpl_version`, launched through `eval(..).run_async(..)` on the
//! device's out-of-order queue. Kept out of `hpl_version.rs` so the
//! Table I SLOC instrument keeps counting exactly the paper's
//! synchronous program.

use hpl::eval;
use hpl::prelude::*;
use oclsim::Device;

use super::hpl_version::transpose_kernel;
use super::{TransposeConfig, BLOCK};
use crate::common::RunMetrics;

/// Like [`super::hpl_version::run`], but the launch goes through `run_async`; `dst.to_vec()`
/// settles the pending event.
pub fn run(
    cfg: &TransposeConfig,
    src_data: &[f32],
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, src_data, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(
    cfg: &TransposeConfig,
    src_data: &[f32],
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let (h, w) = (cfg.rows, cfg.cols);
    let src = Array::<f32, 2>::from_vec([h, w], src_data.to_vec());
    let dst = Array::<f32, 2>::new([w, h]);

    let handle = eval(transpose_kernel)
        .device(device)
        .global(&[w, h])
        .local(&[BLOCK, BLOCK])
        .run_async((&dst, &src))?;
    let profile = handle.wait()?;

    let result = dst.to_vec();
    let stats_after = hpl::runtime().transfer_stats();
    let mut metrics = RunMetrics::default();
    metrics.add_eval(&profile);
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    Ok((result, metrics))
}
