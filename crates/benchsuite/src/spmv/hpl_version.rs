//! Spmv — HPL version: a direct transliteration of the paper's
//! Figure 5(b), with a group of `M` lanes per row and a local-memory tree
//! reduction.

use hpl::eval;
use hpl::prelude::*;
use oclsim::Device;

use super::{CsrProblem, SpmvConfig, M};
use crate::common::RunMetrics;

/// The spmv kernel written with the HPL embedded DSL (paper Figure 5(b)).
pub(super) fn spmv_kernel(
    a: &Array<f32, 1>,
    vec: &Array<f32, 1>,
    cols: &Array<i32, 1>,
    rowptr: &Array<i32, 1>,
    out: &Array<f32, 1>,
) {
    let row = Int::new(0);
    let lane = Int::new(0);
    row.assign(gidx());
    lane.assign(lidx());
    let row_end = Int::new(0);
    row_end.assign(rowptr.at(row.v() + 1));
    let j = Int::var();
    let my_sum = Float::new(0.0);
    for_var(
        &j,
        rowptr.at(row.v()) + lane.v(),
        row_end.v(),
        M as i32,
        || {
            my_sum.assign_add(a.at(j.v()) * vec.at(cols.at(j.v())));
        },
    );

    let sdata = Array::<f32, 1>::local([M]);
    sdata.at(lane.v()).assign(my_sum.v());
    barrier(LOCAL);

    // reduce sdata
    if_(lane.v().lt(4), || {
        sdata.at(lane.v()).assign_add(sdata.at(lane.v() + 4));
    });
    barrier(LOCAL);
    if_(lane.v().lt(2), || {
        sdata.at(lane.v()).assign_add(sdata.at(lane.v() + 2));
    });
    barrier(LOCAL);
    if_(lane.v().eq_(0), || {
        out.at(row.v()).assign(sdata.at(0) + sdata.at(1));
    });
}

/// The OpenCL C that HPL generates for the spmv kernel (captured from a
/// tiny 2-row identity-like CSR problem; the source does not depend on the
/// problem). Used by `report -- lint` to run the kernel sanitizer over
/// generated code.
pub fn generated_source(device: &Device) -> Result<String, hpl::Error> {
    let n = 2;
    let a = Array::<f32, 1>::from_vec([2], vec![1.0, 1.0]);
    let vec = Array::<f32, 1>::from_vec([n], vec![1.0; 2]);
    let cols = Array::<i32, 1>::from_vec([2], vec![0, 1]);
    let rowptr = Array::<i32, 1>::from_vec([n + 1], vec![0, 1, 2]);
    let out = Array::<f32, 1>::new([n]);
    let p = eval(spmv_kernel)
        .device(device)
        .global(&[n * M])
        .local(&[M])
        .run((&a, &vec, &cols, &rowptr, &out))?;
    Ok((*p.source).clone())
}

/// Run spmv with HPL on `device` (cold kernel cache).
pub fn run(
    cfg: &SpmvConfig,
    p: &CsrProblem,
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, p, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(
    cfg: &SpmvConfig,
    p: &CsrProblem,
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let n = cfg.n;
    let a = Array::<f32, 1>::from_vec([p.val.len()], p.val.clone());
    let vec = Array::<f32, 1>::from_vec([n], p.vec.clone());
    let cols = Array::<i32, 1>::from_vec([p.cols.len()], p.cols.clone());
    let rowptr = Array::<i32, 1>::from_vec([n + 1], p.rowptr.clone());
    let out = Array::<f32, 1>::new([n]);

    let profile = eval(spmv_kernel)
        .device(device)
        .global(&[n * M])
        .local(&[M])
        .run((&a, &vec, &cols, &rowptr, &out))?;

    let result = out.to_vec();
    let stats_after = hpl::runtime().transfer_stats();
    let mut metrics = RunMetrics::default();
    metrics.add_eval(&profile);
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    // stabilise the one-shot front-end wall measurement against host noise
    let (cap, gen) = hpl::eval::measure_front(spmv_kernel, &(&a, &vec, &cols, &rowptr, &out), 3);
    metrics.front_seconds = metrics.front_seconds.min(cap + gen);
    Ok((result, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::{generate, results_match, serial};

    #[test]
    fn hpl_matches_serial_reference() {
        let cfg = SpmvConfig {
            n: 128,
            density: 0.05,
            seed: 5,
        };
        let p = generate(&cfg);
        let device = hpl::runtime().default_device();
        let (result, metrics) = run(&cfg, &p, &device).unwrap();
        assert!(results_match(&serial(&p), &result));
        assert!(metrics.front_seconds > 0.0);
    }

    #[test]
    fn hpl_and_opencl_agree_bitwise() {
        // both device versions reduce in the same tree order
        let cfg = SpmvConfig::default();
        let p = generate(&cfg);
        let device = hpl::runtime().default_device();
        let (h, _) = run(&cfg, &p, &device).unwrap();
        let (o, _) = super::super::opencl_version::run(&cfg, &p, &device).unwrap();
        assert_eq!(
            h.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            o.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
