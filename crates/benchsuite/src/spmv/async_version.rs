//! spmv — asynchronous HPL variant: the same kernel as
//! `hpl_version`, launched through `eval(..).run_async(..)` on the
//! device's out-of-order queue. Kept out of `hpl_version.rs` so the
//! Table I SLOC instrument keeps counting exactly the paper's
//! synchronous program.

use hpl::eval;
use hpl::prelude::*;
use oclsim::Device;

use super::hpl_version::spmv_kernel;
use super::{CsrProblem, SpmvConfig, M};
use crate::common::RunMetrics;

/// Like [`super::hpl_version::run`], but the launch goes through `run_async`; the four input
/// uploads are enqueued without waiting and the kernel's inferred wait
/// list orders it after all of them.
pub fn run(
    cfg: &SpmvConfig,
    p: &CsrProblem,
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, p, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(
    cfg: &SpmvConfig,
    p: &CsrProblem,
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let n = cfg.n;
    let a = Array::<f32, 1>::from_vec([p.val.len()], p.val.clone());
    let vec = Array::<f32, 1>::from_vec([n], p.vec.clone());
    let cols = Array::<i32, 1>::from_vec([p.cols.len()], p.cols.clone());
    let rowptr = Array::<i32, 1>::from_vec([n + 1], p.rowptr.clone());
    let out = Array::<f32, 1>::new([n]);

    let handle = eval(spmv_kernel)
        .device(device)
        .global(&[n * M])
        .local(&[M])
        .run_async((&a, &vec, &cols, &rowptr, &out))?;
    let profile = handle.wait()?;

    let result = out.to_vec();
    let stats_after = hpl::runtime().transfer_stats();
    let mut metrics = RunMetrics::default();
    metrics.add_eval(&profile);
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    Ok((result, metrics))
}
