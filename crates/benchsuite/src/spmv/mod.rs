//! Sparse matrix–vector product over CSR (the paper's §IV-C example and
//! SHOC benchmark).
//!
//! The paper uses a 16K×16K matrix with 1% non-zeros (8K×8K on the
//! Quadro); scaled here to 2K×2K / 1K×1K with the same density. One
//! work-group of [`M`] lanes cooperates on each row, as in Figure 5(b).

pub mod async_version;
pub mod hpl_version;
pub mod opencl_version;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::common::BenchReport;

/// Lanes per row (the paper's `M`).
pub const M: usize = 8;

/// Spmv configuration.
#[derive(Debug, Clone, Copy)]
pub struct SpmvConfig {
    /// Square matrix dimension.
    pub n: usize,
    /// Fraction of non-zero entries.
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpmvConfig {
    fn default() -> Self {
        SpmvConfig {
            n: 256,
            density: 0.01,
            seed: 42,
        }
    }
}

impl SpmvConfig {
    /// Scaled counterpart of the paper's 16K×16K, 1% non-zeros (Fig. 7): 8K×8K.
    pub fn paper_scaled() -> Self {
        SpmvConfig {
            n: 8192,
            density: 0.01,
            seed: 42,
        }
    }

    /// Scaled counterpart of the 8K×8K portability run (Fig. 9): 4K×4K.
    pub fn paper_scaled_small() -> Self {
        SpmvConfig {
            n: 4096,
            density: 0.01,
            seed: 42,
        }
    }
}

/// A CSR matrix plus a dense input vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrProblem {
    /// Non-zero values.
    pub val: Vec<f32>,
    /// Column index per non-zero.
    pub cols: Vec<i32>,
    /// Row start offsets (length n+1).
    pub rowptr: Vec<i32>,
    /// Dense input vector.
    pub vec: Vec<f32>,
}

/// Generate a random CSR matrix with ~`density` non-zeros per row
/// (at least one per row, so every row exercises the kernel).
pub fn generate(cfg: &SpmvConfig) -> CsrProblem {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let per_row = ((n as f64 * cfg.density).round() as usize).max(1);
    let mut val = Vec::with_capacity(n * per_row);
    let mut cols = Vec::with_capacity(n * per_row);
    let mut rowptr = Vec::with_capacity(n + 1);
    rowptr.push(0i32);
    for _ in 0..n {
        // jittered count per row: 50%..150% of the target density
        let count = rng
            .random_range(per_row.div_ceil(2)..=per_row + per_row / 2)
            .min(n);
        let mut row_cols: Vec<i32> = (0..count).map(|_| rng.random_range(0..n as i32)).collect();
        row_cols.sort_unstable();
        row_cols.dedup();
        for c in row_cols {
            cols.push(c);
            val.push(rng.random_range(-1.0f32..1.0));
        }
        rowptr.push(cols.len() as i32);
    }
    let vec = (0..n).map(|_| rng.random_range(-1.0f32..1.0)).collect();
    CsrProblem {
        val,
        cols,
        rowptr,
        vec,
    }
}

/// Serial native-Rust reference — the paper's Figure 5(a) loop.
pub fn serial(p: &CsrProblem) -> Vec<f32> {
    let n = p.rowptr.len() - 1;
    let mut out = vec![0.0f32; n];
    for (i, o) in out.iter_mut().enumerate().take(n) {
        for j in p.rowptr[i] as usize..p.rowptr[i + 1] as usize {
            *o += p.val[j] * p.vec[p.cols[j] as usize];
        }
    }
    out
}

/// Compare two result vectors with a floating-point tolerance (the device
/// versions reduce in tree order, the serial version left-to-right; rows
/// whose terms cancel can make *relative* error meaningless, so the
/// tolerance is absolute against the ~unit-magnitude row terms).
pub fn results_match(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| (x - y).abs() <= 2e-4)
}

/// Run the full comparison on `device` and assemble the Figure 7 row.
pub fn run(cfg: &SpmvConfig, device: &oclsim::Device) -> Result<BenchReport, crate::Error> {
    let problem = generate(cfg);
    let reference = serial(&problem);

    let (ocl_result, opencl) = opencl_version::run(cfg, &problem, device)?;
    let serial_modeled_seconds = opencl_version::modeled_serial_seconds(cfg, &problem)?;
    let (hpl_result, hpl) = hpl_version::run(cfg, &problem, device)?;

    let verified = results_match(&reference, &ocl_result) && results_match(&reference, &hpl_result);
    Ok(BenchReport {
        name: "spmv",
        opencl,
        hpl,
        serial_modeled_seconds,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_structure_is_valid() {
        let cfg = SpmvConfig {
            n: 100,
            density: 0.05,
            seed: 1,
        };
        let p = generate(&cfg);
        assert_eq!(p.rowptr.len(), 101);
        assert_eq!(p.rowptr[0], 0);
        assert_eq!(*p.rowptr.last().unwrap() as usize, p.val.len());
        assert_eq!(p.val.len(), p.cols.len());
        for w in p.rowptr.windows(2) {
            assert!(w[0] <= w[1], "rowptr must be non-decreasing");
            assert!(w[1] - w[0] >= 1, "every row has at least one non-zero");
        }
        assert!(p.cols.iter().all(|&c| (0..100).contains(&c)));
        // columns sorted within each row
        for i in 0..100 {
            let row = &p.cols[p.rowptr[i] as usize..p.rowptr[i + 1] as usize];
            assert!(row.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn serial_spmv_identity_like() {
        // diagonal matrix times vector = scaled vector
        let p = CsrProblem {
            val: vec![2.0, 3.0, 4.0],
            cols: vec![0, 1, 2],
            rowptr: vec![0, 1, 2, 3],
            vec: vec![1.0, 10.0, 100.0],
        };
        assert_eq!(serial(&p), vec![2.0, 30.0, 400.0]);
    }

    #[test]
    fn density_roughly_respected() {
        let cfg = SpmvConfig {
            n: 1000,
            density: 0.01,
            seed: 9,
        };
        let p = generate(&cfg);
        let nnz = p.val.len() as f64;
        let total = (cfg.n * cfg.n) as f64;
        let density = nnz / total;
        assert!((0.004..0.02).contains(&density), "density {density}");
    }

    #[test]
    fn results_match_tolerates_fp_reassociation() {
        assert!(results_match(&[1.0, 2.0], &[1.0 + 1e-6, 2.0]));
        assert!(!results_match(&[1.0, 2.0], &[1.1, 2.0]));
        assert!(!results_match(&[1.0], &[1.0, 2.0]));
        // near-zero sums from cancellation still match
        assert!(results_match(&[1e-7], &[-1e-7]));
    }
}
