//! Spmv — hand-written OpenCL version (SHOC csr-vector style; Table I
//! baseline).
//!
//! Classic OpenCL host style: explicit setup with status checks, build-log
//! reporting, five buffers with individual creation checks, four uploads,
//! index-by-index argument binding, explicit cleanup.

use oclsim::{Buffer, CommandQueue, Context, Device, Error, MemAccess, Program};

use super::{CsrProblem, SpmvConfig, M};
use crate::common::{serial_device, RunMetrics};

/// The hand-written kernel source.
pub const SOURCE: &str = include_str!("../kernels/spmv.cl");

const ARG_VAL: usize = 0;
const ARG_VEC: usize = 1;
const ARG_COLS: usize = 2;
const ARG_ROWPTR: usize = 3;
const ARG_OUT: usize = 4;

/// Run spmv with manual OpenCL on `device`.
pub fn run(
    cfg: &SpmvConfig,
    p: &CsrProblem,
    device: &Device,
) -> Result<(Vec<f32>, RunMetrics), Error> {
    let n = cfg.n;
    let mut metrics = RunMetrics::default();

    // ---- environment setup ------------------------------------------------
    let context = match Context::new(std::slice::from_ref(device)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("spmv: clCreateContext failed: {e}");
            return Err(e);
        }
    };
    let queue = match CommandQueue::new(&context, device) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("spmv: clCreateCommandQueue failed: {e}");
            return Err(e);
        }
    };

    // ---- program load and build --------------------------------------------
    let program = Program::from_source(&context, SOURCE);
    if let Err(e) = program.build(hpl::opt_level().flag()) {
        eprintln!(
            "spmv: clBuildProgram failed, build log:\n{}",
            program.build_log()
        );
        return Err(e);
    }
    metrics.build_seconds = program.build_duration().as_secs_f64();
    let kernel = match program.kernel("spmv") {
        Ok(k) => k,
        Err(e) => {
            eprintln!("spmv: clCreateKernel failed: {e}");
            return Err(e);
        }
    };

    // ---- buffer creation ----------------------------------------------------
    let val_buf = create_buffer(&context, "val", 4 * p.val.len(), MemAccess::ReadOnly)?;
    let vec_buf = create_buffer(&context, "vec", 4 * n, MemAccess::ReadOnly)?;
    let cols_buf = create_buffer(&context, "cols", 4 * p.cols.len(), MemAccess::ReadOnly)?;
    let rowptr_buf = create_buffer(&context, "rowptr", 4 * (n + 1), MemAccess::ReadOnly)?;
    let out_buf = create_buffer(&context, "out", 4 * n, MemAccess::ReadWrite)?;

    // ---- host -> device transfers ----------------------------------------------
    for (name, result) in [
        ("val", queue.enqueue_write(&val_buf, 0, &p.val)),
        ("vec", queue.enqueue_write(&vec_buf, 0, &p.vec)),
        ("cols", queue.enqueue_write(&cols_buf, 0, &p.cols)),
        ("rowptr", queue.enqueue_write(&rowptr_buf, 0, &p.rowptr)),
    ] {
        match result {
            Ok(ev) => metrics.transfer_modeled_seconds += ev.modeled_seconds(),
            Err(e) => {
                eprintln!("spmv: clEnqueueWriteBuffer({name}) failed: {e}");
                return Err(e);
            }
        }
    }

    // ---- argument binding and launch ----------------------------------------------
    kernel.set_arg_buffer(ARG_VAL, &val_buf)?;
    kernel.set_arg_buffer(ARG_VEC, &vec_buf)?;
    kernel.set_arg_buffer(ARG_COLS, &cols_buf)?;
    kernel.set_arg_buffer(ARG_ROWPTR, &rowptr_buf)?;
    kernel.set_arg_buffer(ARG_OUT, &out_buf)?;
    let global = [n * M];
    let local = [M];
    let event = match queue.enqueue_ndrange(&kernel, &global, Some(&local)) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("spmv: clEnqueueNDRangeKernel failed: {e}");
            return Err(e);
        }
    };
    // clFinish: blocks until the dispatcher has drained every command
    // enqueued above and their events have resolved.
    queue.finish();
    metrics.kernel_modeled_seconds += event.modeled_seconds();

    // ---- read back and cleanup -------------------------------------------------------
    let (result, ev) = queue.enqueue_read::<f32>(&out_buf, 0, n)?;
    metrics.transfer_modeled_seconds += ev.modeled_seconds();
    context.release_buffer(val_buf);
    context.release_buffer(vec_buf);
    context.release_buffer(cols_buf);
    context.release_buffer(rowptr_buf);
    context.release_buffer(out_buf);

    Ok((result, metrics))
}

fn create_buffer(
    context: &Context,
    name: &str,
    bytes: usize,
    access: MemAccess,
) -> Result<Buffer, Error> {
    match context.create_buffer(bytes, access) {
        Ok(b) => Ok(b),
        Err(e) => {
            eprintln!("spmv: clCreateBuffer({name}, {bytes} bytes) failed: {e}");
            Err(e)
        }
    }
}

/// Modeled seconds of the serial CPU baseline.
pub fn modeled_serial_seconds(cfg: &SpmvConfig, p: &CsrProblem) -> Result<f64, Error> {
    let (_, metrics) = run(cfg, p, serial_device())?;
    Ok(metrics.kernel_modeled_seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::{generate, results_match, serial};
    use oclsim::Platform;

    #[test]
    fn opencl_matches_serial_reference() {
        let cfg = SpmvConfig {
            n: 128,
            density: 0.05,
            seed: 5,
        };
        let p = generate(&cfg);
        let device = Platform::default_platform().default_accelerator().unwrap();
        let (result, metrics) = run(&cfg, &p, &device).unwrap();
        assert!(results_match(&serial(&p), &result));
        assert!(metrics.kernel_modeled_seconds > 0.0);
    }

    #[test]
    fn spmv_speedup_is_modest() {
        // irregular gathers keep spmv memory-bound: the paper reports only
        // ~5.4x over the serial CPU, the smallest of the five benchmarks
        let cfg = SpmvConfig::default();
        let p = generate(&cfg);
        let device = Platform::default_platform().default_accelerator().unwrap();
        let (_, gpu) = run(&cfg, &p, &device).unwrap();
        let serial_s = modeled_serial_seconds(&cfg, &p).unwrap();
        let speedup = serial_s / gpu.kernel_modeled_seconds;
        assert!(speedup < 120.0, "spmv speedup implausibly high: {speedup}");
        assert!(speedup > 0.5, "GPU should not lose by much: {speedup}");
    }
}
