//! # benchsuite — the HPL paper's evaluation benchmarks
//!
//! The five benchmarks of the paper's §V, each in three forms:
//!
//! | Benchmark | Paper source | HPL form | OpenCL form | Serial form |
//! |---|---|---|---|---|
//! | EP | NAS Parallel Benchmarks | [`ep::hpl_version`] | [`ep::opencl_version`] + `kernels/ep.cl` | [`ep::serial`] |
//! | Floyd–Warshall | AMD APP SDK | [`floyd::hpl_version`] | [`floyd::opencl_version`] + `kernels/floyd.cl` | [`floyd::serial`] |
//! | Matrix transpose | AMD APP SDK | [`transpose::hpl_version`] | [`transpose::opencl_version`] + `kernels/transpose.cl` | [`transpose::serial`] |
//! | Spmv (CSR) | SHOC | [`spmv::hpl_version`] | [`spmv::opencl_version`] + `kernels/spmv.cl` | [`spmv::serial`] |
//! | Reduction | SHOC | [`reduction::hpl_version`] | [`reduction::opencl_version`] + `kernels/reduction.cl` | [`reduction::serial`] |
//!
//! Each benchmark's `run(cfg, device)` produces a
//! [`common::BenchReport`] with the serial-CPU baseline, the OpenCL and
//! the HPL timings — the raw material of the paper's Figures 6–9 — after
//! verifying that all three versions compute the same answer.
//!
//! The `*_version.rs` files are intentionally self-contained: they are the
//! units the programmability study (Table I) measures with the `sloc`
//! crate.

pub mod common;
pub mod ep;
pub mod floyd;
pub mod pipeline;
pub mod reduction;
pub mod spmv;
pub mod transpose;

pub use common::{BenchReport, RunMetrics};

/// Unified error type for benchmark drivers.
#[derive(Debug)]
pub enum Error {
    /// Backend (simulated OpenCL) error.
    Ocl(oclsim::Error),
    /// HPL error.
    Hpl(hpl::Error),
    /// Result verification failed.
    Verification(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Ocl(e) => write!(f, "OpenCL error: {e}"),
            Error::Hpl(e) => write!(f, "HPL error: {e}"),
            Error::Verification(msg) => write!(f, "verification failed: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<oclsim::Error> for Error {
    fn from(e: oclsim::Error) -> Error {
        Error::Ocl(e)
    }
}

impl From<hpl::Error> for Error {
    fn from(e: hpl::Error) -> Error {
        Error::Hpl(e)
    }
}
