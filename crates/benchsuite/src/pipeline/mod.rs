//! Chunked transfer/compute pipeline — the overlap demonstrator for the
//! asynchronous scheduler.
//!
//! A large streaming workload is split into independent chunks; each
//! chunk's host→device upload and kernel launch are enqueued with
//! `eval(..).run_async(..)` on the device's out-of-order queue. Because
//! the chunks share no data, their inferred wait lists only order each
//! chunk's kernel after its own upload, so on the modeled device timeline
//! chunk *k+1*'s DMA transfer overlaps chunk *k*'s kernel — the classic
//! double-buffering pipeline, here falling out of the scheduler with no
//! explicit orchestration. With two devices the chunks are dealt
//! round-robin and the two pipelines run concurrently.
//!
//! The `report -- overlap` section of the `bench` crate prints the modeled
//! makespan next to the sum of the individual command times; tests here
//! only verify functional results (the makespan assertions need a quiet
//! timeline, which `cargo test`'s parallelism does not guarantee).

use hpl::eval;
use hpl::prelude::*;
use oclsim::Device;

/// Pipeline shape: `chunks` independent slices of `chunk_elems` floats.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Elements per chunk.
    pub chunk_elems: usize,
    /// Number of chunks streamed through the device(s).
    pub chunks: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunk_elems: 1 << 15,
            chunks: 8,
        }
    }
}

/// Outcome of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Modeled makespan: the latest instant any engine of any involved
    /// device is busy until, after a fresh timeline. Only meaningful when
    /// nothing else used the devices concurrently (the `report` binary).
    pub makespan_seconds: f64,
    /// Sum of the individual commands' modeled times (transfers +
    /// kernels): what a fully serialised schedule would take on one
    /// device.
    pub sum_command_seconds: f64,
    /// Every chunk produced the expected values.
    pub verified: bool,
    /// Names of the devices used, in round-robin order.
    pub device_names: Vec<String>,
}

/// The per-chunk kernel: an elementwise fused multiply-add, cheap enough
/// that the upload time is of the same order as the compute time — the
/// regime where overlap pays.
fn chunk_kernel(out: &Array<f32, 1>, input: &Array<f32, 1>) {
    out.at(idx()).assign(input.at(idx()) * 2.0f32 + 1.0f32);
}

fn expected(chunk: usize, i: usize, n: usize) -> f32 {
    host_value(chunk, i, n) * 2.0 + 1.0
}

fn host_value(chunk: usize, i: usize, n: usize) -> f32 {
    ((chunk * n + i) % 8191) as f32 * 0.5
}

/// Stream `cfg.chunks` chunks through `devices` (round-robin) with
/// `run_async`, wait for everything, verify, and report the modeled
/// makespan versus the serialised sum of command times.
pub fn run(cfg: &PipelineConfig, devices: &[Device]) -> Result<PipelineOutcome, hpl::Error> {
    assert!(!devices.is_empty(), "pipeline needs at least one device");
    let n = cfg.chunk_elems;
    let inputs: Vec<Array<f32, 1>> = (0..cfg.chunks)
        .map(|c| Array::from_vec([n], (0..n).map(|i| host_value(c, i, n)).collect()))
        .collect();
    let outputs: Vec<Array<f32, 1>> = (0..cfg.chunks).map(|_| Array::new([n])).collect();

    for d in devices {
        d.reset_timeline();
    }

    let mut handles = Vec::with_capacity(cfg.chunks);
    for c in 0..cfg.chunks {
        let device = &devices[c % devices.len()];
        handles.push(
            eval(chunk_kernel)
                .device(device)
                .run_async((&outputs[c], &inputs[c]))?,
        );
    }

    let mut sum_command_seconds = 0.0;
    for h in handles {
        let p = h.wait()?;
        sum_command_seconds += p.kernel_modeled_seconds + p.transfer_modeled_seconds;
    }
    let makespan_seconds = devices
        .iter()
        .map(Device::timeline_horizon)
        .fold(0.0f64, f64::max);

    let mut verified = true;
    for (c, out) in outputs.iter().enumerate() {
        let data = out.to_vec();
        for i in (0..n).step_by((n / 13).max(1)) {
            if data[i] != expected(c, i, n) {
                verified = false;
            }
        }
    }

    Ok(PipelineOutcome {
        makespan_seconds,
        sum_command_seconds,
        verified,
        device_names: devices.iter().map(|d| d.name().to_string()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_results_are_correct_on_one_device() {
        let device = hpl::runtime().default_device();
        let cfg = PipelineConfig {
            chunk_elems: 1 << 10,
            chunks: 4,
        };
        let outcome = run(&cfg, &[device]).unwrap();
        assert!(outcome.verified);
        assert!(outcome.sum_command_seconds > 0.0);
        assert!(outcome.makespan_seconds > 0.0);
        assert_eq!(outcome.device_names.len(), 1);
    }

    #[test]
    fn pipeline_results_are_correct_across_two_devices() {
        let rt = hpl::runtime();
        let tesla = rt.device_named("tesla").unwrap();
        let cpu = rt.device_named("xeon").unwrap();
        let cfg = PipelineConfig {
            chunk_elems: 1 << 10,
            chunks: 6,
        };
        let outcome = run(&cfg, &[tesla, cpu]).unwrap();
        assert!(
            outcome.verified,
            "round-robin across devices must still be coherent"
        );
        assert_eq!(outcome.device_names.len(), 2);
    }
}
