// Single-precision sum reduction, hand-written OpenCL baseline (SHOC
// style): each work-item first accumulates PER_THREAD elements with
// group-strided loads (so the tree cost amortises), then a per-group tree
// reduction in local memory produces one partial sum per work-group; the
// host adds the partials.

#define GROUP 256
#define PER_THREAD 8

__kernel void reduce_sum(__global const float* in, __global float* partials) {
    __local float sdata[GROUP];
    int lid = (int)get_local_id(0);
    int base = (int)get_group_id(0) * (GROUP * PER_THREAD) + lid;

    float acc = 0.0f;
    for (int j = 0; j < PER_THREAD; j++) {
        acc += in[base + j * GROUP];
    }
    sdata[lid] = acc;
    barrier(CLK_LOCAL_MEM_FENCE);

    for (int s = GROUP / 2; s > 0; s >>= 1) {
        if (lid < s) {
            sdata[lid] += sdata[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partials[(int)get_group_id(0)] = sdata[0];
    }
}

// The serial baseline of Figures 6/7 is plain sequential code; this
// single-work-item kernel mirrors the paper's serial C++ sum loop so the
// CPU-profile timing model prices exactly that loop.
__kernel void serial_sum(__global const float* in, __global float* out, const int n) {
    float acc = 0.0f;
    for (int i = 0; i < n; i++) {
        acc += in[i];
    }
    out[0] = acc;
}
