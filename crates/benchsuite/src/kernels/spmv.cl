// Sparse matrix-vector product over CSR, hand-written OpenCL baseline
// (SHOC csr-vector style): one work-group of M lanes per matrix row,
// strided accumulation, then a tree reduction in local memory. This is the
// shape of the paper's Figure 5(b).

#define M 8

__kernel void spmv(__global const float* val,
                   __global const float* vec,
                   __global const int* cols,
                   __global const int* rowptr,
                   __global float* out) {
    int row = (int)get_group_id(0);
    int lane = (int)get_local_id(0);
    int end = rowptr[row + 1];
    __local float sdata[M];

    float mySum = 0.0f;
    for (int j = rowptr[row] + lane; j < end; j += M) {
        mySum += val[j] * vec[cols[j]];
    }
    sdata[lane] = mySum;
    barrier(CLK_LOCAL_MEM_FENCE);

    if (lane < 4) {
        sdata[lane] += sdata[lane + 4];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lane < 2) {
        sdata[lane] += sdata[lane + 2];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lane == 0) {
        out[row] = sdata[0] + sdata[1];
    }
}
