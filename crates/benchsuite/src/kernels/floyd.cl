// Floyd-Warshall all-pairs shortest paths, hand-written OpenCL baseline
// (AMD APP SDK style: one kernel launch per intermediate vertex k).

__kernel void floyd_pass(__global uint* dist, const int n, const int k) {
    int x = (int)get_global_id(0);
    int y = (int)get_global_id(1);
    uint direct = dist[y * n + x];
    uint through = dist[y * n + k] + dist[k * n + x];
    dist[y * n + x] = min(direct, through);
}
