// NAS EP (embarrassingly parallel) kernel, hand-written OpenCL baseline.
// Each work-item owns a pre-seeded chunk of the NAS linear congruential
// stream, generates pairs of uniforms, applies the Marsaglia polar method,
// and tallies Gaussian deviates into square annuli.

#define EP_MOD_MASK 70368744177663UL
#define EP_R46 70368744177664.0
#define EP_LO_MASK 8388607UL

ulong lcg_next(ulong x) {
    ulong a = 1220703125UL;
    ulong x1 = x >> 23;
    ulong x0 = x & EP_LO_MASK;
    ulong t = (((a * x1) & EP_LO_MASK) << 23) + a * x0;
    return t & EP_MOD_MASK;
}

__kernel void ep(__global const ulong* seeds,
                 __global double* sx,
                 __global double* sy,
                 __global int* q,
                 const int pairs_per_thread) {
    int tid = (int)get_global_id(0);
    ulong x = seeds[tid];
    double lsx = 0.0;
    double lsy = 0.0;
    int qcnt[10];
    for (int i = 0; i < 10; i++) {
        qcnt[i] = 0;
    }
    for (int i = 0; i < pairs_per_thread; i++) {
        x = lcg_next(x);
        double u1 = (double)x / EP_R46;
        x = lcg_next(x);
        double u2 = (double)x / EP_R46;
        double a = 2.0 * u1 - 1.0;
        double b = 2.0 * u2 - 1.0;
        double t = a * a + b * b;
        if (t <= 1.0) {
            double f = sqrt(-2.0 * log(t) / t);
            double gx = a * f;
            double gy = b * f;
            lsx += gx;
            lsy += gy;
            int l = (int)fmax(fabs(gx), fabs(gy));
            l = min(l, 9);
            qcnt[l] += 1;
        }
    }
    sx[tid] = lsx;
    sy[tid] = lsy;
    for (int i = 0; i < 10; i++) {
        q[tid * 10 + i] = qcnt[i];
    }
}
