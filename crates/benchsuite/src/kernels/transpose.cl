// Tiled matrix transpose, hand-written OpenCL baseline (AMD APP SDK
// style): each work-group stages a BLOCK x BLOCK tile in local memory so
// both the reads and the writes to global memory are contiguous.

#define BLOCK 16

__kernel void transpose(__global float* dst,
                        __global const float* src,
                        const int h,
                        const int w) {
    __local float tile[256];
    int gx = (int)get_global_id(0);
    int gy = (int)get_global_id(1);
    int lx = (int)get_local_id(0);
    int ly = (int)get_local_id(1);

    tile[ly * BLOCK + lx] = src[gy * w + gx];
    barrier(CLK_LOCAL_MEM_FENCE);

    int ox = (int)get_group_id(1) * BLOCK + lx;
    int oy = (int)get_group_id(0) * BLOCK + ly;
    dst[oy * h + ox] = tile[lx * BLOCK + ly];
}
