//! Reduction — hand-written OpenCL version (SHOC style; Table I baseline).
//!
//! Classic OpenCL host style: explicit setup with status checks, build-log
//! reporting, explicit buffers/transfers/argument binding, host-side final
//! pass over the per-group partials, explicit cleanup.

use oclsim::{CommandQueue, Context, Device, Error, MemAccess, Program};

use super::{ReductionConfig, CHUNK, GROUP};
use crate::common::{serial_device, RunMetrics};

/// The hand-written kernel source.
pub const SOURCE: &str = include_str!("../kernels/reduction.cl");

const ARG_IN: usize = 0;
const ARG_PARTIALS: usize = 1;

/// Run the reduction with manual OpenCL on `device`.
pub fn run(
    cfg: &ReductionConfig,
    data: &[f32],
    device: &Device,
) -> Result<(f32, RunMetrics), Error> {
    let n = cfg.n;
    let groups = n / CHUNK;
    let mut metrics = RunMetrics::default();

    // ---- environment setup ------------------------------------------------
    let context = match Context::new(std::slice::from_ref(device)) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("reduction: clCreateContext failed: {e}");
            return Err(e);
        }
    };
    let queue = match CommandQueue::new(&context, device) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("reduction: clCreateCommandQueue failed: {e}");
            return Err(e);
        }
    };

    // ---- program load and build --------------------------------------------
    let program = Program::from_source(&context, SOURCE);
    if let Err(e) = program.build(hpl::opt_level().flag()) {
        eprintln!(
            "reduction: clBuildProgram failed, build log:\n{}",
            program.build_log()
        );
        return Err(e);
    }
    metrics.build_seconds = program.build_duration().as_secs_f64();
    let kernel = match program.kernel("reduce_sum") {
        Ok(k) => k,
        Err(e) => {
            eprintln!("reduction: clCreateKernel failed: {e}");
            return Err(e);
        }
    };

    // ---- buffers and upload ------------------------------------------------------
    let in_bytes = 4 * n;
    let in_buf = match context.create_buffer(in_bytes, MemAccess::ReadOnly) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("reduction: clCreateBuffer(in, {in_bytes} bytes) failed: {e}");
            return Err(e);
        }
    };
    let partials_buf = match context.create_buffer(4 * groups, MemAccess::ReadWrite) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("reduction: clCreateBuffer(partials) failed: {e}");
            return Err(e);
        }
    };
    match queue.enqueue_write(&in_buf, 0, data) {
        Ok(ev) => metrics.transfer_modeled_seconds += ev.modeled_seconds(),
        Err(e) => {
            eprintln!("reduction: clEnqueueWriteBuffer(in) failed: {e}");
            return Err(e);
        }
    }

    // ---- argument binding and launch --------------------------------------------
    kernel.set_arg_buffer(ARG_IN, &in_buf)?;
    kernel.set_arg_buffer(ARG_PARTIALS, &partials_buf)?;
    let global = [n / super::PER_THREAD];
    let local = [GROUP];
    let event = match queue.enqueue_ndrange(&kernel, &global, Some(&local)) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("reduction: clEnqueueNDRangeKernel failed: {e}");
            return Err(e);
        }
    };
    // clFinish: blocks until the dispatcher has drained every command
    // enqueued above and their events have resolved.
    queue.finish();
    metrics.kernel_modeled_seconds += event.modeled_seconds();

    // ---- read back, final host pass, cleanup ------------------------------------------
    let (partials, ev) = queue.enqueue_read::<f32>(&partials_buf, 0, groups)?;
    metrics.transfer_modeled_seconds += ev.modeled_seconds();
    let result: f32 = partials.iter().sum();
    context.release_buffer(in_buf);
    context.release_buffer(partials_buf);

    Ok((result, metrics))
}

/// Modeled seconds of the serial CPU baseline: the paper's baseline is a
/// plain sequential sum loop, so it is priced with the single-work-item
/// `serial_sum` kernel on the 1-core CPU profile rather than the tree
/// kernel (which a serial program would never run).
pub fn modeled_serial_seconds(cfg: &ReductionConfig, data: &[f32]) -> Result<f64, Error> {
    let device = serial_device();
    let context = Context::new(std::slice::from_ref(device))?;
    let queue = CommandQueue::new(&context, device)?;
    let program = Program::from_source(&context, SOURCE);
    program.build(hpl::opt_level().flag())?;
    let kernel = program.kernel("serial_sum")?;
    let in_buf = context.create_buffer(4 * cfg.n, MemAccess::ReadOnly)?;
    queue.enqueue_write(&in_buf, 0, data)?;
    let out_buf = context.create_buffer(4, MemAccess::ReadWrite)?;
    kernel.set_arg_buffer(0, &in_buf)?;
    kernel.set_arg_buffer(1, &out_buf)?;
    kernel.set_arg_scalar(2, cfg.n as i32)?;
    let event = queue.enqueue_ndrange(&kernel, &[1], Some(&[1]))?;
    // sanity: the serial loop computes the same sum
    let (result, _) = queue.enqueue_read::<f32>(&out_buf, 0, 1)?;
    debug_assert_eq!(result[0], data.iter().sum::<f32>());
    context.release_buffer(in_buf);
    context.release_buffer(out_buf);
    Ok(event.modeled_seconds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::{generate_input, serial};
    use oclsim::Platform;

    #[test]
    fn opencl_matches_serial_reference() {
        let cfg = ReductionConfig { n: CHUNK * 8 };
        let data = generate_input(&cfg);
        let device = Platform::default_platform().default_accelerator().unwrap();
        let (result, metrics) = run(&cfg, &data, &device).unwrap();
        assert_eq!(result, serial(&data));
        assert!(metrics.kernel_modeled_seconds > 0.0);
        assert!(metrics.build_seconds > 0.0);
    }

    #[test]
    fn reduction_is_memory_bound_on_gpu() {
        let cfg = ReductionConfig::default();
        let data = generate_input(&cfg);
        let device = Platform::default_platform().default_accelerator().unwrap();
        let (_, m) = run(&cfg, &data, &device).unwrap();
        // one coalesced pass over the input: transfers dominate the total
        assert!(m.transfer_modeled_seconds > m.kernel_modeled_seconds);
    }

    #[test]
    fn serial_baseline_is_the_sequential_loop() {
        let cfg = ReductionConfig::default();
        let data = generate_input(&cfg);
        let device = Platform::default_platform().default_accelerator().unwrap();
        let serial_s = modeled_serial_seconds(&cfg, &data).unwrap();
        let (_, gpu) = run(&cfg, &data, &device).unwrap();
        let speedup = serial_s / gpu.kernel_modeled_seconds;
        assert!(
            (2.0..200.0).contains(&speedup),
            "reduction speedup out of plausible range: {speedup}"
        );
    }
}
