//! Reduction — HPL version (the efficient tree-reduction variant the
//! paper's dot-product discussion alludes to).

use hpl::eval;
use hpl::prelude::*;
use oclsim::Device;

use super::{ReductionConfig, CHUNK, GROUP, PER_THREAD};
use crate::common::RunMetrics;

/// The reduction kernel written with the HPL embedded DSL.
pub(super) fn reduction_kernel(input: &Array<f32, 1>, partials: &Array<f32, 1>) {
    let sdata = Array::<f32, 1>::local([GROUP]);
    let lid = Int::new(0);
    lid.assign(lidx());
    let base = Int::new(0);
    base.assign(gidx() * CHUNK as i32 + lid.v());
    let acc = Float::new(0.0);
    for_(0, PER_THREAD as i32, |j| {
        acc.assign_add(input.at(base.v() + j * GROUP as i32));
    });
    sdata.at(lid.v()).assign(acc.v());
    barrier(LOCAL);
    let s = Int::new((GROUP / 2) as i32);
    while_(s.v().gt(0), || {
        if_(lid.v().lt(s.v()), || {
            sdata.at(lid.v()).assign_add(sdata.at(lid.v() + s.v()));
        });
        barrier(LOCAL);
        s.assign(s.v() >> 1);
    });
    if_(lid.v().eq_(0), || {
        partials.at(gidx()).assign(sdata.at(0));
    });
}

/// The OpenCL C that HPL generates for the reduction kernel (captured from
/// a tiny instance; the source does not depend on the problem size). Used
/// by `report -- lint` to run the kernel sanitizer over generated code.
pub fn generated_source(device: &Device) -> Result<String, hpl::Error> {
    let input = Array::<f32, 1>::from_vec([CHUNK], vec![0.0; CHUNK]);
    let partials = Array::<f32, 1>::new([1]);
    let p = eval(reduction_kernel)
        .device(device)
        .global(&[CHUNK / PER_THREAD])
        .local(&[GROUP])
        .run((&input, &partials))?;
    Ok((*p.source).clone())
}

/// Run the reduction with HPL on `device` (cold kernel cache).
pub fn run(
    cfg: &ReductionConfig,
    data: &[f32],
    device: &Device,
) -> Result<(f32, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, data, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(
    cfg: &ReductionConfig,
    data: &[f32],
    device: &Device,
) -> Result<(f32, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let n = cfg.n;
    let groups = n / CHUNK;
    let input = Array::<f32, 1>::from_vec([n], data.to_vec());
    let partials = Array::<f32, 1>::new([groups]);

    let profile = eval(reduction_kernel)
        .device(device)
        .global(&[n / PER_THREAD])
        .local(&[GROUP])
        .run((&input, &partials))?;

    let result = partials.with_data(|d| d.iter().sum());
    let stats_after = hpl::runtime().transfer_stats();
    let mut metrics = RunMetrics::default();
    metrics.add_eval(&profile);
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    // stabilise the one-shot front-end wall measurement against host noise
    let (cap, gen) = hpl::eval::measure_front(reduction_kernel, &(&input, &partials), 3);
    metrics.front_seconds = metrics.front_seconds.min(cap + gen);
    Ok((result, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::{generate_input, serial};

    #[test]
    fn hpl_matches_serial_reference() {
        let cfg = ReductionConfig { n: CHUNK * 8 };
        let data = generate_input(&cfg);
        let device = hpl::runtime().default_device();
        let (result, metrics) = run(&cfg, &data, &device).unwrap();
        assert_eq!(result, serial(&data));
        assert!(metrics.front_seconds > 0.0);
    }

    #[test]
    fn generated_source_contains_tree_loop() {
        let cfg = ReductionConfig { n: CHUNK * 2 };
        let data = generate_input(&cfg);
        let device = hpl::runtime().default_device();
        hpl::clear_kernel_cache();
        let input = Array::<f32, 1>::from_vec([cfg.n], data);
        let partials = Array::<f32, 1>::new([2]);
        let p = eval(reduction_kernel)
            .device(&device)
            .global(&[cfg.n / PER_THREAD])
            .local(&[GROUP])
            .run((&input, &partials))
            .unwrap();
        assert!(p.source.contains("while ("), "{}", p.source);
        assert!(p.source.contains("__local float"), "{}", p.source);
    }
}
