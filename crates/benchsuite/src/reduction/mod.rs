//! Single-precision sum reduction (SHOC).
//!
//! The paper adds 16M floats; scaled here to 1M. The device versions
//! produce one partial per work-group of [`GROUP`] elements (local tree
//! reduction) and the host adds the partials. The input values are small
//! integers so every summation order gives the exact same float — which
//! lets verification demand bitwise equality.

pub mod async_version;
pub mod hpl_version;
pub mod opencl_version;

use crate::common::BenchReport;

/// Work-group size of the device reduction.
pub const GROUP: usize = 256;

/// Elements each work-item accumulates before the local-memory tree
/// (SHOC-style; amortises the tree and loop overhead).
pub const PER_THREAD: usize = 8;

/// Input elements consumed by one work-group.
pub const CHUNK: usize = GROUP * PER_THREAD;

/// Reduction configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReductionConfig {
    /// Number of input elements; must be a multiple of [`GROUP`].
    pub n: usize,
}

impl Default for ReductionConfig {
    fn default() -> Self {
        ReductionConfig { n: 64 * CHUNK }
    }
}

impl ReductionConfig {
    /// Scaled counterpart of the paper's 16M-element run (Fig. 7): 8M.
    pub fn paper_scaled() -> Self {
        ReductionConfig { n: 1 << 23 }
    }

    /// A smaller size for the portability run (Fig. 9).
    pub fn paper_scaled_small() -> Self {
        ReductionConfig { n: 1 << 22 }
    }

    fn validate(&self) {
        assert!(
            self.n.is_multiple_of(CHUNK),
            "n must be a multiple of the {CHUNK}-element group chunk"
        );
    }
}

/// Deterministic input whose elements are small zero-centred integers:
/// every partial sum in any grouping stays tiny and exactly representable,
/// so all summation orders give the bitwise-identical result even at
/// millions of elements.
pub fn generate_input(cfg: &ReductionConfig) -> Vec<f32> {
    cfg.validate();
    (0..cfg.n)
        .map(|i| ((i * 2_654_435_761) % 17) as f32 - 8.0)
        .collect()
}

/// Serial native-Rust reference.
pub fn serial(data: &[f32]) -> f32 {
    data.iter().sum()
}

/// Run the full comparison on `device` and assemble the Figure 7 row.
pub fn run(cfg: &ReductionConfig, device: &oclsim::Device) -> Result<BenchReport, crate::Error> {
    let data = generate_input(cfg);
    let reference = serial(&data);

    let (ocl_result, opencl) = opencl_version::run(cfg, &data, device)?;
    let serial_modeled_seconds = opencl_version::modeled_serial_seconds(cfg, &data)?;
    let (hpl_result, hpl) = hpl_version::run(cfg, &data, device)?;

    let verified = ocl_result == reference && hpl_result == reference;
    Ok(BenchReport {
        name: "reduction",
        opencl,
        hpl,
        serial_modeled_seconds,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_is_exactly_summable() {
        let cfg = ReductionConfig { n: CHUNK * 4 };
        let data = generate_input(&cfg);
        assert!(data
            .iter()
            .all(|&x| (-8.0..=8.0).contains(&x) && x.fract() == 0.0));
        // zero-centred residues: running sums stay tiny, so f32 summation
        // is exact in any order
        let total: f64 = data.iter().map(|&x| x as f64).sum();
        assert!(total.abs() < 1e4, "total {total}");
        let forward: f32 = data.iter().sum();
        let backward: f32 = data.iter().rev().sum();
        assert_eq!(forward, backward);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_group_multiple_rejected() {
        let _ = generate_input(&ReductionConfig { n: 100 });
    }

    #[test]
    fn serial_sum_known_case() {
        assert_eq!(serial(&[1.0, 2.0, 3.5]), 6.5);
    }
}
