//! reduction — asynchronous HPL variant: the same kernel as
//! `hpl_version`, launched through `eval(..).run_async(..)` on the
//! device's out-of-order queue. Kept out of `hpl_version.rs` so the
//! Table I SLOC instrument keeps counting exactly the paper's
//! synchronous program.

use hpl::eval;
use hpl::prelude::*;
use oclsim::Device;

use super::hpl_version::reduction_kernel;
use super::{ReductionConfig, CHUNK, GROUP, PER_THREAD};
use crate::common::RunMetrics;

/// Like [`super::hpl_version::run`], but the launch goes through `run_async`; the
/// `with_data` scan of the partial sums settles the pending event.
pub fn run(
    cfg: &ReductionConfig,
    data: &[f32],
    device: &Device,
) -> Result<(f32, RunMetrics), hpl::Error> {
    hpl::clear_kernel_cache();
    run_warm(cfg, data, device)
}

/// Like [`run`], but the kernel cache is left as-is: repeated calls are
/// served from the cache — the steady state `report -- metrics` drives
/// every benchmark to.
pub fn run_warm(
    cfg: &ReductionConfig,
    data: &[f32],
    device: &Device,
) -> Result<(f32, RunMetrics), hpl::Error> {
    let stats_before = hpl::runtime().transfer_stats();
    let n = cfg.n;
    let groups = n / CHUNK;
    let input = Array::<f32, 1>::from_vec([n], data.to_vec());
    let partials = Array::<f32, 1>::new([groups]);

    let handle = eval(reduction_kernel)
        .device(device)
        .global(&[n / PER_THREAD])
        .local(&[GROUP])
        .run_async((&input, &partials))?;
    let profile = handle.wait()?;

    let result = partials.with_data(|d| d.iter().sum());
    let stats_after = hpl::runtime().transfer_stats();
    let mut metrics = RunMetrics::default();
    metrics.add_eval(&profile);
    metrics.transfer_modeled_seconds = stats_after.modeled_seconds - stats_before.modeled_seconds;
    Ok((result, metrics))
}
