//! Backend equivalence: the compiled work-group bytecode VM (`wg`) must be
//! observationally identical to the reference SIMT interpreter (`ref`).
//!
//! Every benchmark runs under both backends at `-O0` and `-O2`, in the
//! synchronous and the event-graph (async) HPL variants, and the outputs
//! must match **bit for bit** — floats compared through their bit
//! patterns, never with a tolerance. On top of the outputs, the profiled
//! [`LaunchCounters`] of every kernel launch (totals, per-line map, group
//! count, modeled cycles) must be byte-identical between backends, which
//! is what keeps `report -- annotate` and the trajectory gate
//! backend-agnostic.
//!
//! The backend knob is process-global (like the opt level), so tests in
//! this binary serialize on one mutex and restore the previous backend on
//! exit. `ci.sh` runs the whole suite under `OCLSIM_BACKEND=ref` and
//! `OCLSIM_BACKEND=wg` (and under `OCLSIM_THREADS=1` and `4`), so both
//! engines also face every *other* test in the tree.

use benchsuite::{ep, floyd, reduction, spmv, transpose};
use oclsim::prof::LaunchCounters;
use oclsim::{Backend, OptLevel};
use proptest::prelude::*;

fn tesla() -> oclsim::Device {
    hpl::runtime()
        .device_named("tesla")
        .expect("default platform has a Tesla-class GPU")
}

fn tesla_cached() -> oclsim::Device {
    hpl::runtime()
        .device_named("48k")
        .expect("default platform has the 48K-L1 cached Tesla variant")
}

/// Backend and opt level are process-global; tests in this binary must
/// not race on them.
static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` with the process-global backend and opt level pinned, clearing
/// the kernel cache on entry and exit so no binary built under one
/// configuration leaks into another.
fn with_knobs<T>(backend: Backend, level: OptLevel, f: impl FnOnce() -> T) -> T {
    let prev_backend = oclsim::backend();
    let prev_level = hpl::opt_level();
    oclsim::set_backend(backend);
    hpl::set_opt_level(level);
    hpl::clear_kernel_cache();
    let out = f();
    oclsim::set_backend(prev_backend);
    hpl::set_opt_level(prev_level);
    hpl::clear_kernel_cache();
    out
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Everything one (backend, level) configuration produced: the five
/// benchmark outputs (sync + async variants) as raw bits.
#[derive(Debug, PartialEq)]
struct Outputs {
    ep_sync: (Vec<i64>, u64, u64),
    ep_async: (Vec<i64>, u64, u64),
    floyd_sync: Vec<u32>,
    floyd_async: Vec<u32>,
    transpose_sync: Vec<u32>,
    transpose_async: Vec<u32>,
    spmv_sync: Vec<u32>,
    spmv_async: Vec<u32>,
    reduction_sync: u32,
    reduction_async: u32,
}

struct Inputs {
    e_cfg: ep::EpConfig,
    f_cfg: floyd::FloydConfig,
    graph: Vec<u32>,
    t_cfg: transpose::TransposeConfig,
    matrix: Vec<f32>,
    s_cfg: spmv::SpmvConfig,
    problem: spmv::CsrProblem,
    r_cfg: reduction::ReductionConfig,
    data: Vec<f32>,
}

fn run_all(inp: &Inputs, device: &oclsim::Device) -> Outputs {
    let ep_bits = |r: &ep::EpResult| (r.q.to_vec(), r.sx.to_bits(), r.sy.to_bits());
    let (es, _) = ep::hpl_version::run(&inp.e_cfg, device).unwrap();
    let (ea, _) = ep::async_version::run(&inp.e_cfg, device).unwrap();
    let (fs, _) = floyd::hpl_version::run(&inp.f_cfg, &inp.graph, device).unwrap();
    let (fa, _) = floyd::async_version::run(&inp.f_cfg, &inp.graph, device).unwrap();
    let (ts, _) = transpose::hpl_version::run(&inp.t_cfg, &inp.matrix, device).unwrap();
    let (ta, _) = transpose::async_version::run(&inp.t_cfg, &inp.matrix, device).unwrap();
    let (ss, _) = spmv::hpl_version::run(&inp.s_cfg, &inp.problem, device).unwrap();
    let (sa, _) = spmv::async_version::run(&inp.s_cfg, &inp.problem, device).unwrap();
    let (rs, _) = reduction::hpl_version::run(&inp.r_cfg, &inp.data, device).unwrap();
    let (ra, _) = reduction::async_version::run(&inp.r_cfg, &inp.data, device).unwrap();
    Outputs {
        ep_sync: ep_bits(&es),
        ep_async: ep_bits(&ea),
        floyd_sync: fs,
        floyd_async: fa,
        transpose_sync: bits32(&ts),
        transpose_async: bits32(&ta),
        spmv_sync: bits32(&ss),
        spmv_async: bits32(&sa),
        reduction_sync: rs.to_bits(),
        reduction_async: ra.to_bits(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    #[test]
    fn wg_backend_matches_ref_bitwise(
        seed in any::<u64>(),
        nf in 1usize..3,
        rf in 1usize..3,
        cf in 1usize..3,
        rc in 1usize..4,
        rows_sp in 2usize..6,
        dens in 5u64..30,
    ) {
        let _serial = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let device = tesla();

        let f_cfg = floyd::FloydConfig { nodes: 16 * nf, seed };
        let t_cfg = transpose::TransposeConfig { rows: 16 * rf, cols: 16 * cf };
        let s_cfg = spmv::SpmvConfig { n: 8 * rows_sp, density: dens as f64 / 100.0, seed };
        let r_cfg = reduction::ReductionConfig { n: reduction::CHUNK * rc };
        let inp = Inputs {
            e_cfg: ep::EpConfig { class: ep::EpClass::S, pairs_per_thread: 1 },
            graph: floyd::generate_graph(&f_cfg),
            f_cfg,
            matrix: transpose::generate_matrix(&t_cfg),
            t_cfg,
            problem: spmv::generate(&s_cfg),
            s_cfg,
            data: reduction::generate_input(&r_cfg),
            r_cfg,
        };

        for level in [OptLevel::O0, OptLevel::O2] {
            let reference = with_knobs(Backend::Ref, level, || run_all(&inp, &device));
            let compiled = with_knobs(Backend::Wg, level, || run_all(&inp, &device));
            prop_assert_eq!(&reference, &compiled, "outputs diverged at {}", level);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Cache-model determinism over randomized launch geometries: the
    /// simulated L1/L2 hit/miss counters (per-launch totals and per-line
    /// maps) must be byte-identical between the `wg` VM and the `ref`
    /// interpreter. Transpose varies the 2D tiling, SpMV varies the
    /// gather pattern — between them they cover strided, coalesced and
    /// data-dependent transaction streams.
    #[test]
    fn cache_counters_identical_across_backends_randomized(
        seed in any::<u64>(),
        rf in 1usize..4,
        cf in 1usize..4,
        rows_sp in 2usize..8,
        dens in 5u64..40,
    ) {
        let _serial = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let device = tesla_cached();
        let t_cfg = transpose::TransposeConfig { rows: 16 * rf, cols: 16 * cf };
        let matrix = transpose::generate_matrix(&t_cfg);
        let s_cfg = spmv::SpmvConfig { n: 8 * rows_sp, density: dens as f64 / 100.0, seed };
        let problem = spmv::generate(&s_cfg);
        let run = || {
            let (_, report) = hpl::profile(|| {
                transpose::hpl_version::run(&t_cfg, &matrix, &device).unwrap();
                spmv::hpl_version::run(&s_cfg, &problem, &device).unwrap();
            });
            report
                .launches
                .iter()
                .map(|l| (base_name(&l.kernel), l.event.counters()))
                .collect::<Vec<_>>()
        };
        let reference = with_knobs(Backend::Ref, OptLevel::O2, run);
        let compiled = with_knobs(Backend::Wg, OptLevel::O2, run);
        prop_assert_eq!(&reference, &compiled);
        let traffic: u64 = reference
            .iter()
            .filter_map(|(_, c)| c.as_ref())
            .map(|c| c.totals.l1_hits + c.totals.l1_misses)
            .sum();
        prop_assert!(traffic > 0, "randomized geometry produced no cache traffic");
    }
}

/// Per-launch profiled counters of a full benchmark run, keyed by launch
/// order. `None` for launches whose event carried no counters.
fn profiled_counters(
    inp: &Inputs,
    device: &oclsim::Device,
) -> Vec<(String, Option<LaunchCounters>)> {
    let (result, report) = hpl::profile(|| run_all(inp, device));
    let _ = result;
    report
        .launches
        .iter()
        .map(|l| (base_name(&l.kernel), l.event.counters()))
        .collect()
}

/// Kernel names carry a process-global codegen counter suffix
/// (`hpl_ep_kernel_17`); strip it so launch identity is stable across
/// repeated runs in one process.
fn base_name(kernel: &str) -> String {
    match kernel.rfind('_') {
        Some(i) if kernel[i + 1..].chars().all(|c| c.is_ascii_digit()) => kernel[..i].to_string(),
        _ => kernel.to_string(),
    }
}

/// The stronger property behind `report -- annotate` backend-agnosticism:
/// every launch's counter snapshot — instruction-class totals, memory
/// transactions, bank conflicts, barrier stalls, simulated L1/L2 cache
/// hits and misses, and the per-line map — is byte-identical between
/// backends on all five benchmarks, on both the roofline-only Tesla and
/// its cache-capable variant.
#[test]
fn launch_counters_identical_across_backends() {
    let _serial = KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for device in [tesla(), tesla_cached()] {
        launch_counters_on(&device);
    }
}

fn launch_counters_on(device: &oclsim::Device) {
    let f_cfg = floyd::FloydConfig { nodes: 32, seed: 7 };
    let t_cfg = transpose::TransposeConfig { rows: 32, cols: 16 };
    let s_cfg = spmv::SpmvConfig {
        n: 32,
        density: 0.2,
        seed: 7,
    };
    let r_cfg = reduction::ReductionConfig {
        n: reduction::CHUNK * 2,
    };
    let inp = Inputs {
        e_cfg: ep::EpConfig {
            class: ep::EpClass::S,
            pairs_per_thread: 1,
        },
        graph: floyd::generate_graph(&f_cfg),
        f_cfg,
        matrix: transpose::generate_matrix(&t_cfg),
        t_cfg,
        problem: spmv::generate(&s_cfg),
        s_cfg,
        data: reduction::generate_input(&r_cfg),
        r_cfg,
    };

    let has_cache = device.profile().cache.is_some();
    for level in [OptLevel::O0, OptLevel::O2] {
        let reference = with_knobs(Backend::Ref, level, || profiled_counters(&inp, device));
        let compiled = with_knobs(Backend::Wg, level, || profiled_counters(&inp, device));
        assert_eq!(
            reference.len(),
            compiled.len(),
            "launch count diverged at {level}"
        );
        let mut cache_traffic = 0u64;
        for ((rk, rc), (ck, cc)) in reference.iter().zip(&compiled) {
            assert_eq!(rk, ck, "launch order diverged at {level}");
            assert_eq!(
                rc, cc,
                "counters for `{rk}` diverged between backends at {level}"
            );
            if let Some(c) = rc {
                cache_traffic += c.totals.l1_hits + c.totals.l1_misses;
            }
        }
        // the comparison above must actually cover the cache model on the
        // cached device — and must cover its absence on the plain one
        assert_eq!(
            cache_traffic > 0,
            has_cache,
            "cache traffic mismatch on `{}` at {level}",
            device.name()
        );
    }
}
