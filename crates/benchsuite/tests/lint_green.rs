//! Green-path lint assertions: every handwritten benchmark kernel must
//! pass the static sanitizer without findings, and running the HPL
//! versions — sync and async — must leave the kernel-lint sink empty (the
//! sanitizer checks every HPL-generated kernel as part of the backend
//! build).

use oclsim::clc::analysis::analyze_source;
use oclsim::Severity;

fn assert_clean(name: &str, src: &str) {
    let analysis = analyze_source(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let bad: Vec<String> = analysis.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        bad.is_empty(),
        "{name} should lint clean:\n{}",
        bad.join("\n")
    );
}

#[test]
fn ep_kernel_lints_clean() {
    assert_clean("ep.cl", include_str!("../src/kernels/ep.cl"));
}

#[test]
fn floyd_kernel_lints_clean() {
    assert_clean("floyd.cl", include_str!("../src/kernels/floyd.cl"));
}

#[test]
fn reduction_kernel_lints_clean() {
    assert_clean("reduction.cl", include_str!("../src/kernels/reduction.cl"));
}

#[test]
fn spmv_kernel_lints_clean() {
    assert_clean("spmv.cl", include_str!("../src/kernels/spmv.cl"));
}

#[test]
fn transpose_kernel_lints_clean() {
    assert_clean("transpose.cl", include_str!("../src/kernels/transpose.cl"));
}

#[test]
fn hpl_benchmarks_lint_clean_in_sync_and_async_versions() {
    use benchsuite::{ep, floyd, reduction, spmv, transpose};
    let device = hpl::runtime().default_device();

    let ep_cfg = ep::EpConfig::default();
    ep::hpl_version::run(&ep_cfg, &device).unwrap();
    ep::async_version::run(&ep_cfg, &device).unwrap();

    let f_cfg = floyd::FloydConfig { nodes: 16, seed: 2 };
    let graph = floyd::generate_graph(&f_cfg);
    floyd::hpl_version::run(&f_cfg, &graph, &device).unwrap();
    floyd::async_version::run(&f_cfg, &graph, &device).unwrap();

    let r_cfg = reduction::ReductionConfig {
        n: reduction::CHUNK * 2,
    };
    let data = reduction::generate_input(&r_cfg);
    reduction::hpl_version::run(&r_cfg, &data, &device).unwrap();
    reduction::async_version::run(&r_cfg, &data, &device).unwrap();

    let s_cfg = benchsuite::spmv::SpmvConfig {
        n: 64,
        ..Default::default()
    };
    let problem = spmv::generate(&s_cfg);
    spmv::hpl_version::run(&s_cfg, &problem, &device).unwrap();
    spmv::async_version::run(&s_cfg, &problem, &device).unwrap();

    let t_cfg = transpose::TransposeConfig { rows: 32, cols: 32 };
    let matrix = transpose::generate_matrix(&t_cfg);
    transpose::hpl_version::run(&t_cfg, &matrix, &device).unwrap();
    transpose::async_version::run(&t_cfg, &matrix, &device).unwrap();

    // every per-device build above ran the sanitizer; all ten runs (five
    // benchmarks, sync + async) must leave the lint sink free of warnings
    // and errors — note-severity "proved safe" verdicts from the dataflow
    // refinement are positive findings, not lint failures
    let lints = hpl::take_kernel_lints();
    let bad: Vec<String> = lints
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .map(|d| d.to_string())
        .collect();
    assert!(
        bad.is_empty(),
        "HPL-generated benchmark kernels must lint clean:\n{}",
        bad.join("\n")
    );
    // the default O1 build runs the refined sanitizer, which proves the
    // reduction/spmv __local scratch accesses in bounds. At -O0 (the CI
    // matrix pins HPL_OPT_LEVEL) builds run the unrefined reference
    // analysis, so no positive verdicts are expected there.
    if hpl::opt_level() != oclsim::OptLevel::O0 {
        assert!(
            lints
                .iter()
                .any(|d| d.severity == Severity::Note && d.kind == oclsim::DiagKind::ProvedSafe),
            "expected proved-safe notes from the refined sanitizer"
        );
    }
}
