//! Sanitizer precision on the real benchmark kernels: the
//! IR-dataflow-refined analysis, run over all ten sources (five
//! handwritten, five HPL-generated) plus the lint corpus, must strictly
//! reduce the conservative warning count versus the unrefined analysis
//! while leaving every error-severity finding untouched, and must produce
//! positive proved-safe verdicts on the benchmark kernels themselves.
//! Fewer false alarms, zero lost true alarms — measured on the kernels the
//! paper's figures are built from, not just synthetic cases.

use benchsuite::{ep, floyd, reduction, spmv, transpose};
use oclsim::clc::analysis::{self, DiagKind, Severity};

/// The corpus file whose conservative race warnings the dataflow facts
/// discharge — included here so the suite-wide warning total measurably
/// drops (the benchmark kernels are warning-clean to begin with).
const PROVED_SAFE_CORPUS: &str = include_str!("../../oclsim/tests/lint_corpus/proved_safe.cl");

fn tesla() -> oclsim::Device {
    hpl::runtime()
        .device_named("tesla")
        .expect("default platform has a Tesla-class GPU")
}

/// The ten benchmark kernel sources: (label, source text).
fn bench_sources(device: &oclsim::Device) -> Vec<(String, String)> {
    let hand = [
        ("ep.cl", ep::opencl_version::SOURCE),
        ("floyd.cl", floyd::opencl_version::SOURCE),
        ("transpose.cl", transpose::opencl_version::SOURCE),
        ("spmv.cl", spmv::opencl_version::SOURCE),
        ("reduction.cl", reduction::opencl_version::SOURCE),
    ];
    let gen = [
        ("ep (hpl)", ep::hpl_version::generated_source(device)),
        ("floyd (hpl)", floyd::hpl_version::generated_source(device)),
        (
            "transpose (hpl)",
            transpose::hpl_version::generated_source(device),
        ),
        ("spmv (hpl)", spmv::hpl_version::generated_source(device)),
        (
            "reduction (hpl)",
            reduction::hpl_version::generated_source(device),
        ),
    ];
    hand.iter()
        .map(|&(l, s)| (l.to_string(), s.to_string()))
        .chain(
            gen.into_iter()
                .map(|(l, s)| (l.to_string(), s.expect("HPL source generation"))),
        )
        .collect()
}

fn warnings(a: &analysis::Analysis) -> usize {
    a.diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count()
}

fn errors(a: &analysis::Analysis) -> Vec<(oclsim::clc::ast::Span, DiagKind, String)> {
    a.diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| (d.span, d.kind, d.message.clone()))
        .collect()
}

#[test]
fn refined_lint_is_strictly_more_precise_on_benchmark_kernels() {
    let device = tesla();
    let mut sources = bench_sources(&device);
    assert_eq!(sources.len(), 10);
    sources.push(("corpus".to_string(), PROVED_SAFE_CORPUS.to_string()));

    let mut total_warnings_before = 0usize;
    let mut total_warnings_after = 0usize;
    let mut bench_proved_notes = 0usize;
    for (label, src) in &sources {
        let plain = analysis::analyze_source(src)
            .unwrap_or_else(|e| panic!("{label}: unrefined lint failed: {e}"));
        let refined = analysis::analyze_source_refined(src)
            .unwrap_or_else(|e| panic!("{label}: refined lint failed: {e}"));

        // no error-severity finding may appear or disappear: the
        // refinement only demotes warnings and adds notes
        assert_eq!(
            errors(&plain),
            errors(&refined),
            "{label}: refinement changed error findings"
        );

        // warnings never increase per source
        let before = warnings(&plain);
        let after = warnings(&refined);
        assert!(
            after <= before,
            "{label}: refinement added warnings ({before} -> {after})"
        );
        total_warnings_before += before;
        total_warnings_after += after;

        if label != "corpus" {
            // the real kernels are warning-free before and after — the
            // refinement must not disturb that
            assert_eq!(before, 0, "{label}: benchmark kernel grew a warning");
            assert_eq!(after, 0, "{label}: refinement warned on a clean kernel");
            bench_proved_notes += refined
                .diagnostics
                .iter()
                .filter(|d| d.kind == DiagKind::ProvedSafe)
                .count();
        }
    }

    // across the suite the conservative-warning count strictly drops: the
    // corpus' demotable race warnings are discharged by the dataflow facts
    assert!(
        total_warnings_after < total_warnings_before,
        "no conservative warning was discharged \
         ({total_warnings_before} -> {total_warnings_after})"
    );
    // and the benchmark kernels get positive verdicts, not just silence:
    // EP's private annulus histogram, spmv's and reduction's fixed-extent
    // accumulators are all proved in bounds (handwritten and generated)
    assert!(
        bench_proved_notes >= 6,
        "expected proved-safe notes on the benchmark kernels, got {bench_proved_notes}"
    );
}
