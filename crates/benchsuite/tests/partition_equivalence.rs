//! Property test: EngineCL-style partitioned launches of the benchmark
//! kernel corpus are **bit-identical** to the single-device reference.
//!
//! Every case builds the handwritten OpenCL kernel of one paper benchmark
//! into a fresh shared [`BinaryCache`], runs it unsplit on one device, and
//! then re-runs it split across two devices under all three
//! [`PartitionStrategy`] schedulers with randomized chunk granularity and
//! randomized inputs. The merged outputs must equal the reference byte for
//! byte — the `group_span` launch path keeps every builtin
//! (`get_global_id`, `get_group_id`, `get_num_groups`, ...) reporting
//! full-launch values, so a kernel cannot observe how it was split.
//!
//! The fp32 benchmarks split across the heterogeneous Tesla + Quadro pair;
//! EP needs fp64, which the Quadro lacks (the paper's §V-C exclusion), so
//! it splits across two Tesla-class devices instead.

use oclsim::serve::{
    run_partitioned, run_reference, BinaryCache, JobArg, LaunchJob, PartitionStrategy,
    PartitionTarget,
};
use oclsim::{DeviceProfile, Value};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn targets_for(job: &LaunchJob, needs_fp64: bool) -> Vec<PartitionTarget> {
    let cache = BinaryCache::new(1 << 30);
    let profiles = if needs_fp64 {
        vec![DeviceProfile::tesla_c2050(), DeviceProfile::tesla_c2050()]
    } else {
        vec![DeviceProfile::tesla_c2050(), DeviceProfile::quadro_fx380()]
    };
    profiles
        .into_iter()
        .map(|p| PartitionTarget::standalone(p, &cache, job, None).expect("corpus kernel builds"))
        .collect()
}

/// Run `job` unsplit, then split under every strategy, and require
/// byte-identical outputs.
fn assert_partition_exact(
    job: &LaunchJob,
    needs_fp64: bool,
    chunk: usize,
) -> Result<(), TestCaseError> {
    let targets = targets_for(job, needs_fp64);
    let reference = run_reference(&targets[0], job).expect("reference launch runs");
    for strategy in [
        PartitionStrategy::Static,
        PartitionStrategy::Dynamic {
            chunk_groups: chunk,
        },
        PartitionStrategy::HGuided {
            min_chunk_groups: chunk,
        },
    ] {
        let split = run_partitioned(&targets, job, strategy).expect("partitioned launch runs");
        prop_assert_eq!(split.total_groups, reference.total_groups);
        prop_assert!(
            split.outputs == reference.outputs,
            "{}: {strategy:?} split differs from single-device reference",
            job.kernel
        );
        // both devices stayed inside the group space
        for c in &split.chunks {
            prop_assert!(c.start < c.end && c.end <= split.total_groups);
        }
    }
    Ok(())
}

fn f32_bytes(vals: impl Iterator<Item = f32>) -> Vec<u8> {
    vals.flat_map(f32::to_le_bytes).collect()
}

const FLOYD_SRC: &str = include_str!("../src/kernels/floyd.cl");
const TRANSPOSE_SRC: &str = include_str!("../src/kernels/transpose.cl");
const SPMV_SRC: &str = include_str!("../src/kernels/spmv.cl");
const REDUCTION_SRC: &str = include_str!("../src/kernels/reduction.cl");
const EP_SRC: &str = include_str!("../src/kernels/ep.cl");

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Floyd–Warshall: one pass `k` over an `n x n` distance matrix with a
    /// zero diagonal (so the pivot row/column are stable within the pass —
    /// the property that makes the kernel partitionable at all).
    #[test]
    fn floyd_pass_partitions_bit_identically(
        blocks in 1..4usize,
        k_pick in any::<u16>(),
        chunk in 1..6usize,
        weights in proptest::collection::vec(0..1_000_000u32, 1024..1025),
    ) {
        let n = blocks * 8;
        let mut dist: Vec<u32> = (0..n * n).map(|i| weights[i % weights.len()]).collect();
        for d in 0..n {
            dist[d * n + d] = 0;
        }
        let k = (k_pick as usize % n) as i32;
        let job = LaunchJob {
            source: FLOYD_SRC.to_string(),
            kernel: "floyd_pass".to_string(),
            build_options: String::new(),
            args: vec![
                JobArg::InOut(dist.iter().flat_map(|w| w.to_le_bytes()).collect()),
                JobArg::Scalar(Value::I32(n as i32)),
                JobArg::Scalar(Value::I32(k)),
            ],
            global: vec![n, n],
            local: Some(vec![8, 8]),
        };
        assert_partition_exact(&job, false, chunk)?;
    }

    /// Tiled matrix transpose: local-memory staging and a barrier inside
    /// each group, output tiles disjoint across groups.
    #[test]
    fn transpose_partitions_bit_identically(
        blocks in 1..4usize,
        chunk in 1..6usize,
        cells in proptest::collection::vec(any::<i16>(), 4096..4097),
    ) {
        let n = blocks * 16;
        let src = f32_bytes((0..n * n).map(|i| f32::from(cells[i % cells.len()])));
        let job = LaunchJob {
            source: TRANSPOSE_SRC.to_string(),
            kernel: "transpose".to_string(),
            build_options: String::new(),
            args: vec![
                JobArg::Out(n * n * 4),
                JobArg::In(src),
                JobArg::Scalar(Value::I32(n as i32)),
                JobArg::Scalar(Value::I32(n as i32)),
            ],
            global: vec![n, n],
            local: Some(vec![16, 16]),
        };
        assert_partition_exact(&job, false, chunk)?;
    }

    /// CSR SpMV: one 8-lane work-group per matrix row, strided
    /// accumulation plus a local-memory tree reduction.
    #[test]
    fn spmv_partitions_bit_identically(
        rows in 1..10usize,
        cols in 1..12usize,
        chunk in 1..6usize,
        lens in proptest::collection::vec(0..12usize, 16..17),
        entries in proptest::collection::vec(any::<i16>(), 256..257),
    ) {
        let mut rowptr: Vec<i32> = Vec::with_capacity(rows + 1);
        rowptr.push(0);
        for r in 0..rows {
            rowptr.push(rowptr[r] + lens[r % lens.len()] as i32);
        }
        let nnz = *rowptr.last().unwrap() as usize;
        let val = f32_bytes((0..nnz).map(|j| f32::from(entries[j % entries.len()])));
        let col_idx: Vec<i32> = (0..nnz)
            .map(|j| (entries[(j + 7) % entries.len()].unsigned_abs() as usize % cols) as i32)
            .collect();
        let vec_in = f32_bytes((0..cols).map(|c| f32::from(entries[(c + 13) % entries.len()])));
        let job = LaunchJob {
            source: SPMV_SRC.to_string(),
            kernel: "spmv".to_string(),
            build_options: String::new(),
            args: vec![
                JobArg::In(val),
                JobArg::In(vec_in),
                JobArg::In(col_idx.iter().flat_map(|c| c.to_le_bytes()).collect()),
                JobArg::In(rowptr.iter().flat_map(|p| p.to_le_bytes()).collect()),
                JobArg::Out(rows * 4),
            ],
            global: vec![rows * 8],
            local: Some(vec![8]),
        };
        assert_partition_exact(&job, false, chunk)?;
    }

    /// Sum reduction: 256-lane groups, 8 elements per lane, one partial
    /// per group.
    #[test]
    fn reduction_partitions_bit_identically(
        groups in 1..4usize,
        chunk in 1..4usize,
        cells in proptest::collection::vec(any::<i16>(), 6144..6145),
    ) {
        let n = groups * 256 * 8;
        let input = f32_bytes((0..n).map(|i| f32::from(cells[i % cells.len()])));
        let job = LaunchJob {
            source: REDUCTION_SRC.to_string(),
            kernel: "reduce_sum".to_string(),
            build_options: String::new(),
            args: vec![JobArg::In(input), JobArg::Out(groups * 4)],
            global: vec![groups * 256],
            local: Some(vec![256]),
        };
        assert_partition_exact(&job, false, chunk)?;
    }

    /// NAS EP: fp64 Gaussian deviates from per-thread LCG streams — runs
    /// on two Tesla-class devices (the Quadro lacks fp64).
    #[test]
    fn ep_partitions_bit_identically(
        groups in 1..4usize,
        pairs in 1..5i32,
        chunk in 1..4usize,
        seeds in proptest::collection::vec(any::<u64>(), 24..25),
    ) {
        let threads = groups * 8;
        let seed_bytes: Vec<u8> = (0..threads)
            .flat_map(|t| seeds[t % seeds.len()].to_le_bytes())
            .collect();
        let job = LaunchJob {
            source: EP_SRC.to_string(),
            kernel: "ep".to_string(),
            build_options: String::new(),
            args: vec![
                JobArg::In(seed_bytes),
                JobArg::Out(threads * 8),
                JobArg::Out(threads * 8),
                JobArg::Out(threads * 4 * 10),
                JobArg::Scalar(Value::I32(pairs)),
            ],
            global: vec![threads],
            local: Some(vec![8]),
        };
        assert_partition_exact(&job, true, chunk)?;
    }
}
