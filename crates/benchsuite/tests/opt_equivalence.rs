//! Optimization-level equivalence: the mid-end must be semantics
//! preserving, so every benchmark's handwritten OpenCL version produces
//! **bit-identical** outputs at `-O0`, `-O1` and `-O2` — floats compared
//! through their bit patterns, never with a tolerance. Inputs are
//! randomized per case (sizes and RNG seeds), so the property covers many
//! NDRange shapes, not one golden instance.
//!
//! The runs build through `hpl::opt_level().flag()`, the same path the
//! benchmark harness uses, and each run creates a fresh context, so no
//! cached binary from one level can leak into another.

use benchsuite::{ep, floyd, reduction, spmv, transpose};
use oclsim::OptLevel;
use proptest::prelude::*;

fn tesla() -> oclsim::Device {
    hpl::runtime()
        .device_named("tesla")
        .expect("default platform has a Tesla-class GPU")
}

/// The opt level is process-global; tests in this binary must not race on
/// it. (`parking` on a poisoned lock is fine — the state we guard is
/// restored by `at_level` even on panic-free early returns.)
static LEVEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` with the process-global opt level pinned to `level`.
fn at_level<T>(level: OptLevel, f: impl FnOnce() -> T) -> T {
    let prev = hpl::opt_level();
    hpl::set_opt_level(level);
    let out = f();
    hpl::set_opt_level(prev);
    out
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

const HIGHER: [OptLevel; 2] = [OptLevel::O1, OptLevel::O2];

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn optimization_levels_preserve_results_bitwise(
        seed in any::<u64>(),
        nf in 1usize..3,
        rf in 1usize..3,
        cf in 1usize..3,
        rc in 1usize..5,
        pairs in 1usize..4,
        rows_sp in 2usize..8,
        dens in 5u64..30,
    ) {
        let _serial = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let device = tesla();

        // EP: deterministic deviate generation from per-thread seeds
        let e_cfg = ep::EpConfig { class: ep::EpClass::S, pairs_per_thread: pairs };
        let (e0, _) = at_level(OptLevel::O0, || ep::opencl_version::run(&e_cfg, &device)).unwrap();
        for level in HIGHER {
            let (e, _) = at_level(level, || ep::opencl_version::run(&e_cfg, &device)).unwrap();
            prop_assert_eq!(e.q, e0.q, "EP annulus counts at {}", level);
            prop_assert_eq!(e.sx.to_bits(), e0.sx.to_bits(), "EP sx at {}", level);
            prop_assert_eq!(e.sy.to_bits(), e0.sy.to_bits(), "EP sy at {}", level);
        }

        // Floyd–Warshall on a random graph
        let f_cfg = floyd::FloydConfig { nodes: 16 * nf, seed };
        let graph = floyd::generate_graph(&f_cfg);
        let (f0, _) =
            at_level(OptLevel::O0, || floyd::opencl_version::run(&f_cfg, &graph, &device)).unwrap();
        for level in HIGHER {
            let (f, _) =
                at_level(level, || floyd::opencl_version::run(&f_cfg, &graph, &device)).unwrap();
            prop_assert_eq!(&f, &f0, "Floyd distances at {}", level);
        }

        // tiled transpose at a random (multiple-of-BLOCK) shape
        let t_cfg = transpose::TransposeConfig { rows: 16 * rf, cols: 16 * cf };
        let matrix = transpose::generate_matrix(&t_cfg);
        let (t0, _) =
            at_level(OptLevel::O0, || transpose::opencl_version::run(&t_cfg, &matrix, &device))
                .unwrap();
        for level in HIGHER {
            let (t, _) =
                at_level(level, || transpose::opencl_version::run(&t_cfg, &matrix, &device))
                    .unwrap();
            prop_assert_eq!(bits32(&t), bits32(&t0), "transpose at {}", level);
        }

        // CSR spmv on a random sparse matrix
        let s_cfg = spmv::SpmvConfig {
            n: 8 * rows_sp,
            density: dens as f64 / 100.0,
            seed,
        };
        let problem = spmv::generate(&s_cfg);
        let (s0, _) =
            at_level(OptLevel::O0, || spmv::opencl_version::run(&s_cfg, &problem, &device))
                .unwrap();
        for level in HIGHER {
            let (s, _) =
                at_level(level, || spmv::opencl_version::run(&s_cfg, &problem, &device)).unwrap();
            prop_assert_eq!(bits32(&s), bits32(&s0), "spmv at {}", level);
        }

        // two-stage reduction, random multiple-of-CHUNK length
        let r_cfg = reduction::ReductionConfig { n: reduction::CHUNK * rc };
        let data = reduction::generate_input(&r_cfg);
        let (r0, _) =
            at_level(OptLevel::O0, || reduction::opencl_version::run(&r_cfg, &data, &device))
                .unwrap();
        for level in HIGHER {
            let (r, _) =
                at_level(level, || reduction::opencl_version::run(&r_cfg, &data, &device))
                    .unwrap();
            prop_assert_eq!(r.to_bits(), r0.to_bits(), "reduction at {}", level);
        }
    }
}

/// The HPL paths must agree across levels too: run the full HPL version
/// of each benchmark at every level and bit-compare the verified outputs.
/// (The HPL runs verify against a host reference internally; this checks
/// the device outputs against *each other* across optimization levels.)
#[test]
fn hpl_versions_agree_across_levels() {
    let _serial = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let device = tesla();

    let f_cfg = floyd::FloydConfig { nodes: 16, seed: 9 };
    let graph = floyd::generate_graph(&f_cfg);
    let r_cfg = reduction::ReductionConfig {
        n: reduction::CHUNK * 2,
    };
    let data = reduction::generate_input(&r_cfg);

    let mut floyd_out: Vec<Vec<u32>> = Vec::new();
    let mut red_out: Vec<u32> = Vec::new();
    for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        at_level(level, || {
            hpl::clear_kernel_cache();
            let (d, _) = floyd::hpl_version::run(&f_cfg, &graph, &device).unwrap();
            floyd_out.push(d);
            let (s, _) = reduction::hpl_version::run(&r_cfg, &data, &device).unwrap();
            red_out.push(s.to_bits());
        });
    }
    hpl::clear_kernel_cache();
    let _ = hpl::take_kernel_lints();
    assert_eq!(floyd_out[0], floyd_out[1], "HPL Floyd O0 vs O1");
    assert_eq!(floyd_out[0], floyd_out[2], "HPL Floyd O0 vs O2");
    assert_eq!(red_out[0], red_out[1], "HPL reduction O0 vs O1");
    assert_eq!(red_out[0], red_out[2], "HPL reduction O0 vs O2");
}
