//! Figure 6 bench: prints the EP class sweep (the figure's series), then
//! benchmarks one EP comparison end-to-end at a test-sized class so
//! `cargo bench` tracks the wall cost of the whole harness path.

use benchsuite::ep::{self, EpClass, EpConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let device = bench::tesla();

    println!(
        "\nFigure 6 — EP speedups over serial CPU (measured; paper slowdowns 20.5/5.7/2.3/1.1%):"
    );
    match bench::fig6::compute(&device) {
        Ok(rows) => {
            for r in &rows {
                println!(
                    "  class {:<2} ({:>8} pairs): OpenCL {:>6.1}x  HPL {:>6.1}x  slowdown {:>6.2}% {}",
                    r.class,
                    r.pairs,
                    r.opencl_speedup,
                    r.hpl_speedup,
                    r.hpl_slowdown_percent,
                    if r.verified { "" } else { "[MISMATCH]" }
                );
            }
        }
        Err(e) => eprintln!("  fig6 computation failed: {e}"),
    }

    c.bench_function("fig6/ep_class_s_full_comparison", |b| {
        let cfg = EpConfig::class(EpClass::S);
        b.iter(|| {
            let report = ep::run(black_box(&cfg), &device).expect("EP run succeeds");
            assert!(report.verified);
            black_box(report)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
}
criterion_main!(benches);
