//! Table I bench: prints the SLOC comparison (the table itself), then
//! benchmarks the counting pipeline so `cargo bench` tracks regressions in
//! the programmability instrument.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // print the table rows once (the artifact this bench regenerates)
    println!("\nTable I — SLOCs (measured || paper):");
    for r in bench::table1::compute() {
        println!(
            "  {:<18} OpenCL {:>4}  HPL {:>4}  ({:>4.1}% reduction) || paper {:>5}/{:>4} ({:.1}%)",
            r.benchmark,
            r.opencl_sloc,
            r.hpl_sloc,
            r.reduction_percent(),
            r.paper_opencl,
            r.paper_hpl,
            r.paper_reduction_percent()
        );
    }

    c.bench_function("table1/compute_all_rows", |b| {
        b.iter(|| {
            let rows = bench::table1::compute();
            assert_eq!(rows.len(), 5);
            black_box(rows)
        })
    });

    let big_source = include_str!("../../oclsim/src/clc/sema.rs");
    c.bench_function("table1/sloc_count_large_rust_file", |b| {
        b.iter(|| black_box(sloc::count(black_box(big_source), sloc::Language::Rust)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
