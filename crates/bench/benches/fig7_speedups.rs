//! Figure 7 bench: prints the five-benchmark speedup chart, then
//! benchmarks the per-benchmark comparison paths at test scale.

use bench::fig7::{self, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let device = bench::tesla();

    println!("\nFigure 7 — speedups over serial CPU (measured || paper OpenCL):");
    match fig7::compute(&device, Scale::Paper) {
        Ok(reports) => {
            for r in &reports {
                println!(
                    "  {:<10} OpenCL {:>6.1}x  HPL {:>6.1}x || paper {:>5.1}x {}",
                    r.name,
                    r.opencl_speedup(),
                    r.hpl_speedup(),
                    fig7::paper_speedup(r.name).unwrap_or(f64::NAN),
                    if r.verified { "" } else { "[MISMATCH]" }
                );
            }
        }
        Err(e) => eprintln!("  fig7 computation failed: {e}"),
    }

    let mut group = c.benchmark_group("fig7_test_scale");
    group.sample_size(10);
    group.bench_function("floyd_comparison", |b| {
        let cfg = benchsuite::floyd::FloydConfig::default();
        b.iter(|| black_box(benchsuite::floyd::run(&cfg, &device).expect("floyd run")))
    });
    group.bench_function("transpose_comparison", |b| {
        let cfg = benchsuite::transpose::TransposeConfig::default();
        b.iter(|| black_box(benchsuite::transpose::run(&cfg, &device).expect("transpose run")))
    });
    group.bench_function("spmv_comparison", |b| {
        let cfg = benchsuite::spmv::SpmvConfig::default();
        b.iter(|| black_box(benchsuite::spmv::run(&cfg, &device).expect("spmv run")))
    });
    group.bench_function("reduction_comparison", |b| {
        let cfg = benchsuite::reduction::ReductionConfig::default();
        b.iter(|| black_box(benchsuite::reduction::run(&cfg, &device).expect("reduction run")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7
}
criterion_main!(benches);
