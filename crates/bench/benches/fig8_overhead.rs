//! Figure 8 bench: prints HPL's slowdown vs OpenCL per benchmark, then
//! benchmarks the two quantities whose difference *is* the figure — an HPL
//! cached-kernel eval and the equivalent manual OpenCL dispatch — as real
//! measured wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use hpl::prelude::*;
use std::hint::black_box;

fn saxpy(y: &Array<f64, 1>, x: &Array<f64, 1>, a: &Double) {
    y.at(idx()).assign(a.v() * x.at(idx()) + y.at(idx()));
}

fn bench_fig8(c: &mut Criterion) {
    let device = bench::tesla();

    println!("\nFigure 8 — HPL slowdown vs OpenCL (measured; paper: typically < 4%):");
    match bench::fig7::compute(&device, bench::fig7::Scale::Paper) {
        Ok(reports) => {
            for r in bench::fig8::derive(&reports) {
                println!(
                    "  {:<10} {:>6.2}%   ({:>6.2}% with transfers)",
                    r.benchmark, r.slowdown_percent, r.slowdown_with_transfers_percent
                );
            }
        }
        Err(e) => eprintln!("  fig8 computation failed: {e}"),
    }

    // the host-side dispatch costs that separate HPL from raw OpenCL
    let n = 4096;
    let y = Array::<f64, 1>::from_vec([n], vec![1.0; n]);
    let x = Array::<f64, 1>::from_vec([n], vec![2.0; n]);
    let a = Double::new(3.0);
    // warm the cache so the loop below measures steady-state dispatch
    hpl::eval(saxpy)
        .device(&device)
        .run((&y, &x, &a))
        .expect("warmup eval");

    c.bench_function("fig8/hpl_cached_eval_dispatch", |b| {
        b.iter(|| {
            let p = hpl::eval(saxpy)
                .device(&device)
                .run((&y, &x, &a))
                .expect("eval");
            assert!(p.cache_hit);
            black_box(p)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8
}
criterion_main!(benches);
