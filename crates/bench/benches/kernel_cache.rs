//! Kernel-cache bench (§V-B): measures the real wall cost of a first
//! invocation (capture + codegen + backend build + launch) against a
//! cached invocation of the same kernel — the mechanism the paper credits
//! for diluting HPL's overhead — plus the ablation comparisons from
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use hpl::prelude::*;
use std::hint::black_box;

fn probe_kernel(out: &Array<f32, 1>, input: &Array<f32, 1>) {
    let x = Float::new(0.0);
    x.assign(input.at(idx()));
    for_(0, 4, |_j| {
        x.assign(x.v() * 1.5f32 + 0.25f32);
    });
    out.at(idx()).assign(x.v());
}

fn bench_cache(c: &mut Criterion) {
    let device = bench::tesla();

    println!("\nKernel cache (paper §V-B), EP class W first vs second invocation:");
    match bench::caching::compute(&device) {
        Ok(r) => {
            println!(
                "  first:  {:.6} s ({:.6} s front-end)\n  second: {:.6} s ({:.6} s front-end)",
                r.first_seconds, r.first_front_seconds, r.second_seconds, r.second_front_seconds
            );
        }
        Err(e) => eprintln!("  caching computation failed: {e}"),
    }

    println!("\nAblations:");
    match bench::ablation::transfers(&device) {
        Ok(a) => println!(
            "  transfer minimisation: {} vs {} uploads ({:.6} vs {:.6} modeled s)",
            a.minimised_h2d, a.naive_h2d, a.minimised_seconds, a.naive_seconds
        ),
        Err(e) => eprintln!("  transfer ablation failed: {e}"),
    }
    match bench::ablation::transpose_naive_vs_tiled(&device) {
        Ok((naive, tiled)) => println!(
            "  transpose coalescing: naive {naive:.6} s vs tiled {tiled:.6} s ({:.1}x)",
            naive / tiled
        ),
        Err(e) => eprintln!("  transpose ablation failed: {e}"),
    }

    let n = 1024;
    let out = Array::<f32, 1>::new([n]);
    let input = Array::<f32, 1>::from_vec([n], vec![1.0; n]);

    let mut group = c.benchmark_group("kernel_cache");
    group.sample_size(20);
    group.bench_function("first_invocation", |b| {
        b.iter(|| {
            hpl::clear_kernel_cache();
            let p = hpl::eval(probe_kernel)
                .device(&device)
                .run((&out, &input))
                .expect("eval");
            assert!(!p.cache_hit);
            black_box(p)
        })
    });
    group.bench_function("cached_invocation", |b| {
        // warm once, then measure hits only
        hpl::eval(probe_kernel)
            .device(&device)
            .run((&out, &input))
            .expect("warmup");
        b.iter(|| {
            let p = hpl::eval(probe_kernel)
                .device(&device)
                .run((&out, &input))
                .expect("eval");
            assert!(p.cache_hit);
            black_box(p)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache
}
criterion_main!(benches);
