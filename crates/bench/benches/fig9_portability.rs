//! Figure 9 bench: prints the Tesla-vs-Quadro portability comparison (EP
//! excluded on the Quadro — no fp64), then benchmarks one benchmark's full
//! comparison on each device at test scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    println!("\nFigure 9 — HPL overhead on both GPUs (measured; paper <= ~3.5%):");
    match bench::fig9::compute() {
        Ok(rows) => {
            for r in &rows {
                println!(
                    "  {:<10} Tesla {:>6.2}%   Quadro {:>6.2}%",
                    r.benchmark, r.tesla_percent, r.quadro_percent
                );
            }
            assert!(
                !rows.iter().any(|r| r.benchmark == "EP"),
                "EP must be excluded on the fp64-less Quadro"
            );
        }
        Err(e) => eprintln!("  fig9 computation failed: {e}"),
    }

    let tesla = bench::tesla();
    let quadro = bench::quadro();
    let cfg = benchsuite::floyd::FloydConfig::default();

    let mut group = c.benchmark_group("fig9_floyd_by_device");
    group.sample_size(10);
    group.bench_function("tesla", |b| {
        b.iter(|| black_box(benchsuite::floyd::run(&cfg, &tesla).expect("floyd on tesla")))
    });
    group.bench_function("quadro", |b| {
        b.iter(|| black_box(benchsuite::floyd::run(&cfg, &quadro).expect("floyd on quadro")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9
}
criterion_main!(benches);
