//! Overlap bench: wall cost of driving the chunked async pipeline
//! (`benchsuite::pipeline`) versus launching the same chunks with the
//! blocking `run`, plus a printed summary of the modeled overlap rows
//! from `bench::overlap` (the `report -- overlap` data).

use criterion::{criterion_group, criterion_main, Criterion};
use hpl::prelude::*;
use std::hint::black_box;

fn chunk_kernel(out: &Array<f32, 1>, input: &Array<f32, 1>) {
    out.at(idx()).assign(input.at(idx()) * 2.0f32 + 1.0f32);
}

fn bench_overlap(c: &mut Criterion) {
    println!("\nModeled overlap (report -- overlap):");
    match bench::overlap::compute() {
        Ok(rows) => {
            for r in &rows {
                println!(
                    "  {:<48} makespan {:.6} s vs serial sum {:.6} s (ratio {:.2})",
                    r.label,
                    r.makespan_seconds,
                    r.sum_seconds,
                    r.ratio()
                );
            }
        }
        Err(e) => eprintln!("  overlap computation failed: {e}"),
    }

    let device = bench::tesla();
    let chunks = 8;
    let n = 1 << 12;
    let inputs: Vec<Array<f32, 1>> = (0..chunks)
        .map(|c| Array::from_vec([n], vec![c as f32 + 0.5; n]))
        .collect();
    let outputs: Vec<Array<f32, 1>> = (0..chunks).map(|_| Array::new([n])).collect();
    // warm the kernel cache so both measurements see only launch cost
    hpl::eval(chunk_kernel)
        .device(&device)
        .run((&outputs[0], &inputs[0]))
        .expect("warmup");

    let mut group = c.benchmark_group("overlap");
    group.sample_size(20);
    group.bench_function("async_pipeline", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..chunks)
                .map(|c| {
                    hpl::eval(chunk_kernel)
                        .device(&device)
                        .run_async((&outputs[c], &inputs[c]))
                        .expect("enqueue")
                })
                .collect();
            for h in handles {
                black_box(h.wait().expect("wait"));
            }
        })
    });
    group.bench_function("blocking_launches", |b| {
        b.iter(|| {
            for c in 0..chunks {
                black_box(
                    hpl::eval(chunk_kernel)
                        .device(&device)
                        .run((&outputs[c], &inputs[c]))
                        .expect("eval"),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overlap);
criterion_main!(benches);
