//! Tests of the `report -- profile` backend: the aggregated counter rows
//! must reproduce the paper-shaped performance findings with counter
//! evidence, HPL must add no redundant transfers on any benchmark, and
//! the DMA profiling stamps must reconstruct the overlap experiment's
//! modeled timeline.

use bench::{profile, tesla};
use hpl::prelude::*;
use oclsim::{
    wait_for_events, CommandQueue, Context, Device, DeviceProfile, MemAccess, Program, TransferDir,
};

/// Figure-7-shaped findings out of the counter table: the reduction
/// streams coalesced and reaches a higher fraction of the bandwidth roof
/// than SpMV, whose CSR gather both diverges and wastes transactions.
#[test]
fn reduction_outruns_spmv_on_the_bandwidth_roof() {
    let device = tesla();
    let spmv = profile::profile_one("spmv", true, &device).unwrap();
    let reduction = profile::profile_one("reduction", true, &device).unwrap();
    let s = &spmv.rows[0];
    let r = &reduction.rows[0];
    assert!(
        !s.roofline.compute_bound && !r.roofline.compute_bound,
        "both kernels sit under the bandwidth roof on the Tesla"
    );
    assert!(
        r.roofline.bandwidth_fraction > s.roofline.bandwidth_fraction,
        "reduction ({:.3}) must reach more of the roof than spmv ({:.3})",
        r.roofline.bandwidth_fraction,
        s.roofline.bandwidth_fraction
    );
    // the counter evidence for *why*: spmv's gather diverges and issues
    // non-minimal transactions; the reduction is fully coalesced
    assert_eq!(r.counters.coalescing_efficiency(), 1.0);
    assert!(s.counters.coalescing_efficiency() < 0.9);
    assert!(s.counters.divergence_fraction() > r.counters.divergence_fraction());
}

/// The paper's Figure 10 contrast with counter evidence: the naive
/// transpose is limited by uncoalesced accesses; the tiled version trades
/// them for (cheaper) local-memory traffic and a better coalescing ratio.
#[test]
fn naive_transpose_is_uncoalesced_where_tiled_is_not() {
    let device = tesla();

    fn naive_transpose(dst: &Array<f32, 2>, src: &Array<f32, 2>) {
        dst.at((idx(), idy())).assign(src.at((idy(), idx())));
    }
    let n = 256usize;
    let src_data: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
    let src = Array::<f32, 2>::from_vec([n, n], src_data.clone());
    let dst = Array::<f32, 2>::new([n, n]);
    let ((), naive_rep) = hpl::profile(|| {
        eval(naive_transpose)
            .device(&device)
            .global(&[n, n])
            .local(&[16, 16])
            .run((&dst, &src))
            .unwrap();
    });
    let naive = naive_rep.launches[0].event.counters().unwrap();

    let cfg = benchsuite::transpose::TransposeConfig { rows: n, cols: n };
    let ((), tiled_rep) = hpl::profile(|| {
        benchsuite::transpose::hpl_version::run(&cfg, &src_data, &device).unwrap();
    });
    let tiled = tiled_rep.launches[0].event.counters().unwrap();

    assert!(
        naive.coalescing_efficiency() < 0.5 * tiled.coalescing_efficiency(),
        "naive ({:.3}) must waste transactions the tiled version ({:.3}) avoids",
        naive.coalescing_efficiency(),
        tiled.coalescing_efficiency()
    );
    assert!(
        naive.totals.mem_transactions > 2 * tiled.totals.mem_transactions,
        "the waste is visible as raw transaction counts: {} vs {}",
        naive.totals.mem_transactions,
        tiled.totals.mem_transactions
    );
    assert!(
        tiled.totals.local_accesses > 0 && naive.totals.local_accesses == 0,
        "the tiled kernel pays with scratchpad traffic instead"
    );
}

/// HPL's coherence analysis must not add redundant uploads on any of the
/// ten (benchmark, mode) runs — the assertion `ci.sh` gates on.
#[test]
fn no_benchmark_performs_redundant_transfers() {
    let device = tesla();
    for &bench in profile::BENCHES {
        for sync in [true, false] {
            let p = profile::profile_one(bench, sync, &device).unwrap();
            assert!(
                p.transfers_minimal(),
                "{bench} ({}) performed {} h2d transfers, minimal is {}",
                p.mode,
                p.h2d_count,
                p.expected_h2d
            );
        }
    }
}

/// Per-array accounting: repeated evals over the same array reuse the
/// device copy, so the array records exactly one upload and only the
/// explicit read-back.
#[test]
fn arrays_upload_once_across_repeated_evals() {
    fn scale(y: &Array<f64, 1>, x: &Array<f64, 1>) {
        y.at(idx()).assign(x.at(idx()) * 2.0f64);
    }
    let x = Array::<f64, 1>::from_vec([512], vec![1.0; 512]);
    let y = Array::<f64, 1>::new([512]);
    for _ in 0..3 {
        eval(scale).run((&y, &x)).unwrap();
    }
    let _ = y.to_vec();
    let xs = x.transfer_stats();
    assert_eq!(xs.h2d_count, 1, "x must upload exactly once: {xs:?}");
    assert_eq!(xs.d2h_count, 0, "x is never read back");
    let ys = y.transfer_stats();
    assert_eq!(ys.h2d_count, 0, "y is write-only on the device: {ys:?}");
    assert_eq!(ys.d2h_count, 1, "one explicit read-back");
}

/// The DMA stamps on transfer events must reconstruct the overlap
/// experiment's timeline: chunked uploads proceed on the DMA channel while
/// earlier chunks' kernels run, and the last `ended` stamp is exactly the
/// device's modeled horizon.
#[test]
fn dma_stamps_reconstruct_the_overlap_timeline() {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new_out_of_order(&ctx, &device).unwrap();
    queue.set_profiling(true);
    let p = Program::from_source(
        &ctx,
        "__kernel void fma2(__global float* out, __global const float* in) {
            size_t i = get_global_id(0);
            out[i] = in[i] * 2.0f + 1.0f;
        }",
    );
    p.build("").unwrap();

    let elems = 1 << 15;
    let data = vec![1.5f32; elems];
    let mut writes = Vec::new();
    let mut launches = Vec::new();
    for _ in 0..8 {
        let input = ctx.create_buffer(elems * 4, MemAccess::ReadOnly).unwrap();
        let out = ctx.create_buffer(elems * 4, MemAccess::WriteOnly).unwrap();
        let kernel = p.kernel("fma2").unwrap();
        kernel.set_arg_buffer(0, &out).unwrap();
        kernel.set_arg_buffer(1, &input).unwrap();
        let w = queue.enqueue_write_async(&input, 0, &data, &[]).unwrap();
        let k = queue
            .enqueue_ndrange_async(&kernel, &[elems], None, std::slice::from_ref(&w))
            .unwrap();
        writes.push(w);
        launches.push(k);
    }
    let all: Vec<_> = writes.iter().chain(launches.iter()).cloned().collect();
    wait_for_events(&all).unwrap();

    for w in &writes {
        let info = w.transfer_info().unwrap();
        assert_eq!(info.direction, TransferDir::HostToDevice);
        assert_eq!(info.bytes, (elems * 4) as u64);
        assert!(w.profiling_info().is_ok());
    }

    // the stamps and the device timeline agree on the makespan
    let horizon = device.timeline_horizon();
    let last_end = all.iter().map(|e| e.profile().ended).fold(0.0f64, f64::max);
    assert!(
        (horizon - last_end).abs() < 1e-12,
        "stamps must tile the timeline: horizon {horizon}, last stamp {last_end}"
    );

    // overlap is visible in the stamps: some upload runs on the DMA
    // channel while an earlier chunk's kernel occupies the CUs
    let overlapped = writes.iter().any(|w| {
        let ws = w.profile();
        launches.iter().any(|k| {
            let ks = k.profile();
            ws.started < ks.ended && ks.started < ws.ended
        })
    });
    assert!(overlapped, "chunked pipeline must overlap DMA with compute");

    // and the overlapped makespan beats full serialisation
    let serial: f64 = all.iter().map(|e| e.modeled_seconds()).sum();
    let first_start = all
        .iter()
        .map(|e| e.profile().started)
        .fold(f64::INFINITY, f64::min);
    assert!(last_end - first_start < serial);
}
