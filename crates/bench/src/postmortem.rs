//! The `report -- postmortem` experiment: end-to-end causal tracing and
//! the flight recorder, demonstrated on the kernel service.
//!
//! Three deterministic scenarios against one fresh [`Service`]:
//!
//! 1. a **successful** partitioned launch, whose finished
//!    [`oclsim::RequestTrace`] shows the full span tree — session →
//!    admission → cache → DMA → sched → partition chunks → exec launches
//!    — every node tagged with the request's [`oclsim::TraceId`];
//! 2. a **poisoned** partitioned launch (a pre-failed user event gates
//!    every chunk from index 1 on), whose [`oclsim::Postmortem`] carries
//!    the causal `DependencyFailed` chain down to the injected root
//!    cause, the failed span tree, the tenant's flight-recorder tail and
//!    the cache/quota state at the moment of failure;
//! 3. a **quota rejection** (launch quota of 1, second submit bounced by
//!    admission control), whose postmortem chains the admission error to
//!    the structured quota error.
//!
//! Everything printed is the *canonical* rendering — trace ids and
//! modeled seconds are pure functions of the workload, wall-clock fields
//! are omitted — so `ci.sh` byte-diffs the whole subcommand output (and
//! the merged Chrome trace written to `target/postmortem-trace.json`)
//! across `OCLSIM_THREADS=1/4` and `OCLSIM_BACKEND=ref|wg`.

use oclsim::serve::{JobArg, LaunchJob, PartitionStrategy, Service, ServiceConfig, TenantQuota};
use oclsim::{Error, Event, Postmortem, RequestTrace, Value};

/// The demo kernel; identical to the postmortem integration tests so the
/// rendered trees match what the test suite pins down.
const SAXPY: &str = r#"
__kernel void saxpy(__global float* y, __global const float* x, float a) {
    size_t i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}
"#;

fn saxpy_job(n: usize) -> LaunchJob {
    let x: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let y: Vec<u8> = (0..n)
        .flat_map(|i| ((i % 7) as f32).to_le_bytes())
        .collect();
    LaunchJob {
        source: SAXPY.to_string(),
        kernel: "saxpy".to_string(),
        build_options: String::new(),
        args: vec![
            JobArg::InOut(y),
            JobArg::In(x),
            JobArg::Scalar(Value::F32(2.0)),
        ],
        global: vec![n],
        // 256 items / 32 per group = 8 groups -> 4 dynamic chunks of 2
        local: Some(vec![32]),
    }
}

/// Everything `report -- postmortem` prints and gates on.
pub struct PostmortemReport {
    /// The successful partitioned request's span tree.
    pub success: RequestTrace,
    /// The poisoned partitioned launch's dump.
    pub poison: Postmortem,
    /// The quota rejection's dump.
    pub quota: Postmortem,
    /// Device timeline + poisoned span tree, one Chrome trace.
    pub merged_trace: String,
}

fn find_postmortem(tenant: &str) -> Result<Postmortem, String> {
    oclsim::take_postmortems()
        .into_iter()
        .find(|p| p.tenant == tenant)
        .ok_or_else(|| format!("no postmortem emitted for tenant `{tenant}`"))
}

/// Run the three scenarios. Self-contained: drains the completed-trace
/// and postmortem sinks first, uses its own tenants and service.
pub fn compute() -> Result<PostmortemReport, String> {
    let service = Service::new(ServiceConfig::default()).map_err(|e| e.to_string())?;
    drop(oclsim::obs::drain_request_traces());
    drop(oclsim::take_postmortems());

    // 1. the happy path: a dynamic partitioned launch across the
    // service's heterogeneous devices, traced end to end
    let s = service.session("demo-ok", TenantQuota::unlimited());
    s.submit_partitioned(
        &saxpy_job(256),
        PartitionStrategy::Dynamic { chunk_groups: 2 },
    )
    .map_err(|e| format!("successful partitioned launch failed: {e}"))?;
    let success = oclsim::obs::drain_request_traces()
        .into_iter()
        .find(|t| t.tenant == "demo-ok")
        .ok_or("the successful launch left no completed request trace")?;
    if success.failed {
        return Err("the successful launch's trace is marked failed".into());
    }

    // 2. the poisoned chain: chunks from index 1 on wait on a user event
    // the host has already failed, so they skip as DependencyFailed and
    // the root cause is the injected error
    let s = service.session("demo-poison", TenantQuota::unlimited());
    let gate = Event::user();
    gate.set_error(Error::InvalidOperation("injected poison".into()))
        .map_err(|e| e.to_string())?;
    let err = s
        .submit_partitioned_with(
            &saxpy_job(256),
            PartitionStrategy::Dynamic { chunk_groups: 2 },
            Some((1, gate)),
        )
        .err()
        .ok_or("the poisoned launch unexpectedly succeeded")?;
    if !matches!(err, Error::DependencyFailed { .. }) {
        return Err(format!("poisoned launch failed the wrong way: {err}"));
    }
    let poison = find_postmortem("demo-poison")?;

    // 3. admission rejection: a quota of one launch, blown on the second
    let s = service.session(
        "demo-quota",
        TenantQuota {
            max_launches: Some(1),
            ..TenantQuota::default()
        },
    );
    s.submit(0, &saxpy_job(32)).map_err(|e| e.to_string())?;
    let err = s
        .submit(0, &saxpy_job(32))
        .err()
        .ok_or("the over-quota launch unexpectedly succeeded")?;
    if !matches!(err, Error::AdmissionRejected { .. }) {
        return Err(format!("over-quota launch failed the wrong way: {err}"));
    }
    let quota = find_postmortem("demo-quota")?;

    // The merged export: the poisoned request's span tree spliced into a
    // Chrome trace alongside the device tracks. Both time bases are
    // modeled/synthetic, so the file is byte-stable across thread counts
    // and backends.
    let device = service
        .devices()
        .into_iter()
        .next()
        .ok_or("service has no devices")?;
    let merged_trace = oclsim::prof::splice_chrome_events(
        &oclsim::chrome_trace(&device, &[]),
        &poison.chrome_trace_events(),
    );
    oclsim::validate_chrome_trace(&merged_trace)
        .map_err(|e| format!("merged postmortem trace is invalid: {e}"))?;

    Ok(PostmortemReport {
        success,
        poison,
        quota,
        merged_trace,
    })
}

/// The report's invariants: the poisoned dump's causal chain reaches the
/// injection, both dumps carry their tenants' recorder tails, and every
/// span line of every tree is tagged with its request's trace id.
pub fn violations(r: &PostmortemReport) -> Vec<String> {
    let mut v = Vec::new();
    if !r
        .poison
        .error_chain
        .last()
        .is_some_and(|e| e.contains("injected poison"))
    {
        v.push(format!(
            "poison chain does not end at the injected root cause: {:?}",
            r.poison.error_chain
        ));
    }
    if r.poison.error_chain.len() < 2 {
        v.push("poison chain is not causal (fewer than two links)".into());
    }
    if !r
        .quota
        .error_chain
        .last()
        .is_some_and(|e| e.contains("quota exceeded"))
    {
        v.push(format!(
            "quota chain does not reach the structured quota error: {:?}",
            r.quota.error_chain
        ));
    }
    for (what, trace) in [
        ("success", &r.success),
        ("poison", &r.poison.request),
        ("quota", &r.quota.request),
    ] {
        let id = trace.trace.to_string();
        for line in trace.render(true).lines() {
            if !line.contains(&id) {
                v.push(format!("{what} span line missing trace id: {line}"));
            }
        }
    }
    for (what, pm) in [("poison", &r.poison), ("quota", &r.quota)] {
        if pm.recorder_tail.is_empty() {
            v.push(format!("{what} dump has an empty flight-recorder tail"));
        }
        if !pm
            .recorder_tail
            .iter()
            .any(|e| e.stage == "session.submit" && e.trace == Some(pm.trace))
        {
            v.push(format!(
                "{what} recorder tail lacks the originating submission"
            ));
        }
    }
    // the success tree spans the full pipeline
    for stage in [
        "admission",
        "cache.lookup",
        "sched.dma",
        "sched.enqueue",
        "partition.chunk",
        "exec.launch",
    ] {
        if r.success.nodes_with_stage(stage).is_empty() {
            v.push(format!("success trace has no `{stage}` node"));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_scenarios_hold_their_invariants() {
        let _g = crate::OBS_SINK_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let r = compute().expect("postmortem demo runs");
        let v = violations(&r);
        assert!(v.is_empty(), "{v:?}");
        // canonical renderings carry no wall-clock fields
        for text in [
            r.success.render(true),
            r.poison.render(true),
            r.quota.render(true),
        ] {
            assert!(
                !text.contains("wall"),
                "canonical render leaks wall: {text}"
            );
        }
        // the merged file carries both the device tracks and the spliced
        // postmortem span events, tagged with the request's trace id
        assert!(
            r.merged_trace.contains("\"session.submit\"")
                && r.merged_trace.contains(&r.poison.trace.to_string()),
            "{}",
            r.merged_trace
        );
    }
}
