//! # bench — the paper's evaluation, regenerated
//!
//! One module per experiment of the paper's §V. Each `compute*` function
//! returns the rows of the corresponding table or figure; the `report`
//! binary prints them next to the paper's published values, and the
//! Criterion benches under `benches/` exercise the same code paths.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table I (SLOC) | [`table1::compute`] |
//! | Figure 6 (EP speedup vs class) | [`fig6::compute`] |
//! | Figure 7 (speedups, 5 benchmarks) | [`fig7::compute`] |
//! | Figure 8 (HPL slowdown vs OpenCL) | [`fig8::derive`] |
//! | Figure 9 (portability: Tesla vs Quadro) | [`fig9::compute`] |
//! | §V-B kernel-cache behaviour | [`caching::compute`] |
//! | Ablations (DESIGN.md) | [`ablation`] |
//! | Hardware-counter profile (`report -- profile`) | [`profile::compute`] |
//! | Per-line source annotation (`report -- annotate`) | [`annotate::compute`] |
//! | Telemetry registry snapshot (`report -- metrics`) | [`runtime_metrics::compute`] |
//! | Perf trajectory + gate (`report -- bench`) | [`trajectory::compute`] |
//! | Multi-tenant service soak (`report -- soak`) | [`soak::compute`] |
//! | Mid-end pass deltas (`report -- passes`) | [`passes::compute`] |
//! | Cache-hierarchy hit rates (`report -- cache`) | [`cachemodel::compute`] |
//! | Causal tracing + flight recorder (`report -- postmortem`) | [`postmortem::compute`] |

pub mod annotate;
pub mod cachemodel;
pub mod passes;
pub mod postmortem;
pub mod profile;
pub mod runtime_metrics;
pub mod soak;
pub mod trajectory;

use oclsim::Device;

/// Tests that drain the process-global completed-trace sink
/// (`oclsim::obs::drain_request_traces`) — the soak and postmortem demos
/// — serialize on this lock so one test's drain cannot swallow another's
/// in-flight traces.
#[cfg(test)]
pub(crate) static OBS_SINK_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The Tesla-class device of the default platform.
pub fn tesla() -> Device {
    hpl::runtime()
        .device_named("tesla")
        .expect("default platform has a Tesla-class GPU")
}

/// The Quadro-class device of the default platform.
pub fn quadro() -> Device {
    hpl::runtime()
        .device_named("quadro")
        .expect("default platform has a Quadro-class GPU")
}

/// The cache-capable Tesla variant (48K L1 / 768K shared L2). Same
/// roofline as [`tesla`], plus the simulated cache hierarchy — launches
/// on it produce L1/L2 hit/miss counters and cache-aware modeled time.
pub fn tesla_cached() -> Device {
    hpl::runtime()
        .device_named("48k")
        .expect("default platform has the 48K-L1 cached Tesla variant")
}

/// The small-L1 Tesla variant (16K L1, 4-way). Differs from
/// [`tesla_cached`] only in L1 geometry — the pair makes cache pressure
/// visible as a hit-rate (and modeled-time) delta at identical rooflines.
pub fn tesla_small_l1() -> Device {
    hpl::runtime()
        .device_named("16k")
        .expect("default platform has the 16K-L1 cached Tesla variant")
}

/// Table I: SLOC of the OpenCL and HPL versions of the five benchmarks.
pub mod table1 {
    use sloc::{count, strip_rust_tests, Language};

    /// One row of Table I.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Benchmark name.
        pub benchmark: &'static str,
        /// SLOC of the hand-written OpenCL version (host + kernel source).
        pub opencl_sloc: usize,
        /// SLOC of the HPL version.
        pub hpl_sloc: usize,
        /// The paper's published SLOCs, for side-by-side reporting.
        pub paper_opencl: usize,
        /// The paper's published HPL SLOCs.
        pub paper_hpl: usize,
    }

    impl Row {
        /// "Reduction in SLOCs due to the usage of HPL" (Table I's last
        /// column).
        pub fn reduction_percent(&self) -> f64 {
            (1.0 - self.hpl_sloc as f64 / self.opencl_sloc as f64) * 100.0
        }

        /// The paper's reduction column.
        pub fn paper_reduction_percent(&self) -> f64 {
            (1.0 - self.paper_hpl as f64 / self.paper_opencl as f64) * 100.0
        }

        /// OpenCL-to-HPL size ratio ("3 to 10 times shorter").
        pub fn ratio(&self) -> f64 {
            self.opencl_sloc as f64 / self.hpl_sloc as f64
        }
    }

    struct Sources {
        benchmark: &'static str,
        opencl_host: &'static str,
        opencl_kernel: &'static str,
        hpl: &'static str,
        paper_opencl: usize,
        paper_hpl: usize,
    }

    const SOURCES: &[Sources] = &[
        Sources {
            benchmark: "EP",
            opencl_host: include_str!("../../benchsuite/src/ep/opencl_version.rs"),
            opencl_kernel: include_str!("../../benchsuite/src/kernels/ep.cl"),
            hpl: include_str!("../../benchsuite/src/ep/hpl_version.rs"),
            paper_opencl: 1151,
            paper_hpl: 281,
        },
        Sources {
            benchmark: "Floyd-Warshall",
            opencl_host: include_str!("../../benchsuite/src/floyd/opencl_version.rs"),
            opencl_kernel: include_str!("../../benchsuite/src/kernels/floyd.cl"),
            hpl: include_str!("../../benchsuite/src/floyd/hpl_version.rs"),
            paper_opencl: 1170,
            paper_hpl: 107,
        },
        Sources {
            benchmark: "Matrix transpose",
            opencl_host: include_str!("../../benchsuite/src/transpose/opencl_version.rs"),
            opencl_kernel: include_str!("../../benchsuite/src/kernels/transpose.cl"),
            hpl: include_str!("../../benchsuite/src/transpose/hpl_version.rs"),
            paper_opencl: 455,
            paper_hpl: 52,
        },
        Sources {
            benchmark: "Spmv",
            opencl_host: include_str!("../../benchsuite/src/spmv/opencl_version.rs"),
            opencl_kernel: include_str!("../../benchsuite/src/kernels/spmv.cl"),
            hpl: include_str!("../../benchsuite/src/spmv/hpl_version.rs"),
            paper_opencl: 1637,
            paper_hpl: 517,
        },
        Sources {
            benchmark: "Reduction",
            opencl_host: include_str!("../../benchsuite/src/reduction/opencl_version.rs"),
            opencl_kernel: include_str!("../../benchsuite/src/kernels/reduction.cl"),
            hpl: include_str!("../../benchsuite/src/reduction/hpl_version.rs"),
            paper_opencl: 773,
            paper_hpl: 218,
        },
    ];

    /// Count the five benchmarks. The OpenCL side counts the host driver
    /// plus the `.cl` kernel; the HPL side counts the single Rust file.
    /// Test modules are excluded on both sides.
    pub fn compute() -> Vec<Row> {
        SOURCES
            .iter()
            .map(|s| Row {
                benchmark: s.benchmark,
                opencl_sloc: count(&strip_rust_tests(s.opencl_host), Language::Rust)
                    + count(s.opencl_kernel, Language::CFamily),
                hpl_sloc: count(&strip_rust_tests(s.hpl), Language::Rust),
                paper_opencl: s.paper_opencl,
                paper_hpl: s.paper_hpl,
            })
            .collect()
    }
}

/// Figure 6: EP speedups over the serial CPU for classes W/A/B/C.
pub mod fig6 {
    use benchsuite::ep::{run, EpClass, EpConfig};

    /// One class's bars.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Class name (W/A/B/C).
        pub class: &'static str,
        /// Scaled pair count actually run.
        pub pairs: usize,
        /// OpenCL speedup over serial CPU.
        pub opencl_speedup: f64,
        /// HPL speedup over serial CPU.
        pub hpl_speedup: f64,
        /// HPL slowdown vs OpenCL in percent (the paper quotes 20.5% /
        /// 5.7% / 2.3% / 1.1% for W/A/B/C).
        pub hpl_slowdown_percent: f64,
        /// All versions verified against the reference.
        pub verified: bool,
    }

    /// Run EP for every class on `device`.
    pub fn compute(device: &oclsim::Device) -> Result<Vec<Row>, benchsuite::Error> {
        [EpClass::W, EpClass::A, EpClass::B, EpClass::C]
            .into_iter()
            .map(|class| {
                let cfg = EpConfig::class(class);
                let report = run(&cfg, device)?;
                Ok(Row {
                    class: class.name(),
                    pairs: class.pairs(),
                    opencl_speedup: report.opencl_speedup(),
                    hpl_speedup: report.hpl_speedup(),
                    hpl_slowdown_percent: report.hpl_slowdown_percent(),
                    verified: report.verified,
                })
            })
            .collect()
    }
}

/// Figure 7: speedups of all five benchmarks over the serial CPU
/// (and, derived from the same runs, Figure 8's slowdown bars).
pub mod fig7 {
    use benchsuite::common::BenchReport;
    use benchsuite::{ep, floyd, reduction, spmv, transpose};

    /// Problem-size selection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Scale {
        /// The scaled counterparts of the paper's Figure 7 sizes.
        Paper,
        /// The reduced sizes of the §V-C portability experiment (Fig. 9).
        PaperSmall,
        /// Tiny sizes for tests.
        Test,
    }

    /// Run the five benchmarks on `device`. EP is simply absent from the
    /// result when the device lacks fp64, reproducing the paper's §V-C
    /// exclusion.
    pub fn compute(
        device: &oclsim::Device,
        scale: Scale,
    ) -> Result<Vec<BenchReport>, benchsuite::Error> {
        let mut out = Vec::with_capacity(5);
        if device.supports_fp64() {
            let cfg = match scale {
                Scale::Paper => ep::EpConfig::class(ep::EpClass::C),
                Scale::PaperSmall => ep::EpConfig::class(ep::EpClass::A),
                Scale::Test => ep::EpConfig::class(ep::EpClass::S),
            };
            out.push(ep::run(&cfg, device)?);
        }
        let cfg = match scale {
            Scale::Paper => floyd::FloydConfig::paper_scaled(),
            Scale::PaperSmall => floyd::FloydConfig::paper_scaled_small(),
            Scale::Test => floyd::FloydConfig::default(),
        };
        out.push(floyd::run(&cfg, device)?);
        let cfg = match scale {
            Scale::Paper => transpose::TransposeConfig::paper_scaled(),
            Scale::PaperSmall => transpose::TransposeConfig::paper_scaled_small(),
            Scale::Test => transpose::TransposeConfig::default(),
        };
        out.push(transpose::run(&cfg, device)?);
        let cfg = match scale {
            Scale::Paper => spmv::SpmvConfig::paper_scaled(),
            Scale::PaperSmall => spmv::SpmvConfig::paper_scaled_small(),
            Scale::Test => spmv::SpmvConfig::default(),
        };
        out.push(spmv::run(&cfg, device)?);
        let cfg = match scale {
            Scale::Paper => reduction::ReductionConfig::paper_scaled(),
            Scale::PaperSmall => reduction::ReductionConfig::paper_scaled_small(),
            Scale::Test => reduction::ReductionConfig::default(),
        };
        out.push(reduction::run(&cfg, device)?);
        Ok(out)
    }

    /// The paper's Figure 7 OpenCL speedups (read off the chart), for
    /// side-by-side reporting.
    pub fn paper_speedup(name: &str) -> Option<f64> {
        match name {
            "EP" => Some(257.0),
            "Floyd" => Some(45.0),
            "transpose" => Some(55.0),
            "spmv" => Some(5.4),
            "reduction" => Some(25.0),
            _ => None,
        }
    }
}

/// Figure 8 is derived from the Figure 7 runs: HPL's slowdown with respect
/// to OpenCL per benchmark ("typical degradation below 4%").
pub mod fig8 {
    use benchsuite::common::BenchReport;

    /// One slowdown bar.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Benchmark name.
        pub benchmark: &'static str,
        /// HPL slowdown vs OpenCL, percent.
        pub slowdown_percent: f64,
        /// The same including modeled transfers (the paper's transpose
        /// observation: with transfers included the overhead shrinks).
        pub slowdown_with_transfers_percent: f64,
    }

    /// Derive the Figure 8 rows from Figure 7 reports.
    pub fn derive(reports: &[BenchReport]) -> Vec<Row> {
        reports
            .iter()
            .map(|r| Row {
                benchmark: r.name,
                slowdown_percent: r.hpl_slowdown_percent(),
                slowdown_with_transfers_percent: (r.hpl.paper_seconds_with_transfers()
                    / r.opencl.paper_seconds_with_transfers()
                    - 1.0)
                    * 100.0,
            })
            .collect()
    }
}

/// Figure 9: HPL overhead on the Tesla and the Quadro FX 380 (EP excluded
/// on the Quadro — no fp64; reduced problem sizes per §V-C), extended
/// with the two cache-capable Tesla variants so portability is shown
/// across cache-differing device profiles too: the same source runs
/// unchanged whether the profile models a 48K L1, a 16K L1, or no cache
/// at all, and HPL's overhead stays in the same band on each.
pub mod fig9 {
    use super::fig7::{self, Scale};

    /// One benchmark's overhead on all four devices.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Benchmark name.
        pub benchmark: &'static str,
        /// HPL overhead on the Tesla-class GPU, percent.
        pub tesla_percent: f64,
        /// HPL overhead on the Quadro-class GPU, percent.
        pub quadro_percent: f64,
        /// HPL overhead on the 48K-L1 cached Tesla variant, percent —
        /// modeled time here includes the cache-aware memory term.
        pub tesla48_percent: f64,
        /// HPL overhead on the 16K-L1 cached Tesla variant, percent.
        pub tesla16_percent: f64,
    }

    /// Run the portability experiment.
    pub fn compute() -> Result<Vec<Row>, benchsuite::Error> {
        let tesla = super::tesla();
        let quadro = super::quadro();
        let on_tesla = fig7::compute(&tesla, Scale::PaperSmall)?;
        let on_quadro = fig7::compute(&quadro, Scale::PaperSmall)?;
        let on_t48 = fig7::compute(&super::tesla_cached(), Scale::PaperSmall)?;
        let on_t16 = fig7::compute(&super::tesla_small_l1(), Scale::PaperSmall)?;
        // EP is present on the Teslas only; align by name over the common
        // set (the Quadro run, which has no fp64)
        Ok(on_quadro
            .iter()
            .map(|q| {
                let find = |set: &[benchsuite::common::BenchReport]| {
                    set.iter()
                        .find(|t| t.name == q.name)
                        .expect("benchmark sets align by name")
                        .hpl_slowdown_percent()
                };
                Row {
                    benchmark: q.name,
                    tesla_percent: find(&on_tesla),
                    quadro_percent: q.hpl_slowdown_percent(),
                    tesla48_percent: find(&on_t48),
                    tesla16_percent: find(&on_t16),
                }
            })
            .collect())
    }
}

/// §V-B kernel-cache behaviour: "second and later invocations of an HPL
/// kernel do not incur in overheads of analysis, backend code generation
/// and compilation".
pub mod caching {
    use benchsuite::ep::{hpl_version, EpClass, EpConfig};

    /// First- vs later-invocation timings.
    #[derive(Debug, Clone)]
    pub struct Report {
        /// Total paper-metric seconds of the first invocation.
        pub first_seconds: f64,
        /// Front-end (capture + codegen + build) share of the first.
        pub first_front_seconds: f64,
        /// Total of the second invocation (cache hit).
        pub second_seconds: f64,
        /// Front-end share of the second (should be ~0).
        pub second_front_seconds: f64,
    }

    /// Run the cache experiment on `device` with EP class W.
    pub fn compute(device: &oclsim::Device) -> Result<Report, benchsuite::Error> {
        hpl::clear_kernel_cache();
        let cfg = EpConfig::class(EpClass::W);
        let (_, first) = hpl_version::launch(&cfg, device).map_err(benchsuite::Error::Hpl)?;
        let (_, second) = hpl_version::launch(&cfg, device).map_err(benchsuite::Error::Hpl)?;
        Ok(Report {
            first_seconds: first.paper_seconds(),
            first_front_seconds: first.capture_seconds
                + first.codegen_seconds
                + first.build_seconds,
            second_seconds: second.paper_seconds(),
            second_front_seconds: second.capture_seconds
                + second.codegen_seconds
                + second.build_seconds,
        })
    }
}

/// Ablation studies called out in DESIGN.md.
pub mod ablation {
    use benchsuite::floyd::{generate_graph, hpl_version, FloydConfig};
    use hpl::eval;
    use hpl::prelude::*;

    /// Transfer-minimisation ablation on Floyd–Warshall: HPL's coherence
    /// tracking uploads the matrix once for n passes; the "naive" variant
    /// forces a re-upload before every pass (what a runtime without the
    /// analysis would do).
    #[derive(Debug, Clone)]
    pub struct TransferAblation {
        /// Host→device transfer count with minimisation (expected: 1).
        pub minimised_h2d: u64,
        /// Host→device transfer count without (expected: n).
        pub naive_h2d: u64,
        /// Modeled transfer seconds with minimisation.
        pub minimised_seconds: f64,
        /// Modeled transfer seconds without.
        pub naive_seconds: f64,
    }

    /// Run the transfer ablation.
    pub fn transfers(device: &oclsim::Device) -> Result<TransferAblation, benchsuite::Error> {
        let cfg = FloydConfig { nodes: 64, seed: 3 };
        let graph = generate_graph(&cfg);

        hpl::runtime().reset_transfer_stats();
        let _ = hpl_version::run(&cfg, &graph, device).map_err(benchsuite::Error::Hpl)?;
        let minimised = hpl::runtime().transfer_stats();

        // naive: invalidate the device copy before each pass by rewriting
        // the host data, forcing the upload a transfer-oblivious runtime
        // would perform
        hpl::runtime().reset_transfer_stats();
        let n = cfg.nodes;
        let dist = Array::<u32, 2>::from_vec([n, n], graph.clone());
        let k = Int::new(0);
        fn floyd_kernel(dist: &Array<u32, 2>, k: &Int) {
            let x = Int::new(0);
            let y = Int::new(0);
            x.assign(idx());
            y.assign(idy());
            let direct = dist.at((y.v(), x.v()));
            let through = dist.at((y.v(), k.v())) + dist.at((k.v(), x.v()));
            dist.at((y.v(), x.v())).assign(math::min(direct, through));
        }
        for pass in 0..n {
            k.set(pass as i32);
            let snapshot = dist.to_vec(); // reads back (d2h)
            dist.write_from(&snapshot); // invalidates the device copy
            eval(floyd_kernel)
                .device(device)
                .global(&[n, n])
                .local(&[16, 16])
                .run((&dist, &k))
                .map_err(benchsuite::Error::Hpl)?;
        }
        let _ = dist.to_vec();
        let naive = hpl::runtime().transfer_stats();

        Ok(TransferAblation {
            minimised_h2d: minimised.h2d_count,
            naive_h2d: naive.h2d_count,
            minimised_seconds: minimised.modeled_seconds,
            naive_seconds: naive.modeled_seconds,
        })
    }

    /// Coalescing ablation: the paper's footnote 1 distinguishes the tiled
    /// transpose (benchmarked) from the naive one of Figure 10. Returns
    /// (naive, tiled) modeled kernel seconds for the same matrix.
    pub fn transpose_naive_vs_tiled(
        device: &oclsim::Device,
    ) -> Result<(f64, f64), benchsuite::Error> {
        use benchsuite::transpose::{generate_matrix, TransposeConfig};

        let cfg = TransposeConfig {
            rows: 256,
            cols: 256,
        };
        let data = generate_matrix(&cfg);

        // naive: Figure 10(b) — uncoalesced writes
        fn naive_transpose(dst: &Array<f32, 2>, src: &Array<f32, 2>) {
            dst.at((idx(), idy())).assign(src.at((idy(), idx())));
        }
        let src = Array::<f32, 2>::from_vec([cfg.rows, cfg.cols], data.clone());
        let dst = Array::<f32, 2>::new([cfg.cols, cfg.rows]);
        let naive = eval(naive_transpose)
            .device(device)
            .global(&[cfg.cols, cfg.rows])
            .local(&[16, 16])
            .run((&dst, &src))
            .map_err(benchsuite::Error::Hpl)?
            .kernel_modeled_seconds;

        let (_, tiled) = benchsuite::transpose::hpl_version::run(&cfg, &data, device)
            .map_err(benchsuite::Error::Hpl)?;
        Ok((naive, tiled.kernel_modeled_seconds))
    }
}

/// Overlap experiment: the asynchronous scheduler's modeled timeline on a
/// chunked transfer/compute pipeline (see `benchsuite::pipeline`).
pub mod overlap {
    use oclsim::{CommandQueue, Context, Device, DeviceProfile, MemAccess, Program};

    /// One row of the overlap report.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// What was run.
        pub label: String,
        /// Modeled makespan across all devices (fresh timelines).
        pub makespan_seconds: f64,
        /// Sum of the individual commands' modeled times — what a fully
        /// serialised schedule on one device would take.
        pub sum_seconds: f64,
        /// Results verified (hpl row) / events all completed (oclsim rows).
        pub verified: bool,
    }

    impl Row {
        /// makespan / sum: < 1.0 means the schedule overlapped commands.
        pub fn ratio(&self) -> f64 {
            self.makespan_seconds / self.sum_seconds
        }
    }

    const CHUNK_SRC: &str = r#"
        __kernel void fma2(__global float* out, __global const float* in) {
            size_t i = get_global_id(0);
            out[i] = in[i] * 2.0f + 1.0f;
        }
    "#;

    /// Stream `chunks` independent upload+kernel chunks over `ndev` fresh
    /// Tesla-class devices (round-robin) through out-of-order queues;
    /// returns (makespan, sum of command times). Fresh devices give a
    /// quiet timeline regardless of what else the process ran.
    fn oclsim_pipeline(ndev: usize, chunks: usize, elems: usize) -> oclsim::Result<(f64, f64)> {
        let devices: Vec<Device> = (0..ndev)
            .map(|_| Device::new(DeviceProfile::tesla_c2050()))
            .collect();
        let mut rigs = Vec::new();
        for d in &devices {
            let ctx = Context::new(std::slice::from_ref(d))?;
            let queue = CommandQueue::new_out_of_order(&ctx, d)?;
            let program = Program::from_source(&ctx, CHUNK_SRC);
            program.build("")?;
            rigs.push((ctx, queue, program));
        }
        let data = vec![1.5f32; elems];
        let mut events = Vec::new();
        for c in 0..chunks {
            let (ctx, queue, program) = &rigs[c % ndev];
            let input = ctx.create_buffer(elems * 4, MemAccess::ReadOnly)?;
            let out = ctx.create_buffer(elems * 4, MemAccess::WriteOnly)?;
            let kernel = program.kernel("fma2")?;
            kernel.set_arg_buffer(0, &out)?;
            kernel.set_arg_buffer(1, &input)?;
            let write = queue.enqueue_write_async(&input, 0, &data, &[])?;
            let launch = queue.enqueue_ndrange_async(
                &kernel,
                &[elems],
                None,
                std::slice::from_ref(&write),
            )?;
            events.push(write);
            events.push(launch);
        }
        oclsim::wait_for_events(&events)?;
        let sum: f64 = events.iter().map(|e| e.modeled_seconds()).sum();
        let makespan = devices
            .iter()
            .map(Device::timeline_horizon)
            .fold(0.0f64, f64::max);
        Ok((makespan, sum))
    }

    /// All rows of the overlap experiment: the HPL `run_async` pipeline on
    /// the runtime's Tesla, then the oclsim-level pipeline on one and two
    /// fresh Tesla-class devices.
    pub fn compute() -> Result<Vec<Row>, benchsuite::Error> {
        let mut rows = Vec::new();

        let cfg = benchsuite::pipeline::PipelineConfig::default();
        let tesla = super::tesla();
        let hpl_run = benchsuite::pipeline::run(&cfg, &[tesla]).map_err(benchsuite::Error::Hpl)?;
        rows.push(Row {
            label: format!(
                "hpl run_async, {} chunks x {} elems, 1 Tesla",
                cfg.chunks, cfg.chunk_elems
            ),
            makespan_seconds: hpl_run.makespan_seconds,
            sum_seconds: hpl_run.sum_command_seconds,
            verified: hpl_run.verified,
        });

        let (m1, s1) = oclsim_pipeline(1, 8, 1 << 15)?;
        rows.push(Row {
            label: "oclsim out-of-order, 8 chunks, 1 Tesla".into(),
            makespan_seconds: m1,
            sum_seconds: s1,
            verified: true,
        });
        let (m2, s2) = oclsim_pipeline(2, 8, 1 << 15)?;
        rows.push(Row {
            label: "oclsim out-of-order, 8 chunks, 2 Teslas".into(),
            makespan_seconds: m2,
            sum_seconds: s2,
            verified: true,
        });
        Ok(rows)
    }
}

/// Kernel-sanitizer sweep over the whole benchmark corpus: the handwritten
/// OpenCL C of every benchmark plus the OpenCL C that HPL generates for
/// its version, statically analyzed for barrier divergence, data races and
/// out-of-bounds accesses. The `report -- lint` subcommand prints a
/// per-kernel verdict table from these rows; `ci.sh` fails the build if
/// any kernel is not clean (Deny-mode gate).
pub mod lint {
    use oclsim::clc::analysis::analyze_source;
    use oclsim::{Device, Severity};

    /// The sanitizer's verdict for one kernel of one source.
    #[derive(Debug)]
    pub struct KernelVerdict {
        /// Benchmark name (paper naming).
        pub benchmark: &'static str,
        /// `"handwritten"` (kernels/*.cl) or `"generated"` (HPL codegen).
        pub variant: &'static str,
        /// Kernel function name inside the source.
        pub kernel: String,
        /// Number of warning-severity findings.
        pub warnings: usize,
        /// Number of error-severity findings.
        pub errors: usize,
        /// Rendered diagnostics, in source order, each with the offending
        /// source line and a caret under the span (the same snippet
        /// renderer `report -- annotate` uses for its listings).
        pub messages: Vec<String>,
    }

    impl KernelVerdict {
        /// True when the sanitizer found nothing at all.
        pub fn clean(&self) -> bool {
            self.warnings == 0 && self.errors == 0
        }
    }

    fn lint_source(
        benchmark: &'static str,
        variant: &'static str,
        source: &str,
        rows: &mut Vec<KernelVerdict>,
    ) -> Result<(), String> {
        let analysis = analyze_source(source)
            .map_err(|e| format!("{benchmark} ({variant}) failed to compile: {e}"))?;
        // which kernels the compiled work-group backend declines (notes;
        // they never make a kernel "dirty")
        let fallbacks = oclsim::exec::wg::fallback_report(source)
            .map_err(|e| format!("{benchmark} ({variant}) failed to plan: {e}"))?;
        let mut names: Vec<&String> = analysis.kernels.keys().collect();
        names.sort();
        for name in names {
            let diags: Vec<_> = analysis
                .diagnostics
                .iter()
                .filter(|d| &d.kernel == name)
                .collect();
            let mut messages: Vec<String> =
                diags.iter().map(|d| d.render_with_source(source)).collect();
            for (kernel, line, reason) in &fallbacks {
                if kernel == name {
                    messages.push(format!(
                        "note[backend-fallback] kernel `{kernel}`, line {line}: runs on the                          reference interpreter: {reason}"
                    ));
                }
            }
            rows.push(KernelVerdict {
                benchmark,
                variant,
                kernel: name.clone(),
                warnings: diags
                    .iter()
                    .filter(|d| d.severity == Severity::Warning)
                    .count(),
                errors: diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count(),
                messages,
            });
        }
        Ok(())
    }

    /// Lint both versions of all five paper benchmarks. `device` is only
    /// used to capture the HPL-generated sources (tiny instances).
    pub fn compute(device: &Device) -> Result<Vec<KernelVerdict>, String> {
        use benchsuite::{ep, floyd, reduction, spmv, transpose};
        let gen = |r: Result<String, hpl::Error>| r.map_err(|e| e.to_string());
        let mut rows = Vec::new();
        lint_source("EP", "handwritten", ep::opencl_version::SOURCE, &mut rows)?;
        let src = gen(ep::hpl_version::generated_source(device))?;
        lint_source("EP", "generated", &src, &mut rows)?;
        lint_source(
            "Floyd",
            "handwritten",
            floyd::opencl_version::SOURCE,
            &mut rows,
        )?;
        let src = gen(floyd::hpl_version::generated_source(device))?;
        lint_source("Floyd", "generated", &src, &mut rows)?;
        lint_source(
            "reduction",
            "handwritten",
            reduction::opencl_version::SOURCE,
            &mut rows,
        )?;
        let src = gen(reduction::hpl_version::generated_source(device))?;
        lint_source("reduction", "generated", &src, &mut rows)?;
        lint_source(
            "spmv",
            "handwritten",
            spmv::opencl_version::SOURCE,
            &mut rows,
        )?;
        let src = gen(spmv::hpl_version::generated_source(device))?;
        lint_source("spmv", "generated", &src, &mut rows)?;
        lint_source(
            "transpose",
            "handwritten",
            transpose::opencl_version::SOURCE,
            &mut rows,
        )?;
        let src = gen(transpose::hpl_version::generated_source(device))?;
        lint_source("transpose", "generated", &src, &mut rows)?;
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shows_large_hpl_reduction() {
        let rows = table1::compute();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.opencl_sloc > 0 && r.hpl_sloc > 0);
            assert!(
                r.hpl_sloc < r.opencl_sloc,
                "{}: HPL ({}) must be smaller than OpenCL ({})",
                r.benchmark,
                r.hpl_sloc,
                r.opencl_sloc
            );
            assert!(
                r.reduction_percent() > 20.0,
                "{}: only {:.0}%",
                r.benchmark,
                r.reduction_percent()
            );
        }
    }

    #[test]
    fn devices_resolvable() {
        assert!(tesla().supports_fp64());
        assert!(!quadro().supports_fp64());
    }

    #[test]
    fn benchmark_corpus_lints_clean() {
        let rows = lint::compute(&tesla()).unwrap();
        assert!(
            rows.len() >= 10,
            "5 benchmarks x 2 variants, at least one kernel each: {rows:?}"
        );
        for r in &rows {
            assert!(
                r.clean(),
                "{} ({}) kernel `{}` is not clean: {:?}",
                r.benchmark,
                r.variant,
                r.kernel,
                r.messages
            );
        }
    }
}
