//! The `report -- metrics` experiment: drive every benchmark to its
//! steady state and publish the telemetry registry's canonical snapshot.
//!
//! Each (benchmark, sync/async) pair runs **twice**. The first run warms
//! the alias-keyed kernel cache (recording, codegen and backend builds
//! happen here at the latest); the second run is the steady state the
//! paper's §V-B describes, where "second and later invocations of an HPL
//! kernel do not incur in overheads" — every `eval` must be served from
//! the cache. The report prints the per-run cache-lookup deltas from
//! [`hpl::cache_stats`] and fails if any steady-state run misses.
//!
//! Everything printed derives from workload-determined counters — never
//! wall clocks or scheduler interleavings — so the whole stdout is
//! byte-identical across `OCLSIM_THREADS` settings. `ci.sh` runs this
//! subcommand under 1 and 4 simulator threads and diffs the outputs; the
//! canonical [`hpl::telemetry::metrics_text`] snapshot at the end is the
//! load-bearing part of that gate.

use oclsim::Device;

use crate::profile::{run_bench, BENCHES};

/// Cache-lookup accounting for one benchmark's warm-up and steady runs.
#[derive(Debug, Clone)]
pub struct SteadyStateRow {
    /// Benchmark name (see [`BENCHES`](crate::profile::BENCHES)).
    pub bench: &'static str,
    /// `"sync"` or `"async"`.
    pub mode: &'static str,
    /// Kernel-cache hits during the first (warm-up) run.
    pub warm_hits: u64,
    /// Kernel-cache misses during the first run (first-ever invocation of
    /// each kernel in the process compiles here).
    pub warm_misses: u64,
    /// Hits during the second (steady-state) run.
    pub steady_hits: u64,
    /// Misses during the second run — any value above zero means the
    /// cache failed to serve a repeated invocation.
    pub steady_misses: u64,
}

impl SteadyStateRow {
    /// Steady-state hit ratio in `[0, 1]` (`0` when the run performed no
    /// lookups at all, which the gate also rejects).
    pub fn steady_hit_ratio(&self) -> f64 {
        let total = self.steady_hits + self.steady_misses;
        if total == 0 {
            0.0
        } else {
            self.steady_hits as f64 / total as f64
        }
    }

    /// The gate: the steady-state run performed at least one lookup and
    /// every one of them hit.
    pub fn steady_state_cached(&self) -> bool {
        self.steady_hits > 0 && self.steady_misses == 0
    }
}

/// Run every benchmark twice in both modes and collect the cache deltas.
pub fn compute(device: &Device) -> Result<Vec<SteadyStateRow>, benchsuite::Error> {
    let mut rows = Vec::with_capacity(2 * BENCHES.len());
    for &bench in BENCHES {
        for sync in [true, false] {
            let before = hpl::cache_stats();
            run_bench(bench, sync, true, device)?;
            let warm = hpl::cache_stats();
            run_bench(bench, sync, true, device)?;
            let steady = hpl::cache_stats();
            rows.push(SteadyStateRow {
                bench,
                mode: if sync { "sync" } else { "async" },
                warm_hits: warm.hits - before.hits,
                warm_misses: warm.misses - before.misses,
                steady_hits: steady.hits - warm.hits,
                steady_misses: steady.misses - warm.misses,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_runs_hit_the_cache() {
        let rows = compute(&crate::tesla()).expect("benchmarks run at test scale");
        assert_eq!(rows.len(), 2 * BENCHES.len());
        for r in &rows {
            assert!(
                r.steady_state_cached(),
                "{} {}: steady state {} hits / {} misses",
                r.bench,
                r.mode,
                r.steady_hits,
                r.steady_misses
            );
            assert!(r.steady_hit_ratio() > 0.0);
        }
    }
}
