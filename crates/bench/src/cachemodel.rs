//! The `report -- cache` experiment: the simulated cache hierarchy over
//! the benchmark corpus.
//!
//! Runs every benchmark's sync HPL version twice — once on the plain
//! (roofline-only) Tesla and once on the cache-capable 48K-L1 variant —
//! and reports per-kernel L1/L2 hit rates plus the cache-aware modeled
//! time next to the roofline-only time. Along the way it checks the
//! model's structural invariants, which `report -- cache` turns into
//! exit-status gates:
//!
//! - on the cached device, per-line L1/L2 hit+miss sums equal the launch
//!   totals exactly (same chokepoint invariant as every other counter);
//! - every cached L1 probe corresponds to a global-memory transaction
//!   (`l1_hits + l1_misses <= mem_transactions`) and the L2 sees exactly
//!   the L1's misses (`l2_hits + l2_misses == l1_misses`);
//! - the plain Tesla's counters carry **zero** cache activity, and all
//!   its non-cache counters are bit-identical to the cached run's — the
//!   cache model observes the transaction stream, it never perturbs it.
//!
//! The listing is derived from deterministic counters and modeled times
//! only, so the output is byte-identical across `OCLSIM_THREADS` and
//! `OCLSIM_BACKEND` settings — `ci.sh` diffs four runs of it.

use oclsim::{GroupCounters, LaunchCounters};

use crate::annotate::{self, KernelAnnotation};
use crate::profile::{profile_one, KernelRow, BENCHES};

/// One kernel's cache behaviour: the cached-device run joined with its
/// plain-device counterpart.
#[derive(Debug, Clone)]
pub struct KernelCacheRow {
    /// Benchmark name (see [`BENCHES`]).
    pub bench: &'static str,
    /// Kernel name (HPL's uniquifying suffix stripped).
    pub kernel: String,
    /// Counters from the cache-capable device (includes per-line map).
    pub counters: LaunchCounters,
    /// Cache-aware modeled seconds on the cached device.
    pub cached_modeled_s: f64,
    /// Roofline-only modeled seconds of the same launches on the plain
    /// Tesla.
    pub plain_modeled_s: f64,
    /// Counters from the plain Tesla (cache fields must all be zero).
    pub plain_totals: GroupCounters,
}

impl KernelCacheRow {
    /// L1 hit rate of the launch, if any transaction was cached.
    pub fn l1_hit_rate(&self) -> Option<f64> {
        self.counters.l1_hit_rate()
    }

    /// L2 hit rate of the launch (of L1 misses), if any reached L2.
    pub fn l2_hit_rate(&self) -> Option<f64> {
        self.counters.l2_hit_rate()
    }

    /// Every structural-invariant failure of this row (empty = green).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let t = &self.counters.totals;
        let who = format!("{}/{}", self.bench, self.kernel);
        if self.counters.lines_sum() != *t {
            out.push(format!("{who}: per-line sums drifted from launch totals"));
        }
        if t.l1_hits + t.l1_misses > t.mem_transactions {
            out.push(format!(
                "{who}: more L1 probes ({}) than memory transactions ({})",
                t.l1_hits + t.l1_misses,
                t.mem_transactions
            ));
        }
        if t.l1_hits + t.l1_misses == 0 && t.mem_transactions > 0 {
            out.push(format!("{who}: cached device recorded no cache traffic"));
        }
        if t.l2_hits + t.l2_misses != t.l1_misses {
            out.push(format!(
                "{who}: L2 saw {} probes but L1 missed {} times",
                t.l2_hits + t.l2_misses,
                t.l1_misses
            ));
        }
        let p = &self.plain_totals;
        if p.l1_hits + p.l1_misses + p.l2_hits + p.l2_misses != 0 {
            out.push(format!("{who}: plain Tesla recorded cache activity"));
        }
        let mut scrubbed = *t;
        scrubbed.l1_hits = 0;
        scrubbed.l1_misses = 0;
        scrubbed.l2_hits = 0;
        scrubbed.l2_misses = 0;
        if scrubbed != *p {
            out.push(format!(
                "{who}: non-cache counters differ between plain and cached device"
            ));
        }
        out
    }
}

/// The coalescing-ablation listings re-run on the cached device: naive
/// vs tiled transpose annotations, whose hot lines now carry L1 hit
/// rates.
#[derive(Debug, Clone)]
pub struct TransposeCacheStory {
    /// Naive (uncoalesced) transpose annotation on the cached Tesla.
    pub naive: KernelAnnotation,
    /// Tiled (benchmarked) transpose annotation on the cached Tesla.
    pub tiled: KernelAnnotation,
}

/// Hot-line L1 hit rate of an annotation, or 0.0 when the hot line saw
/// no cache traffic.
pub fn hot_line_l1_rate(a: &KernelAnnotation) -> f64 {
    let Some((_, hot)) = a.counters.hot_line() else {
        return 0.0;
    };
    let seen = hot.l1_hits + hot.l1_misses;
    if seen == 0 {
        0.0
    } else {
        hot.l1_hits as f64 / seen as f64
    }
}

/// The full `report -- cache` result.
pub struct Report {
    /// Per-kernel rows in benchmark-corpus order.
    pub rows: Vec<KernelCacheRow>,
    /// The transpose naive-vs-tiled annotations on the cached device.
    pub transpose: TransposeCacheStory,
}

impl Report {
    /// All structural-invariant failures across the corpus.
    pub fn violations(&self) -> Vec<String> {
        let mut out: Vec<String> = self.rows.iter().flat_map(|r| r.violations()).collect();
        let naive = hot_line_l1_rate(&self.transpose.naive);
        let tiled = hot_line_l1_rate(&self.transpose.tiled);
        if (naive - tiled).abs() < 0.05 {
            out.push(format!(
                "transpose hot-line L1 hit rate did not move between naive ({:.1}%) and tiled ({:.1}%)",
                100.0 * naive,
                100.0 * tiled
            ));
        }
        out
    }
}

/// Merge a profile's kernel rows from the cached and plain devices by
/// kernel name.
fn join(
    bench: &'static str,
    cached: Vec<KernelRow>,
    plain: &[KernelRow],
) -> Result<Vec<KernelCacheRow>, String> {
    cached
        .into_iter()
        .map(|c| {
            let p = plain
                .iter()
                .find(|p| p.kernel == c.kernel)
                .ok_or_else(|| format!("kernel `{}` missing from the plain-Tesla run", c.kernel))?;
            Ok(KernelCacheRow {
                bench,
                kernel: c.kernel,
                counters: c.counters,
                cached_modeled_s: c.modeled_seconds,
                plain_modeled_s: p.modeled_seconds,
                plain_totals: p.counters.totals,
            })
        })
        .collect()
}

/// Run the cache experiment over the whole corpus (sync mode; the cache
/// model is launch-scoped, so async adds nothing but runtime).
pub fn compute() -> Result<Report, String> {
    let cached_dev = crate::tesla_cached();
    let plain_dev = crate::tesla();
    let mut rows = Vec::new();
    for &bench in BENCHES {
        let c = profile_one(bench, true, &cached_dev).map_err(|e| e.to_string())?;
        let p = profile_one(bench, true, &plain_dev).map_err(|e| e.to_string())?;
        rows.extend(join(bench, c.rows, &p.rows)?);
    }
    let (naive, tiled) =
        annotate::transpose_naive_vs_tiled(&cached_dev).map_err(|e| e.to_string())?;
    Ok(Report {
        rows,
        transpose: TransposeCacheStory { naive, tiled },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite ground truth: the whole-corpus invariants hold, SpMV
    /// tells its low-L1 / cross-group-L2 story, and the transpose
    /// naive-vs-tiled L1 gap is visible on the hot line.
    #[test]
    fn corpus_invariants_and_cache_stories() {
        let report = compute().unwrap();
        let violations = report.violations();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(report.rows.len() >= BENCHES.len(), "one row per kernel");

        // SpMV: gather through cols[] scatters the x-vector reads, so L1
        // locality stays poor (well under half) — but the vector is
        // shared across groups, so the shared L2 (replayed in group
        // order) recovers most of those misses. The perfectly-streaming
        // reduction is the contrast: each line is touched exactly once,
        // so its L1 hit rate is essentially zero.
        let spmv = report
            .rows
            .iter()
            .find(|r| r.bench == "spmv")
            .expect("spmv profiled");
        let spmv_l1 = spmv.l1_hit_rate().expect("spmv has cache traffic");
        let spmv_l2 = spmv.l2_hit_rate().expect("spmv misses reach L2");
        let reduction = report
            .rows
            .iter()
            .find(|r| r.bench == "reduction")
            .expect("reduction profiled");
        let red_l1 = reduction
            .l1_hit_rate()
            .expect("reduction has cache traffic");
        assert!(
            red_l1 < 0.01,
            "streaming reduction should run L1-cold, got {red_l1:.3}"
        );
        assert!(
            spmv_l1 < 0.5,
            "spmv's gather should keep L1 locality poor, got {spmv_l1:.3}"
        );
        assert!(
            spmv_l2 > 0.5,
            "cross-group x-vector reuse should dominate spmv's L2, got {spmv_l2:.3}"
        );

        // Transpose: the naive kernel's strided direction re-touches each
        // line once per element, so its hot line shows high L1 locality
        // at a much larger transaction count; the tiled kernel coalesces
        // those accesses away and its hot line runs near-cold.
        let naive = hot_line_l1_rate(&report.transpose.naive);
        let tiled = hot_line_l1_rate(&report.transpose.tiled);
        assert!(
            (naive - tiled).abs() >= 0.05,
            "hot-line L1 hit rate must move between naive ({naive:.3}) and tiled ({tiled:.3})"
        );
        assert!(
            report.transpose.naive.counters.totals.mem_transactions
                > report.transpose.tiled.counters.totals.mem_transactions,
            "naive transpose must issue more transactions than tiled"
        );
    }

    /// The cache-aware memory term prices hits below DRAM: kernels keep
    /// their transaction counts, but cached modeled time never exceeds
    /// the roofline-only time by more than the L2-traffic premium — and
    /// for hit-heavy kernels it drops below it.
    #[test]
    fn cached_modeled_time_is_finite_and_positive() {
        let report = compute().unwrap();
        for r in &report.rows {
            assert!(
                r.cached_modeled_s.is_finite() && r.cached_modeled_s > 0.0,
                "{}/{}: cached modeled time {}",
                r.bench,
                r.kernel,
                r.cached_modeled_s
            );
            assert!(
                r.plain_modeled_s.is_finite() && r.plain_modeled_s > 0.0,
                "{}/{}: plain modeled time {}",
                r.bench,
                r.kernel,
                r.plain_modeled_s
            );
        }
    }
}
