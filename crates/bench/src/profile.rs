//! The `report -- profile` experiment: run the five paper benchmarks —
//! synchronous and asynchronous HPL versions — under [`hpl::profile`] and
//! aggregate the simulated hardware counters per kernel.
//!
//! Everything the table reports derives from counters and the analytic
//! timing model, never from wall clocks or scheduler interleavings, so
//! the printed output is byte-identical across `OCLSIM_THREADS` settings
//! — which is exactly what `ci.sh` asserts. The modeled timeline (which
//! *does* depend on dispatch interleaving for out-of-order queues) goes
//! into the Chrome trace files instead.

use std::collections::BTreeMap;
use std::path::Path;

use oclsim::{
    chrome_trace, roofline, validate_chrome_trace, Device, Event, GroupCounters, LaunchCounters,
    RooflinePoint, TimingBreakdown,
};

/// The benchmarks profiled, in report order.
pub const BENCHES: &[&str] = &["ep", "floyd", "transpose", "spmv", "reduction"];

/// Aggregated counters for one kernel of one benchmark run.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name with HPL's per-process uniquifying counter stripped
    /// (`hpl_floyd_kernel_17` → `hpl_floyd_kernel`), so the table does not
    /// depend on how many kernels the process captured before.
    pub kernel: String,
    /// Launches merged into this row (Floyd launches once per pass).
    pub launches: usize,
    /// Counters summed over all launches (additive merge).
    pub counters: LaunchCounters,
    /// Modeled device seconds summed over all launches.
    pub modeled_seconds: f64,
    /// Mean achieved CU occupancy across launches, percent.
    pub occupancy_pct: f64,
    /// Roofline placement of the aggregate.
    pub roofline: RooflinePoint,
}

/// One (benchmark, sync/async) run's profile.
#[derive(Debug, Clone)]
pub struct ModeProfile {
    /// Benchmark name (see [`BENCHES`]).
    pub bench: &'static str,
    /// `"sync"` (blocking `run`) or `"async"` (`run_async`).
    pub mode: &'static str,
    /// Per-kernel counter rows, sorted by kernel name.
    pub rows: Vec<KernelRow>,
    /// Host→device transfers the run performed.
    pub h2d_count: usize,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host transfers (result read-back).
    pub d2h_count: usize,
    /// The minimal upload count for this benchmark: one per distinct
    /// array its kernels read. Floyd reads one matrix across n passes, so
    /// anything above 1 would be a redundant transfer HPL's coherence
    /// analysis failed to avoid.
    pub expected_h2d: usize,
    /// Every profiled event of the run (kernel launches + transfers), for
    /// the Chrome trace export.
    pub events: Vec<Event>,
    /// The run's hottest source line (most global-memory transactions),
    /// when any kernel issued transactions.
    pub hot_line: Option<HotLineInfo>,
}

impl ModeProfile {
    /// True when HPL performed exactly the minimal number of uploads.
    pub fn transfers_minimal(&self) -> bool {
        self.h2d_count == self.expected_h2d
    }
}

/// The hottest source line of one run: the (kernel, generated line) that
/// issued the most global-memory transactions, with its DSL recording
/// site when codegen provenance knows it. Feeds the `BENCH_*.json`
/// trajectory so hot-line drift is visible across PRs.
#[derive(Debug, Clone)]
pub struct HotLineInfo {
    /// Kernel name (uniquifying suffix stripped).
    pub kernel: String,
    /// 1-based line in the kernel's (generated) OpenCL C source.
    pub line: usize,
    /// DSL recording site (`file.rs:line`) of that generated line, when
    /// the codegen line map has one.
    pub site: Option<String>,
    /// The line's share of the kernel's global-memory transactions.
    pub tx_share: f64,
}

/// Pick the run's hottest line across `rows`. `full_names` maps a row's
/// base kernel name back to one as-recorded name for provenance lookup.
/// Ties keep the first row, and rows are sorted by kernel name, so the
/// choice is deterministic.
fn hot_line_info(rows: &[KernelRow], full_names: &BTreeMap<String, String>) -> Option<HotLineInfo> {
    let mut best: Option<(u64, HotLineInfo)> = None;
    for row in rows {
        let Some((line, c)) = row.counters.hot_line() else {
            continue;
        };
        if best
            .as_ref()
            .is_some_and(|(tx, _)| *tx >= c.mem_transactions)
        {
            continue;
        }
        let site = full_names
            .get(&row.kernel)
            .and_then(|full| hpl::kernel_provenance(full))
            .and_then(|p| p.line_map.site_for_line(line))
            .map(|s| s.to_string());
        best = Some((
            c.mem_transactions,
            HotLineInfo {
                kernel: row.kernel.clone(),
                line,
                site,
                tx_share: c.mem_transactions as f64
                    / row.counters.totals.mem_transactions.max(1) as f64,
            },
        ));
    }
    best.map(|(_, info)| info)
}

/// The minimal host→device upload count: the number of distinct arrays
/// the benchmark's kernels read (spmv reads the CSR triplet plus the
/// vector; the others read one input, and written-only outputs need none).
fn expected_h2d(bench: &str) -> usize {
    match bench {
        "spmv" => 4,
        _ => 1,
    }
}

/// Strip HPL's per-process kernel-name counter suffix (`_<digits>`).
pub(crate) fn base_name(kernel: &str) -> String {
    match kernel.rfind('_') {
        Some(i) if i + 1 < kernel.len() && kernel[i + 1..].chars().all(|c| c.is_ascii_digit()) => {
            kernel[..i].to_string()
        }
        _ => kernel.to_string(),
    }
}

/// Run one benchmark at test scale through its HPL version. Also used by
/// the `metrics` and `bench` experiments, which need the same workloads
/// without a profile scope around them. `warm` selects the `run_warm`
/// entry points, which leave the kernel cache intact so repeated runs
/// reach the cache's steady state; the plain entry points reproduce the
/// paper's cold-cache measurement by clearing it first.
pub(crate) fn run_bench(
    bench: &str,
    sync: bool,
    warm: bool,
    device: &Device,
) -> Result<(), benchsuite::Error> {
    use benchsuite::{ep, floyd, reduction, spmv, transpose};
    match bench {
        "ep" => {
            let cfg = ep::EpConfig::class(ep::EpClass::S);
            match (sync, warm) {
                (true, false) => {
                    ep::hpl_version::run(&cfg, device)?;
                }
                (true, true) => {
                    ep::hpl_version::run_warm(&cfg, device)?;
                }
                (false, false) => {
                    ep::async_version::run(&cfg, device)?;
                }
                (false, true) => {
                    ep::async_version::run_warm(&cfg, device)?;
                }
            }
        }
        "floyd" => {
            let cfg = floyd::FloydConfig::default();
            let graph = floyd::generate_graph(&cfg);
            match (sync, warm) {
                (true, false) => {
                    floyd::hpl_version::run(&cfg, &graph, device)?;
                }
                (true, true) => {
                    floyd::hpl_version::run_warm(&cfg, &graph, device)?;
                }
                (false, false) => {
                    floyd::async_version::run(&cfg, &graph, device)?;
                }
                (false, true) => {
                    floyd::async_version::run_warm(&cfg, &graph, device)?;
                }
            }
        }
        "transpose" => {
            let cfg = transpose::TransposeConfig::default();
            let data = transpose::generate_matrix(&cfg);
            match (sync, warm) {
                (true, false) => {
                    transpose::hpl_version::run(&cfg, &data, device)?;
                }
                (true, true) => {
                    transpose::hpl_version::run_warm(&cfg, &data, device)?;
                }
                (false, false) => {
                    transpose::async_version::run(&cfg, &data, device)?;
                }
                (false, true) => {
                    transpose::async_version::run_warm(&cfg, &data, device)?;
                }
            }
        }
        "spmv" => {
            let cfg = spmv::SpmvConfig::default();
            let p = spmv::generate(&cfg);
            match (sync, warm) {
                (true, false) => {
                    spmv::hpl_version::run(&cfg, &p, device)?;
                }
                (true, true) => {
                    spmv::hpl_version::run_warm(&cfg, &p, device)?;
                }
                (false, false) => {
                    spmv::async_version::run(&cfg, &p, device)?;
                }
                (false, true) => {
                    spmv::async_version::run_warm(&cfg, &p, device)?;
                }
            }
        }
        "reduction" => {
            let cfg = reduction::ReductionConfig::default();
            let data = reduction::generate_input(&cfg);
            match (sync, warm) {
                (true, false) => {
                    reduction::hpl_version::run(&cfg, &data, device)?;
                }
                (true, true) => {
                    reduction::hpl_version::run_warm(&cfg, &data, device)?;
                }
                (false, false) => {
                    reduction::async_version::run(&cfg, &data, device)?;
                }
                (false, true) => {
                    reduction::async_version::run_warm(&cfg, &data, device)?;
                }
            }
        }
        other => panic!("unknown benchmark `{other}`"),
    }
    Ok(())
}

/// Run one benchmark in one mode under a profile scope and aggregate.
pub fn profile_one(
    bench: &'static str,
    sync: bool,
    device: &Device,
) -> Result<ModeProfile, benchsuite::Error> {
    let (result, report) = hpl::profile(|| run_bench(bench, sync, false, device));
    result?;

    // (launches, merged counters, modeled seconds, occupancy sum)
    let mut agg: BTreeMap<String, (usize, LaunchCounters, f64, f64)> = BTreeMap::new();
    // base name -> one as-recorded kernel name, for provenance lookup
    let mut full_names: BTreeMap<String, String> = BTreeMap::new();
    for launch in &report.launches {
        full_names
            .entry(base_name(&launch.kernel))
            .or_insert_with(|| launch.kernel.clone());
        let counters = launch
            .event
            .counters()
            .expect("queues are profiled inside hpl::profile");
        let timing = launch
            .event
            .kernel_timing()
            .expect("kernel events carry modeled timing");
        let entry = agg.entry(base_name(&launch.kernel)).or_insert_with(|| {
            let empty = LaunchCounters {
                totals: GroupCounters::default(),
                lines: BTreeMap::new(),
                num_groups: 0,
                total_cycles: 0,
                cu_occupancy: Vec::new(),
            };
            (0, empty, 0.0, 0.0)
        });
        entry.0 += 1;
        entry.1.totals.merge(&counters.totals);
        for (line, c) in &counters.lines {
            entry.1.lines.entry(*line).or_default().merge(c);
        }
        entry.1.num_groups += counters.num_groups;
        entry.1.total_cycles += counters.total_cycles;
        entry.2 += timing.device_seconds;
        entry.3 += counters.mean_occupancy();
    }
    let rows: Vec<KernelRow> = agg
        .into_iter()
        .map(|(kernel, (launches, counters, seconds, occ_sum))| {
            let timing = TimingBreakdown {
                device_seconds: seconds,
                ..Default::default()
            };
            let point = roofline(&kernel, device.profile(), &timing, &counters);
            KernelRow {
                kernel,
                launches,
                occupancy_pct: 100.0 * occ_sum / launches as f64,
                modeled_seconds: seconds,
                roofline: point,
                counters,
            }
        })
        .collect();

    let mut events: Vec<Event> = report.launches.iter().map(|l| l.event.clone()).collect();
    events.extend(report.transfers.iter().filter_map(|t| t.event.clone()));

    let hot_line = hot_line_info(&rows, &full_names);
    Ok(ModeProfile {
        bench,
        mode: if sync { "sync" } else { "async" },
        rows,
        h2d_count: report.h2d_count(),
        h2d_bytes: report.h2d_bytes(),
        d2h_count: report.d2h_count(),
        expected_h2d: expected_h2d(bench),
        events,
        hot_line,
    })
}

/// Profile all five benchmarks, sync then async, on `device`.
pub fn compute(device: &Device) -> Result<Vec<ModeProfile>, benchsuite::Error> {
    let mut out = Vec::with_capacity(2 * BENCHES.len());
    for &bench in BENCHES {
        for sync in [true, false] {
            out.push(profile_one(bench, sync, device)?);
        }
    }
    Ok(out)
}

/// Write one Chrome `trace_event` JSON per benchmark (sync + async events
/// combined) into `dir` as `trace-<bench>.json`, schema-validating each.
/// Returns `(path, event count)` per file.
pub fn write_traces(
    device: &Device,
    profiles: &[ModeProfile],
    dir: &Path,
) -> std::io::Result<Vec<(String, usize)>> {
    let mut written = Vec::new();
    for &bench in BENCHES {
        let events: Vec<Event> = profiles
            .iter()
            .filter(|p| p.bench == bench)
            .flat_map(|p| p.events.iter().cloned())
            .collect();
        let json = chrome_trace(device, &events);
        validate_chrome_trace(&json)
            .map_err(|e| std::io::Error::other(format!("invalid trace for {bench}: {e}")))?;
        let path = dir.join(format!("trace-{bench}.json"));
        std::fs::write(&path, &json)?;
        written.push((path.display().to_string(), events.len()));
    }
    Ok(written)
}
