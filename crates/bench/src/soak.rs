//! The `report -- soak` experiment: a multi-tenant soak of the kernel
//! service.
//!
//! N concurrent tenants (worker threads, each inside its own
//! `hpl::session` tenant scope against one shared
//! [`oclsim::serve::Service`]) iterate over the five paper benchmarks as
//! mixed workloads. A warm-up tenant compiles every kernel first, so the
//! soak phase exercises the property the service exists for: identical
//! kernels from different tenants resolve to **one** resident binary —
//! every tenant's cache misses stay at zero and the misses are all
//! attributed to the warm-up tenant, regardless of how the tenant threads
//! interleave. A deliberately under-quota'd "greedy" tenant then runs
//! until admission control rejects it, and a partitioned launch splits
//! one NDRange across the service's heterogeneous devices with all three
//! EngineCL-style strategies, bit-identical to the single-device
//! reference.
//!
//! Wall-clock figures (p50/p99 workload latency, launches/sec) feed the
//! `BENCH_*.json` trajectory as additive, ungated trend fields. A
//! per-tenant latency breakdown (p50/p99 and launches/sec per tenant) is
//! derived from the per-request causal traces the serve layer pushes
//! into the completed-trace sink — so every figure is attributable to
//! individual trace ids, not just to aggregate histograms. The
//! canonical metrics snapshot — which excludes every wall-clock metric by
//! construction — is written to `target/soak-metrics.txt`; `ci.sh` diffs
//! it across `OCLSIM_THREADS=1/4`, so the service's counter totals must
//! be a pure function of the workload, never of scheduling.

use std::sync::Arc;
use std::time::Instant;

use oclsim::serve::{
    run_partitioned, run_reference, JobArg, LaunchJob, PartitionStrategy, PartitionTarget, Service,
    ServiceConfig, TenantQuota,
};
use oclsim::telemetry::TenantStats;
use oclsim::Value;

use crate::profile::{run_bench, BENCHES};

/// Soak dimensions.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Concurrent tenant threads.
    pub tenants: usize,
    /// Passes each tenant makes over the five benchmarks.
    pub iterations: usize,
    /// Launch quota of the greedy tenant (it runs until rejected).
    pub greedy_launches: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            tenants: 4,
            iterations: 2,
            greedy_launches: 5,
        }
    }
}

/// One tenant's row of the soak report.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant name.
    pub tenant: String,
    /// Its counters from the metrics registry.
    pub stats: TenantStats,
}

/// One tenant's latency breakdown, derived from the per-request traces
/// the serve layer pushes into the completed-trace sink
/// ([`oclsim::obs::drain_request_traces`]) — the causal span trees, not
/// the aggregate histograms, so every figure here is attributable to
/// individual trace ids.
#[derive(Debug, Clone)]
pub struct TenantLatencyRow {
    /// Tenant name.
    pub tenant: String,
    /// Completed requests the tenant submitted (traces drained).
    pub requests: usize,
    /// How many of them ended in an error (quota rejections included).
    pub failed: usize,
    /// Median request wall latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request wall latency, milliseconds.
    pub p99_ms: f64,
    /// Requests per second of the tenant's own active wall time
    /// (requests / sum of its request walls).
    pub per_sec: f64,
}

/// One strategy's partitioned-launch outcome in the demo section.
#[derive(Debug, Clone)]
pub struct PartitionRow {
    /// Strategy label.
    pub strategy: String,
    /// Modeled makespan of the split launch.
    pub makespan_seconds: f64,
    /// Chunks executed per device, in device order.
    pub chunks_per_device: Vec<usize>,
    /// Work-groups executed per device, in device order.
    pub groups_per_device: Vec<usize>,
    /// Outputs byte-identical to the single-device reference.
    pub bit_identical: bool,
}

/// Everything `report -- soak` prints and gates on.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The configuration that ran.
    pub config: SoakConfig,
    /// Wall seconds of the concurrent tenant phase.
    pub wall_seconds: f64,
    /// Launches the service admitted in total (all tenants).
    pub total_launches: u64,
    /// Admitted launches per wall second of the tenant phase.
    pub launches_per_sec: f64,
    /// Median workload latency over all tenant iterations, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile workload latency, milliseconds.
    pub p99_ms: f64,
    /// Per-tenant counters, sorted by tenant name.
    pub tenant_rows: Vec<TenantRow>,
    /// Per-tenant latency breakdown from the per-request traces, sorted
    /// by tenant name. Wall-clock figures — trend data, never gated.
    pub latency_rows: Vec<TenantLatencyRow>,
    /// Admission rejections the greedy tenant provoked.
    pub greedy_rejections: u64,
    /// Redundant host→device uploads across the whole soak (must be 0).
    pub redundant_uploads: u64,
    /// Resident binaries in the shared cache at the end.
    pub resident_binaries: usize,
    /// The partition demo rows (Static / Dynamic / HGuided).
    pub partition: Vec<PartitionRow>,
    /// Reference single-device makespan the partition rows compare to.
    pub reference_seconds: f64,
    /// The canonical metrics snapshot (wall-clock metrics excluded).
    pub metrics_snapshot: String,
}

impl SoakReport {
    /// The soak's invariants: every non-warm-up tenant was served without
    /// a single compile (zero cross-tenant cache misses), no coherence
    /// redundancy, the greedy tenant was rejected, and every partitioned
    /// launch was bit-identical and no slower than the reference.
    pub fn healthy(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for row in &self.tenant_rows {
            if row.tenant != WARMUP_TENANT && row.stats.cache_misses != 0 {
                failures.push(format!(
                    "tenant `{}` compiled {} kernel(s) that the warm-up should have made \
                     shared cache hits",
                    row.tenant, row.stats.cache_misses
                ));
            }
        }
        if self.redundant_uploads != 0 {
            failures.push(format!(
                "{} redundant host→device upload(s) — the coherence layer re-uploaded a \
                 valid device copy",
                self.redundant_uploads
            ));
        }
        if self.greedy_rejections == 0 {
            failures.push("the greedy tenant was never rejected by admission control".into());
        }
        for p in &self.partition {
            if !p.bit_identical {
                failures.push(format!(
                    "{}: partitioned outputs differ from the single-device reference",
                    p.strategy
                ));
            }
        }
        // On this heterogeneous pair the Quadro contributes ~5% of the
        // throughput, so only the weight-proportional static split is
        // guaranteed to amortize the per-chunk launch overhead; the
        // chunked strategies are reported as trend data.
        if !self
            .partition
            .iter()
            .any(|p| p.makespan_seconds < self.reference_seconds)
        {
            failures.push(format!(
                "no partition strategy beat the single-device reference ({:.9} s)",
                self.reference_seconds
            ));
        }
        failures
    }
}

const WARMUP_TENANT: &str = "_warmup";

/// The partition demo kernel: enough arithmetic per item that the modeled
/// work dwarfs the fixed per-launch overhead, so splitting pays off.
const PARTITION_SRC: &str = r#"
__kernel void saxpy_heavy(__global float* y, __global const float* x, float a) {
    size_t i = get_global_id(0);
    float acc = y[i];
    for (int k = 0; k < 256; k++) {
        acc = acc * 0.5f + a * x[i] * 0.25f;
    }
    y[i] = acc;
}
"#;

fn partition_job(n: usize) -> LaunchJob {
    let x: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let y: Vec<u8> = (0..n)
        .flat_map(|i| ((i % 9) as f32).to_le_bytes())
        .collect();
    LaunchJob {
        source: PARTITION_SRC.to_string(),
        kernel: "saxpy_heavy".to_string(),
        build_options: String::new(),
        args: vec![
            JobArg::InOut(y),
            JobArg::In(x),
            JobArg::Scalar(Value::F32(2.0)),
        ],
        global: vec![n],
        local: Some(vec![16]),
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Run the soak. Self-contained: clears the HPL kernel cache and resets
/// the metrics registry first, so the snapshot reflects this workload
/// only.
pub fn compute(device: &oclsim::Device, config: &SoakConfig) -> Result<SoakReport, String> {
    hpl::clear_kernel_cache();
    hpl::telemetry::reset_metrics();
    // start from an empty completed-trace sink so the per-tenant latency
    // breakdown below covers this soak's requests only
    drop(oclsim::obs::drain_request_traces());
    let service = Service::new(ServiceConfig::default()).map_err(|e| e.to_string())?;

    // Warm-up tenant: every capture, codegen and backend compile of the
    // benchmark kernels lands here, so the soak tenants below can only hit
    // the shared cache — no matter how their threads interleave.
    {
        let session = Arc::new(service.session(WARMUP_TENANT, TenantQuota::unlimited()));
        let _scope = hpl::enter_tenant(session);
        for &bench in BENCHES {
            run_bench(bench, true, true, device).map_err(|e| format!("warm-up {bench}: {e}"))?;
        }
    }

    // Concurrent tenant phase: N threads, each its own tenant, mixed
    // benchmark workloads.
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..config.tenants {
        let service = service.clone();
        let device = device.clone();
        let iterations = config.iterations;
        handles.push(std::thread::spawn(move || {
            let name = format!("tenant{t}");
            let session = Arc::new(service.session(&name, TenantQuota::unlimited()));
            let _scope = hpl::enter_tenant(session);
            let mut latencies_ms = Vec::with_capacity(iterations * BENCHES.len());
            for _ in 0..iterations {
                for &bench in BENCHES {
                    let t0 = Instant::now();
                    run_bench(bench, true, true, &device)
                        .map_err(|e| format!("{name} {bench}: {e}"))?;
                    latencies_ms.push(t0.elapsed().as_secs_f64() * 1.0e3);
                }
            }
            Ok::<Vec<f64>, String>(latencies_ms)
        }));
    }
    let mut latencies_ms = Vec::new();
    for h in handles {
        latencies_ms.extend(
            h.join()
                .map_err(|_| "tenant thread panicked".to_string())??,
        );
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(f64::total_cmp);

    // Greedy tenant: a launch quota it is guaranteed to blow through; the
    // rejection must surface as an admission error chained to the quota.
    let mut greedy_rejections = 0u64;
    {
        let session = Arc::new(service.session(
            "greedy",
            TenantQuota {
                max_launches: Some(config.greedy_launches),
                ..TenantQuota::default()
            },
        ));
        let _scope = hpl::enter_tenant(session);
        for _ in 0..=config.greedy_launches {
            match run_bench("floyd", true, true, device) {
                Ok(()) => {}
                Err(benchsuite::Error::Hpl(hpl::Error::Backend(
                    oclsim::Error::AdmissionRejected { .. },
                ))) => {
                    greedy_rejections += 1;
                    break;
                }
                Err(other) => return Err(format!("greedy tenant failed unexpectedly: {other}")),
            }
        }
    }

    // Partition demo: one NDRange split across the service's
    // heterogeneous devices (Tesla + Quadro by default), every strategy
    // bit-identical to the single-device reference.
    let job = partition_job(16384);
    let targets: Vec<PartitionTarget> =
        service.partition_targets(&job).map_err(|e| e.to_string())?;
    let reference = run_reference(&targets[0], &job).map_err(|e| e.to_string())?;
    let ndev = targets.len();
    let mut partition = Vec::new();
    for (label, strategy) in [
        ("Static", PartitionStrategy::Static),
        (
            "Dynamic(128)",
            PartitionStrategy::Dynamic { chunk_groups: 128 },
        ),
        (
            "HGuided(64)",
            PartitionStrategy::HGuided {
                min_chunk_groups: 64,
            },
        ),
    ] {
        let outcome = run_partitioned(&targets, &job, strategy).map_err(|e| e.to_string())?;
        let mut chunks_per_device = vec![0usize; ndev];
        let mut groups_per_device = vec![0usize; ndev];
        for c in &outcome.chunks {
            chunks_per_device[c.device] += 1;
            groups_per_device[c.device] += c.end - c.start;
        }
        partition.push(PartitionRow {
            strategy: label.to_string(),
            makespan_seconds: outcome.makespan_seconds,
            chunks_per_device,
            groups_per_device,
            bit_identical: outcome.outputs == reference.outputs,
        });
    }

    // Per-tenant latency breakdown from the finished request traces. The
    // sink is process-global, so keep only this soak's tenants (other
    // experiments may complete requests of their own concurrently).
    let mut by_tenant: std::collections::BTreeMap<String, Vec<&oclsim::RequestTrace>> =
        std::collections::BTreeMap::new();
    let traces = oclsim::obs::drain_request_traces();
    for t in &traces {
        let ours =
            t.tenant == WARMUP_TENANT || t.tenant == "greedy" || t.tenant.starts_with("tenant");
        if ours {
            by_tenant.entry(t.tenant.clone()).or_default().push(t);
        }
    }
    let latency_rows: Vec<TenantLatencyRow> = by_tenant
        .into_iter()
        .map(|(tenant, traces)| {
            let mut walls_ms: Vec<f64> = traces.iter().map(|t| t.wall_seconds * 1.0e3).collect();
            walls_ms.sort_by(f64::total_cmp);
            let active_s: f64 = traces.iter().map(|t| t.wall_seconds).sum();
            TenantLatencyRow {
                tenant,
                requests: traces.len(),
                failed: traces.iter().filter(|t| t.failed).count(),
                p50_ms: percentile(&walls_ms, 0.50),
                p99_ms: percentile(&walls_ms, 0.99),
                per_sec: if active_s > 0.0 {
                    traces.len() as f64 / active_s
                } else {
                    0.0
                },
            }
        })
        .collect();

    let m = oclsim::telemetry::metrics();
    let tenant_rows: Vec<TenantRow> = m
        .tenant_stats()
        .into_iter()
        .map(|(tenant, stats)| TenantRow { tenant, stats })
        .collect();
    // throughput over the concurrent phase only: the warm-up and greedy
    // tenants run outside the measured wall-clock window
    let soak_launches: u64 = tenant_rows
        .iter()
        .filter(|r| r.tenant.starts_with("tenant"))
        .map(|r| r.stats.launches)
        .sum();
    Ok(SoakReport {
        config: config.clone(),
        wall_seconds,
        total_launches: m.serve_launches.get(),
        launches_per_sec: if wall_seconds > 0.0 {
            soak_launches as f64 / wall_seconds
        } else {
            0.0
        },
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        tenant_rows,
        latency_rows,
        greedy_rejections,
        redundant_uploads: m.redundant_uploads.get(),
        resident_binaries: service.cache().len(),
        partition,
        reference_seconds: reference.makespan_seconds,
        metrics_snapshot: hpl::telemetry::metrics_text(true),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_is_healthy_and_deterministic_in_counters() {
        let _g = crate::OBS_SINK_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let cfg = SoakConfig {
            tenants: 4,
            iterations: 1,
            greedy_launches: 3,
        };
        let report = compute(&crate::tesla(), &cfg).expect("soak runs");
        let failures = report.healthy();
        assert!(failures.is_empty(), "{failures:?}");
        assert!(report.total_launches > 0);
        assert_eq!(
            report.tenant_rows.len(),
            cfg.tenants + 2,
            "warm-up + N tenants + greedy"
        );
        // identical kernels from different tenants share one entry: every
        // soak tenant's miss count is zero and its hits are positive
        for row in &report.tenant_rows {
            if row.tenant.starts_with("tenant") {
                assert_eq!(row.stats.cache_misses, 0, "{}", row.tenant);
                assert!(row.stats.cache_hits > 0, "{}", row.tenant);
                assert!(row.stats.launches > 0, "{}", row.tenant);
            }
        }
        assert!(report.resident_binaries > 0);
        // the per-request traces cover every tenant, and only the greedy
        // tenant's rejected request is marked failed
        for t in 0..cfg.tenants {
            let name = format!("tenant{t}");
            let row = report
                .latency_rows
                .iter()
                .find(|r| r.tenant == name)
                .unwrap_or_else(|| panic!("no latency row for {name}"));
            assert!(row.requests > 0, "{name}");
            assert_eq!(row.failed, 0, "{name}");
            assert!(row.p50_ms <= row.p99_ms, "{name}");
            assert!(row.per_sec > 0.0, "{name}");
        }
        let greedy = report
            .latency_rows
            .iter()
            .find(|r| r.tenant == "greedy")
            .expect("greedy tenant has a latency row");
        assert_eq!(greedy.failed, 1, "exactly the rejected request fails");
        // the snapshot carries the serve section
        assert!(
            report
                .metrics_snapshot
                .contains("oclsim_serve_launches_total"),
            "{}",
            report.metrics_snapshot
        );
        assert!(report
            .metrics_snapshot
            .contains("oclsim_serve_tenant_launches_total{tenant=\"tenant0\"}"));
    }

    #[test]
    fn percentiles_pick_sorted_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&sorted, 0.50), 3.0);
        assert_eq!(percentile(&sorted, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
