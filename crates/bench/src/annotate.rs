//! The `report -- annotate` experiment: perf-annotate-style source-level
//! profiling of the benchmark corpus.
//!
//! For every paper benchmark this runs the HPL version under
//! [`hpl::profile`] and annotates the *generated* OpenCL C with the
//! per-line hardware counters the backend collected, mapping each
//! generated line back to the DSL recording site (`file.rs:line`) that
//! produced it through the codegen line map; the handwritten OpenCL
//! version is launched through a profiled queue and annotated against its
//! own kernel source. Every listing is derived from deterministic
//! counters and rendered in line order, so the whole report is
//! byte-identical across `OCLSIM_THREADS` settings — `ci.sh` diffs the
//! output of two runs. The per-line rows also go to
//! `target/annotate.jsonl` for machine consumption, and the per-line
//! sums are checked against the launch totals (the invariant the
//! interpreter maintains by construction).

use std::collections::BTreeMap;
use std::path::Path;

use oclsim::prof::annotate::{annotate, jsonl, listing, AnnotatedLine};
use oclsim::{CommandQueue, Context, Device, GroupCounters, LaunchCounters, MemAccess, Program};

use crate::profile::{base_name, run_bench, BENCHES};

/// One kernel's annotated source-level profile.
#[derive(Debug, Clone)]
pub struct KernelAnnotation {
    /// Benchmark name (see [`BENCHES`]).
    pub bench: &'static str,
    /// `"generated"` (HPL codegen, lines carry DSL recording sites) or
    /// `"handwritten"` (kernels/*.cl, lines are the programmer's own).
    pub variant: &'static str,
    /// Kernel name (HPL's uniquifying suffix stripped).
    pub kernel: String,
    /// Launches merged into this annotation (Floyd launches per pass).
    pub launches: usize,
    /// Counters merged over all launches, per-line map included.
    pub counters: LaunchCounters,
    /// The annotated lines, in line order.
    pub lines: Vec<AnnotatedLine>,
}

impl KernelAnnotation {
    /// The per-line invariant: line counters must sum exactly to the
    /// launch totals — the interpreter routes every counter delta
    /// through both maps, so any mismatch is an attribution bug.
    pub fn sums_match(&self) -> bool {
        self.counters.lines_sum() == self.counters.totals
    }

    /// `bench/variant/kernel`, the qualified name used in listings and
    /// the JSONL export.
    pub fn qualified_name(&self) -> String {
        format!("{}/{}/{}", self.bench, self.variant, self.kernel)
    }

    /// Render the perf-annotate listing for this kernel.
    pub fn render(&self) -> String {
        listing(&self.qualified_name(), &self.lines)
    }
}

/// One row of the cross-benchmark hot-line table.
#[derive(Debug, Clone)]
pub struct HotLineRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// `"generated"` or `"handwritten"`.
    pub variant: &'static str,
    /// Kernel name.
    pub kernel: String,
    /// 1-based hottest line of the kernel source.
    pub line: usize,
    /// That line's share of the kernel's global-memory transactions.
    pub tx_share: f64,
    /// Where the line came from: the DSL recording site for generated
    /// kernels, the source text itself for handwritten ones.
    pub location: String,
}

/// The hottest line of every annotated kernel, in corpus order.
pub fn hot_lines(rows: &[KernelAnnotation]) -> Vec<HotLineRow> {
    rows.iter()
        .filter_map(|r| {
            let (line, hot) = r.counters.hot_line()?;
            let annotated = r.lines.iter().find(|a| a.line == line)?;
            Some(HotLineRow {
                bench: r.bench,
                variant: r.variant,
                kernel: r.kernel.clone(),
                line,
                tx_share: hot.mem_transactions as f64
                    / r.counters.totals.mem_transactions.max(1) as f64,
                location: annotated
                    .site
                    .clone()
                    .unwrap_or_else(|| annotated.text.trim().to_string()),
            })
        })
        .collect()
}

/// Write every annotated line of every kernel as JSONL into
/// `dir/annotate.jsonl`; returns the written path.
pub fn export_jsonl(rows: &[KernelAnnotation], dir: &Path) -> std::io::Result<String> {
    let mut out = String::new();
    for r in rows {
        out.push_str(&jsonl(&r.qualified_name(), &r.lines));
    }
    let path = dir.join("annotate.jsonl");
    std::fs::write(&path, &out)?;
    Ok(path.display().to_string())
}

/// An empty counter accumulator (mirrors the aggregation in
/// [`crate::profile::profile_one`]).
fn empty_counters() -> LaunchCounters {
    LaunchCounters {
        totals: GroupCounters::default(),
        lines: BTreeMap::new(),
        num_groups: 0,
        total_cycles: 0,
        cu_occupancy: Vec::new(),
    }
}

/// Additive merge of one launch's counters into an accumulator, per-line
/// map included.
fn merge_counters(dst: &mut LaunchCounters, src: &LaunchCounters) {
    dst.totals.merge(&src.totals);
    for (line, c) in &src.lines {
        dst.lines.entry(*line).or_default().merge(c);
    }
    dst.num_groups += src.num_groups;
    dst.total_cycles += src.total_cycles;
}

/// Annotate the HPL-generated kernels of one benchmark: run the sync
/// version under [`hpl::profile`], merge counters per kernel, and join
/// them with the generated source and line map from the codegen cache.
fn generated(bench: &'static str, device: &Device) -> Result<Vec<KernelAnnotation>, String> {
    let (result, report) = hpl::profile(|| run_bench(bench, true, false, device));
    result.map_err(|e| e.to_string())?;

    struct Agg {
        full_name: String,
        launches: usize,
        counters: LaunchCounters,
    }
    let mut agg: BTreeMap<String, Agg> = BTreeMap::new();
    for launch in &report.launches {
        let counters = launch
            .event
            .counters()
            .ok_or("queues are profiled inside hpl::profile")?;
        let a = agg.entry(base_name(&launch.kernel)).or_insert_with(|| Agg {
            full_name: launch.kernel.clone(),
            launches: 0,
            counters: empty_counters(),
        });
        a.launches += 1;
        merge_counters(&mut a.counters, &counters);
    }

    agg.into_iter()
        .map(|(kernel, a)| {
            let prov = hpl::kernel_provenance(&a.full_name)
                .ok_or_else(|| format!("no codegen provenance for kernel `{}`", a.full_name))?;
            let lines = annotate(&prov.source, &a.counters, |l| {
                prov.line_map.site_for_line(l).map(|s| s.to_string())
            });
            Ok(KernelAnnotation {
                bench,
                variant: "generated",
                kernel,
                launches: a.launches,
                counters: a.counters,
                lines,
            })
        })
        .collect()
}

/// A context with a profiled in-order queue on `device`, for launching
/// the handwritten kernels with counter collection on.
struct Rig {
    ctx: Context,
    queue: CommandQueue,
}

fn rig(device: &Device) -> Result<Rig, String> {
    let ctx = Context::new(std::slice::from_ref(device)).map_err(|e| e.to_string())?;
    let queue = CommandQueue::new(&ctx, device).map_err(|e| e.to_string())?;
    queue.set_profiling(true);
    Ok(Rig { ctx, queue })
}

fn build_kernel(r: &Rig, source: &str, name: &str) -> Result<oclsim::Kernel, String> {
    let program = Program::from_source(&r.ctx, source);
    program
        .build(hpl::opt_level().flag())
        .map_err(|e| format!("{name} failed to build: {e}\n{}", program.build_log()))?;
    program.kernel(name).map_err(|e| e.to_string())
}

/// Total executed instructions of one benchmark's handwritten kernels,
/// compiled at the current process-global opt level and profiled at the
/// same tiny scale the `annotate` experiment uses. The `passes` report
/// uses the O0→O2 delta of this count as its optimization evidence — the
/// roofline timing model hides ALU savings on memory-bound kernels, but
/// the instruction counter does not.
pub fn handwritten_instructions(bench: &str, device: &Device) -> Result<u64, String> {
    let (_, _, counters, _) = run_handwritten(bench, device)?;
    Ok(counters.totals.instr.total())
}

/// Launch one benchmark's handwritten kernel through a profiled queue at
/// the same test scale the `profile` experiment uses, and merge the
/// per-launch counters. Returns (kernel name, source, counters, launches).
fn run_handwritten(
    bench: &str,
    device: &Device,
) -> Result<(&'static str, &'static str, LaunchCounters, usize), String> {
    use benchsuite::{ep, floyd, reduction, spmv, transpose};
    let r = rig(device)?;
    let err = |e: oclsim::Error| e.to_string();
    match bench {
        "ep" => {
            let cfg = ep::EpConfig::class(ep::EpClass::S);
            let threads = cfg.threads();
            let seeds = ep::thread_seeds(&cfg);
            let source = ep::opencl_version::SOURCE;
            let k = build_kernel(&r, source, "ep")?;
            let seeds_buf = r
                .ctx
                .create_buffer(8 * threads, MemAccess::ReadOnly)
                .map_err(err)?;
            let sx_buf = r
                .ctx
                .create_buffer(8 * threads, MemAccess::ReadWrite)
                .map_err(err)?;
            let sy_buf = r
                .ctx
                .create_buffer(8 * threads, MemAccess::ReadWrite)
                .map_err(err)?;
            let q_buf = r
                .ctx
                .create_buffer(4 * threads * 10, MemAccess::ReadWrite)
                .map_err(err)?;
            r.queue.enqueue_write(&seeds_buf, 0, &seeds).map_err(err)?;
            k.set_arg_buffer(0, &seeds_buf).map_err(err)?;
            k.set_arg_buffer(1, &sx_buf).map_err(err)?;
            k.set_arg_buffer(2, &sy_buf).map_err(err)?;
            k.set_arg_buffer(3, &q_buf).map_err(err)?;
            k.set_arg_scalar(4, cfg.pairs_per_thread as i32)
                .map_err(err)?;
            let ev = r
                .queue
                .enqueue_ndrange(&k, &[threads], Some(&[64.min(threads)]))
                .map_err(err)?;
            let c = ev.counters().ok_or("queue is profiled")?;
            Ok(("ep", source, c, 1))
        }
        "floyd" => {
            let cfg = floyd::FloydConfig::default();
            let n = cfg.nodes;
            let graph = floyd::generate_graph(&cfg);
            let source = floyd::opencl_version::SOURCE;
            let k = build_kernel(&r, source, "floyd_pass")?;
            let dist_buf = r
                .ctx
                .create_buffer(4 * n * n, MemAccess::ReadWrite)
                .map_err(err)?;
            r.queue.enqueue_write(&dist_buf, 0, &graph).map_err(err)?;
            k.set_arg_buffer(0, &dist_buf).map_err(err)?;
            k.set_arg_scalar(1, n as i32).map_err(err)?;
            let tile = 16.min(n);
            let mut counters = empty_counters();
            for pass in 0..n {
                k.set_arg_scalar(2, pass as i32).map_err(err)?;
                let ev = r
                    .queue
                    .enqueue_ndrange(&k, &[n, n], Some(&[tile, tile]))
                    .map_err(err)?;
                merge_counters(&mut counters, &ev.counters().ok_or("queue is profiled")?);
            }
            Ok(("floyd_pass", source, counters, n))
        }
        "transpose" => {
            let cfg = transpose::TransposeConfig::default();
            let (h, w) = (cfg.rows, cfg.cols);
            let data = transpose::generate_matrix(&cfg);
            let source = transpose::opencl_version::SOURCE;
            let k = build_kernel(&r, source, "transpose")?;
            let src_buf = r
                .ctx
                .create_buffer(4 * h * w, MemAccess::ReadOnly)
                .map_err(err)?;
            let dst_buf = r
                .ctx
                .create_buffer(4 * h * w, MemAccess::ReadWrite)
                .map_err(err)?;
            r.queue.enqueue_write(&src_buf, 0, &data).map_err(err)?;
            k.set_arg_buffer(0, &dst_buf).map_err(err)?;
            k.set_arg_buffer(1, &src_buf).map_err(err)?;
            k.set_arg_scalar(2, h as i32).map_err(err)?;
            k.set_arg_scalar(3, w as i32).map_err(err)?;
            let ev = r
                .queue
                .enqueue_ndrange(&k, &[w, h], Some(&[transpose::BLOCK, transpose::BLOCK]))
                .map_err(err)?;
            let c = ev.counters().ok_or("queue is profiled")?;
            Ok(("transpose", source, c, 1))
        }
        "spmv" => {
            let cfg = spmv::SpmvConfig::default();
            let n = cfg.n;
            let p = spmv::generate(&cfg);
            let source = spmv::opencl_version::SOURCE;
            let k = build_kernel(&r, source, "spmv")?;
            let val_buf = r
                .ctx
                .create_buffer(4 * p.val.len(), MemAccess::ReadOnly)
                .map_err(err)?;
            let vec_buf = r
                .ctx
                .create_buffer(4 * n, MemAccess::ReadOnly)
                .map_err(err)?;
            let cols_buf = r
                .ctx
                .create_buffer(4 * p.cols.len(), MemAccess::ReadOnly)
                .map_err(err)?;
            let rowptr_buf = r
                .ctx
                .create_buffer(4 * (n + 1), MemAccess::ReadOnly)
                .map_err(err)?;
            let out_buf = r
                .ctx
                .create_buffer(4 * n, MemAccess::ReadWrite)
                .map_err(err)?;
            r.queue.enqueue_write(&val_buf, 0, &p.val).map_err(err)?;
            r.queue.enqueue_write(&vec_buf, 0, &p.vec).map_err(err)?;
            r.queue.enqueue_write(&cols_buf, 0, &p.cols).map_err(err)?;
            r.queue
                .enqueue_write(&rowptr_buf, 0, &p.rowptr)
                .map_err(err)?;
            k.set_arg_buffer(0, &val_buf).map_err(err)?;
            k.set_arg_buffer(1, &vec_buf).map_err(err)?;
            k.set_arg_buffer(2, &cols_buf).map_err(err)?;
            k.set_arg_buffer(3, &rowptr_buf).map_err(err)?;
            k.set_arg_buffer(4, &out_buf).map_err(err)?;
            let ev = r
                .queue
                .enqueue_ndrange(&k, &[n * spmv::M], Some(&[spmv::M]))
                .map_err(err)?;
            let c = ev.counters().ok_or("queue is profiled")?;
            Ok(("spmv", source, c, 1))
        }
        "reduction" => {
            let cfg = reduction::ReductionConfig::default();
            let n = cfg.n;
            let groups = n / reduction::CHUNK;
            let data = reduction::generate_input(&cfg);
            let source = reduction::opencl_version::SOURCE;
            let k = build_kernel(&r, source, "reduce_sum")?;
            let in_buf = r
                .ctx
                .create_buffer(4 * n, MemAccess::ReadOnly)
                .map_err(err)?;
            let partials_buf = r
                .ctx
                .create_buffer(4 * groups, MemAccess::ReadWrite)
                .map_err(err)?;
            r.queue.enqueue_write(&in_buf, 0, &data).map_err(err)?;
            k.set_arg_buffer(0, &in_buf).map_err(err)?;
            k.set_arg_buffer(1, &partials_buf).map_err(err)?;
            let ev = r
                .queue
                .enqueue_ndrange(&k, &[n / reduction::PER_THREAD], Some(&[reduction::GROUP]))
                .map_err(err)?;
            let c = ev.counters().ok_or("queue is profiled")?;
            Ok(("reduce_sum", source, c, 1))
        }
        other => Err(format!("unknown benchmark `{other}`")),
    }
}

/// Annotate one benchmark's handwritten kernel against its own source.
fn handwritten(bench: &'static str, device: &Device) -> Result<KernelAnnotation, String> {
    let (kernel, source, counters, launches) = run_handwritten(bench, device)?;
    let lines = annotate(source, &counters, |_| None);
    Ok(KernelAnnotation {
        bench,
        variant: "handwritten",
        kernel: kernel.to_string(),
        launches,
        counters,
        lines,
    })
}

/// Annotate the whole corpus: for each of the five benchmarks, the
/// HPL-generated kernels (sites attached) then the handwritten kernel.
pub fn compute(device: &Device) -> Result<Vec<KernelAnnotation>, String> {
    let mut rows = Vec::new();
    for &bench in BENCHES {
        rows.extend(generated(bench, device)?);
        rows.push(handwritten(bench, device)?);
    }
    Ok(rows)
}

/// The coalescing ablation, annotated: naive transpose (Figure 10(b),
/// uncoalesced writes) vs the benchmarked tiled transpose, both HPL
/// kernels at 256×256. The hot line moves from the global store that
/// scatters columns to the strided global read that feeds the local
/// tile — the listings in README.md come from here.
pub fn transpose_naive_vs_tiled(
    device: &Device,
) -> Result<(KernelAnnotation, KernelAnnotation), String> {
    use benchsuite::transpose::{generate_matrix, hpl_version, TransposeConfig};
    use hpl::eval;
    use hpl::prelude::*;

    let cfg = TransposeConfig {
        rows: 256,
        cols: 256,
    };
    let data = generate_matrix(&cfg);

    fn naive_transpose(dst: &Array<f32, 2>, src: &Array<f32, 2>) {
        dst.at((idx(), idy())).assign(src.at((idy(), idx())));
    }
    let src = Array::<f32, 2>::from_vec([cfg.rows, cfg.cols], data.clone());
    let dst = Array::<f32, 2>::new([cfg.cols, cfg.rows]);
    let (result, report) = hpl::profile(|| {
        eval(naive_transpose)
            .device(device)
            .global(&[cfg.cols, cfg.rows])
            .local(&[16, 16])
            .run((&dst, &src))
    });
    result.map_err(|e| e.to_string())?;
    let naive = annotate_single_launch("transpose", "naive", &report)?;

    let (result, report) = hpl::profile(|| hpl_version::run(&cfg, &data, device));
    result.map_err(|e| e.to_string())?;
    let tiled = annotate_single_launch("transpose", "tiled", &report)?;
    Ok((naive, tiled))
}

/// Annotate the single kernel launch of a profile report (helper for the
/// ablation listings).
fn annotate_single_launch(
    bench: &'static str,
    variant: &'static str,
    report: &hpl::ProfileReport,
) -> Result<KernelAnnotation, String> {
    let launch = report
        .launches
        .first()
        .ok_or("profile scope recorded no launch")?;
    let counters = launch
        .event
        .counters()
        .ok_or("queues are profiled inside hpl::profile")?;
    let prov = hpl::kernel_provenance(&launch.kernel)
        .ok_or_else(|| format!("no codegen provenance for kernel `{}`", launch.kernel))?;
    let lines = annotate(&prov.source, &counters, |l| {
        prov.line_map.site_for_line(l).map(|s| s.to_string())
    });
    Ok(KernelAnnotation {
        bench,
        variant,
        kernel: base_name(&launch.kernel),
        launches: 1,
        counters,
        lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tesla;

    #[test]
    fn transpose_rows_attribute_and_sum_exactly() {
        let device = tesla();
        let rows = generated("transpose", &device).unwrap();
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.sums_match(), "per-line sums drifted for {}", r.kernel);
            assert!(
                r.lines.iter().any(|a| a.line != 0),
                "no attributed line in {}",
                r.kernel
            );
            // generated kernels must carry DSL recording sites
            assert!(
                r.lines
                    .iter()
                    .any(|a| a.site.as_deref().is_some_and(|s| s.contains(".rs:"))),
                "no DSL site attached in {}",
                r.kernel
            );
        }
        let hw = handwritten("transpose", &device).unwrap();
        assert!(hw.sums_match());
        assert!(hw.counters.hot_line().is_some());
        assert!(hw.lines.iter().all(|a| a.site.is_none()));
    }

    #[test]
    fn naive_vs_tiled_hot_line_moves() {
        let device = tesla();
        let (naive, tiled) = transpose_naive_vs_tiled(&device).unwrap();
        let (naive_line, naive_hot) = naive.counters.hot_line().unwrap();
        let (tiled_line, _) = tiled.counters.hot_line().unwrap();
        let naive_text = &naive
            .lines
            .iter()
            .find(|a| a.line == naive_line)
            .unwrap()
            .text;
        let tiled_text = &tiled
            .lines
            .iter()
            .find(|a| a.line == tiled_line)
            .unwrap()
            .text;
        assert_ne!(
            naive_text, tiled_text,
            "hot statement should change between naive and tiled"
        );
        // the naive kernel's single line dominates: one strided access
        // direction eats nearly all transactions
        assert!(
            naive_hot.mem_transactions as f64
                / naive.counters.totals.mem_transactions.max(1) as f64
                > 0.9
        );
    }

    #[test]
    fn jsonl_export_is_parseable() {
        let device = tesla();
        let rows = vec![handwritten("reduction", &device).unwrap()];
        let dir = std::env::temp_dir();
        let path = export_jsonl(&rows, &dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            oclsim::prof::json::parse(line).expect("valid JSON line");
        }
        std::fs::remove_file(&path).ok();
    }
}
