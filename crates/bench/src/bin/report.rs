//! `report` — regenerate every table and figure of the paper's evaluation.
//!
//! Usage: `cargo run -p bench --release --bin report [-- EXPERIMENT]`
//! where EXPERIMENT is one of `table1`, `fig6`, `fig7`, `fig8`, `fig9`,
//! `caching`, `ablation`, `overlap`, `lint`, `profile`, `annotate`,
//! `metrics`, `bench`, `soak`, `passes`, `cache`, `postmortem`, or `all`
//! (default).
//! Measured values are printed next to the
//! paper's published numbers; EXPERIMENTS.md records the comparison.
//! `lint` runs the kernel sanitizer over every benchmark's handwritten
//! and HPL-generated OpenCL C and exits nonzero unless every kernel is
//! clean. `profile` runs every benchmark (sync and async) under
//! `hpl::profile`, prints the simulated hardware counters per kernel —
//! output byte-identical across `OCLSIM_THREADS` — writes Chrome traces
//! to `target/trace-<bench>.json`, and exits nonzero if any run performed
//! a redundant host→device transfer. `annotate` renders perf-annotate-style
//! per-line counter listings for every benchmark kernel — HPL-generated
//! lines mapped back to their DSL recording sites, handwritten kernels to
//! their own source — plus a cross-benchmark hot-line table and a JSONL
//! export to `target/annotate.jsonl`; it exits nonzero if any kernel's
//! per-line counters fail to sum to its launch totals, and its output is
//! also byte-identical across `OCLSIM_THREADS`. `metrics` drives every benchmark to
//! its cache steady state and prints the canonical telemetry snapshot
//! (also byte-identical across `OCLSIM_THREADS`). `bench` emits the
//! `target/BENCH_pr4.json` performance trajectory plus a unified
//! host+device Floyd–Warshall trace, and — given a baseline path as the
//! next argument — fails on >10% modeled-time regression, any new
//! redundant transfer, or a vanished benchmark. `soak` drives the
//! multi-tenant kernel service: concurrent tenant threads run mixed
//! benchmark workloads against one shared binary cache, a quota-limited
//! tenant is pushed into a deterministic admission rejection, and one
//! NDRange launch is partitioned across the Tesla+Quadro pair with all
//! three EngineCL-style strategies; it prints p50/p99 workload latency and
//! launches/sec, writes the canonical metrics snapshot to
//! `target/soak-metrics.txt` (byte-identical across `OCLSIM_THREADS` —
//! `ci.sh` diffs it), and exits nonzero unless every soak tenant ran with
//! zero cache misses, no upload was redundant, the quota rejection fired,
//! and a partitioned launch beat the single-device reference
//! bit-identically. `cache` runs the corpus on the cache-capable 48K-L1
//! Tesla variant next to the roofline-only Tesla, prints per-kernel
//! L1/L2 hit rates and cache-aware modeled times plus the naive-vs-tiled
//! transpose annotations, and exits nonzero if any cache-model invariant
//! fails (per-line sums, probe/transaction accounting, or plain-device
//! counter parity); its output is byte-identical across `OCLSIM_THREADS`
//! and `OCLSIM_BACKEND` — `ci.sh` diffs four runs. `postmortem` drives
//! three deterministic scenarios through the kernel service — a
//! successful partitioned launch, a launch poisoned by a pre-failed gate
//! event, and a quota rejection — and prints the canonical request span
//! tree plus both postmortem dumps (causal error chain, span tree,
//! flight-recorder tail, cache/quota state), writing the merged
//! device+postmortem Chrome trace to `target/postmortem-trace.json`;
//! its entire stdout and the trace file are byte-identical across
//! `OCLSIM_THREADS` and `OCLSIM_BACKEND` — `ci.sh` diffs four runs.
//!
//! Setting `HPL_TELEMETRY=1` enables span collection for the whole run;
//! with it unset, the telemetry layer stays off (a single relaxed atomic
//! load per site) and `ci.sh` proves the `profile` output is byte-for-byte
//! unaffected either way.

use bench::{
    ablation, annotate, cachemodel, caching, fig6, fig7, fig8, fig9, lint, overlap, passes,
    postmortem, profile, runtime_metrics, soak, table1, tesla, trajectory,
};

fn main() {
    if std::env::var("HPL_TELEMETRY").is_ok_and(|v| !v.is_empty() && v != "0") {
        hpl::telemetry::set_enabled(true);
    }
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let ok = match which.as_str() {
        "table1" => run_table1(),
        "fig6" => run_fig6(),
        "fig7" => run_fig7(),
        "fig8" => run_fig8(),
        "fig9" => run_fig9(),
        "caching" => run_caching(),
        "ablation" => run_ablation(),
        "overlap" => run_overlap(),
        "lint" => run_lint(),
        "profile" => run_profile(),
        "annotate" => run_annotate(),
        "metrics" => run_metrics(),
        "bench" => run_bench_trajectory(),
        "soak" => run_soak(),
        "passes" => run_passes(),
        "cache" => run_cache(),
        "postmortem" => run_postmortem(),
        "all" => {
            run_table1()
                & run_fig6()
                & run_fig7()
                & run_fig8()
                & run_fig9()
                & run_caching()
                & run_ablation()
                & run_overlap()
                & run_lint()
                & run_profile()
                & run_annotate()
                & run_metrics()
                & run_bench_trajectory()
                & run_soak()
                & run_passes()
                & run_cache()
                & run_postmortem()
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use table1|fig6|fig7|fig8|fig9|caching|ablation|overlap|lint|profile|annotate|metrics|bench|soak|passes|cache|postmortem|all"
            );
            std::process::exit(2);
        }
    };
    if !ok {
        std::process::exit(1);
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn run_table1() -> bool {
    banner("Table I — SLOCs, OpenCL vs HPL versions of the benchmarks");
    println!(
        "{:<18} {:>8} {:>8} {:>10} {:>7} || paper: {:>6} {:>6} {:>9}",
        "Benchmark", "OpenCL", "HPL", "reduction", "ratio", "OpenCL", "HPL", "reduction"
    );
    for r in table1::compute() {
        println!(
            "{:<18} {:>8} {:>8} {:>9.1}% {:>6.1}x || paper: {:>6} {:>6} {:>8.1}%",
            r.benchmark,
            r.opencl_sloc,
            r.hpl_sloc,
            r.reduction_percent(),
            r.ratio(),
            r.paper_opencl,
            r.paper_hpl,
            r.paper_reduction_percent()
        );
    }
    true
}

fn run_fig6() -> bool {
    banner("Figure 6 — EP speedup over serial CPU vs problem class (Tesla)");
    let device = tesla();
    match fig6::compute(&device) {
        Ok(rows) => {
            println!(
                "{:<6} {:>10} {:>12} {:>12} {:>12}  (paper slowdowns: W 20.5%, A 5.7%, B 2.3%, C 1.1%)",
                "class", "pairs", "OpenCL x", "HPL x", "HPL slowdown"
            );
            let mut ok = true;
            let mut last = f64::INFINITY;
            for r in &rows {
                println!(
                    "{:<6} {:>10} {:>11.1}x {:>11.1}x {:>11.2}%  {}",
                    r.class,
                    r.pairs,
                    r.opencl_speedup,
                    r.hpl_speedup,
                    r.hpl_slowdown_percent,
                    if r.verified {
                        "[verified]"
                    } else {
                        "[MISMATCH]"
                    }
                );
                ok &= r.verified;
                // the paper's shape: slowdown decreases with problem size
                if r.hpl_slowdown_percent > last + 1.0 {
                    println!("    note: slowdown did not shrink monotonically here");
                }
                last = r.hpl_slowdown_percent;
            }
            ok
        }
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            false
        }
    }
}

fn run_fig7() -> bool {
    banner("Figure 7 — speedups over serial CPU, all benchmarks (Tesla)");
    let device = tesla();
    match fig7::compute(&device, fig7::Scale::Paper) {
        Ok(reports) => {
            println!(
                "{:<12} {:>12} {:>12} {:>14}",
                "benchmark", "OpenCL x", "HPL x", "paper OpenCL x"
            );
            let mut ok = true;
            for r in &reports {
                println!(
                    "{:<12} {:>11.1}x {:>11.1}x {:>13.1}x  {}",
                    r.name,
                    r.opencl_speedup(),
                    r.hpl_speedup(),
                    fig7::paper_speedup(r.name).unwrap_or(f64::NAN),
                    if r.verified {
                        "[verified]"
                    } else {
                        "[MISMATCH]"
                    }
                );
                ok &= r.verified;
            }
            ok
        }
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            false
        }
    }
}

fn run_fig8() -> bool {
    banner("Figure 8 — HPL slowdown vs OpenCL per benchmark (Tesla)");
    let device = tesla();
    match fig7::compute(&device, fig7::Scale::Paper) {
        Ok(reports) => {
            println!(
                "{:<12} {:>14} {:>22}   (paper: typically < 4%; transpose drops to 0.41% with transfers)",
                "benchmark", "slowdown", "with transfers"
            );
            for r in fig8::derive(&reports) {
                println!(
                    "{:<12} {:>13.2}% {:>21.2}%",
                    r.benchmark, r.slowdown_percent, r.slowdown_with_transfers_percent
                );
            }
            true
        }
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            false
        }
    }
}

fn run_fig9() -> bool {
    banner("Figure 9 — HPL overhead across devices (EP excluded: no fp64 on Quadro)");
    match fig9::compute() {
        Ok(rows) => {
            println!(
                "{:<12} {:>12} {:>12} {:>12} {:>12}   (paper: <= ~3.5% on either device)",
                "benchmark", "Tesla", "Quadro", "Tesla 48K", "Tesla 16K"
            );
            for r in &rows {
                println!(
                    "{:<12} {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}%",
                    r.benchmark,
                    r.tesla_percent,
                    r.quadro_percent,
                    r.tesla48_percent,
                    r.tesla16_percent
                );
            }
            // EP must be absent: the Quadro cannot run doubles
            !rows.iter().any(|r| r.benchmark == "EP")
        }
        Err(e) => {
            eprintln!("fig9 failed: {e}");
            false
        }
    }
}

fn run_caching() -> bool {
    banner("Kernel-binary cache (paper §V-B): first vs second invocation, EP class W");
    let device = tesla();
    match caching::compute(&device) {
        Ok(r) => {
            println!(
                "first  invocation: {:.6} s total, {:.6} s front-end (capture+codegen+compile)",
                r.first_seconds, r.first_front_seconds
            );
            println!(
                "second invocation: {:.6} s total, {:.6} s front-end",
                r.second_seconds, r.second_front_seconds
            );
            println!(
                "front-end cost eliminated on reuse: {}",
                if r.second_front_seconds == 0.0 {
                    "yes"
                } else {
                    "NO"
                }
            );
            r.second_front_seconds == 0.0 && r.second_seconds <= r.first_seconds
        }
        Err(e) => {
            eprintln!("caching failed: {e}");
            false
        }
    }
}

fn run_ablation() -> bool {
    banner("Ablations (DESIGN.md)");
    let device = tesla();
    let mut ok = true;
    match ablation::transfers(&device) {
        Ok(a) => {
            println!(
                "transfer minimisation (Floyd, 64 nodes): {} uploads / {:.6} s with HPL's analysis; \
                 {} uploads / {:.6} s without",
                a.minimised_h2d, a.minimised_seconds, a.naive_h2d, a.naive_seconds
            );
            ok &= a.minimised_h2d < a.naive_h2d;
        }
        Err(e) => {
            eprintln!("transfer ablation failed: {e}");
            ok = false;
        }
    }
    match ablation::transpose_naive_vs_tiled(&device) {
        Ok((naive, tiled)) => {
            println!(
                "transpose coalescing (256x256): naive {:.6} s vs tiled {:.6} s ({:.1}x)",
                naive,
                tiled,
                naive / tiled
            );
            ok &= naive > tiled;
        }
        Err(e) => {
            eprintln!("transpose ablation failed: {e}");
            ok = false;
        }
    }
    ok
}

fn run_lint() -> bool {
    banner("Kernel sanitizer — benchmark corpus (handwritten + HPL-generated OpenCL C)");
    let device = tesla();
    match lint::compute(&device) {
        Ok(rows) => {
            println!(
                "{:<12} {:<12} {:<28} {:>9} {:>7} {:>8}",
                "benchmark", "variant", "kernel", "warnings", "errors", "verdict"
            );
            let mut ok = true;
            for r in &rows {
                println!(
                    "{:<12} {:<12} {:<28} {:>9} {:>7} {:>8}",
                    r.benchmark,
                    r.variant,
                    r.kernel,
                    r.warnings,
                    r.errors,
                    if r.clean() { "clean" } else { "DIRTY" }
                );
                for m in &r.messages {
                    for line in m.lines() {
                        println!("    {line}");
                    }
                }
                ok &= r.clean();
            }
            if rows.is_empty() {
                eprintln!("lint produced no rows — corpus not found?");
                return false;
            }
            ok
        }
        Err(e) => {
            eprintln!("lint failed: {e}");
            false
        }
    }
}

fn run_profile() -> bool {
    banner("Profile — simulated hardware counters per kernel, all benchmarks (Tesla, test scale)");
    let device = tesla();
    let profiles = match profile::compute(&device) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("profile failed: {e}");
            return false;
        }
    };
    print_profile_table(&profiles);
    let mut ok = true;
    println!("\ntransfer minimality (HPL must not add redundant uploads):");
    for p in &profiles {
        let minimal = p.transfers_minimal();
        println!(
            "  {:<10} {:<6} h2d {} of {} minimal ({} B), d2h {}  {}",
            p.bench,
            p.mode,
            p.h2d_count,
            p.expected_h2d,
            p.h2d_bytes,
            p.d2h_count,
            if minimal { "[minimal]" } else { "[REDUNDANT]" }
        );
        ok &= minimal;
    }
    match profile::write_traces(&device, &profiles, std::path::Path::new("target")) {
        Ok(written) => {
            for (path, events) in written {
                println!("trace written: {path} ({events} events)");
            }
        }
        Err(e) => {
            eprintln!("trace export failed: {e}");
            ok = false;
        }
    }
    // The same corpus on the cache-capable variant: identical roofline,
    // plus L1/L2 hit-rate columns fed by the simulated tag arrays. This
    // table rides the same ci.sh byte-diffs as the one above, so the
    // cache counters are gated across OCLSIM_THREADS, OCLSIM_BACKEND and
    // HPL_TELEMETRY settings.
    println!("\nsame corpus on the cached Tesla variant (48K L1 / 768K L2):");
    match profile::compute(&bench::tesla_cached()) {
        Ok(cached) => print_profile_table(&cached),
        Err(e) => {
            eprintln!("cached-device profile failed: {e}");
            ok = false;
        }
    }
    ok
}

/// Print the per-kernel counter table. When any row carries simulated
/// cache activity (cache-capable device profile), two extra hit-rate
/// columns appear; roofline-only profiles render exactly as before the
/// cache model existed.
fn print_profile_table(profiles: &[profile::ModeProfile]) {
    let cache = profiles.iter().any(|p| {
        p.rows
            .iter()
            .any(|r| r.counters.totals.l1_hits + r.counters.totals.l1_misses > 0)
    });
    let cache_hdr = if cache { "   l1.hit  l2.hit" } else { "" };
    println!(
        "{:<10} {:<6} {:<24} {:>4} {:>7} {:>10} {:>9} {:>6} {:>6} {:>7} {:>6} {:>7} {:>9} {:>6} {:>6}{cache_hdr}  bound",
        "bench",
        "mode",
        "kernel",
        "n",
        "groups",
        "instr",
        "mem-txn",
        "coal%",
        "occ%",
        "stall%",
        "div%",
        "bankcf",
        "flop/B",
        "roof%",
        "bw%"
    );
    for p in profiles {
        for r in &p.rows {
            let cache_cells = if cache {
                let cell = |rate: Option<f64>| match rate {
                    Some(v) => format!("{:.1}%", 100.0 * v),
                    None => "-".to_string(),
                };
                format!(
                    "  {:>7} {:>7}",
                    cell(r.counters.l1_hit_rate()),
                    cell(r.counters.l2_hit_rate())
                )
            } else {
                String::new()
            };
            println!(
                "{:<10} {:<6} {:<24} {:>4} {:>7} {:>10} {:>9} {:>6.1} {:>6.1} {:>7.1} {:>6.1} {:>7} {:>9.3} {:>6.1} {:>6.1}{cache_cells}  {}",
                p.bench,
                p.mode,
                r.kernel,
                r.launches,
                r.counters.num_groups,
                r.counters.totals.instr.total(),
                r.counters.totals.mem_transactions,
                100.0 * r.counters.coalescing_efficiency(),
                r.occupancy_pct,
                100.0 * r.counters.stall_fraction(),
                100.0 * r.counters.divergence_fraction(),
                r.counters.totals.bank_conflicts,
                r.roofline.arithmetic_intensity,
                100.0 * r.roofline.fraction_of_roof,
                100.0 * r.roofline.bandwidth_fraction,
                if r.roofline.compute_bound {
                    "compute"
                } else {
                    "memory"
                }
            );
        }
    }
}

fn run_annotate() -> bool {
    banner("Annotate — per-line counters attributed to source, all benchmarks (Tesla, test scale)");
    let device = tesla();
    let rows = match annotate::compute(&device) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("annotate failed: {e}");
            return false;
        }
    };
    let mut ok = true;
    for r in &rows {
        println!();
        print!("{}", r.render());
        if !r.sums_match() {
            eprintln!(
                "annotate: per-line counters do not sum to launch totals for {}",
                r.qualified_name()
            );
            ok = false;
        }
        if !r.lines.iter().any(|a| a.line != 0) {
            eprintln!("annotate: no attributed line in {}", r.qualified_name());
            ok = false;
        }
    }
    // every benchmark must contribute both variants
    for &bench in profile::BENCHES {
        for variant in ["generated", "handwritten"] {
            if !rows
                .iter()
                .any(|r| r.bench == bench && r.variant == variant)
            {
                eprintln!("annotate: no {variant} listing for {bench}");
                ok = false;
            }
        }
    }

    println!("\nhot lines across the corpus:");
    println!(
        "{:<10} {:<12} {:<26} {:>6} {:>7}  location",
        "bench", "variant", "kernel", "line", "tx%"
    );
    for h in annotate::hot_lines(&rows) {
        println!(
            "{:<10} {:<12} {:<26} {:>6} {:>6.1}%  {}",
            h.bench,
            h.variant,
            h.kernel,
            h.line,
            100.0 * h.tx_share,
            h.location
        );
    }

    println!("\ncoalescing ablation, annotated (naive vs tiled transpose, 256x256):");
    match annotate::transpose_naive_vs_tiled(&device) {
        Ok((naive, tiled)) => {
            println!();
            print!("{}", naive.render());
            println!();
            print!("{}", tiled.render());
            ok &= naive.sums_match() && tiled.sums_match();
        }
        Err(e) => {
            eprintln!("annotated ablation failed: {e}");
            ok = false;
        }
    }

    match annotate::export_jsonl(&rows, std::path::Path::new("target")) {
        Ok(path) => println!("\nannotated lines written: {path}"),
        Err(e) => {
            eprintln!("annotate JSONL export failed: {e}");
            ok = false;
        }
    }
    ok
}

fn run_metrics() -> bool {
    banner("Metrics — telemetry registry, steady-state kernel-cache behaviour (Tesla, test scale)");
    // self-contained snapshot: only this subcommand's workload counts
    hpl::telemetry::reset_metrics();
    let device = tesla();
    let rows = match runtime_metrics::compute(&device) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("metrics failed: {e}");
            return false;
        }
    };
    println!(
        "{:<10} {:<6} {:>10} {:>11} {:>12} {:>13} {:>10}",
        "bench", "mode", "warm hits", "warm miss", "steady hits", "steady miss", "hit ratio"
    );
    let mut ok = true;
    for r in &rows {
        println!(
            "{:<10} {:<6} {:>10} {:>11} {:>12} {:>13} {:>9.2}%  {}",
            r.bench,
            r.mode,
            r.warm_hits,
            r.warm_misses,
            r.steady_hits,
            r.steady_misses,
            100.0 * r.steady_hit_ratio(),
            if r.steady_state_cached() {
                "[cached]"
            } else {
                "[COLD]"
            }
        );
        ok &= r.steady_state_cached();
    }
    println!("\ncanonical metrics snapshot (wall-clock metrics excluded):");
    print!("{}", hpl::telemetry::metrics_text(true));
    ok
}

fn run_bench_trajectory() -> bool {
    banner("Bench — performance trajectory (BENCH_pr4.json) and regression gate");
    let device = tesla();
    let run = match trajectory::compute(&device) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench trajectory failed: {e}");
            return false;
        }
    };
    println!(
        "{:<10} {:<6} {:>14} {:>5} {:>10} {:>5} {:>6} {:>6} {:>9} {:>6} {:>12}  hot line",
        "bench",
        "mode",
        "modeled (s)",
        "h2d",
        "h2d B",
        "d2h",
        "hits",
        "miss",
        "redundant",
        "sloc",
        "host wall(s)"
    );
    let mut ok = true;
    for e in &run.entries {
        let host_wall: f64 = e.host_wall_seconds.values().sum();
        let hot = e
            .hot_line
            .as_ref()
            .map(|h| {
                format!(
                    "{} ({:.0}% of tx)",
                    h.site
                        .clone()
                        .unwrap_or_else(|| format!("{}:{}", h.kernel, h.line)),
                    100.0 * h.tx_share
                )
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<10} {:<6} {:>14.9} {:>5} {:>10} {:>5} {:>6} {:>6} {:>9} {:>6} {:>12.6}  {hot}",
            e.bench,
            e.mode,
            e.modeled_device_seconds,
            e.h2d_count,
            e.h2d_bytes,
            e.d2h_count,
            e.cache_hits,
            e.cache_misses,
            e.redundant_uploads,
            e.hpl_sloc,
            host_wall
        );
        ok &= e.redundant_uploads == 0;
    }
    // a short soak contributes the additive throughput trend fields; it
    // runs after the per-benchmark deltas above because it resets the
    // metrics registry for its own self-contained snapshot
    let soak_summary = match soak::compute(
        &device,
        &soak::SoakConfig {
            tenants: 4,
            iterations: 1,
            greedy_launches: 3,
        },
    ) {
        Ok(s) => Some(trajectory::SoakSummary {
            soak_p50_ms: s.p50_ms,
            soak_p99_ms: s.p99_ms,
            launches_per_sec: s.launches_per_sec,
        }),
        Err(e) => {
            eprintln!("soak summary for the trajectory failed: {e}");
            ok = false;
            None
        }
    };
    // the flight-recorder overhead trend: the identical cached-launch
    // probe with the recorder off vs on (additive, ungated wall clock)
    let overhead = match trajectory::trace_overhead() {
        Ok(o) => {
            println!(
                "flight-recorder overhead probe: {:.6} s on vs {:.6} s off over {} cached \
                 launches ({:+.2}%)",
                o.recorder_on_wall_s,
                o.recorder_off_wall_s,
                trajectory::OVERHEAD_LAUNCHES,
                o.overhead_percent()
            );
            Some(o)
        }
        Err(e) => {
            eprintln!("trace-overhead probe failed: {e}");
            ok = false;
            None
        }
    };
    let json = trajectory::to_json_full(&run.entries, soak_summary.as_ref(), overhead.as_ref());
    let out = std::path::Path::new("target").join("BENCH_pr4.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("could not write {}: {e}", out.display());
        return false;
    }
    println!("trajectory written: {}", out.display());
    match trajectory::write_floyd_artifacts(&device, &run, std::path::Path::new("target")) {
        Ok(paths) => {
            for p in paths {
                println!("host+device artifact written: {p}");
            }
        }
        Err(e) => {
            eprintln!("host trace export failed: {e}");
            ok = false;
        }
    }
    if let Some(baseline_path) = std::env::args().nth(2) {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("could not read baseline {baseline_path}: {e}");
                return false;
            }
        };
        match trajectory::check_against_baseline(&run.entries, &text) {
            Ok(failures) if failures.is_empty() => {
                println!("trajectory gate vs {baseline_path}: OK");
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("trajectory gate: {f}");
                }
                ok = false;
            }
            Err(e) => {
                eprintln!("baseline {baseline_path} unusable: {e}");
                ok = false;
            }
        }
    }
    ok
}

fn run_soak() -> bool {
    banner("Soak — multi-tenant kernel service: shared cache, quotas, partitioned NDRanges");
    let device = tesla();
    let config = soak::SoakConfig::default();
    let report = match soak::compute(&device, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("soak failed: {e}");
            return false;
        }
    };
    println!(
        "{} tenants x {} iterations over {} benchmarks, {:.3} s wall",
        config.tenants,
        config.iterations,
        bench::profile::BENCHES.len(),
        report.wall_seconds
    );
    println!(
        "workload latency p50 {:.3} ms, p99 {:.3} ms; {:.1} launches/s admitted \
         ({} launches total incl. warm-up and greedy)",
        report.p50_ms, report.p99_ms, report.launches_per_sec, report.total_launches
    );
    println!(
        "\n{:<10} {:>9} {:>11} {:>11} {:>12}",
        "tenant", "launches", "cache hits", "cache miss", "rejections"
    );
    let (mut hits, mut misses) = (0u64, 0u64);
    for row in &report.tenant_rows {
        println!(
            "{:<10} {:>9} {:>11} {:>11} {:>12}",
            row.tenant,
            row.stats.launches,
            row.stats.cache_hits,
            row.stats.cache_misses,
            row.stats.rejections
        );
        hits += row.stats.cache_hits;
        misses += row.stats.cache_misses;
    }
    println!(
        "shared cache: {} resident binaries, {:.1}% hit share across tenants, {} redundant uploads",
        report.resident_binaries,
        100.0 * hits as f64 / (hits + misses).max(1) as f64,
        report.redundant_uploads
    );
    println!(
        "\nper-tenant latency breakdown (from the per-request causal traces):\n\
         {:<10} {:>9} {:>7} {:>10} {:>10} {:>13}",
        "tenant", "requests", "failed", "p50 (ms)", "p99 (ms)", "launches/sec"
    );
    for row in &report.latency_rows {
        println!(
            "{:<10} {:>9} {:>7} {:>10.3} {:>10.3} {:>13.1}",
            row.tenant, row.requests, row.failed, row.p50_ms, row.p99_ms, row.per_sec
        );
    }
    println!(
        "\npartitioned saxpy_heavy across the service devices \
         (single-device reference {:.9} s):",
        report.reference_seconds
    );
    println!(
        "{:<14} {:>14} {:>8} {:>18} {:>14}",
        "strategy", "makespan (s)", "speedup", "groups/device", "bit-identical"
    );
    for p in &report.partition {
        let groups = p
            .groups_per_device
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:<14} {:>14.9} {:>7.2}x {:>18} {:>14}",
            p.strategy,
            p.makespan_seconds,
            report.reference_seconds / p.makespan_seconds,
            groups,
            if p.bit_identical { "yes" } else { "NO" }
        );
    }
    let out = std::path::Path::new("target").join("soak-metrics.txt");
    if let Err(e) = std::fs::write(&out, &report.metrics_snapshot) {
        eprintln!("could not write {}: {e}", out.display());
        return false;
    }
    println!("\ncanonical metrics snapshot written: {}", out.display());
    let failures = report.healthy();
    for f in &failures {
        eprintln!("soak gate: {f}");
    }
    if failures.is_empty() {
        println!("soak gate: OK");
    }
    failures.is_empty()
}

fn run_overlap() -> bool {
    banner("Overlap — async scheduler pipelines transfers under kernels (modeled timeline)");
    match overlap::compute() {
        Ok(rows) => {
            println!(
                "{:<48} {:>14} {:>14} {:>8}",
                "pipeline", "makespan (s)", "serial sum (s)", "ratio"
            );
            let mut ok = true;
            let mut one_tesla_makespan = None;
            for r in &rows {
                println!(
                    "{:<48} {:>14.6} {:>14.6} {:>7.2}   {}",
                    r.label,
                    r.makespan_seconds,
                    r.sum_seconds,
                    r.ratio(),
                    if r.verified {
                        "[verified]"
                    } else {
                        "[MISMATCH]"
                    }
                );
                ok &= r.verified;
                // every overlapped schedule must beat full serialisation
                ok &= r.makespan_seconds < r.sum_seconds;
                if r.label.ends_with("1 Tesla") {
                    one_tesla_makespan = Some(r.makespan_seconds);
                }
                if let (Some(m1), true) = (one_tesla_makespan, r.label.ends_with("2 Teslas")) {
                    let near_halved = r.makespan_seconds < 0.6 * m1;
                    println!(
                        "    two devices vs one: {:.2}x the single-device makespan {}",
                        r.makespan_seconds / m1,
                        if near_halved {
                            "(near-halved)"
                        } else {
                            "(NOT near-halved)"
                        }
                    );
                    ok &= near_halved;
                }
            }
            ok
        }
        Err(e) => {
            eprintln!("overlap failed: {e}");
            false
        }
    }
}

fn run_passes() -> bool {
    banner("Passes — optimizing mid-end deltas per benchmark at -O0/-O1/-O2");
    let device = tesla();
    let report = match passes::compute(&device) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("passes failed: {e}");
            return false;
        }
    };
    println!(
        "{:<12} {:<4} {:>6} {:>6} {:>5} {:>7} {:>5} {:>6} {:>10} {:>16} {:>9} {:>16} {:>9}",
        "benchmark",
        "lvl",
        "fold",
        "prop",
        "dce",
        "branch",
        "cse",
        "licm",
        "instrs",
        "OpenCL model(s)",
        "vs -O0",
        "HPL model(s)",
        "vs -O0"
    );
    for r in &report.rows {
        let delta = |now: f64, base: f64| {
            if base > 0.0 {
                format!("{:+.1}%", 100.0 * (now - base) / base)
            } else {
                "-".into()
            }
        };
        let (od, hd) = match report.baseline(&r.bench) {
            Some(b) if r.level != oclsim::OptLevel::O0 => (
                delta(r.opencl_modeled_s, b.opencl_modeled_s),
                delta(r.hpl_modeled_s, b.hpl_modeled_s),
            ),
            _ => ("-".into(), "-".into()),
        };
        let s = r.opencl_stats;
        println!(
            "{:<12} {:<4} {:>6} {:>6} {:>5} {:>7} {:>5} {:>6} {:>10} {:>16.9} {:>9} {:>16.9} {:>9}",
            r.bench,
            r.level.to_string(),
            s.const_folded,
            s.const_propagated,
            s.dce_removed,
            s.branches_simplified,
            s.cse_replaced,
            s.licm_hoisted,
            r.opencl_instructions,
            r.opencl_modeled_s,
            od,
            r.hpl_modeled_s,
            hd
        );
    }
    let reduced = report.reduced_benches(oclsim::OptLevel::O2);
    println!(
        "\n-O2 reduces executed instructions or modeled time on {} of 5 benchmarks: {:?}",
        reduced.len(),
        reduced
    );
    let json = passes::to_json(&report);
    let out = std::path::Path::new("target").join("passes.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {}: {e}", out.display());
        return false;
    }
    println!("wrote {}", out.display());
    reduced.len() >= 3
}

fn run_cache() -> bool {
    banner("Cache hierarchy — L1/L2 hit rates on the 48K-L1 Tesla vs the roofline-only Tesla");
    let report = match cachemodel::compute() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cache failed: {e}");
            return false;
        }
    };
    println!(
        "{:<10} {:<14} {:>10} {:>8} {:>8} {:>14} {:>14}",
        "benchmark", "kernel", "mem.tx", "l1.hit", "l2.hit", "cached (s)", "roofline (s)"
    );
    let cell = |r: Option<f64>| match r {
        Some(v) => format!("{:.1}%", 100.0 * v),
        None => "-".to_string(),
    };
    for r in &report.rows {
        println!(
            "{:<10} {:<14} {:>10} {:>8} {:>8} {:>14.9} {:>14.9}",
            r.bench,
            r.kernel,
            r.counters.totals.mem_transactions,
            cell(r.l1_hit_rate()),
            cell(r.l2_hit_rate()),
            r.cached_modeled_s,
            r.plain_modeled_s
        );
    }
    let naive = &report.transpose.naive;
    let tiled = &report.transpose.tiled;
    println!(
        "\ntranspose hot-line L1 hit rate: naive {:.1}% over {} tx, tiled {:.1}% over {} tx",
        100.0 * cachemodel::hot_line_l1_rate(naive),
        naive.counters.totals.mem_transactions,
        100.0 * cachemodel::hot_line_l1_rate(tiled),
        tiled.counters.totals.mem_transactions
    );
    println!("\n--- naive transpose, annotated on the cached Tesla ---");
    print!("{}", naive.render());
    println!("--- tiled transpose, annotated on the cached Tesla ---");
    print!("{}", tiled.render());
    let violations = report.violations();
    for v in &violations {
        eprintln!("cache invariant violated: {v}");
    }
    println!(
        "\ncache-model invariants (per-line sums, L1<=tx, L2==L1 misses, plain-device parity): {}",
        if violations.is_empty() {
            "all hold"
        } else {
            "VIOLATED"
        }
    );
    violations.is_empty()
}

fn run_postmortem() -> bool {
    banner("Postmortem — causal tracing + flight recorder on the kernel service");
    let report = match postmortem::compute() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("postmortem demo failed: {e}");
            return false;
        }
    };
    println!("--- successful partitioned launch: request span tree ---");
    print!("{}", report.success.render(true));
    println!("\n--- poisoned partitioned launch: postmortem dump ---");
    print!("{}", report.poison.render(true));
    println!("\n--- quota rejection: postmortem dump ---");
    print!("{}", report.quota.render(true));
    let out = std::path::Path::new("target").join("postmortem-trace.json");
    if let Err(e) = std::fs::write(&out, &report.merged_trace) {
        eprintln!("could not write {}: {e}", out.display());
        return false;
    }
    println!(
        "\nmerged device+postmortem trace written: {}",
        out.display()
    );
    let violations = postmortem::violations(&report);
    for v in &violations {
        eprintln!("postmortem gate: {v}");
    }
    if violations.is_empty() {
        println!("postmortem gate: OK");
    }
    violations.is_empty()
}
