//! The `report -- bench` experiment: the `BENCH_*.json` performance
//! trajectory and its regression gate.
//!
//! One run produces a machine-readable snapshot of where the
//! reproduction's performance stands: per (benchmark, sync/async) pair
//! the modeled device seconds, transfer counts and bytes, kernel-cache
//! lookup deltas, the redundant-upload tripwire, the HPL version's SLOC
//! (Table I's productivity axis), and — telemetry being enabled for the
//! run — the host-side wall time split by span category. The JSON goes to
//! `target/BENCH_pr4.json`; `ci.sh` keeps a committed copy at the repo
//! root and re-runs the experiment against it, failing on
//!
//! - a modeled-device-time regression of more than 10% on any pair,
//! - any redundant host→device transfer the baseline did not have, or
//! - a (benchmark, mode) pair that disappeared from the report.
//!
//! Host wall times are recorded for trend-watching but never gated: they
//! depend on the machine, while modeled times depend only on the workload
//! and the device model.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use hpl::telemetry::{self, SpanRecord};
use oclsim::prof::json::{parse, Value};
use oclsim::{chrome_trace_with_host, validate_chrome_trace, Device, Event, OptLevel, PassStats};

use crate::profile::{profile_one, HotLineInfo, BENCHES};
use crate::table1;

/// Schema tag stamped into the JSON so future PRs can evolve the format.
pub const SCHEMA: &str = "hpl-bench-trajectory-v1";

/// Multiplicative headroom before a modeled-time increase fails the gate.
pub const REGRESSION_FACTOR: f64 = 1.10;

/// One (benchmark, mode) row of the trajectory.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Benchmark name (see [`BENCHES`](crate::profile::BENCHES)).
    pub bench: &'static str,
    /// `"sync"` or `"async"`.
    pub mode: &'static str,
    /// Modeled device seconds summed over the run's kernel launches —
    /// analytic, so identical on every machine and thread count.
    pub modeled_device_seconds: f64,
    /// Host→device transfers the run performed.
    pub h2d_count: usize,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host transfers.
    pub d2h_count: usize,
    /// Kernel-cache hits during the run.
    pub cache_hits: u64,
    /// Kernel-cache misses during the run.
    pub cache_misses: u64,
    /// Redundant uploads (device copy already valid) during the run —
    /// always a coherence bug; the gate fails on any increase.
    pub redundant_uploads: u64,
    /// SLOC of the benchmark's HPL version (Table I).
    pub hpl_sloc: usize,
    /// Wall seconds of host-side telemetry spans, summed per category
    /// (inclusive time: a parent span contains its children). Recorded
    /// for trend-watching; excluded from the gate.
    pub host_wall_seconds: BTreeMap<&'static str, f64>,
    /// The run's hottest source line (kernel, generated line, DSL site,
    /// transaction share) from the per-line counter map. Additive to the
    /// schema: the baseline gate ignores it, so hot-line drift shows up
    /// in the committed JSON diff without ever failing the build.
    pub hot_line: Option<HotLineInfo>,
    /// Modeled device seconds of the same workload rebuilt at `-O2`.
    /// Additive trend field — the gate ignores it, so the committed JSON
    /// diff shows how far the optimizing mid-end moves each benchmark
    /// without the headroom check ever reading it.
    pub opt_modeled_s: f64,
    /// Mid-end rewrite counters for the benchmark's HPL-generated kernels
    /// at `-O2`. Additive like `opt_modeled_s`.
    pub pass_stats: PassStats,
    /// Execution backend active for the run (`"ref"` = SIMT interpreter,
    /// `"wg"` = compiled work-group bytecode VM). Additive: the gate
    /// never reads it, but the committed JSON records which engine
    /// produced the trajectory.
    pub backend: &'static str,
    /// Host wall seconds of the `sched` span category alone (kernel
    /// dispatch + work-group execution), pulled out of
    /// `host_wall_seconds` for easy trend diffing. Machine-dependent,
    /// excluded from the gate like every other wall time.
    pub sched_host_wall_s: f64,
    /// Cache-hierarchy trend: the same workload re-run on the 48K-L1
    /// cached Tesla variant. Additive like `opt_modeled_s` — the gate
    /// never reads it, but the committed JSON shows hit-rate and
    /// cache-aware-time drift. `None` only if the run saw no cacheable
    /// traffic.
    pub cache: Option<CacheTrend>,
}

/// The additive cache-trend fields of one trajectory entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheTrend {
    /// L1 hit rate over the run's kernel launches (hits / probes).
    pub l1_hit_rate: f64,
    /// L2 hit rate (of the L1 misses that reached it), 0.0 if none did.
    pub l2_hit_rate: f64,
    /// Modeled device seconds on the cached variant — includes the
    /// cache-aware memory term, so it drifts when hit rates move even at
    /// constant transaction counts.
    pub cached_modeled_s: f64,
}

/// The full trajectory run, plus the raw material for the unified
/// host+device Floyd–Warshall trace.
pub struct BenchRun {
    /// One entry per (benchmark, mode), in [`BENCHES`] × sync/async order.
    pub entries: Vec<BenchEntry>,
    /// Profiled backend events of the Floyd–Warshall sync run.
    pub floyd_events: Vec<Event>,
    /// Telemetry spans captured during the Floyd–Warshall sync run.
    pub floyd_spans: Vec<SpanRecord>,
}

/// Table I's HPL SLOC for a benchmark key used by the profile harness.
fn hpl_sloc(bench: &str) -> usize {
    let table = table1::compute();
    let name = match bench {
        "ep" => "EP",
        "floyd" => "Floyd-Warshall",
        "transpose" => "Matrix transpose",
        "spmv" => "Spmv",
        "reduction" => "Reduction",
        other => panic!("unknown benchmark `{other}`"),
    };
    table
        .iter()
        .find(|r| r.benchmark == name)
        .map(|r| r.hpl_sloc)
        .expect("Table I covers all five benchmarks")
}

/// Run all five benchmarks sync+async with telemetry enabled and collect
/// the trajectory. Restores the telemetry enable flag on return.
pub fn compute(device: &Device) -> Result<BenchRun, benchsuite::Error> {
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    let run = compute_inner(device);
    telemetry::set_enabled(was_enabled);
    run
}

fn compute_inner(device: &Device) -> Result<BenchRun, benchsuite::Error> {
    let mut entries = Vec::with_capacity(2 * BENCHES.len());
    let mut floyd_events = Vec::new();
    let mut floyd_spans = Vec::new();
    for &bench in BENCHES {
        for sync in [true, false] {
            let cache_before = hpl::cache_stats();
            let redundant_before = telemetry::metrics().redundant_uploads.get();
            drop(telemetry::drain_spans());
            let p = profile_one(bench, sync, device)?;
            let spans = telemetry::drain_spans();
            let cache_after = hpl::cache_stats();
            let redundant_after = telemetry::metrics().redundant_uploads.get();

            let mut host_wall_seconds: BTreeMap<&'static str, f64> = BTreeMap::new();
            for s in &spans {
                *host_wall_seconds.entry(s.category).or_insert(0.0) += s.wall_seconds();
            }
            let (opt_modeled_s, pass_stats) = o2_trend(bench, sync, device)?;
            let cache = cache_trend(bench, sync)?;
            let sched_host_wall_s = host_wall_seconds.get("sched").copied().unwrap_or(0.0);
            entries.push(BenchEntry {
                bench,
                mode: p.mode,
                modeled_device_seconds: p.rows.iter().map(|r| r.modeled_seconds).sum(),
                h2d_count: p.h2d_count,
                h2d_bytes: p.h2d_bytes,
                d2h_count: p.d2h_count,
                cache_hits: cache_after.hits - cache_before.hits,
                cache_misses: cache_after.misses - cache_before.misses,
                redundant_uploads: redundant_after - redundant_before,
                hpl_sloc: hpl_sloc(bench),
                host_wall_seconds,
                hot_line: p.hot_line.clone(),
                opt_modeled_s,
                pass_stats,
                backend: oclsim::backend_name(),
                sched_host_wall_s,
                cache,
            });
            if bench == "floyd" && sync {
                floyd_events = p.events.clone();
                floyd_spans = spans;
            }
        }
    }
    Ok(BenchRun {
        entries,
        floyd_events,
        floyd_spans,
    })
}

/// The additive `-O2` trend fields: re-run the workload with the mid-end
/// at full strength and collect the modeled seconds plus the rewrite
/// counters of the benchmark's generated kernels. Restores the
/// process-global opt level and clears the kernel cache both ways so the
/// surrounding `-O1` measurements never see `-O2` artifacts.
fn o2_trend(
    bench: &'static str,
    sync: bool,
    device: &Device,
) -> Result<(f64, PassStats), benchsuite::Error> {
    use benchsuite::{ep, floyd, reduction, spmv, transpose};
    let prev = hpl::opt_level();
    hpl::set_opt_level(OptLevel::O2);
    hpl::clear_kernel_cache();
    let result = (|| {
        let p = profile_one(bench, sync, device)?;
        let generated = match bench {
            "ep" => ep::hpl_version::generated_source(device),
            "floyd" => floyd::hpl_version::generated_source(device),
            "transpose" => transpose::hpl_version::generated_source(device),
            "spmv" => spmv::hpl_version::generated_source(device),
            "reduction" => reduction::hpl_version::generated_source(device),
            other => panic!("unknown benchmark `{other}`"),
        }?;
        let (program, _ctx, _queue, _build) =
            benchsuite::common::build_for(device, &generated, OptLevel::O2.flag())?;
        let secs: f64 = p.rows.iter().map(|r| r.modeled_seconds).sum();
        Ok((secs, program.pass_stats()))
    })();
    hpl::set_opt_level(prev);
    hpl::clear_kernel_cache();
    result
}

/// The additive cache-trend fields: re-run the workload on the 48K-L1
/// cached Tesla variant and aggregate hit rates and cache-aware modeled
/// seconds over its kernel launches. The cached variant shares the plain
/// Tesla's roofline, so transaction counts match the main run exactly.
fn cache_trend(bench: &'static str, sync: bool) -> Result<Option<CacheTrend>, benchsuite::Error> {
    let device = crate::tesla_cached();
    let p = profile_one(bench, sync, &device)?;
    let (mut h1, mut m1, mut h2, mut m2) = (0u64, 0u64, 0u64, 0u64);
    let mut cached_modeled_s = 0.0;
    for r in &p.rows {
        let t = &r.counters.totals;
        h1 += t.l1_hits;
        m1 += t.l1_misses;
        h2 += t.l2_hits;
        m2 += t.l2_misses;
        cached_modeled_s += r.modeled_seconds;
    }
    if h1 + m1 == 0 {
        return Ok(None);
    }
    Ok(Some(CacheTrend {
        l1_hit_rate: h1 as f64 / (h1 + m1) as f64,
        l2_hit_rate: if h2 + m2 == 0 {
            0.0
        } else {
            h2 as f64 / (h2 + m2) as f64
        },
        cached_modeled_s,
    }))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Host wall seconds of a fixed kernel-service workload with the flight
/// recorder on vs off — the tracing-overhead trend of the observability
/// layer. Additive and machine-dependent like `host_wall_seconds`, so the
/// baseline gate never reads it; the committed JSON diff shows whether
/// the always-on recorder stays cheap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOverhead {
    /// Wall seconds of the probe workload with the recorder capturing.
    pub recorder_on_wall_s: f64,
    /// Wall seconds of the identical workload with the recorder off.
    pub recorder_off_wall_s: f64,
}

impl TraceOverhead {
    /// Recorder overhead as a percentage of the recorder-off wall.
    pub fn overhead_percent(&self) -> f64 {
        if self.recorder_off_wall_s <= 0.0 {
            return 0.0;
        }
        100.0 * (self.recorder_on_wall_s / self.recorder_off_wall_s - 1.0)
    }
}

/// Launches per overhead-probe pass: one tenant session submitting a
/// small cached kernel repeatedly, so the measured path is exactly the
/// traced launch pipeline (admission → cache hit → DMA → enqueue →
/// launch), not the one-off build.
pub const OVERHEAD_LAUNCHES: usize = 64;

const OVERHEAD_SRC: &str = r#"
__kernel void saxpy(__global float* y, __global const float* x, float a) {
    size_t i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}
"#;

fn overhead_pass(service: &oclsim::serve::Service, tenant: &str) -> Result<f64, benchsuite::Error> {
    use oclsim::serve::{JobArg, LaunchJob, TenantQuota};
    let n = 256usize;
    let x: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let y: Vec<u8> = (0..n)
        .flat_map(|i| ((i % 5) as f32).to_le_bytes())
        .collect();
    let job = LaunchJob {
        source: OVERHEAD_SRC.to_string(),
        kernel: "saxpy".to_string(),
        build_options: String::new(),
        args: vec![
            JobArg::InOut(y),
            JobArg::In(x),
            JobArg::Scalar(oclsim::Value::F32(2.0)),
        ],
        global: vec![n],
        local: Some(vec![32]),
    };
    let session = service.session(tenant, TenantQuota::unlimited());
    // warm the binary cache so both passes measure cached launches only
    session
        .submit(0, &job)
        .map_err(|e| benchsuite::Error::Hpl(hpl::Error::Backend(e)))?;
    let t0 = std::time::Instant::now();
    for _ in 0..OVERHEAD_LAUNCHES {
        session
            .submit(0, &job)
            .map_err(|e| benchsuite::Error::Hpl(hpl::Error::Backend(e)))?;
    }
    Ok(t0.elapsed().as_secs_f64())
}

/// Measure the flight recorder's host-wall overhead: the identical probe
/// workload twice, recorder off then on. Restores the recorder switch
/// (production mode is always-on). The probe's completed traces stay in
/// the bounded sink under `overhead-*` tenant names, which no other
/// consumer selects.
pub fn trace_overhead() -> Result<TraceOverhead, benchsuite::Error> {
    let service = oclsim::serve::Service::new(oclsim::serve::ServiceConfig::default())
        .map_err(|e| benchsuite::Error::Hpl(hpl::Error::Backend(e)))?;
    let was = oclsim::obs::recorder_enabled();
    oclsim::obs::set_recorder_enabled(false);
    let off = overhead_pass(&service, "overhead-off");
    oclsim::obs::set_recorder_enabled(true);
    let on = overhead_pass(&service, "overhead-on");
    oclsim::obs::set_recorder_enabled(was);
    Ok(TraceOverhead {
        recorder_on_wall_s: on?,
        recorder_off_wall_s: off?,
    })
}

/// Wall-clock throughput figures from a `report -- soak` run, recorded in
/// the trajectory as additive trend fields. Like `host_wall_seconds` they
/// are machine-dependent, so the baseline gate never reads them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakSummary {
    /// Median tenant workload latency, milliseconds.
    pub soak_p50_ms: f64,
    /// 99th-percentile tenant workload latency, milliseconds.
    pub soak_p99_ms: f64,
    /// Admitted service launches per wall second of the concurrent phase.
    pub launches_per_sec: f64,
}

/// Serialise the trajectory as the committed `BENCH_*.json` format.
pub fn to_json(entries: &[BenchEntry]) -> String {
    to_json_with_soak(entries, None)
}

/// [`to_json`] plus an optional top-level `"soak"` object carrying the
/// multi-tenant soak trend fields.
pub fn to_json_with_soak(entries: &[BenchEntry], soak: Option<&SoakSummary>) -> String {
    to_json_full(entries, soak, None)
}

/// [`to_json_with_soak`] plus an optional top-level `"trace_overhead"`
/// object carrying the flight-recorder overhead trend fields. Both
/// objects are additive: the baseline gate reads neither.
pub fn to_json_full(
    entries: &[BenchEntry],
    soak: Option<&SoakSummary>,
    overhead: Option<&TraceOverhead>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"pr\": \"pr4\",\n");
    if let Some(s) = soak {
        let _ = writeln!(
            out,
            "  \"soak\": {{\"soak_p50_ms\": {:.6}, \"soak_p99_ms\": {:.6}, \"launches_per_sec\": {:.3}}},",
            s.soak_p50_ms, s.soak_p99_ms, s.launches_per_sec
        );
    }
    if let Some(o) = overhead {
        let _ = writeln!(
            out,
            "  \"trace_overhead\": {{\"recorder_on_wall_s\": {:.6}, \"recorder_off_wall_s\": {:.6}, \"overhead_percent\": {:.3}}},",
            o.recorder_on_wall_s,
            o.recorder_off_wall_s,
            o.overhead_percent()
        );
    }
    out.push_str("  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"bench\": \"{}\",", json_escape(e.bench));
        let _ = writeln!(out, "      \"mode\": \"{}\",", json_escape(e.mode));
        let _ = writeln!(
            out,
            "      \"modeled_device_seconds\": {:.9},",
            e.modeled_device_seconds
        );
        let _ = writeln!(out, "      \"h2d_count\": {},", e.h2d_count);
        let _ = writeln!(out, "      \"h2d_bytes\": {},", e.h2d_bytes);
        let _ = writeln!(out, "      \"d2h_count\": {},", e.d2h_count);
        let _ = writeln!(out, "      \"cache_hits\": {},", e.cache_hits);
        let _ = writeln!(out, "      \"cache_misses\": {},", e.cache_misses);
        let _ = writeln!(out, "      \"redundant_uploads\": {},", e.redundant_uploads);
        let _ = writeln!(out, "      \"hpl_sloc\": {},", e.hpl_sloc);
        let _ = writeln!(out, "      \"backend\": \"{}\",", json_escape(e.backend));
        let _ = writeln!(
            out,
            "      \"sched_host_wall_s\": {:.6},",
            e.sched_host_wall_s
        );
        match &e.cache {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "      \"cache\": {{\"l1_hit_rate\": {:.6}, \"l2_hit_rate\": {:.6}, \"cached_modeled_s\": {:.9}}},",
                    c.l1_hit_rate, c.l2_hit_rate, c.cached_modeled_s
                );
            }
            None => out.push_str("      \"cache\": null,\n"),
        }
        let _ = writeln!(out, "      \"opt_modeled_s\": {:.9},", e.opt_modeled_s);
        let s = &e.pass_stats;
        let _ = writeln!(
            out,
            "      \"pass_stats\": {{\"const_folded\": {}, \"const_propagated\": {}, \"dce_removed\": {}, \"branches_simplified\": {}, \"cse_replaced\": {}, \"licm_hoisted\": {}}},",
            s.const_folded,
            s.const_propagated,
            s.dce_removed,
            s.branches_simplified,
            s.cse_replaced,
            s.licm_hoisted
        );
        match &e.hot_line {
            Some(h) => {
                let site = match &h.site {
                    Some(s) => format!("\"{}\"", json_escape(s)),
                    None => "null".to_string(),
                };
                let _ = writeln!(
                    out,
                    "      \"hot_line\": {{\"kernel\": \"{}\", \"line\": {}, \"site\": {site}, \"tx_share\": {:.6}}},",
                    json_escape(&h.kernel),
                    h.line,
                    h.tx_share
                );
            }
            None => out.push_str("      \"hot_line\": null,\n"),
        }
        out.push_str("      \"host_wall_seconds\": {");
        for (j, (cat, secs)) in e.host_wall_seconds.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {:.6}", json_escape(cat), secs);
        }
        out.push_str("}\n");
        out.push_str(if i + 1 < entries.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// A baseline row as read back from a committed `BENCH_*.json`.
struct BaselineEntry {
    bench: String,
    mode: String,
    modeled_device_seconds: f64,
    redundant_uploads: u64,
}

fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let root = parse(text)?;
    let schema = root.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != SCHEMA {
        return Err(format!(
            "baseline schema is `{schema}`, expected `{SCHEMA}`"
        ));
    }
    let benches = root
        .get("benchmarks")
        .and_then(Value::as_arr)
        .ok_or("baseline has no `benchmarks` array")?;
    benches
        .iter()
        .map(|b| {
            let field = |k: &str| {
                b.get(k)
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("baseline entry missing numeric `{k}`"))
            };
            Ok(BaselineEntry {
                bench: b
                    .get("bench")
                    .and_then(Value::as_str)
                    .ok_or("baseline entry missing `bench`")?
                    .to_string(),
                mode: b
                    .get("mode")
                    .and_then(Value::as_str)
                    .ok_or("baseline entry missing `mode`")?
                    .to_string(),
                modeled_device_seconds: field("modeled_device_seconds")?,
                redundant_uploads: field("redundant_uploads")? as u64,
            })
        })
        .collect()
}

/// Diff a fresh run against a committed baseline. `Ok(failures)` lists
/// every gate violation (empty = green); `Err` means the baseline itself
/// could not be parsed.
pub fn check_against_baseline(
    entries: &[BenchEntry],
    baseline_text: &str,
) -> Result<Vec<String>, String> {
    let baseline = parse_baseline(baseline_text)?;
    let mut failures = Vec::new();
    for b in &baseline {
        let Some(cur) = entries
            .iter()
            .find(|e| e.bench == b.bench && e.mode == b.mode)
        else {
            failures.push(format!(
                "{} {}: present in baseline but missing from this run",
                b.bench, b.mode
            ));
            continue;
        };
        let limit = b.modeled_device_seconds * REGRESSION_FACTOR + 1e-12;
        if cur.modeled_device_seconds > limit {
            failures.push(format!(
                "{} {}: modeled device time {:.9} s regressed >{:.0}% over baseline {:.9} s",
                b.bench,
                b.mode,
                cur.modeled_device_seconds,
                (REGRESSION_FACTOR - 1.0) * 100.0,
                b.modeled_device_seconds
            ));
        }
        if cur.redundant_uploads > b.redundant_uploads {
            failures.push(format!(
                "{} {}: {} redundant upload(s), baseline had {} — the coherence layer re-uploaded a valid device copy",
                b.bench, b.mode, cur.redundant_uploads, b.redundant_uploads
            ));
        }
    }
    Ok(failures)
}

/// Write the unified host+device Chrome trace for the Floyd–Warshall sync
/// run (host telemetry spans injected next to the device CU/DMA tracks)
/// plus the raw span JSONL. Both are schema-checked before writing.
/// Returns the written paths.
pub fn write_floyd_artifacts(
    device: &Device,
    run: &BenchRun,
    dir: &Path,
) -> std::io::Result<Vec<String>> {
    let trace = chrome_trace_with_host(device, &run.floyd_events, &run.floyd_spans);
    validate_chrome_trace(&trace)
        .map_err(|e| std::io::Error::other(format!("invalid host+device trace: {e}")))?;
    telemetry::check_nesting(&run.floyd_spans)
        .map_err(|e| std::io::Error::other(format!("malformed host span nesting: {e}")))?;
    let trace_path = dir.join("trace-floyd-host.json");
    std::fs::write(&trace_path, &trace)?;
    let jsonl_path = dir.join("spans-floyd.jsonl");
    std::fs::write(&jsonl_path, telemetry::spans_jsonl(&run.floyd_spans))?;
    Ok(vec![
        trace_path.display().to_string(),
        jsonl_path.display().to_string(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bench: &'static str, mode: &'static str, secs: f64, redundant: u64) -> BenchEntry {
        BenchEntry {
            bench,
            mode,
            modeled_device_seconds: secs,
            h2d_count: 1,
            h2d_bytes: 1024,
            d2h_count: 1,
            cache_hits: 1,
            cache_misses: 1,
            redundant_uploads: redundant,
            hpl_sloc: 100,
            host_wall_seconds: BTreeMap::from([("hpl", 0.001)]),
            hot_line: Some(HotLineInfo {
                kernel: "hpl_k".into(),
                line: 7,
                site: Some("crates/benchsuite/src/x.rs:42".into()),
                tx_share: 0.5,
            }),
            opt_modeled_s: 0.0009,
            pass_stats: PassStats {
                licm_hoisted: 1,
                ..PassStats::default()
            },
            backend: "wg",
            sched_host_wall_s: 0.002,
            cache: Some(CacheTrend {
                l1_hit_rate: 0.75,
                l2_hit_rate: 0.5,
                cached_modeled_s: 0.0011,
            }),
        }
    }

    #[test]
    fn json_round_trips_through_the_validator_parser() {
        let json = to_json(&[
            entry("ep", "sync", 0.0012, 0),
            entry("ep", "async", 0.0011, 0),
        ]);
        let parsed = parse(&json).expect("emitted JSON parses");
        assert_eq!(parsed.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert_eq!(
            parsed
                .get("benchmarks")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(2)
        );
        // the additive hot-line object round-trips
        let first = &parsed.get("benchmarks").and_then(Value::as_arr).unwrap()[0];
        let hot = first.get("hot_line").expect("hot_line present");
        assert_eq!(hot.get("line").and_then(Value::as_num), Some(7.0));
        assert_eq!(hot.get("kernel").and_then(Value::as_str), Some("hpl_k"));
    }

    #[test]
    fn gate_ignores_hot_line_differences() {
        // hot_line is trend data, not a gate input: a baseline whose hot
        // line differs (or is missing) must not fail an otherwise
        // identical run
        let mut base = entry("ep", "sync", 0.001, 0);
        base.hot_line = None;
        let baseline = to_json(&[base]);
        let ok = check_against_baseline(&[entry("ep", "sync", 0.001, 0)], &baseline).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn gate_ignores_unknown_fields() {
        // the gate reads bench/mode/modeled_device_seconds/redundant_uploads
        // and nothing else, so additive fields — the soak object, or keys a
        // future PR invents — never break an older or newer baseline
        let with_soak = to_json_with_soak(
            &[entry("ep", "sync", 0.001, 0)],
            Some(&SoakSummary {
                soak_p50_ms: 12.5,
                soak_p99_ms: 48.0,
                launches_per_sec: 310.0,
            }),
        );
        assert!(
            with_soak.contains("\"soak_p50_ms\": 12.500000"),
            "{with_soak}"
        );
        assert!(parse(&with_soak).is_ok(), "{with_soak}");
        // soak-bearing baseline vs plain run
        let ok = check_against_baseline(&[entry("ep", "sync", 0.001, 0)], &with_soak).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
        // the trace_overhead object is additive in exactly the same way
        let with_overhead = to_json_full(
            &[entry("ep", "sync", 0.001, 0)],
            None,
            Some(&TraceOverhead {
                recorder_on_wall_s: 0.0105,
                recorder_off_wall_s: 0.0100,
            }),
        );
        assert!(
            with_overhead.contains("\"recorder_on_wall_s\": 0.010500"),
            "{with_overhead}"
        );
        assert!(
            with_overhead.contains("\"overhead_percent\": 5.000"),
            "{with_overhead}"
        );
        assert!(parse(&with_overhead).is_ok(), "{with_overhead}");
        let ok = check_against_baseline(&[entry("ep", "sync", 0.001, 0)], &with_overhead).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
        // and the gate still fires through it
        let bad = check_against_baseline(&[entry("ep", "sync", 0.002, 0)], &with_overhead).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
        // hand-crafted baseline with unknown keys at both levels
        let alien = r#"{
  "schema": "hpl-bench-trajectory-v1",
  "pr": "pr4",
  "future_top_level": {"x": 1},
  "benchmarks": [
    {
      "bench": "ep",
      "mode": "sync",
      "modeled_device_seconds": 0.001,
      "redundant_uploads": 0,
      "backend": "ref",
      "sched_host_wall_s": 123.0,
      "future_field": "ignored"
    }
  ]
}"#;
        let ok = check_against_baseline(&[entry("ep", "sync", 0.001, 0)], alien).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
        // and the gate still fires through the unknown fields
        let bad = check_against_baseline(&[entry("ep", "sync", 0.002, 0)], alien).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn gate_ignores_cache_fields() {
        // the cache object is an additive trend field: hit rates and
        // cache-aware modeled seconds may drift arbitrarily (or vanish
        // entirely) without tripping the gate, which reads only
        // bench/mode/modeled_device_seconds/redundant_uploads
        let mut base = entry("ep", "sync", 0.001, 0);
        base.cache = Some(CacheTrend {
            l1_hit_rate: 0.99,
            l2_hit_rate: 0.99,
            cached_modeled_s: 0.000001,
        });
        let baseline = to_json(&[base]);
        assert!(baseline.contains("\"l1_hit_rate\": 0.990000"), "{baseline}");
        let mut run = entry("ep", "sync", 0.001, 0);
        run.cache = None; // cacheless run vs cache-bearing baseline
        let ok = check_against_baseline(&[run], &baseline).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
        // null cache serialises and parses cleanly too
        let mut nullbase = entry("ep", "sync", 0.001, 0);
        nullbase.cache = None;
        let null_json = to_json(&[nullbase]);
        assert!(null_json.contains("\"cache\": null"), "{null_json}");
        assert!(parse(&null_json).is_ok(), "{null_json}");
        let ok = check_against_baseline(&[entry("ep", "sync", 0.001, 0)], &null_json).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
        // and the gate still fires through the cache fields
        let bad = check_against_baseline(&[entry("ep", "sync", 0.002, 0)], &baseline).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn gate_ignores_opt_fields() {
        // `opt_modeled_s` and `pass_stats` are additive trend fields like
        // `hot_line`: wildly different optimizer outcomes between baseline
        // and run must not trip the >10% headroom gate, which reads only
        // bench/mode/modeled_device_seconds/redundant_uploads
        let mut base = entry("ep", "sync", 0.001, 0);
        base.opt_modeled_s = 0.000001; // 1000x better than the run's
        base.pass_stats = PassStats::default();
        let baseline = to_json(&[base]);
        assert!(
            baseline.contains("\"opt_modeled_s\": 0.000001000"),
            "{baseline}"
        );
        assert!(
            baseline.contains("\"pass_stats\": {\"const_folded\": 0"),
            "{baseline}"
        );

        let mut run = entry("ep", "sync", 0.001, 0);
        run.opt_modeled_s = 0.5;
        run.pass_stats = PassStats {
            dce_removed: 99,
            cse_replaced: 42,
            ..PassStats::default()
        };
        let ok = check_against_baseline(&[run.clone()], &baseline).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
        // and a pre-opt baseline without the fields at all still gates the
        // same run — the fields are additive in both directions
        let legacy = r#"{
  "schema": "hpl-bench-trajectory-v1",
  "pr": "pr4",
  "benchmarks": [
    {"bench": "ep", "mode": "sync", "modeled_device_seconds": 0.001, "redundant_uploads": 0}
  ]
}"#;
        let ok = check_against_baseline(&[run.clone()], legacy).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
        run.modeled_device_seconds = 0.0012;
        let bad = check_against_baseline(&[run], legacy).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn gate_accepts_identical_run_and_flags_regressions() {
        let baseline = to_json(&[entry("ep", "sync", 0.001, 0)]);
        // identical run: green
        let ok = check_against_baseline(&[entry("ep", "sync", 0.001, 0)], &baseline).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
        // 9% slower: still inside the headroom
        let ok = check_against_baseline(&[entry("ep", "sync", 0.00109, 0)], &baseline).unwrap();
        assert!(ok.is_empty(), "{ok:?}");
        // 20% slower: gate fires
        let bad = check_against_baseline(&[entry("ep", "sync", 0.0012, 0)], &baseline).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
        // new redundant upload: gate fires
        let bad = check_against_baseline(&[entry("ep", "sync", 0.001, 1)], &baseline).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
        // benchmark vanished: gate fires
        let bad = check_against_baseline(&[entry("floyd", "sync", 0.001, 0)], &baseline).unwrap();
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn bad_baselines_are_rejected() {
        assert!(check_against_baseline(&[], "not json").is_err());
        assert!(check_against_baseline(&[], "{\"schema\": \"other\"}").is_err());
    }
}
