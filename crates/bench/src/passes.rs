//! `report -- passes` — the optimizing mid-end's per-pass delta table.
//!
//! For every benchmark and every [`OptLevel`] this module builds the
//! handwritten and HPL-generated kernels at that level, collects the
//! per-pass rewrite counters the mid-end reports ([`PassStats`]), and runs
//! the full benchmark (tiny `Scale::Test` instances) to measure the
//! modeled device time. The report renders the deltas against the `-O0`
//! baseline and exports them to `target/passes.json`; `ci.sh` requires a
//! modeled-time reduction on at least three of the five benchmarks at
//! `-O2`.
//!
//! The process-global HPL opt level is switched per measured level and
//! restored afterwards; the kernel cache is cleared around every switch so
//! each run really compiles at its own level.

use benchsuite::{ep, floyd, reduction, spmv, transpose};
use oclsim::{Device, OptLevel, PassStats};

use crate::fig7::{self, Scale};

/// Pass counters and modeled times for one benchmark at one level.
#[derive(Debug, Clone)]
pub struct PassRow {
    /// Benchmark name (paper naming, matches [`fig7`]).
    pub bench: String,
    pub level: OptLevel,
    /// Mid-end counters for the handwritten OpenCL source.
    pub opencl_stats: PassStats,
    /// Mid-end counters for the HPL-generated source.
    pub hpl_stats: PassStats,
    /// Modeled device seconds of the handwritten version's kernels.
    pub opencl_modeled_s: f64,
    /// Modeled device seconds of the HPL version's kernels.
    pub hpl_modeled_s: f64,
    /// Executed instructions of the handwritten kernels (profiled
    /// counters at annotate's tiny scale). Unlike the roofline-modeled
    /// seconds this is sensitive to ALU savings on memory-bound kernels.
    pub opencl_instructions: u64,
}

/// All rows, grouped by benchmark in [`OptLevel`] order.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    pub rows: Vec<PassRow>,
}

impl PassReport {
    /// The `-O0` row for `bench`.
    pub fn baseline(&self, bench: &str) -> Option<&PassRow> {
        self.rows
            .iter()
            .find(|r| r.bench == bench && r.level == OptLevel::O0)
    }

    /// Benchmarks whose handwritten version at `level` strictly beats the
    /// `-O0` baseline — fewer executed instructions, or less modeled
    /// device time (the roofline hides pure-ALU wins on memory-bound
    /// kernels, so either counter counts as a reduction).
    pub fn reduced_benches(&self, level: OptLevel) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.level == level)
            .filter(|r| {
                self.baseline(&r.bench).is_some_and(|b| {
                    r.opencl_instructions < b.opencl_instructions
                        || r.opencl_modeled_s < b.opencl_modeled_s - 1e-12
                })
            })
            .map(|r| r.bench.as_str())
            .collect()
    }
}

fn handwritten_source(bench: &str) -> Option<&'static str> {
    match bench {
        "EP" => Some(ep::opencl_version::SOURCE),
        "Floyd" => Some(floyd::opencl_version::SOURCE),
        "transpose" => Some(transpose::opencl_version::SOURCE),
        "spmv" => Some(spmv::opencl_version::SOURCE),
        "reduction" => Some(reduction::opencl_version::SOURCE),
        _ => None,
    }
}

fn generated_source(bench: &str, device: &Device) -> Result<String, String> {
    let gen = |r: Result<String, hpl::Error>| r.map_err(|e| e.to_string());
    match bench {
        "EP" => gen(ep::hpl_version::generated_source(device)),
        "Floyd" => gen(floyd::hpl_version::generated_source(device)),
        "transpose" => gen(transpose::hpl_version::generated_source(device)),
        "spmv" => gen(spmv::hpl_version::generated_source(device)),
        "reduction" => gen(reduction::hpl_version::generated_source(device)),
        other => Err(format!("unknown benchmark {other}")),
    }
}

fn stats_for(device: &Device, source: &str, level: OptLevel) -> Result<PassStats, String> {
    let (program, _ctx, _queue, _build) =
        benchsuite::common::build_for(device, source, level.flag()).map_err(|e| e.to_string())?;
    Ok(program.pass_stats())
}

/// Run every benchmark at `-O0`, `-O1` and `-O2` and collect the rows.
/// Restores the process-global opt level (and clears the kernel cache)
/// before returning, success or not.
pub fn compute(device: &Device) -> Result<PassReport, String> {
    let prev = hpl::opt_level();
    let result = compute_inner(device);
    hpl::set_opt_level(prev);
    hpl::clear_kernel_cache();
    result
}

fn compute_inner(device: &Device) -> Result<PassReport, String> {
    let mut report = PassReport::default();
    for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        hpl::set_opt_level(level);
        hpl::clear_kernel_cache();
        let runs = fig7::compute(device, Scale::Test).map_err(|e| e.to_string())?;
        // benchmark builds route through the sanitizer sink; the lints are
        // someone else's assertion, not this table's
        let _ = hpl::take_kernel_lints();
        for r in &runs {
            let Some(hand) = handwritten_source(r.name) else {
                continue;
            };
            let generated = generated_source(r.name, device)?;
            report.rows.push(PassRow {
                bench: r.name.to_string(),
                level,
                opencl_stats: stats_for(device, hand, level)?,
                hpl_stats: stats_for(device, &generated, level)?,
                opencl_modeled_s: r.opencl.kernel_modeled_seconds,
                hpl_modeled_s: r.hpl.kernel_modeled_seconds,
                opencl_instructions: crate::annotate::handwritten_instructions(
                    &r.name.to_lowercase(),
                    device,
                )?,
            });
        }
    }
    Ok(report)
}

fn stats_json(s: &PassStats) -> String {
    format!(
        concat!(
            "{{\"const_folded\": {}, \"const_propagated\": {}, \"dce_removed\": {}, ",
            "\"branches_simplified\": {}, \"cse_replaced\": {}, \"licm_hoisted\": {}}}"
        ),
        s.const_folded,
        s.const_propagated,
        s.dce_removed,
        s.branches_simplified,
        s.cse_replaced,
        s.licm_hoisted
    )
}

/// Serialize the report for `target/passes.json`. Hand-rolled like the
/// trajectory export: stable key order, no serde dependency.
pub fn to_json(report: &PassReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"hpl-bench-passes-v1\",\n  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"bench\": \"{}\",\n", r.bench));
        out.push_str(&format!("      \"level\": \"{}\",\n", r.level));
        out.push_str(&format!(
            "      \"opencl_modeled_s\": {:.9},\n",
            r.opencl_modeled_s
        ));
        out.push_str(&format!(
            "      \"hpl_modeled_s\": {:.9},\n",
            r.hpl_modeled_s
        ));
        out.push_str(&format!(
            "      \"opencl_instructions\": {},\n",
            r.opencl_instructions
        ));
        out.push_str(&format!(
            "      \"opencl_pass_stats\": {},\n",
            stats_json(&r.opencl_stats)
        ));
        out.push_str(&format!(
            "      \"hpl_pass_stats\": {}\n",
            stats_json(&r.hpl_stats)
        ));
        out.push_str(if i + 1 < report.rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_report_shows_o2_reductions_and_restores_the_level() {
        let device = crate::tesla();
        let before = hpl::opt_level();
        let report = compute(&device).expect("passes report");
        assert_eq!(hpl::opt_level(), before, "global opt level restored");

        // five benchmarks x three levels
        assert_eq!(report.rows.len(), 15, "{report:?}");
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            assert_eq!(report.rows.iter().filter(|r| r.level == level).count(), 5);
        }
        // -O0 must not rewrite anything
        for r in report.rows.iter().filter(|r| r.level == OptLevel::O0) {
            assert_eq!(r.opencl_stats.total(), 0, "{}: -O0 rewrote", r.bench);
            assert_eq!(r.hpl_stats.total(), 0, "{}: -O0 rewrote", r.bench);
        }
        // the acceptance bar: at -O2, a strict reduction (executed
        // instructions or modeled time) on at least three of the five
        // benchmarks
        let reduced = report.reduced_benches(OptLevel::O2);
        assert!(
            reduced.len() >= 3,
            "expected >=3 benchmarks reduced at -O2, got {reduced:?}"
        );
        // and the counters explain why: every reduced benchmark's mid-end
        // reported rewrites (transpose/spmv are already minimal — the
        // sanitizer finding nothing there is the honest result)
        for r in report.rows.iter().filter(|r| r.level == OptLevel::O2) {
            if reduced.contains(&r.bench.as_str()) {
                assert!(
                    r.opencl_stats.total() > 0,
                    "{}: reduced with no rewrites",
                    r.bench
                );
            }
        }
        // instruction counts never regress under optimization
        for r in report.rows.iter().filter(|r| r.level != OptLevel::O0) {
            let base = report.baseline(&r.bench).expect("baseline row");
            assert!(
                r.opencl_instructions <= base.opencl_instructions,
                "{} at {}: {} instructions vs {} at -O0",
                r.bench,
                r.level,
                r.opencl_instructions,
                base.opencl_instructions
            );
        }

        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"hpl-bench-passes-v1\""));
        assert!(json.contains("\"licm_hoisted\""));
    }
}
