//! The lint corpus: small deliberately-buggy kernels under
//! `tests/lint_corpus/` that every static checker must flag with the right
//! span, plus dynamic cross-checks — the interpreter's runtime traps and
//! the shadow-memory race sanitizer confirm that the static findings are
//! true positives, not lattice noise.

use oclsim::clc::analysis::analyze_source;
use oclsim::{
    CommandQueue, Context, Device, DeviceProfile, DiagKind, Error, MemAccess, Program, Severity,
    Strictness,
};

const DIVERGENT_BARRIER: &str = include_str!("lint_corpus/divergent_barrier.cl");
const RACY_TRANSPOSE: &str = include_str!("lint_corpus/racy_transpose.cl");
const OOB_FIXED_ARRAY: &str = include_str!("lint_corpus/oob_fixed_array.cl");
const OOB_LAUNCH: &str = include_str!("lint_corpus/oob_launch.cl");
const UNIFORM_ADDR_RACE: &str = include_str!("lint_corpus/uniform_addr_race.cl");

struct Rig {
    ctx: Context,
    queue: CommandQueue,
}

fn rig() -> Rig {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    Rig { ctx, queue }
}

fn find(src: &str, kind: DiagKind) -> oclsim::Diagnostic {
    let a = analyze_source(src).unwrap();
    a.diagnostics
        .iter()
        .find(|d| d.kind == kind)
        .unwrap_or_else(|| panic!("no {kind:?} finding in {:?}", a.diagnostics))
        .clone()
}

// ---- static findings, with spans --------------------------------------------------

#[test]
fn divergent_barrier_flagged_at_the_barrier_line() {
    let d = find(DIVERGENT_BARRIER, DiagKind::BarrierDivergence);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.line, 6, "{d}");
}

#[test]
fn racy_transpose_without_barrier_flagged() {
    let d = find(RACY_TRANSPOSE, DiagKind::DataRace);
    // the indices are affine but cross-item, with no proof of disjointness:
    // conservative lattice top downgrades to a warning
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.span.line >= 10, "finding must point into the body: {d}");
}

#[test]
fn fixed_array_oob_flagged_at_the_write() {
    let d = find(OOB_FIXED_ARRAY, DiagKind::OutOfBounds);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.line, 5, "{d}");
}

#[test]
fn uniform_address_race_is_a_definite_error() {
    let d = find(UNIFORM_ADDR_RACE, DiagKind::DataRace);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.line, 4, "{d}");
}

#[test]
fn launch_oob_records_an_enqueue_time_access() {
    // nothing is statically wrong, but the write range must be recorded
    // for the enqueue-time bounds check
    let a = analyze_source(OOB_LAUNCH).unwrap();
    assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    assert_eq!(a.kernels["k"].launch_accesses.len(), 1);
}

// ---- build-time wiring: Strictness and the diagnostics sink ------------------------

#[test]
fn warn_default_reports_but_builds() {
    let r = rig();
    let p = Program::from_source(&r.ctx, DIVERGENT_BARRIER);
    p.build("").unwrap();
    let diags = p.diagnostics();
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagKind::BarrierDivergence && d.severity == Severity::Error),
        "{diags:?}"
    );
    assert!(
        p.build_log().contains("barrier-divergence"),
        "lints must land in the build log"
    );
}

#[test]
fn werror_denies_error_findings_at_build_time() {
    let r = rig();
    for src in [DIVERGENT_BARRIER, OOB_FIXED_ARRAY, UNIFORM_ADDR_RACE] {
        let p = Program::from_source(&r.ctx, src);
        let err = p.build("-Werror").unwrap_err();
        match err {
            Error::BuildFailure(log) => {
                assert!(log.contains("sanitizer findings denied"), "{log}")
            }
            other => panic!("expected a build failure, got: {other}"),
        }
    }
    // warnings alone do not fail the build, even under -Werror
    let p = Program::from_source(&r.ctx, RACY_TRANSPOSE);
    p.build("-Werror").unwrap();
}

#[test]
fn dash_w_silences_the_sanitizer() {
    let r = rig();
    let p = Program::from_source(&r.ctx, DIVERGENT_BARRIER);
    p.build("-w").unwrap();
    assert!(p.diagnostics().is_empty());
}

// ---- dynamic confirmation: the runtime traps agree with the static findings --------

#[test]
fn divergent_barrier_confirmed_by_runtime_trap() {
    let r = rig();
    let p = Program::from_source(&r.ctx, DIVERGENT_BARRIER);
    p.build("").unwrap();
    let k = p.kernel("k").unwrap();
    let buf = r.ctx.create_buffer(4 * 64, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    // one group of 64: items 0..5 reach the barrier, the rest do not
    let err = r.queue.enqueue_ndrange(&k, &[64], Some(&[64])).unwrap_err();
    assert!(matches!(err, Error::BarrierDivergence(_)), "{err}");
}

#[test]
fn static_race_confirmed_by_dynamic_shadow_sanitizer() {
    // the acceptance case: a static DataRace finding reproduced as a
    // dynamic DataRace trap by the shadow-memory checker
    let stat = find(UNIFORM_ADDR_RACE, DiagKind::DataRace);
    assert_eq!(stat.severity, Severity::Error);

    let r = rig();
    let p = Program::from_source(&r.ctx, UNIFORM_ADDR_RACE);
    p.build("").unwrap();
    p.set_sanitize(true);
    let k = p.kernel("k").unwrap();
    let buf = r.ctx.create_buffer(4 * 8, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    let err = r.queue.enqueue_ndrange(&k, &[8], Some(&[8])).unwrap_err();
    match err {
        Error::DataRace { space, offset, .. } => {
            assert_eq!(space, "global");
            assert_eq!(offset, 0, "the race is on out[0]");
        }
        other => panic!("expected the dynamic sanitizer to trap, got: {other}"),
    }
}

#[test]
fn racy_transpose_confirmed_by_dynamic_shadow_sanitizer() {
    let stat = find(RACY_TRANSPOSE, DiagKind::DataRace);
    assert_eq!(stat.severity, Severity::Warning);

    let r = rig();
    let p = Program::from_source(&r.ctx, RACY_TRANSPOSE);
    p.build("").unwrap();
    p.set_sanitize(true);
    let k = p.kernel("t").unwrap();
    let n = 16usize;
    let src: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
    let dst = r
        .ctx
        .create_buffer(4 * n * n, MemAccess::ReadWrite)
        .unwrap();
    let sbuf = r.ctx.create_buffer_from(&src, MemAccess::ReadOnly).unwrap();
    k.set_arg_buffer(0, &dst).unwrap();
    k.set_arg_buffer(1, &sbuf).unwrap();
    k.set_arg_scalar(2, n as i32).unwrap();
    k.set_arg_scalar(3, n as i32).unwrap();
    let err = r
        .queue
        .enqueue_ndrange(&k, &[n, n], Some(&[n, n]))
        .unwrap_err();
    match err {
        Error::DataRace { space, .. } => assert_eq!(space, "local"),
        other => panic!("expected the dynamic sanitizer to trap, got: {other}"),
    }
    // with the sanitizer off (the default) the racy read still executes —
    // the lock-step interpreter happens to give it a deterministic
    // schedule, which is exactly why the static warning matters
    p.set_sanitize(false);
    r.queue.enqueue_ndrange(&k, &[n, n], Some(&[n, n])).unwrap();
}

// ---- enqueue-time bounds: launch rejection ----------------------------------------

#[test]
fn launch_oob_rejected_in_deny_mode_and_trapped_in_warn() {
    let r = rig();
    let p = Program::from_source(&r.ctx, OOB_LAUNCH);
    p.build("").unwrap();
    let k = p.kernel("k").unwrap();
    // 4-element buffer: the kernel writes elements 1000..=1003
    let buf = r.ctx.create_buffer(4 * 4, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();

    p.set_strictness(Strictness::Deny);
    let err = r.queue.enqueue_ndrange(&k, &[4], Some(&[4])).unwrap_err();
    match err {
        Error::InvalidLaunch(msg) => {
            assert!(msg.contains("rejected by the kernel sanitizer"), "{msg}")
        }
        other => panic!("expected the launch to be rejected, got: {other}"),
    }

    // default Warn records the finding but lets the launch proceed — the
    // interpreter's memory trap then catches the actual fault
    p.set_strictness(Strictness::Warn);
    let err = r.queue.enqueue_ndrange(&k, &[4], Some(&[4])).unwrap_err();
    assert!(matches!(err, Error::MemoryFault { .. }), "{err}");
    assert!(
        p.diagnostics()
            .iter()
            .any(|d| d.kind == DiagKind::OutOfBounds),
        "the Warn-mode launch must still record the finding"
    );

    // a big enough buffer launches cleanly even in Deny mode
    let big = r.ctx.create_buffer(4 * 1004, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &big).unwrap();
    p.set_strictness(Strictness::Deny);
    r.queue.enqueue_ndrange(&k, &[4], Some(&[4])).unwrap();
}

// ---- IR-dataflow refinement: analysis-backed sanitizer precision -------------------

const PROVED_SAFE: &str = include_str!("lint_corpus/proved_safe.cl");

/// Every corpus source, for whole-corpus precision accounting.
const CORPUS: &[&str] = &[
    DIVERGENT_BARRIER,
    RACY_TRANSPOSE,
    OOB_FIXED_ARRAY,
    OOB_LAUNCH,
    UNIFORM_ADDR_RACE,
    PROVED_SAFE,
];

#[test]
fn refined_analysis_strictly_reduces_corpus_warnings() {
    use oclsim::clc::analysis::analyze_source_refined;
    let mut plain_warnings = 0usize;
    let mut refined_warnings = 0usize;
    for src in CORPUS {
        let plain = analyze_source(src).unwrap();
        let refined = analyze_source_refined(src).unwrap();
        plain_warnings += plain
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        refined_warnings += refined
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        // no Deny-level finding may disappear: the refinement only ever
        // touches warnings
        let errs = |a: &oclsim::Analysis| {
            a.diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .map(|d| (d.kernel.clone(), d.span, d.message.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(errs(&plain), errs(&refined), "errors must be preserved");
    }
    assert!(
        refined_warnings < plain_warnings,
        "refinement must strictly reduce conservative warnings \
         ({refined_warnings} vs {plain_warnings})"
    );
}

#[test]
fn proved_safe_corpus_demotes_to_notes_with_ranges() {
    use oclsim::clc::analysis::analyze_source_refined;
    // syntactic pass: both kernels draw conservative race warnings
    let plain = analyze_source(PROVED_SAFE).unwrap();
    assert!(
        plain
            .diagnostics
            .iter()
            .any(|d| d.kernel == "scatter_flag" && d.severity == Severity::Warning),
        "{:?}",
        plain.diagnostics
    );
    assert!(
        plain
            .diagnostics
            .iter()
            .any(|d| d.kernel == "masked_mark" && d.severity == Severity::Warning),
        "{:?}",
        plain.diagnostics
    );
    // refined pass: no warnings left, proved-safe notes in their place
    let refined = analyze_source_refined(PROVED_SAFE).unwrap();
    assert!(
        refined
            .diagnostics
            .iter()
            .all(|d| d.severity != Severity::Warning && d.severity != Severity::Error),
        "{:?}",
        refined.diagnostics
    );
    for kernel in ["scatter_flag", "masked_mark"] {
        assert!(
            refined.diagnostics.iter().any(|d| d.kernel == kernel
                && d.kind == DiagKind::ProvedSafe
                && d.severity == Severity::Note),
            "expected a proved-safe note for `{kernel}`: {:?}",
            refined.diagnostics
        );
    }
    // the loop-guarded private scratch accesses are proved in bounds by
    // the interval analysis
    assert!(
        refined
            .diagnostics
            .iter()
            .any(|d| d.kernel == "clamped_read" && d.message.contains("in bounds")),
        "{:?}",
        refined.diagnostics
    );
}

#[test]
fn refinement_keeps_genuine_findings() {
    use oclsim::clc::analysis::analyze_source_refined;
    // racy_transpose stores *loaded data* (varying per item): the dataflow
    // pass must not prove it safe
    let refined = analyze_source_refined(RACY_TRANSPOSE).unwrap();
    assert!(
        refined
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::DataRace && d.severity == Severity::Warning),
        "{:?}",
        refined.diagnostics
    );
    // uniform_addr_race stays a definite error
    let refined = analyze_source_refined(UNIFORM_ADDR_RACE).unwrap();
    assert!(
        refined
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::DataRace && d.severity == Severity::Error),
        "{:?}",
        refined.diagnostics
    );
}

#[test]
fn notes_never_deny_and_build_at_o2() {
    // -Werror + -O2: proved-safe notes must not fail the build
    let r = rig();
    let p = Program::from_source(&r.ctx, PROVED_SAFE);
    p.build("-Werror -O2").unwrap();
    assert!(
        p.diagnostics()
            .iter()
            .any(|d| d.kind == DiagKind::ProvedSafe),
        "{:?}",
        p.diagnostics()
    );
    // and at -O0 the conservative warnings come back (reference behavior)
    let p0 = Program::from_source(&r.ctx, PROVED_SAFE);
    p0.build("-O0").unwrap();
    assert!(
        p0.diagnostics()
            .iter()
            .any(|d| d.severity == Severity::Warning),
        "{:?}",
        p0.diagnostics()
    );
}
