//! The lint corpus: small deliberately-buggy kernels under
//! `tests/lint_corpus/` that every static checker must flag with the right
//! span, plus dynamic cross-checks — the interpreter's runtime traps and
//! the shadow-memory race sanitizer confirm that the static findings are
//! true positives, not lattice noise.

use oclsim::clc::analysis::analyze_source;
use oclsim::{
    CommandQueue, Context, Device, DeviceProfile, DiagKind, Error, MemAccess, Program, Severity,
    Strictness,
};

const DIVERGENT_BARRIER: &str = include_str!("lint_corpus/divergent_barrier.cl");
const RACY_TRANSPOSE: &str = include_str!("lint_corpus/racy_transpose.cl");
const OOB_FIXED_ARRAY: &str = include_str!("lint_corpus/oob_fixed_array.cl");
const OOB_LAUNCH: &str = include_str!("lint_corpus/oob_launch.cl");
const UNIFORM_ADDR_RACE: &str = include_str!("lint_corpus/uniform_addr_race.cl");

struct Rig {
    ctx: Context,
    queue: CommandQueue,
}

fn rig() -> Rig {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    Rig { ctx, queue }
}

fn find(src: &str, kind: DiagKind) -> oclsim::Diagnostic {
    let a = analyze_source(src).unwrap();
    a.diagnostics
        .iter()
        .find(|d| d.kind == kind)
        .unwrap_or_else(|| panic!("no {kind:?} finding in {:?}", a.diagnostics))
        .clone()
}

// ---- static findings, with spans --------------------------------------------------

#[test]
fn divergent_barrier_flagged_at_the_barrier_line() {
    let d = find(DIVERGENT_BARRIER, DiagKind::BarrierDivergence);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.line, 6, "{d}");
}

#[test]
fn racy_transpose_without_barrier_flagged() {
    let d = find(RACY_TRANSPOSE, DiagKind::DataRace);
    // the indices are affine but cross-item, with no proof of disjointness:
    // conservative lattice top downgrades to a warning
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.span.line >= 10, "finding must point into the body: {d}");
}

#[test]
fn fixed_array_oob_flagged_at_the_write() {
    let d = find(OOB_FIXED_ARRAY, DiagKind::OutOfBounds);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.line, 5, "{d}");
}

#[test]
fn uniform_address_race_is_a_definite_error() {
    let d = find(UNIFORM_ADDR_RACE, DiagKind::DataRace);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.line, 4, "{d}");
}

#[test]
fn launch_oob_records_an_enqueue_time_access() {
    // nothing is statically wrong, but the write range must be recorded
    // for the enqueue-time bounds check
    let a = analyze_source(OOB_LAUNCH).unwrap();
    assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    assert_eq!(a.kernels["k"].launch_accesses.len(), 1);
}

// ---- build-time wiring: Strictness and the diagnostics sink ------------------------

#[test]
fn warn_default_reports_but_builds() {
    let r = rig();
    let p = Program::from_source(&r.ctx, DIVERGENT_BARRIER);
    p.build("").unwrap();
    let diags = p.diagnostics();
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagKind::BarrierDivergence && d.severity == Severity::Error),
        "{diags:?}"
    );
    assert!(
        p.build_log().contains("barrier-divergence"),
        "lints must land in the build log"
    );
}

#[test]
fn werror_denies_error_findings_at_build_time() {
    let r = rig();
    for src in [DIVERGENT_BARRIER, OOB_FIXED_ARRAY, UNIFORM_ADDR_RACE] {
        let p = Program::from_source(&r.ctx, src);
        let err = p.build("-Werror").unwrap_err();
        match err {
            Error::BuildFailure(log) => {
                assert!(log.contains("sanitizer findings denied"), "{log}")
            }
            other => panic!("expected a build failure, got: {other}"),
        }
    }
    // warnings alone do not fail the build, even under -Werror
    let p = Program::from_source(&r.ctx, RACY_TRANSPOSE);
    p.build("-Werror").unwrap();
}

#[test]
fn dash_w_silences_the_sanitizer() {
    let r = rig();
    let p = Program::from_source(&r.ctx, DIVERGENT_BARRIER);
    p.build("-w").unwrap();
    assert!(p.diagnostics().is_empty());
}

// ---- dynamic confirmation: the runtime traps agree with the static findings --------

#[test]
fn divergent_barrier_confirmed_by_runtime_trap() {
    let r = rig();
    let p = Program::from_source(&r.ctx, DIVERGENT_BARRIER);
    p.build("").unwrap();
    let k = p.kernel("k").unwrap();
    let buf = r.ctx.create_buffer(4 * 64, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    // one group of 64: items 0..5 reach the barrier, the rest do not
    let err = r.queue.enqueue_ndrange(&k, &[64], Some(&[64])).unwrap_err();
    assert!(matches!(err, Error::BarrierDivergence(_)), "{err}");
}

#[test]
fn static_race_confirmed_by_dynamic_shadow_sanitizer() {
    // the acceptance case: a static DataRace finding reproduced as a
    // dynamic DataRace trap by the shadow-memory checker
    let stat = find(UNIFORM_ADDR_RACE, DiagKind::DataRace);
    assert_eq!(stat.severity, Severity::Error);

    let r = rig();
    let p = Program::from_source(&r.ctx, UNIFORM_ADDR_RACE);
    p.build("").unwrap();
    p.set_sanitize(true);
    let k = p.kernel("k").unwrap();
    let buf = r.ctx.create_buffer(4 * 8, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    let err = r.queue.enqueue_ndrange(&k, &[8], Some(&[8])).unwrap_err();
    match err {
        Error::DataRace { space, offset, .. } => {
            assert_eq!(space, "global");
            assert_eq!(offset, 0, "the race is on out[0]");
        }
        other => panic!("expected the dynamic sanitizer to trap, got: {other}"),
    }
}

#[test]
fn racy_transpose_confirmed_by_dynamic_shadow_sanitizer() {
    let stat = find(RACY_TRANSPOSE, DiagKind::DataRace);
    assert_eq!(stat.severity, Severity::Warning);

    let r = rig();
    let p = Program::from_source(&r.ctx, RACY_TRANSPOSE);
    p.build("").unwrap();
    p.set_sanitize(true);
    let k = p.kernel("t").unwrap();
    let n = 16usize;
    let src: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
    let dst = r
        .ctx
        .create_buffer(4 * n * n, MemAccess::ReadWrite)
        .unwrap();
    let sbuf = r.ctx.create_buffer_from(&src, MemAccess::ReadOnly).unwrap();
    k.set_arg_buffer(0, &dst).unwrap();
    k.set_arg_buffer(1, &sbuf).unwrap();
    k.set_arg_scalar(2, n as i32).unwrap();
    k.set_arg_scalar(3, n as i32).unwrap();
    let err = r
        .queue
        .enqueue_ndrange(&k, &[n, n], Some(&[n, n]))
        .unwrap_err();
    match err {
        Error::DataRace { space, .. } => assert_eq!(space, "local"),
        other => panic!("expected the dynamic sanitizer to trap, got: {other}"),
    }
    // with the sanitizer off (the default) the racy read still executes —
    // the lock-step interpreter happens to give it a deterministic
    // schedule, which is exactly why the static warning matters
    p.set_sanitize(false);
    r.queue.enqueue_ndrange(&k, &[n, n], Some(&[n, n])).unwrap();
}

// ---- enqueue-time bounds: launch rejection ----------------------------------------

#[test]
fn launch_oob_rejected_in_deny_mode_and_trapped_in_warn() {
    let r = rig();
    let p = Program::from_source(&r.ctx, OOB_LAUNCH);
    p.build("").unwrap();
    let k = p.kernel("k").unwrap();
    // 4-element buffer: the kernel writes elements 1000..=1003
    let buf = r.ctx.create_buffer(4 * 4, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();

    p.set_strictness(Strictness::Deny);
    let err = r.queue.enqueue_ndrange(&k, &[4], Some(&[4])).unwrap_err();
    match err {
        Error::InvalidLaunch(msg) => {
            assert!(msg.contains("rejected by the kernel sanitizer"), "{msg}")
        }
        other => panic!("expected the launch to be rejected, got: {other}"),
    }

    // default Warn records the finding but lets the launch proceed — the
    // interpreter's memory trap then catches the actual fault
    p.set_strictness(Strictness::Warn);
    let err = r.queue.enqueue_ndrange(&k, &[4], Some(&[4])).unwrap_err();
    assert!(matches!(err, Error::MemoryFault { .. }), "{err}");
    assert!(
        p.diagnostics()
            .iter()
            .any(|d| d.kind == DiagKind::OutOfBounds),
        "the Warn-mode launch must still record the finding"
    );

    // a big enough buffer launches cleanly even in Deny mode
    let big = r.ctx.create_buffer(4 * 1004, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &big).unwrap();
    p.set_strictness(Strictness::Deny);
    r.queue.enqueue_ndrange(&k, &[4], Some(&[4])).unwrap();
}
