//! Property test of the asynchronous scheduler: a random sequence of
//! uploads, device copies and kernels over a handful of buffers is run
//! once on an in-order queue (blocking enqueues) and once on an
//! out-of-order queue where every command only carries the wait list a
//! last-writer/readers analysis infers — the same analysis the `hpl`
//! crate performs for `run_async`. The final buffer contents must be
//! bit-identical: the inferred DAG edges are exactly the orderings that
//! matter, and the scheduler must honour them no matter how it
//! interleaves independent commands.
//!
//! Every case builds its own fresh devices, so worker scheduling in other
//! tests cannot perturb it.

use oclsim::{
    wait_for_events, Buffer, CommandQueue, Context, Device, DeviceProfile, Event, MemAccess,
    Program,
};
use proptest::prelude::*;

const NBUF: usize = 4;
const N: usize = 64;

/// The accumulate kernel: order between two writers of `dst` is
/// observable, so a missing inferred edge corrupts the result.
const SRC: &str = "__kernel void saxpy(__global int* dst, __global const int* src, int a) {
    int i = (int)get_global_id(0);
    dst[i] = dst[i] * 3 + src[i] * a;
}";

/// One step of the random program.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Host upload of `seed`-derived data into buffer `dst`.
    Upload { dst: usize, seed: i16 },
    /// `dst[i] = dst[i]*3 + src[i]*a` (reads src and dst, writes dst).
    Saxpy { dst: usize, src: usize, a: i16 },
    /// Whole-buffer device copy src → dst.
    Copy { dst: usize, src: usize },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NBUF, any::<i16>()).prop_map(|(dst, seed)| Op::Upload { dst, seed }),
        (0..NBUF, 0..NBUF, any::<i16>()).prop_map(|(dst, src, a)| Op::Saxpy { dst, src, a }),
        // src must differ from dst: a whole-buffer copy onto itself is an
        // invalid overlapping copy
        (0..NBUF, 1..NBUF).prop_map(|(dst, off)| Op::Copy {
            dst,
            src: (dst + off) % NBUF
        }),
    ]
}

fn upload_data(seed: i16) -> Vec<i32> {
    (0..N)
        .map(|i| (seed as i32).wrapping_mul(31).wrapping_add(i as i32))
        .collect()
}

struct Rig {
    device: Device,
    queue: CommandQueue,
    program: Program,
    bufs: Vec<Buffer>,
}

fn rig(out_of_order: bool) -> Rig {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = if out_of_order {
        CommandQueue::new_out_of_order(&ctx, &device).unwrap()
    } else {
        CommandQueue::new(&ctx, &device).unwrap()
    };
    let program = Program::from_source(&ctx, SRC);
    program.build("").unwrap();
    let bufs = (0..NBUF)
        .map(|_| {
            let b = ctx.create_buffer(4 * N, MemAccess::ReadWrite).unwrap();
            // deterministic initial contents on both rigs
            queue.enqueue_write(&b, 0, &vec![0i32; N]).unwrap();
            b
        })
        .collect();
    Rig {
        device,
        queue,
        program,
        bufs,
    }
}

impl Rig {
    fn read_all(&self) -> Vec<Vec<i32>> {
        self.bufs
            .iter()
            .map(|b| b.read_vec::<i32>(0, N).unwrap())
            .collect()
    }
}

/// Reference run: blocking enqueues on an in-order queue — program order
/// is execution order by construction.
fn run_in_order(ops: &[Op]) -> Vec<Vec<i32>> {
    let r = rig(false);
    for &o in ops {
        match o {
            Op::Upload { dst, seed } => {
                r.queue
                    .enqueue_write(&r.bufs[dst], 0, &upload_data(seed))
                    .unwrap();
            }
            Op::Saxpy { dst, src, a } => {
                let k = r.program.kernel("saxpy").unwrap();
                k.set_arg_buffer(0, &r.bufs[dst]).unwrap();
                k.set_arg_buffer(1, &r.bufs[src]).unwrap();
                k.set_arg_scalar(2, a as i32).unwrap();
                r.queue.enqueue_ndrange(&k, &[N], None).unwrap();
            }
            Op::Copy { dst, src } => {
                r.queue
                    .enqueue_copy(&r.bufs[src], &r.bufs[dst], 0, 0, 4 * N)
                    .unwrap();
            }
        }
    }
    r.queue.finish();
    r.read_all()
}

/// Per-buffer event bookkeeping, mirroring `hpl`'s inference: a command
/// writing a buffer waits on its last writer (RAW→WAW chain) and on all
/// readers since (WAR); a command reading a buffer waits on its last
/// writer only and registers itself as a reader.
#[derive(Default)]
struct Tracker {
    last_write: Option<Event>,
    readers: Vec<Event>,
}

impl Tracker {
    fn write_deps(&self) -> Vec<Event> {
        let mut deps: Vec<Event> = self.readers.clone();
        deps.extend(self.last_write.clone());
        deps
    }

    fn record_write(&mut self, ev: &Event) {
        self.last_write = Some(ev.clone());
        self.readers.clear();
    }

    fn record_read(&mut self, ev: &Event) {
        self.readers.push(ev.clone());
    }
}

/// Out-of-order run: every command is enqueued asynchronously with only
/// its inferred wait list; the dispatcher is free to interleave anything
/// the lists leave unordered.
fn run_out_of_order(ops: &[Op]) -> Vec<Vec<i32>> {
    let r = rig(true);
    let mut track: Vec<Tracker> = (0..NBUF).map(|_| Tracker::default()).collect();
    let mut events = Vec::with_capacity(ops.len());
    for &o in ops {
        let ev = match o {
            Op::Upload { dst, seed } => {
                let deps = track[dst].write_deps();
                let ev = r
                    .queue
                    .enqueue_write_async(&r.bufs[dst], 0, &upload_data(seed), &deps)
                    .unwrap();
                track[dst].record_write(&ev);
                ev
            }
            Op::Saxpy { dst, src, a } => {
                let mut deps = track[dst].write_deps();
                if src != dst {
                    deps.extend(track[src].last_write.clone());
                }
                let k = r.program.kernel("saxpy").unwrap();
                k.set_arg_buffer(0, &r.bufs[dst]).unwrap();
                k.set_arg_buffer(1, &r.bufs[src]).unwrap();
                k.set_arg_scalar(2, a as i32).unwrap();
                let ev = r
                    .queue
                    .enqueue_ndrange_async(&k, &[N], None, &deps)
                    .unwrap();
                if src != dst {
                    track[src].record_read(&ev);
                }
                track[dst].record_write(&ev);
                ev
            }
            Op::Copy { dst, src } => {
                let mut deps = track[dst].write_deps();
                if src != dst {
                    deps.extend(track[src].last_write.clone());
                }
                let ev = r
                    .queue
                    .enqueue_copy_async(&r.bufs[src], &r.bufs[dst], 0, 0, 4 * N, &deps)
                    .unwrap();
                if src != dst {
                    track[src].record_read(&ev);
                }
                track[dst].record_write(&ev);
                ev
            }
        };
        events.push(ev);
    }
    wait_for_events(&events).unwrap();
    // the makespan must exist on the fresh device's timeline
    assert!(r.device.timeline_horizon() > 0.0 || ops.is_empty());
    r.read_all()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// An out-of-order queue with inferred wait lists computes the same
    /// buffers, bit for bit, as the in-order reference.
    #[test]
    fn out_of_order_with_inferred_deps_matches_in_order(
        ops in proptest::collection::vec(op(), 1..24),
    ) {
        let reference = run_in_order(&ops);
        let reordered = run_out_of_order(&ops);
        prop_assert_eq!(reference, reordered, "ops: {:?}", ops);
    }
}
