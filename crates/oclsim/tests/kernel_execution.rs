//! End-to-end tests of OpenCL C compilation + SIMT execution: control
//! flow, divergence, barriers, local/private/constant memory, helper
//! functions, atomics, and multi-dimensional launches.

use oclsim::{CommandQueue, Context, Device, DeviceProfile, Error, MemAccess, Program, Value};

struct Rig {
    ctx: Context,
    queue: CommandQueue,
}

fn rig() -> Rig {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    Rig { ctx, queue }
}

impl Rig {
    fn build(&self, src: &str) -> Program {
        let p = Program::from_source(&self.ctx, src);
        p.build("").unwrap_or_else(|e| panic!("build failed: {e}"));
        p
    }
}

#[test]
fn saxpy_f32() {
    let r = rig();
    let p = r.build(
        "__kernel void saxpy(__global float* y, __global const float* x, float a) {
             int i = get_global_id(0);
             y[i] = a * x[i] + y[i];
         }",
    );
    let k = p.kernel("saxpy").unwrap();
    let n = 1000;
    let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let ys: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();
    let x = r.ctx.create_buffer_from(&xs, MemAccess::ReadOnly).unwrap();
    let y = r.ctx.create_buffer_from(&ys, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &y).unwrap();
    k.set_arg_buffer(1, &x).unwrap();
    k.set_arg_scalar(2, 3.0f32).unwrap();
    r.queue.enqueue_ndrange(&k, &[n], None).unwrap();
    let out = y.read_vec::<f32>(0, n).unwrap();
    for (i, &o) in out.iter().enumerate() {
        assert_eq!(o, 3.0 * i as f32 + 2.0 * i as f32);
    }
}

#[test]
fn divergent_if_else() {
    let r = rig();
    let p = r.build(
        "__kernel void f(__global int* out) {
             int i = get_global_id(0);
             if (i % 3 == 0) { out[i] = 100 + i; }
             else if (i % 3 == 1) { out[i] = 200 + i; }
             else { out[i] = 300 + i; }
         }",
    );
    let k = p.kernel("f").unwrap();
    let buf = r.ctx.create_buffer(4 * 64, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    r.queue.enqueue_ndrange(&k, &[64], Some(&[64])).unwrap();
    let out = buf.read_vec::<i32>(0, 64).unwrap();
    for (i, v) in out.iter().enumerate() {
        let want = match i % 3 {
            0 => 100 + i as i32,
            1 => 200 + i as i32,
            _ => 300 + i as i32,
        };
        assert_eq!(*v, want, "lane {i}");
    }
}

#[test]
fn per_lane_loop_trip_counts() {
    // each lane loops a different number of times (classic divergence)
    let r = rig();
    let p = r.build(
        "__kernel void f(__global int* out) {
             int i = get_global_id(0);
             int acc = 0;
             for (int j = 0; j < i; j++) { acc += j; }
             out[i] = acc;
         }",
    );
    let k = p.kernel("f").unwrap();
    let n = 37;
    let buf = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    r.queue.enqueue_ndrange(&k, &[n], Some(&[n])).unwrap();
    let out = buf.read_vec::<i32>(0, n).unwrap();
    for (i, &o) in out.iter().enumerate() {
        let want: i32 = (0..i as i32).sum();
        assert_eq!(o, want, "lane {i}");
    }
}

#[test]
fn break_and_continue() {
    let r = rig();
    let p = r.build(
        "__kernel void f(__global int* out) {
             int i = get_global_id(0);
             int acc = 0;
             for (int j = 0; j < 100; j++) {
                 if (j == i) { continue; }
                 if (j > 10 + i) { break; }
                 acc += 1;
             }
             out[i] = acc;
         }",
    );
    let k = p.kernel("f").unwrap();
    let n = 16;
    let buf = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    r.queue.enqueue_ndrange(&k, &[n], Some(&[n])).unwrap();
    let out = buf.read_vec::<i32>(0, n).unwrap();
    for (i, &o) in out.iter().enumerate() {
        // j runs 0..=10+i, skipping j==i: (10+i+1) - 1 iterations counted
        assert_eq!(o, 10 + i as i32, "lane {i}");
    }
}

#[test]
fn while_and_do_while() {
    let r = rig();
    let p = r.build(
        "__kernel void f(__global int* out, __global int* out2) {
             int i = get_global_id(0);
             int x = i;
             while (x > 0) { x = x / 2; out[i] = out[i] + 1; }
             int y = 0;
             do { y += 1; } while (y < i);
             out2[i] = y;
         }",
    );
    let k = p.kernel("f").unwrap();
    let n = 10;
    let a = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
    let b = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &a).unwrap();
    k.set_arg_buffer(1, &b).unwrap();
    r.queue.enqueue_ndrange(&k, &[n], Some(&[n])).unwrap();
    let ha = a.read_vec::<i32>(0, n).unwrap();
    let hb = b.read_vec::<i32>(0, n).unwrap();
    for i in 0..n {
        let mut steps = 0;
        let mut x = i;
        while x > 0 {
            x /= 2;
            steps += 1;
        }
        assert_eq!(ha[i], steps, "while lane {i}");
        assert_eq!(
            hb[i],
            (i as i32).max(1),
            "do-while runs at least once, lane {i}"
        );
    }
}

#[test]
fn local_memory_reduction_with_barrier() {
    let r = rig();
    let p = r.build(
        "__kernel void reduce(__global const float* in, __global float* out) {
             __local float sdata[64];
             int lid = get_local_id(0);
             int gid = get_global_id(0);
             sdata[lid] = in[gid];
             barrier(CLK_LOCAL_MEM_FENCE);
             for (int s = 32; s > 0; s = s >> 1) {
                 if (lid < s) { sdata[lid] += sdata[lid + s]; }
                 barrier(CLK_LOCAL_MEM_FENCE);
             }
             if (lid == 0) { out[get_group_id(0)] = sdata[0]; }
         }",
    );
    let k = p.kernel("reduce").unwrap();
    let n = 256;
    let data: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
    let input = r
        .ctx
        .create_buffer_from(&data, MemAccess::ReadOnly)
        .unwrap();
    let out = r
        .ctx
        .create_buffer(4 * (n / 64), MemAccess::ReadWrite)
        .unwrap();
    k.set_arg_buffer(0, &input).unwrap();
    k.set_arg_buffer(1, &out).unwrap();
    r.queue.enqueue_ndrange(&k, &[n], Some(&[64])).unwrap();
    let partials = out.read_vec::<f32>(0, n / 64).unwrap();
    for (g, p) in partials.iter().enumerate() {
        let want: f32 = data[g * 64..(g + 1) * 64].iter().sum();
        assert_eq!(*p, want, "group {g}");
    }
}

#[test]
fn divergent_barrier_is_trapped() {
    let r = rig();
    let p = r.build(
        "__kernel void bad(__global int* out) {
             if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
             out[get_global_id(0)] = 1;
         }",
    );
    let k = p.kernel("bad").unwrap();
    let buf = r.ctx.create_buffer(4 * 8, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    let err = r.queue.enqueue_ndrange(&k, &[8], Some(&[8])).unwrap_err();
    assert!(matches!(err, Error::BarrierDivergence(_)), "{err}");
}

#[test]
fn barrier_in_uniform_group_of_one_is_fine() {
    let r = rig();
    let p = r.build(
        "__kernel void ok(__global int* out) {
             barrier(CLK_LOCAL_MEM_FENCE);
             out[get_global_id(0)] = 7;
         }",
    );
    let k = p.kernel("ok").unwrap();
    let buf = r.ctx.create_buffer(4 * 4, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    r.queue.enqueue_ndrange(&k, &[4], Some(&[1])).unwrap();
    assert_eq!(buf.read_vec::<i32>(0, 4).unwrap(), vec![7; 4]);
}

#[test]
fn private_arrays_are_per_lane() {
    let r = rig();
    let p = r.build(
        "__kernel void f(__global int* out) {
             int scratch[8];
             int i = get_global_id(0);
             for (int j = 0; j < 8; j++) { scratch[j] = i * 10 + j; }
             int acc = 0;
             for (int j = 0; j < 8; j++) { acc += scratch[j]; }
             out[i] = acc;
         }",
    );
    let k = p.kernel("f").unwrap();
    let n = 32;
    let buf = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    r.queue.enqueue_ndrange(&k, &[n], Some(&[n])).unwrap();
    let out = buf.read_vec::<i32>(0, n).unwrap();
    for (i, &o) in out.iter().enumerate() {
        let want: i32 = (0..8).map(|j| i as i32 * 10 + j).sum();
        assert_eq!(o, want, "lane {i} private data must not leak across lanes");
    }
}

#[test]
fn helper_functions_and_recursion_guard() {
    let r = rig();
    let p = r.build(
        "float square(float x) { return x * x; }
         float hypot2(float a, float b) { return square(a) + square(b); }
         __kernel void f(__global float* out) {
             int i = get_global_id(0);
             out[i] = hypot2((float)i, 2.0f);
         }",
    );
    let k = p.kernel("f").unwrap();
    let buf = r.ctx.create_buffer(4 * 8, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    r.queue.enqueue_ndrange(&k, &[8], None).unwrap();
    let out = buf.read_vec::<f32>(0, 8).unwrap();
    for (i, &o) in out.iter().enumerate() {
        assert_eq!(o, (i * i) as f32 + 4.0);
    }

    // direct recursion must be trapped, not overflow the host stack
    let p = Program::from_source(
        &r.ctx,
        "int down(int x) { if (x > 0) { return down(x - 1); } return 0; }
         __kernel void f(__global int* out) { out[0] = down(1000); }",
    );
    p.build("").unwrap();
    let k = p.kernel("f").unwrap();
    let buf = r.ctx.create_buffer(4, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    let err = r.queue.enqueue_ndrange(&k, &[1], None).unwrap_err();
    assert!(err.to_string().contains("recursion"), "{err}");
}

#[test]
fn early_return_disables_lanes() {
    let r = rig();
    let p = r.build(
        "__kernel void f(__global int* out, int n) {
             int i = get_global_id(0);
             if (i >= n) { return; }
             out[i] = i + 1;
         }",
    );
    let k = p.kernel("f").unwrap();
    let buf = r.ctx.create_buffer(4 * 8, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    k.set_arg_scalar(1, 5i32).unwrap();
    r.queue.enqueue_ndrange(&k, &[8], Some(&[8])).unwrap();
    let out = buf.read_vec::<i32>(0, 8).unwrap();
    assert_eq!(out, vec![1, 2, 3, 4, 5, 0, 0, 0]);
}

#[test]
fn two_dimensional_launch_transpose() {
    let r = rig();
    let p = r.build(
        "__kernel void transpose(__global float* dst, __global const float* src,
                                  int h, int w) {
             int x = get_global_id(0);
             int y = get_global_id(1);
             dst[x * h + y] = src[y * w + x];
         }",
    );
    let k = p.kernel("transpose").unwrap();
    let (h, w) = (8, 16);
    let src_data: Vec<f32> = (0..h * w).map(|i| i as f32).collect();
    let src = r
        .ctx
        .create_buffer_from(&src_data, MemAccess::ReadOnly)
        .unwrap();
    let dst = r
        .ctx
        .create_buffer(4 * h * w, MemAccess::ReadWrite)
        .unwrap();
    k.set_arg_buffer(0, &dst).unwrap();
    k.set_arg_buffer(1, &src).unwrap();
    k.set_arg_scalar(2, h as i32).unwrap();
    k.set_arg_scalar(3, w as i32).unwrap();
    r.queue.enqueue_ndrange(&k, &[w, h], Some(&[4, 4])).unwrap();
    let out = dst.read_vec::<f32>(0, h * w).unwrap();
    for y in 0..h {
        for x in 0..w {
            assert_eq!(out[x * h + y], src_data[y * w + x]);
        }
    }
}

#[test]
fn geometry_builtins_report_launch_shape() {
    let r = rig();
    let p = r.build(
        "__kernel void probe(__global int* out) {
             if (get_global_id(0) == 0 && get_global_id(1) == 0) {
                 out[0] = (int)get_global_size(0);
                 out[1] = (int)get_global_size(1);
                 out[2] = (int)get_local_size(0);
                 out[3] = (int)get_local_size(1);
                 out[4] = (int)get_num_groups(0);
                 out[5] = (int)get_num_groups(1);
                 out[6] = (int)get_work_dim();
             }
         }",
    );
    let k = p.kernel("probe").unwrap();
    let buf = r.ctx.create_buffer(4 * 7, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    r.queue.enqueue_ndrange(&k, &[8, 6], Some(&[2, 3])).unwrap();
    assert_eq!(
        buf.read_vec::<i32>(0, 7).unwrap(),
        vec![8, 6, 2, 3, 4, 2, 2]
    );
}

#[test]
fn atomic_global_counter() {
    let r = rig();
    let p = r.build(
        "__kernel void count(__global int* c, __global const int* data) {
             int i = get_global_id(0);
             if (data[i] > 5) { atomic_add(c, 1); }
         }",
    );
    let k = p.kernel("count").unwrap();
    let data: Vec<i32> = (0..100).map(|i| i % 10).collect();
    let dbuf = r
        .ctx
        .create_buffer_from(&data, MemAccess::ReadOnly)
        .unwrap();
    let cbuf = r
        .ctx
        .create_buffer_from(&[0i32], MemAccess::ReadWrite)
        .unwrap();
    k.set_arg_buffer(0, &cbuf).unwrap();
    k.set_arg_buffer(1, &dbuf).unwrap();
    r.queue.enqueue_ndrange(&k, &[100], None).unwrap();
    let want = data.iter().filter(|&&x| x > 5).count() as i32;
    assert_eq!(cbuf.read_vec::<i32>(0, 1).unwrap()[0], want);
}

#[test]
fn constant_memory_read() {
    let r = rig();
    let p = r.build(
        "__kernel void scale(__global float* out, __constant float* coeff) {
             int i = get_global_id(0);
             out[i] = coeff[i % 4] * 2.0f;
         }",
    );
    let k = p.kernel("scale").unwrap();
    let coeff = r
        .ctx
        .create_buffer_from(&[1.0f32, 2.0, 3.0, 4.0], MemAccess::ReadOnly)
        .unwrap();
    let out = r.ctx.create_buffer(4 * 8, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &out).unwrap();
    k.set_arg_buffer(1, &coeff).unwrap();
    r.queue.enqueue_ndrange(&k, &[8], None).unwrap();
    assert_eq!(
        out.read_vec::<f32>(0, 8).unwrap(),
        vec![2.0, 4.0, 6.0, 8.0, 2.0, 4.0, 6.0, 8.0]
    );
}

#[test]
fn math_builtins_f64() {
    let r = rig();
    let p = r.build(
        "__kernel void f(__global double* out, __global const double* in) {
             int i = get_global_id(0);
             out[i] = sqrt(in[i]) + log(in[i]) + pow(in[i], 2.0);
         }",
    );
    let k = p.kernel("f").unwrap();
    let data = [1.0f64, 2.0, 4.0, 9.0];
    let input = r
        .ctx
        .create_buffer_from(&data, MemAccess::ReadOnly)
        .unwrap();
    let out = r.ctx.create_buffer(8 * 4, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &out).unwrap();
    k.set_arg_buffer(1, &input).unwrap();
    r.queue.enqueue_ndrange(&k, &[4], None).unwrap();
    let got = out.read_vec::<f64>(0, 4).unwrap();
    for (i, &x) in data.iter().enumerate() {
        let want = x.sqrt() + x.ln() + x.powf(2.0);
        assert!((got[i] - want).abs() < 1e-12, "{} vs {want}", got[i]);
    }
}

#[test]
fn integer_division_by_zero_trapped() {
    let r = rig();
    let p =
        r.build("__kernel void f(__global int* out, int d) { out[get_global_id(0)] = 10 / d; }");
    let k = p.kernel("f").unwrap();
    let buf = r.ctx.create_buffer(16, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    k.set_arg_scalar(1, 0i32).unwrap();
    let err = r.queue.enqueue_ndrange(&k, &[4], None).unwrap_err();
    assert!(matches!(err, Error::ArithmeticFault(_)));
    k.set_arg_scalar(1, Value::I32(5)).unwrap();
    r.queue.enqueue_ndrange(&k, &[4], None).unwrap();
    assert_eq!(buf.read_vec::<i32>(0, 4).unwrap(), vec![2; 4]);
}

#[test]
fn pointer_arithmetic_and_deref() {
    let r = rig();
    let p = r.build(
        "__kernel void f(__global float* data, int n) {
             int i = get_global_id(0);
             __global float* p = data + i;
             *(p + n) = *p * 2.0f;
         }",
    );
    let k = p.kernel("f").unwrap();
    let init: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0];
    let buf = r
        .ctx
        .create_buffer_from(&init, MemAccess::ReadWrite)
        .unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    k.set_arg_scalar(1, 4i32).unwrap();
    r.queue.enqueue_ndrange(&k, &[4], None).unwrap();
    assert_eq!(
        buf.read_vec::<f32>(0, 8).unwrap(),
        vec![1.0, 2.0, 3.0, 4.0, 2.0, 4.0, 6.0, 8.0]
    );
}

#[test]
fn short_circuit_guards_out_of_bounds() {
    // the && guard must prevent the out-of-bounds load on the last lane
    let r = rig();
    let p = r.build(
        "__kernel void f(__global int* out, __global const int* in, int n) {
             int i = get_global_id(0);
             if (i + 1 < n && in[i + 1] > 0) { out[i] = in[i + 1]; }
             else { out[i] = -1; }
         }",
    );
    let k = p.kernel("f").unwrap();
    let input = r
        .ctx
        .create_buffer_from(&[5i32, 6, 7, 8], MemAccess::ReadOnly)
        .unwrap();
    let out = r.ctx.create_buffer(4 * 4, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &out).unwrap();
    k.set_arg_buffer(1, &input).unwrap();
    k.set_arg_scalar(2, 4i32).unwrap();
    r.queue.enqueue_ndrange(&k, &[4], None).unwrap();
    assert_eq!(out.read_vec::<i32>(0, 4).unwrap(), vec![6, 7, 8, -1]);
}

#[test]
fn timing_larger_launch_costs_more() {
    let r = rig();
    let p = r.build(
        "__kernel void work(__global float* out) {
             int i = get_global_id(0);
             float acc = 0.0f;
             for (int j = 0; j < 64; j++) { acc += (float)j * 0.5f; }
             out[i] = acc;
         }",
    );
    let k = p.kernel("work").unwrap();
    let big = r
        .ctx
        .create_buffer(4 * 65536, MemAccess::ReadWrite)
        .unwrap();
    k.set_arg_buffer(0, &big).unwrap();
    let small_ev = r.queue.enqueue_ndrange(&k, &[1024], Some(&[64])).unwrap();
    let big_ev = r.queue.enqueue_ndrange(&k, &[65536], Some(&[64])).unwrap();
    // 64x the work, minus the fixed launch-overhead floor on the small run
    assert!(
        big_ev.modeled_seconds() > small_ev.modeled_seconds() * 8.0,
        "64x the work must model much slower: {} vs {}",
        big_ev.modeled_seconds(),
        small_ev.modeled_seconds()
    );
}

#[test]
fn coalesced_access_cheaper_than_strided() {
    let r = rig();
    let p = r.build(
        "__kernel void copy_coalesced(__global float* dst, __global const float* src) {
             int i = get_global_id(0);
             dst[i] = src[i];
         }
         __kernel void copy_strided(__global float* dst, __global const float* src, int stride) {
             int i = get_global_id(0);
             dst[i] = src[(i * stride) % (int)get_global_size(0)];
         }",
    );
    let n = 16384usize;
    let src_data: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let src = r
        .ctx
        .create_buffer_from(&src_data, MemAccess::ReadOnly)
        .unwrap();
    let dst = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();

    let k1 = p.kernel("copy_coalesced").unwrap();
    k1.set_arg_buffer(0, &dst).unwrap();
    k1.set_arg_buffer(1, &src).unwrap();
    let e1 = r.queue.enqueue_ndrange(&k1, &[n], Some(&[128])).unwrap();

    let k2 = p.kernel("copy_strided").unwrap();
    k2.set_arg_buffer(0, &dst).unwrap();
    k2.set_arg_buffer(1, &src).unwrap();
    k2.set_arg_scalar(2, 97i32).unwrap();
    let e2 = r.queue.enqueue_ndrange(&k2, &[n], Some(&[128])).unwrap();

    let t1 = e1.kernel_timing().unwrap().totals.mem_transactions;
    let t2 = e2.kernel_timing().unwrap().totals.mem_transactions;
    assert!(
        t2 > t1 * 4,
        "strided gather must generate far more transactions ({t2} vs {t1})"
    );
}

#[test]
fn uchar_and_short_memory_layout() {
    let r = rig();
    let p = r.build(
        "__kernel void widen(__global int* out, __global const uchar* bytes,
                             __global const short* shorts) {
             int i = get_global_id(0);
             out[i] = (int)bytes[i] + (int)shorts[i];
         }",
    );
    let k = p.kernel("widen").unwrap();
    let bytes = r
        .ctx
        .create_buffer_from(&[10u8, 20, 255, 7], MemAccess::ReadOnly)
        .unwrap();
    let shorts = r
        .ctx
        .create_buffer_from(&[-5i16, 100, -300, 40], MemAccess::ReadOnly)
        .unwrap();
    let out = r.ctx.create_buffer(4 * 4, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &out).unwrap();
    k.set_arg_buffer(1, &bytes).unwrap();
    k.set_arg_buffer(2, &shorts).unwrap();
    r.queue.enqueue_ndrange(&k, &[4], None).unwrap();
    assert_eq!(out.read_vec::<i32>(0, 4).unwrap(), vec![5, 120, -45, 47]);
}

#[test]
fn ternary_select() {
    let r = rig();
    let p = r.build(
        "__kernel void f(__global int* out) {
             int i = get_global_id(0);
             out[i] = i % 2 == 0 ? i * 10 : -i;
         }",
    );
    let k = p.kernel("f").unwrap();
    let buf = r.ctx.create_buffer(4 * 6, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    r.queue.enqueue_ndrange(&k, &[6], None).unwrap();
    assert_eq!(
        buf.read_vec::<i32>(0, 6).unwrap(),
        vec![0, -1, 20, -3, 40, -5]
    );
}

#[test]
fn read_only_buffer_write_rejected_at_launch() {
    let r = rig();
    let p = r.build("__kernel void f(__global float* out) { out[get_global_id(0)] = 1.0f; }");
    let k = p.kernel("f").unwrap();
    let ro = r.ctx.create_buffer(64, MemAccess::ReadOnly).unwrap();
    k.set_arg_buffer(0, &ro).unwrap();
    let err = r.queue.enqueue_ndrange(&k, &[4], None).unwrap_err();
    assert!(matches!(err, Error::InvalidArg { .. }), "{err}");
}

#[test]
fn preprocessor_driven_kernel() {
    let r = rig();
    let p = Program::from_source(
        &r.ctx,
        "#define SCALE 3
         #ifdef USE_OFFSET
         #define OFFSET 100
         #else
         #define OFFSET 0
         #endif
         __kernel void f(__global int* out) {
             int i = get_global_id(0);
             out[i] = i * SCALE + OFFSET;
         }",
    );
    p.build("-D USE_OFFSET").unwrap();
    let k = p.kernel("f").unwrap();
    let buf = r.ctx.create_buffer(4 * 4, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    r.queue.enqueue_ndrange(&k, &[4], None).unwrap();
    assert_eq!(buf.read_vec::<i32>(0, 4).unwrap(), vec![100, 103, 106, 109]);
}
