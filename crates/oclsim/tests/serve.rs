//! Integration tests for the multi-tenant kernel service: shared binary
//! cache behaviour across sessions, quota rejection paths, and the
//! EngineCL-style partitioner's exactness and load-balance properties.

use oclsim::serve::{
    run_reference, JobArg, LaunchJob, PartitionStrategy, Service, ServiceConfig, TenantQuota,
};
use oclsim::{DeviceProfile, Error};

const SAXPY: &str = r#"
__kernel void saxpy(__global float* y, __global const float* x, float a) {
    size_t i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}
"#;

fn saxpy_job(n: usize) -> LaunchJob {
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
    LaunchJob {
        source: SAXPY.to_string(),
        kernel: "saxpy".to_string(),
        build_options: String::new(),
        args: vec![
            JobArg::InOut(bytemuck_cast(&y)),
            JobArg::In(bytemuck_cast(&x)),
            JobArg::Scalar(2.0f32.into()),
        ],
        global: vec![n],
        local: None,
    }
}

fn bytemuck_cast(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|f| f.to_le_bytes()).collect()
}

fn floats(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[test]
fn tenants_share_one_cache_entry_and_get_correct_results() {
    let svc = Service::new(ServiceConfig::default()).unwrap();
    let alice = svc.session("alice", TenantQuota::unlimited());
    let bob = svc.session("bob", TenantQuota::unlimited());
    let job = saxpy_job(64);

    let first = alice.submit(0, &job).unwrap();
    let second = bob.submit(0, &job).unwrap();
    assert!(!first.cache_hit, "first submit must compile");
    assert!(
        second.cache_hit,
        "identical kernel from another tenant must hit"
    );
    assert_eq!(svc.cache().len(), 1, "one resident binary for both tenants");

    let expect: Vec<f32> = (0..64).map(|i| 2.0 * i as f32 + (i % 7) as f32).collect();
    assert_eq!(floats(&first.outputs[0]), expect);
    assert_eq!(first.outputs, second.outputs);
    assert!(first.modeled_seconds > 0.0);
}

#[test]
fn repeated_inputs_are_uploaded_once_per_tenant() {
    let svc = Service::new(ServiceConfig::default()).unwrap();
    let s = svc.session("carol", TenantQuota::unlimited());
    let job = saxpy_job(32);
    let a = s.submit(0, &job).unwrap();
    let b = s.submit(0, &job).unwrap();
    // the pooled read-only input keeps results correct across reuse
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(s.launches(), 2);
}

#[test]
fn launch_quota_rejection_path() {
    let svc = Service::new(ServiceConfig::default()).unwrap();
    let s = svc.session(
        "limited",
        TenantQuota {
            max_launches: Some(1),
            ..TenantQuota::default()
        },
    );
    let job = saxpy_job(16);
    s.submit(0, &job).unwrap();
    let err = s.submit(0, &job).unwrap_err();
    assert!(matches!(err, Error::AdmissionRejected { .. }), "{err}");
    match err.root_cause() {
        Error::QuotaExceeded {
            tenant,
            resource,
            limit,
            used,
        } => {
            assert_eq!(tenant, "limited");
            assert_eq!(*resource, "launches");
            assert_eq!((*limit, *used), (1, 2));
        }
        other => panic!("unexpected root cause {other}"),
    }
}

#[test]
fn inflight_quota_rejection_path() {
    let svc = Service::new(ServiceConfig::default()).unwrap();
    let s = svc.session(
        "parked",
        TenantQuota {
            max_inflight: Some(0),
            ..TenantQuota::default()
        },
    );
    let err = s.submit(0, &saxpy_job(16)).unwrap_err();
    assert!(matches!(err, Error::AdmissionRejected { .. }), "{err}");
    assert!(
        matches!(
            err.root_cause(),
            Error::QuotaExceeded {
                resource: "inflight launches",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn compile_bytes_quota_rejection_path() {
    let svc = Service::new(ServiceConfig::default()).unwrap();
    let s = svc.session(
        "cheap",
        TenantQuota {
            max_compile_bytes: Some(8),
            ..TenantQuota::default()
        },
    );
    let err = s.submit(0, &saxpy_job(16)).unwrap_err();
    assert!(matches!(err, Error::AdmissionRejected { .. }), "{err}");
    assert!(
        matches!(
            err.root_cause(),
            Error::QuotaExceeded {
                resource: "compile bytes",
                ..
            }
        ),
        "{err}"
    );
    // cache hits are free: another tenant builds, then the limited tenant
    // rides the shared entry
    let rich = svc.session("rich", TenantQuota::unlimited());
    rich.submit(0, &saxpy_job(16)).unwrap();
    let outcome = s.submit(0, &saxpy_job(16)).unwrap();
    assert!(outcome.cache_hit);
}

#[test]
fn fp64_job_on_non_fp64_device_is_a_plain_capability_error() {
    let svc = Service::new(ServiceConfig::default()).unwrap();
    let s = svc.session("sci", TenantQuota::unlimited());
    let job = LaunchJob {
        source: "__kernel void d(__global double* out) { out[get_global_id(0)] = 1.0; }".into(),
        kernel: "d".into(),
        build_options: String::new(),
        args: vec![JobArg::Out(8 * 16)],
        global: vec![16],
        local: None,
    };
    // device 1 is the Quadro FX380 profile: no fp64
    let err = s.submit(1, &job).unwrap_err();
    assert!(matches!(err, Error::UnsupportedCapability(_)), "{err}");
}

fn two_tesla_service() -> Service {
    Service::new(ServiceConfig {
        cache_capacity_bytes: 16 << 20,
        profiles: vec![DeviceProfile::tesla_c2050(), DeviceProfile::tesla_c2050()],
    })
    .unwrap()
}

const SAXPY_HEAVY: &str = r#"
__kernel void saxpy_heavy(__global float* y, __global const float* x, float a) {
    size_t i = get_global_id(0);
    float acc = y[i];
    for (int k = 0; k < 64; k++) {
        acc = acc * 0.5f + a * x[i] * 0.25f;
    }
    y[i] = acc;
}
"#;

fn saxpy_heavy_job(n: usize) -> LaunchJob {
    let mut job = saxpy_job(n);
    job.source = SAXPY_HEAVY.to_string();
    job.kernel = "saxpy_heavy".to_string();
    job
}

#[test]
fn partitioned_launch_is_bit_identical_and_faster_on_two_devices() {
    let svc = two_tesla_service();
    let s = svc.session("bulk", TenantQuota::unlimited());
    // 1024 groups of 16 items, 64 flops each: the modeled work dwarfs the
    // fixed per-launch overhead, so halving the group space nearly halves
    // the modeled makespan
    let mut job = saxpy_heavy_job(16384);
    job.local = Some(vec![16]);

    let targets = svc.partition_targets(&job).unwrap();
    let reference = run_reference(&targets[0], &job).unwrap();

    for strategy in [
        PartitionStrategy::Static,
        PartitionStrategy::Dynamic { chunk_groups: 256 },
        PartitionStrategy::HGuided {
            min_chunk_groups: 128,
        },
    ] {
        let split = s.submit_partitioned(&job, strategy).unwrap();
        assert_eq!(
            split.outputs, reference.outputs,
            "{strategy:?} must be bit-identical to the single-device run"
        );
        assert!(
            split.chunks.iter().any(|c| c.device == 1),
            "{strategy:?} never used the second device"
        );
        assert!(
            split.makespan_seconds < 0.85 * reference.makespan_seconds,
            "{strategy:?}: two equal devices must beat one ({} vs reference {})",
            split.makespan_seconds,
            reference.makespan_seconds
        );
        if matches!(strategy, PartitionStrategy::Static) {
            assert!(
                split.makespan_seconds < 0.6 * reference.makespan_seconds,
                "Static: two equal devices should nearly halve the modeled \
                 makespan ({} vs reference {})",
                split.makespan_seconds,
                reference.makespan_seconds
            );
        }
    }
}

#[test]
fn conflicting_cross_group_writes_are_detected_not_merged() {
    let svc = two_tesla_service();
    let s = svc.session("clash", TenantQuota::unlimited());
    let job = LaunchJob {
        source: "__kernel void clash(__global uint* out) {
            out[0] = get_group_id(0) < 4u ? 0x11111111u : 0x22222222u;
        }"
        .into(),
        kernel: "clash".into(),
        build_options: String::new(),
        args: vec![JobArg::Out(4)],
        global: vec![8],
        local: Some(vec![1]),
    };
    let err = s
        .submit_partitioned(&job, PartitionStrategy::Static)
        .unwrap_err();
    assert!(matches!(err, Error::InvalidOperation(_)), "{err}");
    assert!(err.to_string().contains("not exact"), "{err}");
}

#[test]
fn partition_chunk_schedule_is_deterministic() {
    let svc = Service::new(ServiceConfig {
        cache_capacity_bytes: 16 << 20,
        profiles: vec![DeviceProfile::tesla_c2050(), DeviceProfile::quadro_fx380()],
    })
    .unwrap();
    let s = svc.session("sched", TenantQuota::unlimited());
    let mut job = saxpy_job(2048);
    job.local = Some(vec![64]);
    let first = s
        .submit_partitioned(
            &job,
            PartitionStrategy::HGuided {
                min_chunk_groups: 1,
            },
        )
        .unwrap();
    let second = s
        .submit_partitioned(
            &job,
            PartitionStrategy::HGuided {
                min_chunk_groups: 1,
            },
        )
        .unwrap();
    // chunk boundaries and device assignment are driven by modeled clocks
    // only, so reruns agree exactly
    assert_eq!(first.chunks, second.chunks);
    assert_eq!(first.outputs, second.outputs);
    // the faster device takes the bigger share
    let tesla_groups: usize = first
        .chunks
        .iter()
        .filter(|c| c.device == 0)
        .map(|c| c.end - c.start)
        .sum();
    assert!(
        tesla_groups > first.total_groups / 2,
        "tesla took {tesla_groups} of {} groups",
        first.total_groups
    );
}
