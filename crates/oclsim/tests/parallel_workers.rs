//! Tests of the multi-threaded work-group executor: with `OCLSIM_THREADS`
//! forced above 1, work-groups run concurrently on the host pool, so these
//! tests exercise the std scoped-thread pool, the shared atomic-word
//! buffers, and cross-worker error propagation.
//!
//! `OCLSIM_THREADS` is read once per process and cached (see
//! `exec::launch::worker_threads`), so the harness pins the pool to 4
//! workers before the first launch rather than varying it per test.
//! Invariance across pool sizes is covered by `ci.sh`, which runs the whole
//! suite under both `OCLSIM_THREADS=1` and `OCLSIM_THREADS=4`.

use std::sync::Mutex;

use oclsim::{CommandQueue, Context, Device, DeviceProfile, Error, MemAccess, Program};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("OCLSIM_THREADS", n.to_string());
    let r = f();
    std::env::remove_var("OCLSIM_THREADS");
    r
}

struct Rig {
    ctx: Context,
    queue: CommandQueue,
}

fn rig() -> Rig {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    Rig { ctx, queue }
}

#[test]
fn many_groups_on_four_workers_compute_correctly() {
    with_threads(4, || {
        let r = rig();
        let src = "__kernel void f(__global int* out) {
            int i = (int)get_global_id(0);
            int acc = 0;
            for (int j = 0; j <= i % 37; j++) { acc += j; }
            out[i] = acc;
        }";
        let p = Program::from_source(&r.ctx, src);
        p.build("").unwrap();
        let k = p.kernel("f").unwrap();
        let n = 8192; // 128 groups of 64
        let buf = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        r.queue.enqueue_ndrange(&k, &[n], Some(&[64])).unwrap();
        let out = buf.read_vec::<i32>(0, n).unwrap();
        for (i, &v) in out.iter().enumerate() {
            let m = (i % 37) as i32;
            assert_eq!(v, m * (m + 1) / 2, "item {i}");
        }
    });
}

#[test]
fn concurrent_groups_share_global_memory_through_atomics() {
    with_threads(4, || {
        let r = rig();
        let src = "__kernel void count(__global int* c) { atomic_add(c, 1); }";
        let p = Program::from_source(&r.ctx, src);
        p.build("").unwrap();
        let k = p.kernel("count").unwrap();
        let buf = r
            .ctx
            .create_buffer_from(&[0i32], MemAccess::ReadWrite)
            .unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let n = 4096;
        r.queue.enqueue_ndrange(&k, &[n], Some(&[64])).unwrap();
        assert_eq!(
            buf.read_vec::<i32>(0, 1).unwrap()[0],
            n as i32,
            "every work-item's atomic increment must land exactly once"
        );
    });
}

#[test]
fn errors_propagate_from_any_worker() {
    with_threads(4, || {
        let r = rig();
        // only the very last group goes out of bounds
        let src = "__kernel void f(__global int* out, const int n) {
            int i = (int)get_global_id(0);
            int j = (i == n - 1) ? (n + 1000) : i;
            out[j] = i;
        }";
        let p = Program::from_source(&r.ctx, src);
        p.build("").unwrap();
        let k = p.kernel("f").unwrap();
        let n = 4096;
        let buf = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        k.set_arg_scalar(1, n as i32).unwrap();
        let err = r.queue.enqueue_ndrange(&k, &[n], Some(&[64])).unwrap_err();
        assert!(matches!(err, Error::MemoryFault { .. }), "{err}");
    });
}

#[test]
fn timing_is_deterministic_across_runs() {
    // the modeled time depends only on architectural events, never on how
    // host threads interleaved while simulating them (cross-pool-size
    // invariance is checked by ci.sh running the suite under 1 and 4)
    let run = |threads| {
        with_threads(threads, || {
            let r = rig();
            let src = "__kernel void f(__global float* out) {
                int i = (int)get_global_id(0);
                float a = 0.5f;
                for (int j = 0; j < 32; j++) { a = a * 1.25f + 0.125f; }
                out[i] = a;
            }";
            let p = Program::from_source(&r.ctx, src);
            p.build("").unwrap();
            let k = p.kernel("f").unwrap();
            let buf = r.ctx.create_buffer(4 * 4096, MemAccess::ReadWrite).unwrap();
            k.set_arg_buffer(0, &buf).unwrap();
            let ev = r.queue.enqueue_ndrange(&k, &[4096], Some(&[64])).unwrap();
            let t = ev.kernel_timing().unwrap();
            (t.totals.cycles, t.totals.mem_transactions, t.device_seconds)
        })
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.0, four.0, "cycle counts must be deterministic");
    assert_eq!(one.1, four.1, "transaction counts must be deterministic");
    assert_eq!(one.2, four.2, "modeled time must be deterministic");
}
