//! Property test of counter determinism: for a random kernel shape
//! (grid, group size, access stride, divergence modulus, loop trip
//! count), the simulated hardware counters and the modeled time must be
//! bit-identical no matter how many host workers execute the work-groups
//! and no matter the queue discipline (in-order vs out-of-order). This is
//! the invariant that lets `ci.sh` diff `report -- profile` output across
//! `OCLSIM_THREADS` settings.
//!
//! Every run builds its own fresh device, so nothing leaks between cases.

use oclsim::{
    profile_launch, CommandQueue, Context, Device, DeviceProfile, GroupCounters, Program,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const SRC: &str = "__kernel void randk(__global float* dst, __global const float* src,
                    const int stride, const int modr, const int iters) {
    int i = (int)get_global_id(0);
    float a = src[i * stride];
    for (int j = 0; j < iters; j++) { a = a * 1.001f + 0.01f; }
    if (i % modr == 0) { a += src[i]; }
    dst[i] = a;
}";

/// One randomly-shaped launch.
#[derive(Debug, Clone, Copy)]
struct Shape {
    groups: usize,
    local: usize,
    stride: i32,
    modr: i32,
    iters: i32,
}

fn shape() -> impl Strategy<Value = Shape> {
    (1usize..32, 0usize..3, 1i32..34, 1i32..8, 0i32..48).prop_map(
        |(groups, local_sel, stride, modr, iters)| Shape {
            groups,
            local: [32, 64, 128][local_sel],
            stride,
            modr,
            iters,
        },
    )
}

/// Run `shape` through [`profile_launch`] with `workers` host threads on a
/// fresh Tesla; returns the counters' debug rendering plus the modeled
/// seconds (bitwise, via to_bits).
fn run_with_workers(shape: Shape, workers: usize) -> (String, u64) {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let p = Program::from_source(&ctx, SRC);
    p.build("").unwrap();
    let k = p.kernel("randk").unwrap();
    let n = shape.groups * shape.local;
    let dst = ctx
        .create_buffer(4 * n, oclsim::MemAccess::ReadWrite)
        .unwrap();
    let src = ctx
        .create_buffer(4 * n * 34, oclsim::MemAccess::ReadOnly)
        .unwrap();
    k.set_arg_buffer(0, &dst).unwrap();
    k.set_arg_buffer(1, &src).unwrap();
    k.set_arg_scalar(2, shape.stride).unwrap();
    k.set_arg_scalar(3, shape.modr).unwrap();
    k.set_arg_scalar(4, shape.iters).unwrap();
    let (timing, counters) =
        profile_launch(&k, &[n], Some(&[shape.local]), &device, workers).unwrap();
    (format!("{counters:?}"), timing.device_seconds.to_bits())
}

/// A kernel with real mid-end opportunities: a foldable constant, a
/// loop-invariant expression, and a repeated pure subexpression. Built at
/// `-O2` this exercises span preservation through the rewrites.
const OPT_SRC: &str = "__kernel void optk(__global float* dst, __global const float* src,
                    const int stride, const int modr, const int iters) {
    int i = (int)get_global_id(0);
    float bias = (float)(2 + 3) * 0.125f;
    float a = src[i * stride] + bias;
    for (int j = 0; j < iters; j++) {
        float h = (float)(stride + modr) * 0.5f;
        a = a * 1.001f + h;
    }
    if ((i + modr) * (i + modr) % modr == 0) { a += src[i]; }
    dst[i] = a;
}";

/// Like [`run_with_workers`] but building [`OPT_SRC`] at `-O2`; also
/// returns the line-table/totals pair and the mid-end rewrite count so the
/// caller can assert the per-line attribution survived the transforms.
fn run_optimized(shape: Shape, workers: usize) -> (String, u64, GroupCounters, GroupCounters, u64) {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let p = Program::from_source(&ctx, OPT_SRC);
    p.build("-O2").unwrap();
    let k = p.kernel("optk").unwrap();
    let n = shape.groups * shape.local;
    let dst = ctx
        .create_buffer(4 * n, oclsim::MemAccess::ReadWrite)
        .unwrap();
    let src = ctx
        .create_buffer(4 * n * 34, oclsim::MemAccess::ReadOnly)
        .unwrap();
    k.set_arg_buffer(0, &dst).unwrap();
    k.set_arg_buffer(1, &src).unwrap();
    k.set_arg_scalar(2, shape.stride).unwrap();
    k.set_arg_scalar(3, shape.modr).unwrap();
    k.set_arg_scalar(4, shape.iters).unwrap();
    let (timing, counters) =
        profile_launch(&k, &[n], Some(&[shape.local]), &device, workers).unwrap();
    (
        format!("{counters:?}"),
        timing.device_seconds.to_bits(),
        counters.lines_sum(),
        counters.totals,
        p.pass_stats().total(),
    )
}

/// The same launch through a profiled queue of either discipline.
fn run_on_queue(shape: Shape, out_of_order: bool) -> String {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = if out_of_order {
        CommandQueue::new_out_of_order(&ctx, &device).unwrap()
    } else {
        CommandQueue::new(&ctx, &device).unwrap()
    };
    queue.set_profiling(true);
    let p = Program::from_source(&ctx, SRC);
    p.build("").unwrap();
    let k = p.kernel("randk").unwrap();
    let n = shape.groups * shape.local;
    let dst = ctx
        .create_buffer(4 * n, oclsim::MemAccess::ReadWrite)
        .unwrap();
    let src = ctx
        .create_buffer(4 * n * 34, oclsim::MemAccess::ReadOnly)
        .unwrap();
    k.set_arg_buffer(0, &dst).unwrap();
    k.set_arg_buffer(1, &src).unwrap();
    k.set_arg_scalar(2, shape.stride).unwrap();
    k.set_arg_scalar(3, shape.modr).unwrap();
    k.set_arg_scalar(4, shape.iters).unwrap();
    let ev = queue
        .enqueue_ndrange(&k, &[n], Some(&[shape.local]))
        .unwrap();
    format!("{:?}", ev.counters().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Counters and modeled time are invariant under the worker pool size.
    #[test]
    fn counters_invariant_under_worker_count(s in shape()) {
        let (c1, t1) = run_with_workers(s, 1);
        let (c4, t4) = run_with_workers(s, 4);
        prop_assert_eq!(&c1, &c4, "shape: {:?}", s);
        prop_assert_eq!(t1, t4, "modeled time drifted for {:?}", s);
    }

    /// The invariants survive the optimizing mid-end: at `-O2` the
    /// counters and modeled time are still worker-count invariant, and the
    /// per-line table still accounts for every counter — the transforms
    /// preserved source spans, or the attribution would leak to line 0.
    #[test]
    fn optimized_builds_stay_deterministic_and_fully_attributed(s in shape()) {
        let (c1, t1, lines1, totals1, rewrites) = run_optimized(s, 1);
        let (c4, t4, _, _, _) = run_optimized(s, 4);
        prop_assert!(rewrites > 0, "OPT_SRC gave the mid-end nothing to do");
        prop_assert_eq!(&c1, &c4, "-O2 counters drifted for {:?}", s);
        prop_assert_eq!(t1, t4, "-O2 modeled time drifted for {:?}", s);
        prop_assert_eq!(lines1, totals1, "per-line sums broke at -O2 for {:?}", s);
    }

    /// Counters are invariant under the queue discipline.
    #[test]
    fn counters_invariant_under_queue_discipline(s in shape()) {
        let in_order = run_on_queue(s, false);
        let out_of_order = run_on_queue(s, true);
        prop_assert_eq!(in_order, out_of_order, "shape: {:?}", s);
    }

    /// Merging per-line counter deltas into a line table is independent of
    /// the order the groups arrive in — the algebraic fact behind the
    /// `report -- annotate` byte-identity gate across `OCLSIM_THREADS`.
    #[test]
    fn per_line_merge_is_order_independent(
        deltas in proptest::collection::vec((1usize..16, 0u64..1000, 0u64..1000, 0u64..1000), 0..64)
    ) {
        let forward = merge_in_order(deltas.iter());
        let reverse = merge_in_order(deltas.iter().rev());
        prop_assert_eq!(&forward, &reverse, "reverse arrival order changed the line table");

        // Interleaved arrival: even-indexed groups first, then odd-indexed —
        // the pattern a two-worker pool produces.
        let interleaved = merge_in_order(
            deltas
                .iter()
                .step_by(2)
                .chain(deltas.iter().skip(1).step_by(2)),
        );
        prop_assert_eq!(&forward, &interleaved, "interleaved arrival changed the line table");

        // Hierarchical merge: each worker accumulates its own partial table
        // and the partials are folded together at the end (what
        // `profile_launch` does with a worker pool).
        let mid = deltas.len() / 2;
        let mut halves = merge_in_order(deltas[..mid].iter());
        for (line, gc) in merge_in_order(deltas[mid..].iter()) {
            halves.entry(line).or_default().merge(&gc);
        }
        prop_assert_eq!(&forward, &halves, "hierarchical merge changed the line table");
    }
}

/// Fold `(line, tx, bytes, conflicts)` deltas into a per-line table in the
/// given arrival order.
fn merge_in_order<'a, I>(deltas: I) -> BTreeMap<usize, GroupCounters>
where
    I: Iterator<Item = &'a (usize, u64, u64, u64)>,
{
    let mut table: BTreeMap<usize, GroupCounters> = BTreeMap::new();
    for &(line, tx, bytes, conflicts) in deltas {
        let delta = GroupCounters {
            mem_transactions: tx,
            global_bytes: bytes,
            bank_conflicts: conflicts,
            ..GroupCounters::default()
        };
        table.entry(line).or_default().merge(&delta);
    }
    table
}
