/* BUGGY (for small buffers): the write lands 1000 elements past the
 * global id. Nothing is wrong at build time — the buffer extent is only
 * known once arguments are bound, so the sanitizer records the access
 * range and checks it at enqueue time (launch rejection in Deny mode). */
__kernel void k(__global float* out) {
    out[(int)get_global_id(0) + 1000] = 1.0f;
}
