/* BUGGY: t has 16 elements, the write at index 20 is off the end. The
 * bound is known at build time, so this is a build-time error finding. */
__kernel void k(__global float* out) {
    __local float t[16];
    t[20] = 1.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[(int)get_global_id(0)] = t[0];
}
