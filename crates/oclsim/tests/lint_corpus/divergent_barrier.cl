/* BUGGY: the barrier is only reached by work-items with i < 5, which is
 * undefined behaviour in OpenCL. The sanitizer must flag the barrier. */
__kernel void k(__global float* a) {
    int i = (int)get_global_id(0);
    if (i < 5) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    a[i] = 1.0f;
}
