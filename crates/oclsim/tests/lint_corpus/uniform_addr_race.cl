/* BUGGY: every work-item writes a different value to the same cell, so
 * the final value depends on scheduling — a definite write-write race. */
__kernel void k(__global int* out) {
    out[0] = (int)get_global_id(0);
}
