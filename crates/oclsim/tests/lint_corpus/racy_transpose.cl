/* BUGGY: the tile is read transposed with no barrier after the writes, so
 * work-item (lx, ly) reads the cell written by (ly, lx) in the same epoch. */
__kernel void t(__global float* dst, __global const float* src,
                const int h, const int w) {
    __local float tile[256];
    int gx = (int)get_global_id(0);
    int gy = (int)get_global_id(1);
    int lx = (int)get_local_id(0);
    int ly = (int)get_local_id(1);
    tile[ly * 16 + lx] = src[gy * w + gx];
    dst[(gx * h) + gy] = tile[lx * 16 + ly];
}
