/* SAFE BUT OPAQUE TO THE SYNTACTIC PASS: the scatter index is reduced
 * modulo a runtime parameter (scatter_flag) or derived from loaded data
 * (masked_mark), so the affine analysis cannot prove disjointness and
 * conservatively warns. The IR dataflow refinement proves every work-item
 * stores the same constant, and that the masked local index stays inside
 * the declared extent, demoting both warnings to proved-safe notes. */
__kernel void scatter_flag(__global int* flags, const int n) {
    int i = (int)get_global_id(0);
    int j = (i * 7 + 3) % n;
    flags[j] = 1;
}

__kernel void masked_mark(__global const int* in) {
    __local int marks[16];
    int i = (int)get_global_id(0);
    int b = in[i] & 15;
    marks[b] = 1;
}

/* The private scratch accesses are guarded by the loop bounds: the
 * interval analysis proves 0 <= j < 8 against the declared extent and
 * records positive proved-in-bounds notes. */
__kernel void clamped_read(__global float* out, __global const float* in) {
    float tmp[8];
    int i = (int)get_global_id(0);
    for (int j = 0; j < 8; j = j + 1) {
        tmp[j] = in[i * 8 + j];
    }
    float s = 0.0f;
    for (int j = 0; j < 8; j = j + 1) {
        s = s + tmp[j];
    }
    out[i] = s;
}
