//! Tests of the profiling subsystem (`oclsim::prof`): hand-computed
//! coalescing and bank-conflict ground truths, counter determinism across
//! worker counts and queue disciplines, OpenCL-style event stamps on
//! kernels and DMA transfers, and the Chrome trace exporter.
//!
//! The ground truths are computed against the Tesla C2050 profile: 32-wide
//! warps, 128-byte memory segments, 32 local-memory banks. A 4096-item
//! f32 range in 64-item groups is 128 warps.

use oclsim::{
    chrome_trace, profile_launch, validate_chrome_trace, CommandQueue, Context, Device,
    DeviceProfile, LaunchCounters, MemAccess, Program, TransferDir,
};

struct Rig {
    device: Device,
    ctx: Context,
    queue: CommandQueue,
}

/// Tesla rig with a profiled in-order queue.
fn rig() -> Rig {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    queue.set_profiling(true);
    Rig { device, ctx, queue }
}

/// Build `name` from `src`, bind f32 buffers of `elems` elements as
/// (dst, src) and launch profiled over `n` items in groups of 64.
fn launch_counters(r: &Rig, src: &str, name: &str, n: usize, src_elems: usize) -> LaunchCounters {
    let p = Program::from_source(&r.ctx, src);
    p.build("").unwrap();
    let k = p.kernel(name).unwrap();
    let dst = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
    let input = r
        .ctx
        .create_buffer(4 * src_elems, MemAccess::ReadOnly)
        .unwrap();
    k.set_arg_buffer(0, &dst).unwrap();
    k.set_arg_buffer(1, &input).unwrap();
    let ev = r.queue.enqueue_ndrange(&k, &[n], Some(&[64])).unwrap();
    ev.counters().expect("queue is profiled")
}

const N: usize = 4096;
const WARPS: u64 = (N / 32) as u64;

#[test]
fn coalesced_copy_issues_one_transaction_per_warp() {
    let r = rig();
    let c = launch_counters(
        &r,
        "__kernel void copy(__global float* dst, __global const float* src) {
            int i = (int)get_global_id(0);
            dst[i] = src[i];
        }",
        "copy",
        N,
        N,
    );
    // each warp touches exactly one 128-byte segment per access: 32 lanes
    // x 4 contiguous bytes. One read + one write per warp.
    assert_eq!(c.totals.mem_transactions, 2 * WARPS);
    assert_eq!(c.totals.mem_transactions_min, 2 * WARPS);
    assert_eq!(c.coalescing_efficiency(), 1.0);
    assert_eq!(c.totals.global_bytes, 2 * N as u64 * 4);
    assert_eq!(c.divergence_fraction(), 0.0, "no branches, no divergence");
}

#[test]
fn strided_read_issues_one_transaction_per_lane() {
    let r = rig();
    let c = launch_counters(
        &r,
        "__kernel void strided(__global float* dst, __global const float* src) {
            int i = (int)get_global_id(0);
            dst[i] = src[i * 32];
        }",
        "strided",
        N,
        N * 32,
    );
    // reads: lane i touches byte 128*i — every lane its own segment, so 32
    // transactions per warp where 1 would suffice. Writes stay coalesced.
    assert_eq!(c.totals.mem_transactions, 32 * WARPS + WARPS);
    assert_eq!(c.totals.mem_transactions_min, 2 * WARPS);
    let eff = c.coalescing_efficiency();
    assert!(
        (eff - 2.0 / 33.0).abs() < 1e-12,
        "expected 2/33 efficiency, got {eff}"
    );
}

#[test]
fn divergent_gather_doubles_issued_transactions() {
    let r = rig();
    let c = launch_counters(
        &r,
        "__kernel void gather(__global float* dst, __global const float* src) {
            int i = (int)get_global_id(0);
            if (i % 2 == 0) { dst[i] = src[i]; } else { dst[i] = src[i + 4096]; }
        }",
        "gather",
        N,
        2 * N,
    );
    // each branch runs as a half-empty warp pass: the 16 even (odd) lanes
    // of a warp still fit one segment per access, but the two passes issue
    // separately — 4 transactions per warp where the straight-line copy
    // needs 2. Per-pass they are minimal, so coalescing stays 1.0; the
    // waste shows up as divergence instead.
    assert_eq!(c.totals.mem_transactions, 4 * WARPS);
    assert_eq!(c.coalescing_efficiency(), 1.0);
    assert!(
        c.divergence_fraction() > 0.2,
        "half the lanes idle in every branch pass: {}",
        c.divergence_fraction()
    );
}

#[test]
fn bank_conflicts_count_serialised_local_passes() {
    let r = rig();
    let src = "__kernel void bankc(__global float* out, const int stride) {
        __local float tile[2048];
        int l = (int)get_local_id(0);
        tile[l * stride] = (float)l;
        barrier(CLK_LOCAL_MEM_FENCE);
        out[(int)get_global_id(0)] = tile[l * stride];
    }";
    let p = Program::from_source(&r.ctx, src);
    p.build("").unwrap();
    let k = p.kernel("bankc").unwrap();
    let out = r.ctx.create_buffer(4 * 64, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &out).unwrap();

    // stride 32: every lane of a warp hits a distinct word of bank 0 — 32
    // words serialise into 31 extra passes, per warp, per access. One
    // group = 2 warps, one store + one load: 4 * 31 = 124.
    k.set_arg_scalar(1, 32i32).unwrap();
    let conflicted = r.queue.enqueue_ndrange(&k, &[64], Some(&[64])).unwrap();
    let c = conflicted.counters().unwrap();
    assert_eq!(c.totals.bank_conflicts, 124);
    assert_eq!(c.totals.local_accesses, 128, "64 lanes store + 64 load");
    assert_eq!(c.totals.barriers, 1, "one barrier statement, one group");

    // stride 1: word l maps to bank l % 32 — conflict-free.
    k.set_arg_scalar(1, 1i32).unwrap();
    let clean = r.queue.enqueue_ndrange(&k, &[64], Some(&[64])).unwrap();
    assert_eq!(clean.counters().unwrap().totals.bank_conflicts, 0);
}

#[test]
fn per_line_counters_attribute_transactions_to_their_statements() {
    // Two global-memory statements on two known source lines. Line 3 is a
    // fully coalesced copy; line 4 reads with a 32-element stride. The
    // per-line map must attribute each line its exact transaction count.
    let r = rig();
    let c = launch_counters(
        &r,
        "__kernel void twolines(__global float* dst, __global const float* src) {
            int i = (int)get_global_id(0);
            dst[i] = src[i];
            dst[i] = src[i * 32] + 1.0f;
        }",
        "twolines",
        N,
        N * 32,
    );
    // line 3: one read + one write segment per warp
    let l3 = c.lines.get(&3).expect("line 3 has counters");
    assert_eq!(l3.mem_transactions, 2 * WARPS);
    // line 4: 32 read segments per warp (each lane its own) + 1 write
    let l4 = c.lines.get(&4).expect("line 4 has counters");
    assert_eq!(l4.mem_transactions, 33 * WARPS);
    // line 2 (the id computation) touches no global memory
    assert_eq!(c.lines.get(&2).map_or(0, |l| l.mem_transactions), 0);
    // the strided line is the hot line
    let (hot_line, hot) = c.hot_line().expect("kernel issued transactions");
    assert_eq!(hot_line, 4);
    assert_eq!(hot.mem_transactions, 33 * WARPS);
    // and the two lines account for the whole launch
    assert_eq!(c.totals.mem_transactions, 35 * WARPS);
    assert_eq!(c.lines_sum(), c.totals);
}

#[test]
fn per_line_sums_equal_launch_totals() {
    // The invariant holds for control-flow-heavy kernels too: loops,
    // divergent branches, barriers, bank conflicts. Every counter delta
    // goes through the same per-line chokepoint as the totals.
    let (_, c) = counters_with_workers(3);
    assert_eq!(c.lines_sum(), c.totals);
    assert!(
        c.lines.len() > 3,
        "several lines attributed: {:?}",
        c.lines.keys()
    );

    let r = rig();
    let src = "__kernel void bankc2(__global float* out, const int stride) {
        __local float tile[2048];
        int l = (int)get_local_id(0);
        tile[l * stride] = (float)l;
        barrier(CLK_LOCAL_MEM_FENCE);
        out[(int)get_global_id(0)] = tile[l * stride];
    }";
    let p = Program::from_source(&r.ctx, src);
    p.build("").unwrap();
    let k = p.kernel("bankc2").unwrap();
    let out = r.ctx.create_buffer(4 * 64, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &out).unwrap();
    k.set_arg_scalar(1, 32i32).unwrap();
    let ev = r.queue.enqueue_ndrange(&k, &[64], Some(&[64])).unwrap();
    let c = ev.counters().unwrap();
    assert_eq!(c.lines_sum(), c.totals);
    // the barrier statement's stall cycles land on the barrier's line (5)
    let l5 = c.lines.get(&5).expect("barrier line has counters");
    assert_eq!(l5.barriers, 1);
    // bank conflicts split between the store (line 4) and the load (line 6)
    let store = c.lines.get(&4).map_or(0, |l| l.bank_conflicts);
    let load = c.lines.get(&6).map_or(0, |l| l.bank_conflicts);
    assert_eq!(store + load, c.totals.bank_conflicts);
    assert!(store > 0 && load > 0);
}

const DETERMINISM_SRC: &str = "__kernel void mix(__global float* dst, __global const float* src) {
    int i = (int)get_global_id(0);
    float a = src[i % 977];
    for (int j = 0; j < (i % 13); j++) { a = a * 1.01f + 0.5f; }
    if (i % 3 == 0) { a += src[(i * 7) % 977]; }
    dst[i] = a;
}";

fn counters_with_workers(workers: usize) -> (f64, LaunchCounters) {
    let r = rig();
    let p = Program::from_source(&r.ctx, DETERMINISM_SRC);
    p.build("").unwrap();
    let k = p.kernel("mix").unwrap();
    let dst = r.ctx.create_buffer(4 * N, MemAccess::ReadWrite).unwrap();
    let src = r.ctx.create_buffer(4 * 977, MemAccess::ReadOnly).unwrap();
    k.set_arg_buffer(0, &dst).unwrap();
    k.set_arg_buffer(1, &src).unwrap();
    let (timing, counters) = profile_launch(&k, &[N], Some(&[64]), &r.device, workers).unwrap();
    (timing.device_seconds, counters)
}

#[test]
fn counters_are_identical_across_worker_counts() {
    let (t1, c1) = counters_with_workers(1);
    for workers in [2, 3, 4] {
        let (t, c) = counters_with_workers(workers);
        assert_eq!(
            format!("{c1:?}"),
            format!("{c:?}"),
            "counters must not depend on the host pool size ({workers} workers)"
        );
        assert_eq!(t1, t, "modeled time must not depend on the pool size");
    }
}

#[test]
fn counters_are_identical_in_order_vs_out_of_order() {
    let run = |out_of_order: bool| {
        let device = Device::new(DeviceProfile::tesla_c2050());
        let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
        let queue = if out_of_order {
            CommandQueue::new_out_of_order(&ctx, &device).unwrap()
        } else {
            CommandQueue::new(&ctx, &device).unwrap()
        };
        queue.set_profiling(true);
        let p = Program::from_source(&ctx, DETERMINISM_SRC);
        p.build("").unwrap();
        let k = p.kernel("mix").unwrap();
        let dst = ctx.create_buffer(4 * N, MemAccess::ReadWrite).unwrap();
        let src = ctx.create_buffer(4 * 977, MemAccess::ReadOnly).unwrap();
        k.set_arg_buffer(0, &dst).unwrap();
        k.set_arg_buffer(1, &src).unwrap();
        let ev = queue.enqueue_ndrange(&k, &[N], Some(&[64])).unwrap();
        format!("{:?}", ev.counters().unwrap())
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn unprofiled_launches_skip_counters_but_model_identically() {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    let p = Program::from_source(&ctx, DETERMINISM_SRC);
    p.build("").unwrap();
    let k = p.kernel("mix").unwrap();
    let dst = ctx.create_buffer(4 * N, MemAccess::ReadWrite).unwrap();
    let src = ctx.create_buffer(4 * 977, MemAccess::ReadOnly).unwrap();
    k.set_arg_buffer(0, &dst).unwrap();
    k.set_arg_buffer(1, &src).unwrap();

    // profiling off (the default): no counters, no conformant stamps,
    // but the analytic timing is produced either way
    let plain = queue.enqueue_ndrange(&k, &[N], Some(&[64])).unwrap();
    assert!(!plain.is_profiled());
    assert!(plain.counters().is_none());
    assert!(plain.profiling_info().is_err());
    let plain_timing = plain.kernel_timing().unwrap();

    queue.set_profiling(true);
    let profiled = queue.enqueue_ndrange(&k, &[N], Some(&[64])).unwrap();
    assert!(profiled.is_profiled());
    assert!(profiled.counters().is_some());
    assert!(profiled.profiling_info().is_ok());
    assert_eq!(
        plain_timing.device_seconds,
        profiled.kernel_timing().unwrap().device_seconds,
        "collection must never perturb the model"
    );
}

#[test]
fn dma_transfers_carry_stamps_and_transfer_info() {
    let r = rig();
    let data = vec![1.25f32; 1 << 16];
    let a = r.ctx.create_buffer(4 << 16, MemAccess::ReadWrite).unwrap();
    let b = r.ctx.create_buffer(4 << 16, MemAccess::ReadWrite).unwrap();

    let write = r.queue.enqueue_write(&a, 0, &data).unwrap();
    let copy = r.queue.enqueue_copy(&a, &b, 0, 0, 4 << 16).unwrap();
    let (back, read) = r.queue.enqueue_read::<f32>(&b, 0, 1 << 16).unwrap();
    assert_eq!(back, data, "the profiled path must still move the data");

    for (ev, dir) in [
        (&write, TransferDir::HostToDevice),
        (&copy, TransferDir::DeviceToDevice),
        (&read, TransferDir::DeviceToHost),
    ] {
        let info = ev.transfer_info().expect("transfers report byte counts");
        assert_eq!(info.bytes, 4 << 16);
        assert_eq!(info.direction, dir);
        let stamps = ev.profiling_info().expect("queue is profiled");
        assert!(stamps.queued <= stamps.submitted);
        assert!(stamps.submitted <= stamps.started);
        assert!(
            stamps.started < stamps.ended,
            "a 256 KiB transfer takes modeled time"
        );
        assert!(ev.modeled_seconds() > 0.0);
    }
    // DMA stamps sit on one shared timeline: the copy cannot start before
    // the write ended, nor the read before the copy ended
    assert!(copy.profile().started >= write.profile().ended);
    assert!(read.profile().started >= copy.profile().ended);
}

#[test]
fn chrome_trace_of_a_real_run_validates() {
    let r = rig();
    let data = vec![0.5f32; N];
    let buf = r.ctx.create_buffer(4 * N, MemAccess::ReadWrite).unwrap();
    let src = r.ctx.create_buffer(4 * N, MemAccess::ReadOnly).unwrap();
    let write = r.queue.enqueue_write(&src, 0, &data).unwrap();
    let p = Program::from_source(
        &r.ctx,
        "__kernel void stream(__global float* dst, __global const float* src) {
            int i = (int)get_global_id(0);
            dst[i] = src[i] * 2.0f;
        }",
    );
    p.build("").unwrap();
    let k = p.kernel("stream").unwrap();
    k.set_arg_buffer(0, &buf).unwrap();
    k.set_arg_buffer(1, &src).unwrap();
    let launch = r.queue.enqueue_ndrange(&k, &[N], Some(&[64])).unwrap();
    let (_, read) = r.queue.enqueue_read::<f32>(&buf, 0, N).unwrap();

    let json = chrome_trace(&r.device, &[write, launch, read]);
    validate_chrome_trace(&json).expect("exporter must emit schema-valid JSON");
    assert!(json.contains("\"stream\""), "kernel slice must be named");
    assert!(
        json.contains("coalescing_pct"),
        "counter args must ride along"
    );
    assert!(json.contains("h2d") && json.contains("d2h"), "DMA slices");
}
