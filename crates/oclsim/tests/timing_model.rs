//! Invariant tests of the analytic timing model: the scaling laws the
//! evaluation figures rely on must hold structurally, independent of the
//! concrete calibration constants.

use oclsim::{CommandQueue, Context, Device, DeviceProfile, MemAccess, Program, TimingBreakdown};

struct Rig {
    ctx: Context,
    queue: CommandQueue,
}

fn rig_for(profile: DeviceProfile) -> Rig {
    let device = Device::new(profile);
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    Rig { ctx, queue }
}

/// Launch an ALU-heavy kernel over `n` items; returns the timing.
fn run_compute(rig: &Rig, n: usize, iters: i32) -> TimingBreakdown {
    let src = "__kernel void work(__global float* out, const int iters) {
        int i = (int)get_global_id(0);
        float acc = 0.5f;
        for (int j = 0; j < iters; j++) {
            acc = acc * 1.0001f + 0.001f;
        }
        out[i] = acc;
    }";
    let p = Program::from_source(&rig.ctx, src);
    p.build("").unwrap();
    let k = p.kernel("work").unwrap();
    let out = rig.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &out).unwrap();
    k.set_arg_scalar(1, iters).unwrap();
    let ev = rig
        .queue
        .enqueue_ndrange(&k, &[n], Some(&[64.min(n)]))
        .unwrap();
    ev.kernel_timing().unwrap()
}

/// Launch a streaming (memory-bound) kernel over `n` items.
fn run_stream(rig: &Rig, n: usize) -> TimingBreakdown {
    let src = "__kernel void stream(__global float* dst, __global const float* src) {
        int i = (int)get_global_id(0);
        dst[i] = src[i];
    }";
    let p = Program::from_source(&rig.ctx, src);
    p.build("").unwrap();
    let k = p.kernel("stream").unwrap();
    let a = rig.ctx.create_buffer(4 * n, MemAccess::ReadOnly).unwrap();
    let b = rig.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &b).unwrap();
    k.set_arg_buffer(1, &a).unwrap();
    let ev = rig
        .queue
        .enqueue_ndrange(&k, &[n], Some(&[64.min(n)]))
        .unwrap();
    ev.kernel_timing().unwrap()
}

#[test]
fn compute_time_scales_linearly_with_iterations() {
    let rig = rig_for(DeviceProfile::tesla_c2050());
    let t1 = run_compute(&rig, 1 << 14, 32);
    let t4 = run_compute(&rig, 1 << 14, 128);
    let ratio = t4.compute_seconds / t1.compute_seconds;
    assert!(
        (3.5..4.5).contains(&ratio),
        "4x iterations should be ~4x cycles, got {ratio}"
    );
}

#[test]
fn compute_time_scales_with_items_once_device_is_full() {
    let rig = rig_for(DeviceProfile::tesla_c2050());
    let t1 = run_compute(&rig, 1 << 14, 64);
    let t4 = run_compute(&rig, 1 << 16, 64);
    let ratio = t4.compute_seconds / t1.compute_seconds;
    assert!(
        (3.5..4.5).contains(&ratio),
        "4x items should be ~4x time, got {ratio}"
    );
}

#[test]
fn streaming_kernel_is_memory_bound_on_gpu() {
    let rig = rig_for(DeviceProfile::tesla_c2050());
    let t = run_stream(&rig, 1 << 18);
    assert!(
        t.memory_seconds > t.compute_seconds,
        "pure copy must be bandwidth-limited: mem {} vs compute {}",
        t.memory_seconds,
        t.compute_seconds
    );
    // the modeled bandwidth must be within 2x of the profile's peak
    let bytes = 2.0 * 4.0 * (1 << 18) as f64; // read + write
    let achieved = bytes / t.memory_seconds;
    let peak = 144.0e9;
    assert!(achieved <= peak * 1.01, "cannot beat peak bandwidth");
    assert!(
        achieved > peak / 2.0,
        "coalesced copy should approach peak, got {achieved:e}"
    );
}

#[test]
fn alu_kernel_is_compute_bound_on_gpu() {
    let rig = rig_for(DeviceProfile::tesla_c2050());
    let t = run_compute(&rig, 1 << 14, 256);
    assert!(t.compute_seconds > t.memory_seconds);
}

#[test]
fn tesla_beats_quadro_proportionally_to_width() {
    let tesla = rig_for(DeviceProfile::tesla_c2050());
    let quadro = rig_for(DeviceProfile::quadro_fx380());
    let tt = run_compute(&tesla, 1 << 14, 64);
    let tq = run_compute(&quadro, 1 << 14, 64);
    let ratio = tq.compute_seconds / tt.compute_seconds;
    // 448 lanes @1.15GHz vs 16 lanes @0.7GHz = 46x raw; allow model slack
    assert!(
        (20.0..80.0).contains(&ratio),
        "Tesla should be roughly 46x faster on ALU work, got {ratio}"
    );
}

#[test]
fn serial_cpu_runs_items_sequentially() {
    let cpu = rig_for(DeviceProfile::serial_cpu());
    let t1 = run_compute(&cpu, 1 << 10, 64);
    let t4 = run_compute(&cpu, 1 << 12, 64);
    let ratio = t4.compute_seconds / t1.compute_seconds;
    assert!(
        (3.5..4.5).contains(&ratio),
        "1 CU: 4x items = 4x time, got {ratio}"
    );
}

#[test]
fn cpu_cache_makes_sequential_cheaper_than_scattered() {
    let cpu = rig_for(DeviceProfile::serial_cpu());
    let n = 1 << 14;
    let seq = run_stream(&cpu, n);

    // scatter with a large prime stride: every access a new cache line
    let src = "__kernel void scatter(__global float* dst, __global const float* src, const int n) {
        int i = (int)get_global_id(0);
        int j = (int)(((long)i * 7919) % (long)n);
        dst[j] = src[j];
    }";
    let p = Program::from_source(&cpu.ctx, src);
    p.build("").unwrap();
    let k = p.kernel("scatter").unwrap();
    let a = cpu.ctx.create_buffer(4 * n, MemAccess::ReadOnly).unwrap();
    let b = cpu.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
    k.set_arg_buffer(0, &b).unwrap();
    k.set_arg_buffer(1, &a).unwrap();
    k.set_arg_scalar(2, n as i32).unwrap();
    let scat = cpu.queue.enqueue_ndrange(&k, &[n], Some(&[64])).unwrap();
    let scat = scat.kernel_timing().unwrap();

    assert!(
        scat.totals.mem_transactions > seq.totals.mem_transactions * 4,
        "scattered access must miss the segment cache: {} vs {}",
        scat.totals.mem_transactions,
        seq.totals.mem_transactions
    );
}

#[test]
fn launch_overhead_dominates_tiny_kernels() {
    let rig = rig_for(DeviceProfile::tesla_c2050());
    let t = run_compute(&rig, 64, 1);
    assert!(
        t.device_seconds >= oclsim::timing::LAUNCH_OVERHEAD_SECONDS,
        "every launch pays the dispatch overhead"
    );
    assert!(t.device_seconds < 2.0 * oclsim::timing::LAUNCH_OVERHEAD_SECONDS);
}

#[test]
fn fp64_costs_double_on_tesla() {
    let rig = rig_for(DeviceProfile::tesla_c2050());
    let srcs = [
        ("f32", "__kernel void k(__global float* o) { int i=(int)get_global_id(0); float a=0.5f; for (int j=0;j<128;j++) { a = a*1.5f + 0.25f; } o[i]=a; }"),
        ("f64", "__kernel void k(__global double* o) { int i=(int)get_global_id(0); double a=0.5; for (int j=0;j<128;j++) { a = a*1.5 + 0.25; } o[i]=(double)a; }"),
    ];
    let mut times = Vec::new();
    for (_, src) in srcs {
        let p = Program::from_source(&rig.ctx, src);
        p.build("").unwrap();
        let k = p.kernel("k").unwrap();
        let buf = rig
            .ctx
            .create_buffer(8 * 4096, MemAccess::ReadWrite)
            .unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let ev = rig.queue.enqueue_ndrange(&k, &[4096], Some(&[64])).unwrap();
        times.push(ev.kernel_timing().unwrap().compute_seconds);
    }
    let ratio = times[1] / times[0];
    assert!(
        (1.3..2.2).contains(&ratio),
        "Fermi's fp64 is half-rate; f64 loop should cost ~1.5-2x, got {ratio}"
    );
}

#[test]
fn group_imbalance_appears_in_makespan() {
    // one group loops far longer than the rest: the makespan (and thus the
    // modeled time) must track the slow group, not the average
    let rig = rig_for(DeviceProfile::quadro_fx380()); // 2 CUs: imbalance visible
    let src = "__kernel void skew(__global float* out, const int heavy) {
        int g = (int)get_group_id(0);
        int iters = (g == 0) ? heavy : 16;
        float a = 0.5f;
        for (int j = 0; j < iters; j++) { a = a * 1.001f + 0.001f; }
        out[(int)get_global_id(0)] = a;
    }";
    let p = Program::from_source(&rig.ctx, src);
    p.build("").unwrap();
    let k = p.kernel("skew").unwrap();
    let buf = rig
        .ctx
        .create_buffer(4 * 1024, MemAccess::ReadWrite)
        .unwrap();
    k.set_arg_buffer(0, &buf).unwrap();

    k.set_arg_scalar(1, 16i32).unwrap();
    let balanced = rig.queue.enqueue_ndrange(&k, &[1024], Some(&[64])).unwrap();
    k.set_arg_scalar(1, 16_000i32).unwrap();
    let skewed = rig.queue.enqueue_ndrange(&k, &[1024], Some(&[64])).unwrap();

    let b = balanced.kernel_timing().unwrap().compute_seconds;
    let s = skewed.kernel_timing().unwrap().compute_seconds;
    assert!(
        s > b * 10.0,
        "one 1000x-slower group must dominate: {s} vs {b}"
    );
}

#[test]
fn transfer_time_models_interconnect() {
    let rig = rig_for(DeviceProfile::tesla_c2050());
    let buf = rig
        .ctx
        .create_buffer(4 << 20, MemAccess::ReadWrite)
        .unwrap();
    let data = vec![0u8; 4 << 20];
    let mut bytes = vec![0u8; 4 << 20];
    bytes.copy_from_slice(&data);
    let small = rig.queue.enqueue_write(&buf, 0, &[0f32; 256]).unwrap();
    let big_data = vec![0f32; 1 << 20];
    let big = rig.queue.enqueue_write(&buf, 0, &big_data).unwrap();
    assert!(big.modeled_seconds() > small.modeled_seconds() * 10.0);
    // 4 MiB over 6 GB/s PCIe ~ 0.7 ms
    let expect = (4 << 20) as f64 / 6.0e9;
    assert!(
        (big.modeled_seconds() - expect).abs() / expect < 0.2,
        "{}",
        big.modeled_seconds()
    );
}
