//! Property-based tests of the OpenCL C compiler + interpreter: randomly
//! generated C expressions are compiled and executed on the simulated
//! device and compared against a direct host evaluation with C semantics.

use oclsim::{CommandQueue, Context, Device, DeviceProfile, MemAccess, Program};
use proptest::prelude::*;

/// A generated C expression over one `int` variable `x`, paired with a
/// host evaluator implementing the same wrapping semantics.
#[derive(Debug, Clone)]
enum CExpr {
    X,
    Lit(i16),
    Add(Box<CExpr>, Box<CExpr>),
    Sub(Box<CExpr>, Box<CExpr>),
    Mul(Box<CExpr>, Box<CExpr>),
    And(Box<CExpr>, Box<CExpr>),
    Or(Box<CExpr>, Box<CExpr>),
    Xor(Box<CExpr>, Box<CExpr>),
    Shl(Box<CExpr>, u8),
    Shr(Box<CExpr>, u8),
    Neg(Box<CExpr>),
    Not(Box<CExpr>),
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    fn to_c(&self) -> String {
        match self {
            CExpr::X => "x".into(),
            CExpr::Lit(v) => {
                if *v < 0 {
                    format!("({v})")
                } else {
                    format!("{v}")
                }
            }
            CExpr::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            CExpr::Sub(a, b) => format!("({} - {})", a.to_c(), b.to_c()),
            CExpr::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
            CExpr::And(a, b) => format!("({} & {})", a.to_c(), b.to_c()),
            CExpr::Or(a, b) => format!("({} | {})", a.to_c(), b.to_c()),
            CExpr::Xor(a, b) => format!("({} ^ {})", a.to_c(), b.to_c()),
            CExpr::Shl(a, s) => format!("({} << {s})", a.to_c()),
            CExpr::Shr(a, s) => format!("({} >> {s})", a.to_c()),
            CExpr::Neg(a) => format!("(-{})", a.to_c()),
            CExpr::Not(a) => format!("(~{})", a.to_c()),
            CExpr::Ternary(l, r, t, f) => {
                format!(
                    "(({} < {}) ? {} : {})",
                    l.to_c(),
                    r.to_c(),
                    t.to_c(),
                    f.to_c()
                )
            }
        }
    }

    fn eval(&self, x: i32) -> i32 {
        match self {
            CExpr::X => x,
            CExpr::Lit(v) => *v as i32,
            CExpr::Add(a, b) => a.eval(x).wrapping_add(b.eval(x)),
            CExpr::Sub(a, b) => a.eval(x).wrapping_sub(b.eval(x)),
            CExpr::Mul(a, b) => a.eval(x).wrapping_mul(b.eval(x)),
            CExpr::And(a, b) => a.eval(x) & b.eval(x),
            CExpr::Or(a, b) => a.eval(x) | b.eval(x),
            CExpr::Xor(a, b) => a.eval(x) ^ b.eval(x),
            // OpenCL shift semantics: amount modulo the type width
            CExpr::Shl(a, s) => a.eval(x).wrapping_shl((*s % 32) as u32),
            CExpr::Shr(a, s) => a.eval(x).wrapping_shr((*s % 32) as u32),
            CExpr::Neg(a) => a.eval(x).wrapping_neg(),
            CExpr::Not(a) => !a.eval(x),
            CExpr::Ternary(l, r, t, f) => {
                if l.eval(x) < r.eval(x) {
                    t.eval(x)
                } else {
                    f.eval(x)
                }
            }
        }
    }
}

fn c_expr() -> impl Strategy<Value = CExpr> {
    let leaf = prop_oneof![Just(CExpr::X), any::<i16>().prop_map(CExpr::Lit)];
    leaf.prop_recursive(5, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| CExpr::Shl(Box::new(a), s)),
            (inner.clone(), 0u8..31).prop_map(|(a, s)| CExpr::Shr(Box::new(a), s)),
            inner.clone().prop_map(|a| CExpr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| CExpr::Not(Box::new(a))),
            (inner.clone(), inner.clone(), inner.clone(), inner).prop_map(|(l, r, t, f)| {
                CExpr::Ternary(Box::new(l), Box::new(r), Box::new(t), Box::new(f))
            }),
        ]
    })
}

struct Rig {
    ctx: Context,
    queue: CommandQueue,
}

fn rig() -> Rig {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let queue = CommandQueue::new(&ctx, &device).unwrap();
    Rig { ctx, queue }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Compile a random int expression and compare against host semantics
    /// over a batch of inputs.
    #[test]
    fn compiled_expressions_match_c_semantics(
        tree in c_expr(),
        inputs in proptest::collection::vec(any::<i32>(), 4..32),
    ) {
        let r = rig();
        let src = format!(
            "__kernel void f(__global int* out, __global const int* in) {{\n\
                 int i = (int)get_global_id(0);\n\
                 int x = in[i];\n\
                 out[i] = {};\n\
             }}",
            tree.to_c()
        );
        let program = Program::from_source(&r.ctx, &src);
        program.build("").unwrap_or_else(|e| panic!("build failed: {e}\n{src}"));
        let kernel = program.kernel("f").unwrap();

        let n = inputs.len();
        let in_buf = r.ctx.create_buffer_from(&inputs, MemAccess::ReadOnly).unwrap();
        let out_buf = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
        kernel.set_arg_buffer(0, &out_buf).unwrap();
        kernel.set_arg_buffer(1, &in_buf).unwrap();
        r.queue.enqueue_ndrange(&kernel, &[n], None).unwrap();

        let got = out_buf.read_vec::<i32>(0, n).unwrap();
        for (i, &x) in inputs.iter().enumerate() {
            prop_assert_eq!(got[i], tree.eval(x), "input {} expr {}", x, tree.to_c());
        }
    }

    /// Unsigned arithmetic wraps modulo 2^32 exactly like Rust's u32.
    #[test]
    fn uint_arithmetic_wraps(a in any::<u32>(), b in any::<u32>()) {
        let r = rig();
        let src = "__kernel void f(__global uint* out, uint a, uint b) {
            out[0] = a + b;
            out[1] = a - b;
            out[2] = a * b;
            out[3] = a ^ b;
        }";
        let program = Program::from_source(&r.ctx, src);
        program.build("").unwrap();
        let kernel = program.kernel("f").unwrap();
        let out = r.ctx.create_buffer(16, MemAccess::ReadWrite).unwrap();
        kernel.set_arg_buffer(0, &out).unwrap();
        kernel.set_arg_scalar(1, a).unwrap();
        kernel.set_arg_scalar(2, b).unwrap();
        r.queue.enqueue_ndrange(&kernel, &[1], None).unwrap();
        let got = out.read_vec::<u32>(0, 4).unwrap();
        prop_assert_eq!(got[0], a.wrapping_add(b));
        prop_assert_eq!(got[1], a.wrapping_sub(b));
        prop_assert_eq!(got[2], a.wrapping_mul(b));
        prop_assert_eq!(got[3], a ^ b);
    }

    /// f32 arithmetic matches Rust's f32 bit-for-bit for + - * /.
    #[test]
    fn f32_arithmetic_is_ieee(a in any::<f32>(), b in any::<f32>()) {
        prop_assume!(a.is_finite() && b.is_finite());
        let r = rig();
        let src = "__kernel void f(__global float* out, float a, float b) {
            out[0] = a + b;
            out[1] = a - b;
            out[2] = a * b;
            out[3] = a / b;
        }";
        let program = Program::from_source(&r.ctx, src);
        program.build("").unwrap();
        let kernel = program.kernel("f").unwrap();
        let out = r.ctx.create_buffer(16, MemAccess::ReadWrite).unwrap();
        kernel.set_arg_buffer(0, &out).unwrap();
        kernel.set_arg_scalar(1, a).unwrap();
        kernel.set_arg_scalar(2, b).unwrap();
        r.queue.enqueue_ndrange(&kernel, &[1], None).unwrap();
        let got = out.read_vec::<f32>(0, 4).unwrap();
        prop_assert_eq!(got[0].to_bits(), (a + b).to_bits());
        prop_assert_eq!(got[1].to_bits(), (a - b).to_bits());
        prop_assert_eq!(got[2].to_bits(), (a * b).to_bits());
        prop_assert_eq!(got[3].to_bits(), (a / b).to_bits());
    }

    /// A buffer round-trip through device copy-in/copy-out kernels
    /// preserves arbitrary bytes (as i32 words).
    #[test]
    fn copy_kernel_preserves_all_bit_patterns(
        words in proptest::collection::vec(any::<i32>(), 1..128),
    ) {
        let r = rig();
        let src = "__kernel void copy(__global int* dst, __global const int* src) {
            int i = (int)get_global_id(0);
            dst[i] = src[i];
        }";
        let program = Program::from_source(&r.ctx, src);
        program.build("").unwrap();
        let kernel = program.kernel("copy").unwrap();
        let n = words.len();
        let src_buf = r.ctx.create_buffer_from(&words, MemAccess::ReadOnly).unwrap();
        let dst_buf = r.ctx.create_buffer(4 * n, MemAccess::ReadWrite).unwrap();
        kernel.set_arg_buffer(0, &dst_buf).unwrap();
        kernel.set_arg_buffer(1, &src_buf).unwrap();
        r.queue.enqueue_ndrange(&kernel, &[n], None).unwrap();
        prop_assert_eq!(dst_buf.read_vec::<i32>(0, n).unwrap(), words);
    }
}
