//! Postmortem dumps for poisoned dependency chains: the serve layer must
//! emit a self-contained dump — full causal `Error::DependencyFailed`
//! chain, span tree, flight-recorder tail, cache/quota state — for sync
//! (partitioned) and async submissions, on both execution backends, and
//! the canonical rendering must not depend on the backend.

use std::sync::Mutex;

use oclsim::serve::{JobArg, LaunchJob, PartitionStrategy, Service, ServiceConfig, TenantQuota};
use oclsim::{set_backend, take_postmortems, Backend, Error, Event, Postmortem};

const SAXPY: &str = r#"
__kernel void saxpy(__global float* y, __global const float* x, float a) {
    size_t i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}
"#;

fn saxpy_job(n: usize) -> LaunchJob {
    let x: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let y: Vec<u8> = (0..n)
        .flat_map(|i| ((i % 7) as f32).to_le_bytes())
        .collect();
    LaunchJob {
        source: SAXPY.to_string(),
        kernel: "saxpy".to_string(),
        build_options: String::new(),
        args: vec![
            JobArg::InOut(y),
            JobArg::In(x),
            JobArg::Scalar(2.0f32.into()),
        ],
        global: vec![n],
        // explicit local size so partitioned launches split into several
        // work-group chunks (256 items -> 8 groups)
        local: Some(vec![32]),
    }
}

/// A user event pre-failed from the host: the deterministic poison every
/// test injects (no exec-layer fault races, no backend-specific text).
fn poisoned_gate() -> Event {
    let gate = Event::user();
    gate.set_error(Error::InvalidOperation("injected poison".into()))
        .unwrap();
    gate
}

/// Tests here flip the process-global backend knob and drain the
/// process-global postmortem sink; serialize them.
static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn find_postmortem(tenant: &str) -> Postmortem {
    take_postmortems()
        .into_iter()
        .find(|p| p.tenant == tenant)
        .unwrap_or_else(|| panic!("no postmortem emitted for tenant {tenant}"))
}

fn run_poisoned_partitioned(tenant: &str) -> Postmortem {
    let svc = Service::new(ServiceConfig::default()).unwrap();
    let s = svc.session(tenant, TenantQuota::unlimited());
    let err = s
        .submit_partitioned_with(
            &saxpy_job(256),
            // fixed-size chunks so several are issued (8 groups -> 4
            // chunks) and the gate poisons everything from chunk 1 on
            PartitionStrategy::Dynamic { chunk_groups: 2 },
            Some((1, poisoned_gate())),
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::DependencyFailed { .. }),
        "gated chunk must fail as a poisoned dependency, got: {err}"
    );
    assert!(
        matches!(err.root_cause(), Error::InvalidOperation(_)),
        "root cause must be the injected host error, got: {}",
        err.root_cause()
    );
    find_postmortem(tenant)
}

#[test]
fn sync_partitioned_poison_emits_causal_postmortem_on_both_backends() {
    let _g = lock();
    let prev = oclsim::backend();
    for (backend, tenant) in [(Backend::Ref, "pm-sync-ref"), (Backend::Wg, "pm-sync-wg")] {
        set_backend(backend);
        let pm = run_poisoned_partitioned(tenant);
        // the full causal chain, outermost first, down to the injection
        assert!(pm.error_chain.len() >= 2, "{:?}", pm.error_chain);
        assert!(
            pm.error_chain[0].contains("dependency failed"),
            "{:?}",
            pm.error_chain
        );
        assert!(
            pm.error_chain.last().unwrap().contains("injected poison"),
            "{:?}",
            pm.error_chain
        );
        // the span tree covers session → admission → cache → sched →
        // partition chunk → exec launch, every node tagged with the id
        let rendered = pm.render(true);
        for stage in [
            "session.submit",
            "admission",
            "cache.lookup",
            "sched.dma",
            "sched.enqueue",
            "partition.chunk",
            "exec.launch",
        ] {
            assert!(rendered.contains(stage), "missing {stage} in:\n{rendered}");
        }
        assert!(rendered.contains("(gated)"), "{rendered}");
        let id = pm.trace.to_string();
        for line in pm.request.render(true).lines() {
            assert!(line.contains(&id), "span node missing trace id: {line}");
        }
        // the flight-recorder tail contains the originating submission
        // and the failure, attributed to this request
        assert!(
            pm.recorder_tail
                .iter()
                .any(|e| e.stage == "session.submit" && e.trace == Some(pm.trace)),
            "tail lacks the originating submission: {rendered}"
        );
        assert!(
            pm.recorder_tail
                .iter()
                .any(|e| e.stage == "error" && e.detail.contains("injected poison")),
            "tail lacks the failure event: {rendered}"
        );
    }
    set_backend(prev);
}

#[test]
fn async_poisoned_dependency_emits_postmortem_at_wait_on_both_backends() {
    let _g = lock();
    let prev = oclsim::backend();
    for (backend, tenant) in [(Backend::Ref, "pm-async-ref"), (Backend::Wg, "pm-async-wg")] {
        set_backend(backend);
        let svc = Service::new(ServiceConfig::default()).unwrap();
        let s = svc.session(tenant, TenantQuota::unlimited());
        let pending = s
            .submit_async(0, &saxpy_job(64), &[poisoned_gate()])
            .unwrap();
        let trace = pending.trace();
        let err = pending.wait().unwrap_err();
        assert!(matches!(err, Error::DependencyFailed { .. }), "{err}");
        assert!(
            matches!(err.root_cause(), Error::InvalidOperation(_)),
            "{}",
            err.root_cause()
        );
        let pm = find_postmortem(tenant);
        assert_eq!(pm.trace, trace, "dump belongs to the waited request");
        assert!(
            pm.error_chain.last().unwrap().contains("injected poison"),
            "{:?}",
            pm.error_chain
        );
        let rendered = pm.render(true);
        assert!(rendered.contains("external dep(s)"), "{rendered}");
        assert!(
            rendered.contains("sched.enqueue") && rendered.contains("!error"),
            "the enqueue node must carry the poisoning error:\n{rendered}"
        );
        assert!(
            pm.recorder_tail
                .iter()
                .any(|e| e.stage == "session.submit" && e.trace == Some(trace)),
            "tail lacks the originating async submission"
        );
    }
    set_backend(prev);
}

#[test]
fn quota_rejection_emits_postmortem_with_admission_chain() {
    let _g = lock();
    let svc = Service::new(ServiceConfig::default()).unwrap();
    let s = svc.session(
        "pm-quota",
        TenantQuota {
            max_launches: Some(1),
            ..TenantQuota::default()
        },
    );
    s.submit(0, &saxpy_job(32)).unwrap();
    let err = s.submit(0, &saxpy_job(32)).unwrap_err();
    assert!(matches!(err, Error::AdmissionRejected { .. }), "{err}");
    let pm = find_postmortem("pm-quota");
    assert!(
        pm.error_chain.last().unwrap().contains("quota exceeded"),
        "{:?}",
        pm.error_chain
    );
    let rendered = pm.render(true);
    assert!(
        rendered.contains("admission") && rendered.contains("!error"),
        "the admission node must carry the rejection:\n{rendered}"
    );
    assert!(rendered.contains("quota: launches 1/1"), "{rendered}");
}

/// Canonicalize the tenant-identity parts of a dump so two runs of the
/// same scenario under *different tenant names* (hence different trace-id
/// hashes) can be byte-compared.
fn canonicalized(pm: &Postmortem) -> String {
    let hash_prefix: String = pm.trace.to_string().chars().take(9).collect();
    pm.render(true)
        .replace(&hash_prefix, "tXXXXXXXX")
        .replace(&pm.tenant, "TENANT")
}

#[test]
fn postmortem_content_is_identical_across_backends() {
    let _g = lock();
    let prev = oclsim::backend();
    set_backend(Backend::Ref);
    let ref_pm = run_poisoned_partitioned("pm-diff-ref");
    set_backend(Backend::Wg);
    let wg_pm = run_poisoned_partitioned("pm-diff-wg");
    set_backend(prev);
    assert_eq!(
        canonicalized(&ref_pm),
        canonicalized(&wg_pm),
        "canonical postmortem content must not depend on the exec backend"
    );
    // the chrome export is deterministic too (modeled-time timeline only)
    oclsim::prof::validate_chrome_trace(&ref_pm.chrome_trace()).unwrap();
    assert_eq!(
        ref_pm
            .chrome_trace()
            .replace(&ref_pm.trace.to_string(), "T")
            .replace("pm-diff-ref", "TENANT"),
        wg_pm
            .chrome_trace()
            .replace(&wg_pm.trace.to_string(), "T")
            .replace("pm-diff-wg", "TENANT"),
    );
}
