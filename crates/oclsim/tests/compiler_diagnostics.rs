//! Diagnostics quality tests: every stage of the OpenCL C compiler must
//! reject malformed input with an error that names the stage and, where
//! applicable, the offending line — what a developer debugging a kernel
//! actually needs from a build log.

use oclsim::{Context, Device, DeviceProfile, Program};

fn build_err(src: &str) -> String {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let p = Program::from_source(&ctx, src);
    let err = p.build("").expect_err("source must fail to build");
    let log = p.build_log();
    assert!(err.to_string().contains("build failure"));
    assert!(!log.is_empty(), "the build log must carry the diagnostic");
    log
}

#[test]
fn preprocessor_errors_name_the_stage_and_line() {
    let log = build_err("int a;\n#include \"x.h\"\n");
    assert!(log.contains("preprocessor"), "{log}");
    assert!(log.contains("line 2"), "{log}");

    let log = build_err("#define F(x) (x)\n");
    assert!(log.contains("function-like"), "{log}");

    let log = build_err("#ifdef A\nint x;\n");
    assert!(log.contains("unterminated"), "{log}");
}

#[test]
fn lexer_errors_name_the_character() {
    let log = build_err("__kernel void f() { int a = 1 @ 2; }");
    assert!(log.contains("lexer"), "{log}");
    assert!(log.contains('@'), "{log}");
}

#[test]
fn parser_errors_carry_line_numbers() {
    let log = build_err("__kernel void f() {\n    int a = ;\n}");
    assert!(log.contains("parser"), "{log}");
    assert!(log.contains("line 2"), "{log}");

    let log = build_err("__kernel void f(__global float* a) {\n    a[0] = 1.0f\n}");
    assert!(log.contains("parser"), "{log}");

    let log = build_err("__kernel void f() { switch (1) {} }");
    assert!(log.contains("not supported"), "{log}");
}

#[test]
fn sema_errors_explain_the_violation() {
    let log = build_err("__kernel void f() { undeclared = 1; }");
    assert!(log.contains("sema"), "{log}");
    assert!(log.contains("undeclared"), "{log}");

    let log = build_err("__kernel void f(__constant float* c) { c[0] = 1.0f; }");
    assert!(log.contains("__constant"), "{log}");

    let log = build_err("__kernel void f() { barrier(CLK_LOCAL_MEM_FENCE, 2, 3); }");
    assert!(log.contains("barrier"), "{log}");

    let log = build_err("__kernel void f(int n) { int a[n]; }");
    assert!(log.contains("compile-time constant"), "{log}");

    // returning a value from a void function is rejected
    let log = build_err("__kernel void k() { return 1; }");
    assert!(log.contains("void"), "{log}");
}

#[test]
fn rebuild_after_failure_succeeds() {
    // a program object is reusable: a failed build does not poison it
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let p = Program::from_source(&ctx, "__kernel void f(__global int* o) { o[0] = N; }");
    assert!(p.build("").is_err(), "N undefined");
    p.build("-D N=3").expect("defining N fixes the build");
    assert_eq!(p.kernel_names().unwrap(), vec!["f".to_string()]);
}

#[test]
fn build_log_of_successful_build_says_so() {
    let device = Device::new(DeviceProfile::tesla_c2050());
    let ctx = Context::new(std::slice::from_ref(&device)).unwrap();
    let p = Program::from_source(&ctx, "__kernel void f(__global int* o) { o[0] = 1; }");
    p.build("").unwrap();
    assert!(p.build_log().contains("successful"));
}
