//! Shared, waitable events with the OpenCL lifecycle.
//!
//! An [`Event`] is a cheaply clonable handle to one command's execution
//! state. It moves through the OpenCL status ladder
//! `Queued → Submitted → Running → Complete | Error`, carries the four
//! profiling timestamps (`queued`/`submitted`/`started`/`ended`) on the
//! **modeled device timeline**, and can be waited on from any thread.
//! [`Event::user`] creates host-controlled user events
//! (`clCreateUserEvent`) that gate enqueued commands until the host calls
//! [`Event::set_complete`] / [`Event::set_error`], or chains them onto
//! other events with [`Event::set_complete_on`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::time::Duration;

use crate::error::{Error, Result};
use crate::prof::counters::{LaunchCounters, TransferInfo};
use crate::sched::dispatcher::DeviceSched;
use crate::timing::TimingBreakdown;

/// Where a command is in its life, mirroring `CL_QUEUED`/`CL_SUBMITTED`/
/// `CL_RUNNING`/`CL_COMPLETE` plus the negative error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStatus {
    /// Enqueued on a command queue, not yet handed to the device.
    Queued,
    /// Handed to the device; wait list resolved (or a fresh user event).
    Submitted,
    /// The device is executing the command.
    Running,
    /// Finished successfully.
    Complete,
    /// Finished with an error (its own, or a poisoned dependency).
    Error,
}

/// What an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    WriteBuffer,
    ReadBuffer,
    CopyBuffer,
    NdRangeKernel,
    /// A synchronization point with no work of its own.
    Marker,
    /// A host-controlled user event.
    User,
}

/// The four OpenCL profiling timestamps, in seconds on the modeled device
/// timeline (origin = device creation or the last
/// [`crate::Device::reset_timeline`]). Host-side actions are modeled as
/// instantaneous: `queued` is always 0.0 and `submitted` is the instant
/// the last wait-list dependency finished.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimelineStamps {
    /// When the command entered the queue (`CL_PROFILING_COMMAND_QUEUED`).
    pub queued: f64,
    /// When its wait list resolved (`CL_PROFILING_COMMAND_SUBMIT`).
    pub submitted: f64,
    /// When a device resource picked it up (`CL_PROFILING_COMMAND_START`).
    pub started: f64,
    /// When it finished (`CL_PROFILING_COMMAND_END`).
    pub ended: f64,
}

static NEXT_EVENT_ID: AtomicU64 = AtomicU64::new(1);

/// Parties to notify when an event resolves.
pub(crate) enum Watcher {
    /// A device dispatcher with queued commands waiting on this event.
    Sched(Weak<DeviceSched>),
    /// A user event chained with [`Event::set_complete_on`].
    Chain {
        event: Weak<EventInner>,
        gate: Arc<ChainGate>,
    },
}

/// Countdown shared by the targets of one `set_complete_on` call.
pub(crate) struct ChainGate {
    state: Mutex<ChainState>,
}

struct ChainState {
    remaining: usize,
    first_error: Option<Error>,
}

impl ChainGate {
    fn new(remaining: usize) -> Arc<ChainGate> {
        Arc::new(ChainGate {
            state: Mutex::new(ChainState {
                remaining,
                first_error: None,
            }),
        })
    }

    /// Record one resolved target; returns the chain outcome once all
    /// targets are accounted for.
    fn arrive(&self, error: Option<Error>) -> Option<Option<Error>> {
        let mut st = lock(&self.state);
        if let (None, Some(e)) = (&st.first_error, error) {
            st.first_error = Some(e);
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            Some(st.first_error.clone())
        } else {
            None
        }
    }
}

/// Everything a command's execution produces besides its timeline slot:
/// detailed kernel timing, profiling counters (when the queue's profiling
/// flag was set), transfer metadata for DMA commands, and a display label.
/// Bundled so the dispatcher can thread it from the work closure to the
/// event without caring what is inside.
#[derive(Debug, Default)]
pub(crate) struct CommandOutput {
    pub kernel_timing: Option<TimingBreakdown>,
    pub counters: Option<LaunchCounters>,
    pub transfer: Option<TransferInfo>,
    pub label: Option<String>,
}

struct EventState {
    status: EventStatus,
    error: Option<Error>,
    /// Wait-list (and chain-target) events. A failed event here poisons
    /// this one with `DependencyFailed`. Cleared once resolved so long
    /// in-order chains do not accumulate.
    deps: Vec<Event>,
    /// Ordering-only predecessors (the implicit previous command of an
    /// in-order queue): this event runs after them but does **not**
    /// inherit their errors — a failed command leaves its queue usable,
    /// as in the synchronous API.
    order_deps: Vec<Event>,
    watchers: Vec<Watcher>,
    stamps: TimelineStamps,
    wall: Duration,
    output: CommandOutput,
}

pub(crate) struct EventInner {
    id: u64,
    kind: CommandKind,
    /// Whether the owning queue had profiling enabled at enqueue time —
    /// OpenCL's `CL_QUEUE_PROFILING_ENABLE` is sampled per command.
    profiled: bool,
    /// The request the command belongs to, captured from the enqueueing
    /// thread's ambient [`crate::obs`] trace. Immutable after creation;
    /// dispatcher workers re-establish it while executing the command so
    /// spans emitted mid-execution tag themselves with the right request.
    trace: Option<crate::obs::TraceId>,
    state: Mutex<EventState>,
    cond: Condvar,
}

/// A shared handle to one command's execution state (see module docs).
#[derive(Clone)]
pub struct Event {
    inner: Arc<EventInner>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // a panicking lock holder is already a bug being reported elsewhere;
    // never compound it by poisoning every waiter
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Event {
    fn with_status(
        kind: CommandKind,
        status: EventStatus,
        deps: Vec<Event>,
        order_deps: Vec<Event>,
        profiled: bool,
    ) -> Event {
        Event {
            inner: Arc::new(EventInner {
                id: NEXT_EVENT_ID.fetch_add(1, Ordering::Relaxed),
                kind,
                profiled,
                trace: crate::obs::current_trace(),
                state: Mutex::new(EventState {
                    status,
                    error: None,
                    deps,
                    order_deps,
                    watchers: Vec::new(),
                    stamps: TimelineStamps::default(),
                    wall: Duration::ZERO,
                    output: CommandOutput::default(),
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// A fresh event for a command entering a queue. `deps` is the
    /// explicit wait list (error-poisoning); `order_deps` are
    /// ordering-only predecessors. `profiled` records whether the queue's
    /// profiling flag was set at enqueue time.
    pub(crate) fn new_command(
        kind: CommandKind,
        deps: Vec<Event>,
        order_deps: Vec<Event>,
        profiled: bool,
    ) -> Event {
        Event::with_status(kind, EventStatus::Queued, deps, order_deps, profiled)
    }

    /// Create a user event (`clCreateUserEvent`): it stays `Submitted`
    /// until the host resolves it, and commands whose wait lists contain it
    /// do not run before then.
    pub fn user() -> Event {
        Event::with_status(
            CommandKind::User,
            EventStatus::Submitted,
            Vec::new(),
            Vec::new(),
            false,
        )
    }

    /// Unique id of this event.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// What the command was.
    pub fn kind(&self) -> CommandKind {
        self.inner.kind
    }

    /// The request this command belongs to — the [`crate::obs`] trace id
    /// that was ambient on the enqueueing thread, if any.
    pub fn trace(&self) -> Option<crate::obs::TraceId> {
        self.inner.trace
    }

    /// Current lifecycle status.
    pub fn status(&self) -> EventStatus {
        lock(&self.inner.state).status
    }

    /// The error the command finished with, if any. `None` while
    /// unresolved or when complete.
    pub fn error(&self) -> Option<Error> {
        lock(&self.inner.state).error.clone()
    }

    /// Host wall-clock time the *simulation* of the command took (zero
    /// until the command ran). This is the simulator's own cost, not the
    /// modeled device cost.
    pub fn wall_time(&self) -> Duration {
        lock(&self.inner.state).wall
    }

    /// Modeled device/interconnect time in seconds — the counterpart of
    /// `CL_PROFILING_COMMAND_END - CL_PROFILING_COMMAND_START`. Zero until
    /// the command resolves.
    pub fn modeled_seconds(&self) -> f64 {
        let st = lock(&self.inner.state);
        st.stamps.ended - st.stamps.started
    }

    /// The four profiling timestamps on the modeled device timeline.
    pub fn profile(&self) -> TimelineStamps {
        lock(&self.inner.state).stamps
    }

    /// OpenCL-style profiling info: the four timestamps, available only
    /// when the owning queue had profiling enabled at enqueue time **and**
    /// the command completed — otherwise the OpenCL
    /// `CL_PROFILING_INFO_NOT_AVAILABLE` analogue, [`Error::InvalidOperation`].
    /// (The raw [`Event::profile`] stamps stay readable regardless, like a
    /// debugger; this is the conformant API surface.)
    pub fn profiling_info(&self) -> Result<TimelineStamps> {
        if !self.inner.profiled {
            return Err(Error::InvalidOperation(
                "profiling information is not available: the queue was created without \
                 profiling enabled"
                    .into(),
            ));
        }
        let st = lock(&self.inner.state);
        if st.status != EventStatus::Complete {
            return Err(Error::InvalidOperation(
                "profiling information is not available until the command completes".into(),
            ));
        }
        Ok(st.stamps)
    }

    /// Was the owning queue's profiling flag set when this command was
    /// enqueued?
    pub fn is_profiled(&self) -> bool {
        self.inner.profiled
    }

    /// Detailed timing breakdown (kernel launches only; `None` until the
    /// launch completes).
    pub fn kernel_timing(&self) -> Option<TimingBreakdown> {
        lock(&self.inner.state).output.kernel_timing
    }

    /// Simulated hardware counters of a kernel launch. `None` until the
    /// launch completes, and for commands enqueued without profiling.
    pub fn counters(&self) -> Option<LaunchCounters> {
        lock(&self.inner.state).output.counters.clone()
    }

    /// Bytes moved and direction, for transfer/copy commands. `None` until
    /// the command completes.
    pub fn transfer_info(&self) -> Option<TransferInfo> {
        lock(&self.inner.state).output.transfer
    }

    /// Display label (the kernel name, for launches).
    pub fn label(&self) -> Option<String> {
        lock(&self.inner.state).output.label.clone()
    }

    /// Block until the event resolves. `Ok(())` on completion; the
    /// command's error (with any `DependencyFailed` chain intact) if it
    /// failed.
    ///
    /// Waiting on a user event that the host never resolves blocks
    /// forever, exactly as in OpenCL.
    pub fn wait(&self) -> Result<()> {
        let mut st = lock(&self.inner.state);
        while !matches!(st.status, EventStatus::Complete | EventStatus::Error) {
            st = self
                .inner
                .cond
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        match &st.error {
            None => Ok(()),
            Some(e) => Err(e.clone()),
        }
    }

    /// Complete a user event (`clSetUserEventStatus(ev, CL_COMPLETE)`).
    /// Errors on non-user or already-resolved events.
    pub fn set_complete(&self) -> Result<()> {
        self.user_resolve(None)
    }

    /// Fail a user event; commands waiting on it are poisoned with
    /// `DependencyFailed { cause: error }`.
    pub fn set_error(&self, error: Error) -> Result<()> {
        self.user_resolve(Some(error))
    }

    /// Chain this user event onto `targets`: it completes when all of them
    /// complete, or fails with the first target's error. Rejects chains
    /// that would make this event (transitively) wait on itself with
    /// [`Error::DependencyCycle`] — in real OpenCL that enqueue deadlocks.
    pub fn set_complete_on(&self, targets: &[Event]) -> Result<()> {
        if self.kind() != CommandKind::User {
            return Err(Error::InvalidOperation(
                "set_complete_on is only valid on user events".into(),
            ));
        }
        if reaches(targets, self) {
            return Err(Error::DependencyCycle(format!(
                "user event {} would wait on itself",
                self.id()
            )));
        }
        {
            let mut st = lock(&self.inner.state);
            if matches!(st.status, EventStatus::Complete | EventStatus::Error) {
                return Err(Error::InvalidOperation(
                    "user event already resolved".into(),
                ));
            }
            st.deps.extend(targets.iter().cloned());
        }
        if targets.is_empty() {
            return self.set_complete();
        }
        let gate = ChainGate::new(targets.len());
        for t in targets {
            let watcher = Watcher::Chain {
                event: Arc::downgrade(&self.inner),
                gate: Arc::clone(&gate),
            };
            if let Some(outcome) = t.watch_or_arrive(watcher, &gate) {
                // every target was already resolved
                finish_chain(self, outcome);
            }
        }
        Ok(())
    }

    /// Host-side resolution shared by `set_complete`/`set_error`.
    fn user_resolve(&self, error: Option<Error>) -> Result<()> {
        if self.kind() != CommandKind::User {
            return Err(Error::InvalidOperation(
                "only user events can be resolved from the host".into(),
            ));
        }
        let (watchers, final_error) = {
            let mut st = lock(&self.inner.state);
            if matches!(st.status, EventStatus::Complete | EventStatus::Error) {
                return Err(Error::InvalidOperation(
                    "user event already resolved".into(),
                ));
            }
            st.status = if error.is_some() {
                EventStatus::Error
            } else {
                EventStatus::Complete
            };
            st.error = error.clone();
            st.deps.clear();
            st.order_deps.clear();
            self.inner.cond.notify_all();
            (std::mem::take(&mut st.watchers), error)
        };
        fire_watchers(watchers, final_error);
        Ok(())
    }

    // ---- dispatcher-side plumbing (crate-private) ----

    /// Status advance without resolution (Queued→Submitted→Running).
    pub(crate) fn advance(&self, status: EventStatus) {
        let mut st = lock(&self.inner.state);
        st.status = status;
        self.inner.cond.notify_all();
    }

    /// Resolve as complete with final stamps and the work's output.
    pub(crate) fn resolve_complete(
        &self,
        stamps: TimelineStamps,
        wall: Duration,
        output: CommandOutput,
    ) {
        self.resolve(None, stamps, wall, output);
    }

    /// Resolve as failed.
    pub(crate) fn resolve_error(&self, error: Error, stamps: TimelineStamps, wall: Duration) {
        self.resolve(Some(error), stamps, wall, CommandOutput::default());
    }

    fn resolve(
        &self,
        error: Option<Error>,
        stamps: TimelineStamps,
        wall: Duration,
        output: CommandOutput,
    ) {
        let (watchers, final_error) = {
            let mut st = lock(&self.inner.state);
            debug_assert!(
                !matches!(st.status, EventStatus::Complete | EventStatus::Error),
                "event resolved twice"
            );
            st.status = if error.is_some() {
                EventStatus::Error
            } else {
                EventStatus::Complete
            };
            st.error = error.clone();
            st.stamps = stamps;
            st.wall = wall;
            st.output = output;
            st.deps.clear();
            st.order_deps.clear();
            self.inner.cond.notify_all();
            (std::mem::take(&mut st.watchers), error)
        };
        fire_watchers(watchers, final_error);
    }

    /// True once Complete or Error.
    pub(crate) fn is_resolved(&self) -> bool {
        matches!(self.status(), EventStatus::Complete | EventStatus::Error)
    }

    /// Snapshot of every dependency: wait list plus ordering-only
    /// predecessors. Readiness, ready-time and cycle detection use this.
    pub(crate) fn deps_snapshot(&self) -> Vec<Event> {
        let st = lock(&self.inner.state);
        st.deps.iter().chain(&st.order_deps).cloned().collect()
    }

    /// Snapshot of the error-poisoning wait-list dependencies only.
    pub(crate) fn poison_deps_snapshot(&self) -> Vec<Event> {
        lock(&self.inner.state).deps.clone()
    }

    /// Register `watcher` unless already resolved. For chain watchers on a
    /// resolved target, accounts the arrival instead and returns the chain
    /// outcome if this was the last target.
    pub(crate) fn watch_or_arrive(
        &self,
        watcher: Watcher,
        gate: &ChainGate,
    ) -> Option<Option<Error>> {
        let mut st = lock(&self.inner.state);
        if matches!(st.status, EventStatus::Complete | EventStatus::Error) {
            let err = st.error.clone();
            drop(st);
            gate.arrive(err)
        } else {
            st.watchers.push(watcher);
            None
        }
    }

    /// Register a dispatcher to be notified on resolution. Returns `false`
    /// (nothing registered) when already resolved.
    pub(crate) fn notify_sched_on_resolve(&self, sched: &Arc<DeviceSched>) -> bool {
        let mut st = lock(&self.inner.state);
        if matches!(st.status, EventStatus::Complete | EventStatus::Error) {
            false
        } else {
            st.watchers.push(Watcher::Sched(Arc::downgrade(sched)));
            true
        }
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("id", &self.id())
            .field("kind", &self.kind())
            .field("status", &self.status())
            .finish()
    }
}

/// Fire resolution notifications outside the event lock. `target_error` is
/// the error the resolving event finished with, if any — chain gates use
/// it to decide whether the chained user event fails.
fn fire_watchers(watchers: Vec<Watcher>, target_error: Option<Error>) {
    for w in watchers {
        match w {
            Watcher::Sched(sched) => {
                if let Some(s) = sched.upgrade() {
                    s.nudge();
                }
            }
            Watcher::Chain { event, gate } => {
                if let Some(inner) = event.upgrade() {
                    let ev = Event { inner };
                    if let Some(outcome) = gate.arrive(target_error.clone()) {
                        finish_chain(&ev, outcome);
                    }
                }
            }
        }
    }
}

/// Resolve a chained user event once all its targets arrived.
fn finish_chain(ev: &Event, first_error: Option<Error>) {
    let result = match first_error {
        None => ev.set_complete(),
        Some(e) => ev.set_error(Error::DependencyFailed { cause: Box::new(e) }),
    };
    // a concurrent host call may have resolved it already; that is fine
    let _ = result;
}

/// DFS over event dependencies: can `needle` be reached from `roots`?
/// Used for cycle detection before wiring new dependencies.
pub(crate) fn reaches(roots: &[Event], needle: &Event) -> bool {
    let mut seen = std::collections::HashSet::new();
    let mut stack: Vec<Event> = roots.to_vec();
    while let Some(ev) = stack.pop() {
        if ev.id() == needle.id() {
            return true;
        }
        if seen.insert(ev.id()) {
            stack.extend(ev.deps_snapshot());
        }
    }
    false
}

/// Block until every event in `events` resolves; first error wins
/// (`clWaitForEvents`).
pub fn wait_for_events(events: &[Event]) -> Result<()> {
    let mut first_error = None;
    for ev in events {
        if let Err(e) = ev.wait() {
            first_error.get_or_insert(e);
        }
    }
    match first_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}
