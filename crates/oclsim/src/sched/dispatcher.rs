//! The per-device command dispatcher.
//!
//! Every [`crate::Device`] lazily owns one [`DeviceSched`]: a pending list
//! of commands from all of the device's queues, the modeled resource
//! [`Timeline`], and a *drain claim* under which some thread executes the
//! **ready set** of the dependency DAG — commands whose wait-list events
//! have all resolved. The submitting thread claims the drain itself when
//! nobody holds it (the common case of a queue whose head is immediately
//! runnable, where a worker thread would cost a spawn plus two context
//! switches per command); when only blocked commands remain the claim is
//! released, and the dependency watchers re-claim on resolution.
//!
//! Commands execute functionally one at a time (the simulator's wall-clock
//! cost), but their *modeled* stamps come from the shared [`Timeline`], so
//! independent commands overlap on the modeled device even though the
//! simulation of them is serial.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::error::{Error, Result};
use crate::sched::event::{CommandOutput, Event, EventStatus, TimelineStamps};
use crate::sched::timeline::{Resource, Timeline};

/// The outcome of a command's functional execution: what to reserve on the
/// modeled timeline, for how long, and the output to attach to the event
/// (kernel timing, profiling counters, transfer metadata).
pub(crate) struct Work {
    pub resource: Resource,
    pub duration: f64,
    pub output: CommandOutput,
}

/// One enqueued command: its event handle plus the deferred functional
/// effect (buffer mutation / kernel interpretation).
pub(crate) struct Command {
    pub event: Event,
    pub work: Box<dyn FnOnce() -> Result<Work> + Send>,
}

struct DispState {
    pending: VecDeque<Command>,
    /// Whether some thread currently holds the drain claim.
    running: bool,
}

/// Scheduler state attached to one device (see module docs).
pub struct DeviceSched {
    timeline: Mutex<Timeline>,
    disp: Mutex<DispState>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl DeviceSched {
    /// Scheduler for a device with `compute_units` CUs.
    pub(crate) fn new(compute_units: usize) -> Arc<DeviceSched> {
        Arc::new(DeviceSched {
            timeline: Mutex::new(Timeline::new(compute_units)),
            disp: Mutex::new(DispState {
                pending: VecDeque::new(),
                running: false,
            }),
        })
    }

    /// Hand a command to the device. Registers wake-ups on its unresolved
    /// dependencies, then drains the ready set on this thread unless
    /// another thread already holds the drain claim.
    pub(crate) fn submit(self: &Arc<Self>, cmd: Command) {
        for dep in cmd.event.deps_snapshot() {
            // resolved deps need no watcher; the drain scan sees them
            dep.notify_sched_on_resolve(self);
        }
        let claimed = {
            let mut st = lock(&self.disp);
            st.pending.push_back(cmd);
            if st.running {
                false
            } else {
                st.running = true;
                true
            }
        };
        if claimed {
            self.drain_ready();
        }
    }

    /// A dependency resolved: if nobody holds the drain claim and commands
    /// are pending, claim it and run whatever became ready. Called by the
    /// resolving thread outside any event lock; same-device resolutions
    /// from inside [`Self::drain_ready`] see the claim taken and return
    /// immediately (the draining loop re-scans after every command), so
    /// dependency chains never recurse on one device.
    pub(crate) fn nudge(&self) {
        let claimed = {
            let mut st = lock(&self.disp);
            if st.running || st.pending.is_empty() {
                false
            } else {
                st.running = true;
                true
            }
        };
        if claimed {
            self.drain_ready();
        }
    }

    /// Reset the modeled timeline to the origin (all engines free at 0.0).
    pub(crate) fn reset_timeline(&self) {
        lock(&self.timeline).reset();
    }

    /// The latest modeled instant any engine is reserved until.
    pub(crate) fn timeline_horizon(&self) -> f64 {
        lock(&self.timeline).horizon()
    }

    /// Drain-claim body: repeatedly execute the first ready command;
    /// release the claim and return when every pending command is blocked
    /// (on user events or another device) or the list is empty — the
    /// watchers registered at submit re-claim when a dependency resolves.
    fn drain_ready(&self) {
        loop {
            let cmd = {
                let mut st = lock(&self.disp);
                let ready = st
                    .pending
                    .iter()
                    .position(|c| c.event.deps_snapshot().iter().all(Event::is_resolved));
                match ready {
                    Some(i) => st.pending.remove(i).expect("index from position"),
                    None => {
                        st.running = false;
                        return;
                    }
                }
            };
            self.execute(cmd);
        }
    }

    /// Run one command whose wait list has fully resolved.
    fn execute(&self, cmd: Command) {
        // re-establish the enqueueing request's ambient trace id on this
        // worker so spans emitted while executing (dispatch, exec.launch)
        // tag themselves with the request — workers never touch the
        // flight ring, keeping its content thread-count-independent
        let _trace = cmd.event.trace().map(crate::obs::thread_trace);
        let m = crate::telemetry::metrics();
        m.dispatched.inc();
        let mut span = crate::telemetry::span("sched", "dispatch");
        if crate::telemetry::enabled() {
            span.note("kind", format!("{:?}", cmd.event.kind()));
            span.note("event", cmd.event.id());
        }
        // the ready instant comes from every dependency (including
        // ordering-only predecessors); poisoning only from the wait list
        let mut ready = 0.0f64;
        for dep in cmd.event.deps_snapshot() {
            ready = ready.max(dep.profile().ended);
        }
        let mut poison: Option<Error> = None;
        for dep in cmd.event.poison_deps_snapshot() {
            if let Some(cause) = dep.error() {
                poison = Some(Error::DependencyFailed {
                    cause: Box::new(cause),
                });
                break;
            }
        }
        cmd.event.advance(EventStatus::Submitted);

        if let Some(err) = poison {
            let (started, ended) = lock(&self.timeline).reserve(Resource::Instant, ready, 0.0);
            let stamps = TimelineStamps {
                queued: 0.0,
                submitted: ready,
                started,
                ended,
            };
            m.command_errors.inc();
            span.note("outcome", "poisoned");
            cmd.event
                .resolve_error(err, stamps, std::time::Duration::ZERO);
            return;
        }

        cmd.event.advance(EventStatus::Running);
        let wall_start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(cmd.work));
        let wall = wall_start.elapsed();
        match outcome {
            Ok(Ok(work)) => {
                if matches!(work.resource, Resource::Dma) {
                    m.dma_commands.inc();
                    if let Some(t) = &work.output.transfer {
                        m.dma_bytes.add(t.bytes);
                    }
                }
                let (started, ended) =
                    lock(&self.timeline).reserve(work.resource, ready, work.duration);
                let stamps = TimelineStamps {
                    queued: 0.0,
                    submitted: ready,
                    started,
                    ended,
                };
                m.retired.inc();
                if crate::telemetry::enabled() {
                    span.note("ready_s", format!("{ready:.9}"));
                    span.note_modeled(started, ended);
                    if let Some(label) = &work.output.label {
                        span.note("label", label);
                    }
                    if let Some(t) = &work.output.transfer {
                        span.note("bytes", t.bytes);
                    }
                }
                cmd.event.resolve_complete(stamps, wall, work.output);
            }
            Ok(Err(err)) => {
                let (started, ended) = lock(&self.timeline).reserve(Resource::Instant, ready, 0.0);
                let stamps = TimelineStamps {
                    queued: 0.0,
                    submitted: ready,
                    started,
                    ended,
                };
                m.command_errors.inc();
                span.note("outcome", "error");
                cmd.event.resolve_error(err, stamps, wall);
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "command panicked".into());
                let (started, ended) = lock(&self.timeline).reserve(Resource::Instant, ready, 0.0);
                let stamps = TimelineStamps {
                    queued: 0.0,
                    submitted: ready,
                    started,
                    ended,
                };
                m.command_errors.inc();
                span.note("outcome", "panic");
                cmd.event.resolve_error(
                    Error::InvalidOperation(format!("command panicked: {msg}")),
                    stamps,
                    wall,
                );
            }
        }
    }
}
