//! The modeled per-device resource timeline.
//!
//! Commands do not merely *sum* their modeled durations: each device owns a
//! pool of compute units and one DMA/copy engine, and a command occupies its
//! resource for its modeled duration. A command becomes eligible when the
//! last event of its wait list ends (`ready`), starts at
//! `max(ready, resource_free)`, and ends `duration` later. Independent
//! commands on different resources therefore **overlap** — the raw material
//! of the transfer/compute pipelining experiments — while commands on the
//! same engine serialize, exactly like hardware queues.

/// Which engine a command occupies on the modeled device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resource {
    /// A kernel launch occupying `groups`-many compute units (capped at the
    /// device's pool) for its modeled makespan.
    Compute { groups: usize },
    /// A host↔device transfer or device-internal copy on the single
    /// DMA/copy engine.
    Dma,
    /// A zero-duration synchronization point (markers, poisoned commands).
    Instant,
}

/// Per-device engine-availability clocks, in modeled seconds from origin.
#[derive(Debug)]
pub(crate) struct Timeline {
    cu_free: Vec<f64>,
    dma_free: f64,
}

impl Timeline {
    /// A fresh timeline for a device with `compute_units` CUs, all free at
    /// the origin.
    pub(crate) fn new(compute_units: usize) -> Timeline {
        Timeline {
            cu_free: vec![0.0; compute_units.max(1)],
            dma_free: 0.0,
        }
    }

    /// Forget all reservations; every engine is free at 0.0 again. Used by
    /// benchmarks to measure the makespan of one pipeline in isolation.
    pub(crate) fn reset(&mut self) {
        self.cu_free.iter_mut().for_each(|t| *t = 0.0);
        self.dma_free = 0.0;
    }

    /// Reserve `res` for `duration` seconds no earlier than `ready`.
    /// Returns the `(started, ended)` stamps.
    pub(crate) fn reserve(&mut self, res: Resource, ready: f64, duration: f64) -> (f64, f64) {
        let started = match res {
            Resource::Instant => ready,
            Resource::Dma => ready.max(self.dma_free),
            Resource::Compute { groups } => {
                // the launch spreads its groups over k CUs and occupies all
                // k for its makespan; take the k earliest-free ones
                let k = groups.clamp(1, self.cu_free.len());
                let mut order: Vec<usize> = (0..self.cu_free.len()).collect();
                order.sort_by(|&a, &b| self.cu_free[a].total_cmp(&self.cu_free[b]));
                order.truncate(k);
                let start = order.iter().map(|&i| self.cu_free[i]).fold(ready, f64::max);
                let ended = start + duration;
                for &i in &order {
                    self.cu_free[i] = ended;
                }
                return (start, ended);
            }
        };
        let ended = started + duration;
        if res == Resource::Dma {
            self.dma_free = ended;
        }
        (started, ended)
    }

    /// The latest moment any engine is busy until (the device makespan).
    pub(crate) fn horizon(&self) -> f64 {
        self.cu_free.iter().copied().fold(self.dma_free, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_serializes_and_compute_overlaps_dma() {
        let mut tl = Timeline::new(4);
        let (s1, e1) = tl.reserve(Resource::Dma, 0.0, 2.0);
        assert_eq!((s1, e1), (0.0, 2.0));
        // second transfer must queue behind the first on the engine
        let (s2, e2) = tl.reserve(Resource::Dma, 0.0, 1.0);
        assert_eq!((s2, e2), (2.0, 3.0));
        // an independent kernel is free to run alongside both transfers
        let (s3, e3) = tl.reserve(Resource::Compute { groups: 2 }, 0.0, 5.0);
        assert_eq!((s3, e3), (0.0, 5.0));
        assert_eq!(tl.horizon(), 5.0);
    }

    #[test]
    fn kernels_queue_when_the_cu_pool_is_exhausted() {
        let mut tl = Timeline::new(2);
        let (s1, _) = tl.reserve(Resource::Compute { groups: 2 }, 0.0, 4.0);
        assert_eq!(s1, 0.0);
        // pool fully busy until 4.0: the next launch waits
        let (s2, e2) = tl.reserve(Resource::Compute { groups: 1 }, 0.0, 1.0);
        assert_eq!((s2, e2), (4.0, 5.0));
        // one CU frees at 5.0, the other at 4.0: a 1-group launch takes the
        // earlier one
        let (s3, _) = tl.reserve(Resource::Compute { groups: 1 }, 0.0, 1.0);
        assert_eq!(s3, 4.0);
    }

    #[test]
    fn ready_time_defers_start() {
        let mut tl = Timeline::new(1);
        let (s, e) = tl.reserve(Resource::Dma, 7.5, 0.5);
        assert_eq!((s, e), (7.5, 8.0));
        let (s, e) = tl.reserve(Resource::Instant, 9.0, 0.0);
        assert_eq!((s, e), (9.0, 9.0));
        tl.reset();
        let (s, _) = tl.reserve(Resource::Dma, 0.0, 1.0);
        assert_eq!(s, 0.0);
    }
}
