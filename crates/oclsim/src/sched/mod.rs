//! Asynchronous event-graph command scheduling.
//!
//! This module is the engine behind [`crate::CommandQueue`]: commands are
//! enqueued **without blocking**, each returning an [`Event`] handle;
//! dependencies are expressed as wait lists of events; a per-device
//! dispatcher thread drains the ready set of the resulting DAG; and a
//! modeled resource timeline (compute-unit pool + DMA engine per device)
//! assigns every command overlapping-capable `queued`/`submitted`/
//! `started`/`ended` profiling stamps.
//!
//! The pieces:
//!
//! - [`event`] — the shared, waitable [`Event`] with the OpenCL status
//!   ladder, user events, chaining, and poisoning of dependents when a
//!   dependency fails.
//! - [`timeline`] — the per-device engine-availability clocks that turn a
//!   DAG of modeled durations into overlapping start/end stamps.
//! - [`dispatcher`] — the per-device worker that executes ready commands
//!   functionally (serially, for the simulator's correctness) while
//!   stamping them on the modeled timeline (concurrently, for the model's
//!   fidelity).

pub mod dispatcher;
pub mod event;
pub(crate) mod timeline;

pub use dispatcher::DeviceSched;
pub use event::{wait_for_events, CommandKind, Event, EventStatus, TimelineStamps};
