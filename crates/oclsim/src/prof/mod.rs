//! Profiling and observability for the simulated device.
//!
//! The subsystem has four parts:
//!
//! * [`counters`] — simulated hardware counters (instruction mix, memory
//!   transactions vs. the coalesced minimum, divergence, barrier stalls,
//!   bank conflicts, per-CU occupancy), collected per work-group inside
//!   the interpreter and merged additively so totals are independent of
//!   `OCLSIM_THREADS`.
//! * [`cache`] — a deterministic set-associative tag-array model of the
//!   L1/L2 hierarchy, fed by the same per-warp transaction stream the
//!   coalescing counters charge; active only on device profiles that
//!   declare a [`CacheConfig`] capability.
//! * event timestamps — OpenCL-style QUEUED/SUBMIT/START/END stamps on
//!   every command, exposed through
//!   [`Event::profiling_info`](crate::sched::Event::profiling_info) when
//!   the owning queue has profiling enabled
//!   ([`CommandQueue::set_profiling`](crate::queue::CommandQueue::set_profiling),
//!   the `CL_QUEUE_PROFILING_ENABLE` analog).
//! * [`trace`] — a Chrome `trace_event` JSON exporter that lays kernel
//!   and DMA slices out on the modeled timeline, one track per CU-pool
//!   lane plus one for the DMA engine (loadable in Perfetto or
//!   `chrome://tracing`); [`trace::chrome_trace_with_host`] additionally
//!   injects host-runtime telemetry spans (see [`crate::telemetry`]) as a
//!   synthetic "host runtime" process above the device tracks; [`json`]
//!   holds the dependency-free JSON parser used to schema-check traces in
//!   tests.
//! * [`roofline`] — per-kernel roofline placement: arithmetic intensity
//!   from the counters against the device's compute and bandwidth
//!   ceilings.
//! * [`annotate`] — perf-annotate-style source listings built from the
//!   per-line counter map ([`LaunchCounters::lines`]): each source line
//!   with its counters, share of the kernel's memory transactions, and a
//!   heat marker, rendered through the same gutter format as the
//!   sanitizer's diagnostics.
//!
//! Profiling costs nothing when disabled: every interpreter hook is
//! behind a `collect` flag that defaults to off, and the scheduler
//! always records stamps (it needs them to model overlap anyway).

pub mod annotate;
pub mod cache;
pub mod counters;
pub mod json;
pub mod roofline;
pub mod trace;

pub use annotate::AnnotatedLine;
pub use cache::{CacheConfig, GroupCacheSim, TagArray};
pub use counters::{
    GroupCounters, InstrClass, InstrMix, LaunchCounters, TransferDir, TransferInfo,
};
pub use json::validate_chrome_trace;
pub use roofline::{roofline, RooflinePoint};
pub use trace::{chrome_trace, chrome_trace_with_host, splice_chrome_events};

use crate::device::Device;
use crate::error::Result;
use crate::exec::launch::{run_ndrange_profiled, validate_launch, Geometry};
use crate::program::Kernel;
use crate::timing::TimingBreakdown;

/// Run `kernel` synchronously with counter collection forced on and an
/// explicit worker-pool size.
///
/// This bypasses the queue layer (no event, no modeled overlap) and exists
/// for tests and tools that need counters without enabling queue profiling,
/// or that must vary the worker count within one process — the
/// `OCLSIM_THREADS` pool size is read once and cached, so queue launches
/// cannot.
pub fn profile_launch(
    kernel: &Kernel,
    global: &[usize],
    local: Option<&[usize]>,
    device: &Device,
    workers: usize,
) -> Result<(TimingBreakdown, LaunchCounters)> {
    let geom = Geometry::new(global, local, device)?;
    let args = kernel.bound_args()?;
    validate_launch(kernel.func_ir(), &args, &geom, device)?;
    let (timing, counters) = run_ndrange_profiled(
        kernel.module(),
        kernel.func_ir(),
        &args,
        geom,
        device,
        kernel.sanitize(),
        true,
        Some(workers),
        None,
    )?;
    Ok((timing, counters.expect("collect was requested")))
}
