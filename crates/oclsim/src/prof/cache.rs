//! Deterministic set-associative tag-array cache model (L1 per work-group,
//! L2 shared across the launch).
//!
//! The model observes the *same* per-warp global-memory transaction stream
//! both execution backends already charge: every coalesced transaction
//! (one entry of the post-`dedup` segment list of a warp access) becomes
//! one probe of a cold per-group L1 tag array, at the cache line containing
//! the segment's first byte. L1 misses are appended — in a canonical order
//! that does not depend on the backend or the worker pool — to a per-group
//! miss stream, which the launch layer replays through one shared L2 tag
//! array in linear group-id order after all workers join.
//!
//! Determinism is the whole design:
//!
//! * Accesses are **buffered per warp** as they are charged and replayed
//!   through the group's L1 in warp-index order at every barrier and at
//!   the end of the group. Within a warp both backends charge in program
//!   order, so the replayed sequence is byte-identical between the
//!   reference interpreter (statement-major) and the compiled work-group
//!   VM (warp-major in control-flow regions, with a fused gather/scatter
//!   fast path whose charge pass still walks warp by warp).
//! * The L1 starts **cold for every work-group** and is private to it, so
//!   group execution order (worker count, claim order) cannot leak into
//!   the counters.
//! * The shared L2 is replayed **single-threaded in group-id order**, so
//!   cross-group reuse (e.g. SpMV's gathers into the `x` vector) is
//!   modeled while the result stays independent of `OCLSIM_THREADS`.
//!
//! A simple MSHR rule merges same-line misses within one warp access: the
//! coalescer emits the segments of an access sorted and deduplicated, so
//! two segments of one access that fall into one cache line are adjacent —
//! the second is counted as an L1 hit without probing (the line is already
//! in flight).
//!
//! Deliberately **not** modeled: write-back/dirty lines (stores allocate
//! like loads and miss traffic is priced identically), cross-group L1
//! sharing within a CU, L2 banking/partition camping, and MSHR capacity
//! limits. See DESIGN.md "The cache model".

/// Cache-hierarchy capability of a device profile.
///
/// Profiles without one (`DeviceProfile::cache == None`) keep the
/// roofline-only timing and all-zero cache counters, bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Cache-line size in bytes (both levels), power of two.
    pub line_bytes: u32,
    /// L1 capacity in bytes (per work-group in this model).
    pub l1_bytes: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Shared L2 capacity in bytes.
    pub l2_bytes: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Bandwidth at which L1 hits are served, GB/s.
    pub l1_gbps: f64,
    /// Bandwidth at which L2 hits are served, GB/s.
    pub l2_gbps: f64,
}

impl CacheConfig {
    /// Number of L1 sets (`capacity / (ways x line)`), at least 1.
    pub fn l1_sets(&self) -> usize {
        ((self.l1_bytes / (self.l1_ways * self.line_bytes)) as usize).max(1)
    }

    /// Number of L2 sets, at least 1.
    pub fn l2_sets(&self) -> usize {
        ((self.l2_bytes / (self.l2_ways * self.line_bytes)) as usize).max(1)
    }
}

/// One set-associative tag array with true-LRU replacement.
///
/// Tags are full line addresses (`u64::MAX` = invalid), recency is a
/// monotonic per-array stamp — entirely deterministic.
#[derive(Debug, Clone)]
pub struct TagArray {
    sets: usize,
    ways: usize,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    tick: u64,
}

impl TagArray {
    /// A cold array of `sets x ways` invalid lines.
    pub fn new(sets: usize, ways: usize) -> TagArray {
        let sets = sets.max(1);
        let ways = ways.max(1);
        TagArray {
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
        }
    }

    /// Invalidate every line (cold restart for the next work-group).
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
    }

    /// Probe for `line`; allocates on miss (loads and stores alike).
    /// Returns `true` on hit.
    pub fn access(&mut self, line: u64) -> bool {
        self.tick += 1;
        let set = (line % self.sets as u64) as usize;
        let ways = &mut self.tags[set * self.ways..(set + 1) * self.ways];
        let stamps = &mut self.stamps[set * self.ways..(set + 1) * self.ways];
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (w, (&tag, stamp)) in ways.iter().zip(stamps.iter_mut()).enumerate() {
            if tag == line {
                *stamp = self.tick;
                return true;
            }
            let s = if tag == u64::MAX { 0 } else { *stamp };
            if s < victim_stamp {
                victim_stamp = s;
                victim = w;
            }
        }
        ways[victim] = line;
        stamps[victim] = self.tick;
        false
    }
}

/// One buffered warp access record: a coalesced transaction waiting to be
/// replayed through the group's L1.
#[derive(Debug, Clone, Copy)]
struct LineAccess {
    /// Cache-line address (derived from the segment address, tag bits of
    /// the encoded pointer included — distinct buffers never alias).
    line: u64,
    /// DSL source line the transaction was charged to.
    dsl_line: u32,
    /// First transaction of its warp access (MSHR merge boundary).
    first: bool,
}

/// An L1 miss bound for the shared L2, with its source-line attribution.
pub type L2Record = (u64, u32);

/// Per-work-group cache simulation state: the cold L1 tag array, the
/// per-warp access buffers, and the outgoing L2 miss stream.
#[derive(Debug, Clone)]
pub struct GroupCacheSim {
    line_bytes: u64,
    seg_bytes: u64,
    l1: TagArray,
    bufs: Vec<Vec<LineAccess>>,
    /// L1 misses in canonical replay order, harvested per group by the
    /// launch layer and replayed through the shared L2.
    pub l2_stream: Vec<L2Record>,
}

impl GroupCacheSim {
    /// Fresh cold state for one work-group. `seg_bytes` is the device's
    /// coalescing segment size (the unit the transaction stream is in).
    pub fn new(cfg: &CacheConfig, seg_bytes: u64) -> GroupCacheSim {
        GroupCacheSim {
            line_bytes: cfg.line_bytes.max(1) as u64,
            seg_bytes: seg_bytes.max(1),
            l1: TagArray::new(cfg.l1_sets(), cfg.l1_ways as usize),
            bufs: Vec::new(),
            l2_stream: Vec::new(),
        }
    }

    /// Cold-restart for the next work-group of the same launch (buffers
    /// must already be flushed, the L2 stream already harvested).
    pub fn reset_group(&mut self) {
        self.l1.reset();
        for b in &mut self.bufs {
            b.clear();
        }
        self.l2_stream.clear();
    }

    /// Buffer one charged transaction: segment `seg` (in coalescing-segment
    /// units, encoded-pointer tag bits included) of warp `warp`, attributed
    /// to `dsl_line`. `first` marks the first transaction of its warp
    /// access.
    #[inline]
    pub fn record(&mut self, warp: usize, seg: u64, dsl_line: u32, first: bool) {
        if warp >= self.bufs.len() {
            self.bufs.resize_with(warp + 1, Vec::new);
        }
        // seg = addr / seg_bytes, so seg * seg_bytes <= addr < 2^64
        let line = seg * self.seg_bytes / self.line_bytes;
        self.bufs[warp].push(LineAccess {
            line,
            dsl_line,
            first,
        });
    }

    /// Replay every buffered access through the group's L1 in canonical
    /// order (warp index, then program order within the warp), calling
    /// `sink(dsl_line, hit)` per transaction and queueing misses for the
    /// shared L2. Called at every barrier and at the end of the group run.
    pub fn flush(&mut self, mut sink: impl FnMut(u32, bool)) {
        for buf in &mut self.bufs {
            let mut prev_line = u64::MAX;
            for a in buf.drain(..) {
                // MSHR merge: the coalescer emits an access's segments
                // sorted and deduplicated, so same-line transactions of one
                // access are adjacent — the trailing ones ride the miss (or
                // hit) already in flight and count as hits.
                let hit = if !a.first && a.line == prev_line {
                    true
                } else {
                    self.l1.access(a.line)
                };
                prev_line = a.line;
                if !hit {
                    self.l2_stream.push((a.line, a.dsl_line));
                }
                sink(a.dsl_line, hit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            line_bytes: 128,
            l1_bytes: 2 * 1024, // 4 sets x 4 ways
            l1_ways: 4,
            l2_bytes: 8 * 1024,
            l2_ways: 8,
            l1_gbps: 1000.0,
            l2_gbps: 300.0,
        }
    }

    #[test]
    fn set_counts_follow_geometry() {
        let c = cfg();
        assert_eq!(c.l1_sets(), 4);
        assert_eq!(c.l2_sets(), 8);
        // degenerate configs clamp to one set
        let tiny = CacheConfig {
            l1_bytes: 64,
            ..cfg()
        };
        assert_eq!(tiny.l1_sets(), 1);
    }

    #[test]
    fn tag_array_hits_after_fill_and_evicts_lru() {
        let mut t = TagArray::new(1, 2); // one set, two ways
        assert!(!t.access(10)); // cold miss
        assert!(!t.access(20)); // cold miss
        assert!(t.access(10)); // hit, 10 now MRU
        assert!(!t.access(30)); // evicts LRU = 20
        assert!(t.access(10)); // 10 survived
        assert!(!t.access(20)); // 20 was the victim
    }

    #[test]
    fn tag_array_reset_is_cold() {
        let mut t = TagArray::new(2, 2);
        assert!(!t.access(5));
        assert!(t.access(5));
        t.reset();
        assert!(!t.access(5));
    }

    /// Hand-computed ground truth for a tiny strided access pattern: one
    /// warp touches segments 0,2,4,...,14 (stride two 128-byte segments =
    /// one access per line, every line distinct), then re-touches them in
    /// a second pass. First pass: 8 cold misses. The L1 holds 4 sets x 4
    /// ways = 16 lines, so the second pass hits all 8.
    #[test]
    fn strided_pattern_matches_hand_computed_tag_math() {
        let mut sim = GroupCacheSim::new(&cfg(), 128);
        for pass in 0..2 {
            for i in 0..8u64 {
                sim.record(0, i * 2, 7, true);
            }
            let mut hits = 0;
            let mut misses = 0;
            sim.flush(|dsl, hit| {
                assert_eq!(dsl, 7);
                if hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            });
            if pass == 0 {
                assert_eq!((hits, misses), (0, 8));
            } else {
                assert_eq!((hits, misses), (8, 0));
            }
        }
        // every miss went to the L2 stream, in order
        assert_eq!(sim.l2_stream.len(), 8);
        assert_eq!(sim.l2_stream[0], (0, 7));
        assert_eq!(sim.l2_stream[7], (14, 7));
    }

    /// 20 distinct lines all mapping to one set of a 4-way L1 (stride =
    /// number of sets): every access misses, both passes — the hand-
    /// computed conflict-miss case.
    #[test]
    fn conflict_misses_when_stride_aliases_one_set() {
        let mut sim = GroupCacheSim::new(&cfg(), 128);
        for _pass in 0..2 {
            for i in 0..20u64 {
                sim.record(0, i * 4, 1, true); // line = i*4, set = 0 always
            }
            let mut misses = 0;
            sim.flush(|_, hit| {
                if !hit {
                    misses += 1;
                }
            });
            assert_eq!(misses, 20);
        }
    }

    #[test]
    fn mshr_merges_same_line_within_one_access() {
        // seg 64B, line 128B: segments 2k and 2k+1 share line k
        let mut sim = GroupCacheSim::new(&cfg(), 64);
        sim.record(0, 0, 3, true); // line 0: miss
        sim.record(0, 1, 3, false); // line 0 again, same access: MSHR hit
        sim.record(0, 2, 3, false); // line 1: miss
        let mut seq = Vec::new();
        sim.flush(|_, hit| seq.push(hit));
        assert_eq!(seq, vec![false, true, false]);
        // a *new* access to line 0 probes the array and hits for real
        sim.record(0, 0, 3, true);
        let mut seq = Vec::new();
        sim.flush(|_, hit| seq.push(hit));
        assert_eq!(seq, vec![true]);
        assert_eq!(sim.l2_stream.len(), 2);
    }

    #[test]
    fn flush_replays_warps_in_index_order() {
        let mut sim = GroupCacheSim::new(&cfg(), 128);
        // recorded out of warp order; replay must be warp 0 then warp 1
        sim.record(1, 5, 11, true);
        sim.record(0, 5, 10, true);
        let mut order = Vec::new();
        sim.flush(|dsl, hit| order.push((dsl, hit)));
        assert_eq!(order, vec![(10, false), (11, true)]);
    }

    #[test]
    fn reset_group_clears_state_and_stream() {
        let mut sim = GroupCacheSim::new(&cfg(), 128);
        sim.record(0, 1, 0, true);
        sim.flush(|_, _| {});
        assert_eq!(sim.l2_stream.len(), 1);
        sim.reset_group();
        assert!(sim.l2_stream.is_empty());
        sim.record(0, 1, 0, true);
        let mut hit = true;
        sim.flush(|_, h| hit = h);
        assert!(!hit, "L1 must be cold after reset_group");
    }

    #[test]
    fn lines_span_segments_when_line_exceeds_segment() {
        // seg 64B, line 128B: segments 6 and 7 are both line 3
        let sim = GroupCacheSim::new(&cfg(), 64);
        assert_eq!(6 * sim.seg_bytes / sim.line_bytes, 3);
        assert_eq!(7 * sim.seg_bytes / sim.line_bytes, 3);
    }
}
