//! Simulated hardware counters collected per work-group and merged per
//! launch.
//!
//! The interpreter owns one [`GroupCounters`] per work-group while the
//! group runs (no sharing, no locks); the launch layer folds them into a
//! [`LaunchCounters`] with a purely additive merge, so the totals are
//! independent of worker count and completion order — `OCLSIM_THREADS=1`
//! and `=4` produce identical values by construction.

/// Instruction classes the profiler attributes warp-issues to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrClass {
    /// Integer ALU work: adds, compares, address arithmetic, selects.
    Int,
    /// Floating-point ALU work.
    Float,
    /// Global/constant memory access issues.
    Mem,
    /// Local (scratchpad) memory accesses.
    Local,
    /// Control flow: branches, loop tests, calls, barriers.
    Control,
    /// Special-function-unit work: sqrt, transcendentals, fp division.
    Special,
    /// Atomic read-modify-writes.
    Atomic,
    /// Everything else (casts, conversions).
    Other,
}

/// Warp-granular instruction counts by class — "instructions retired"
/// broken down the way a hardware profiler would report it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    pub int_ops: u64,
    pub float_ops: u64,
    pub mem_ops: u64,
    pub local_ops: u64,
    pub control: u64,
    pub special: u64,
    pub atomics: u64,
    pub other: u64,
}

impl InstrMix {
    /// Attribute `n` warp-issues to `class`.
    #[inline]
    pub fn add(&mut self, class: InstrClass, n: u64) {
        match class {
            InstrClass::Int => self.int_ops += n,
            InstrClass::Float => self.float_ops += n,
            InstrClass::Mem => self.mem_ops += n,
            InstrClass::Local => self.local_ops += n,
            InstrClass::Control => self.control += n,
            InstrClass::Special => self.special += n,
            InstrClass::Atomic => self.atomics += n,
            InstrClass::Other => self.other += n,
        }
    }

    /// Total instructions across all classes.
    pub fn total(&self) -> u64 {
        self.int_ops
            + self.float_ops
            + self.mem_ops
            + self.local_ops
            + self.control
            + self.special
            + self.atomics
            + self.other
    }

    /// Accumulate another mix.
    pub fn merge(&mut self, other: &InstrMix) {
        self.int_ops += other.int_ops;
        self.float_ops += other.float_ops;
        self.mem_ops += other.mem_ops;
        self.local_ops += other.local_ops;
        self.control += other.control;
        self.special += other.special;
        self.atomics += other.atomics;
        self.other += other.other;
    }
}

/// Counters for one work-group. All fields are plain sums, so merging is
/// commutative and associative — the foundation of thread-count-independent
/// launch totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCounters {
    /// Instructions retired, by class (warp-granular).
    pub instr: InstrMix,
    /// Global-memory transactions actually issued (after coalescing).
    pub mem_transactions: u64,
    /// The minimum transactions the same accesses would need if perfectly
    /// coalesced: `ceil(active_lanes x access_size / segment)` per warp
    /// access. `issued / minimal` is the coalescing inefficiency.
    pub mem_transactions_min: u64,
    /// Useful global-memory bytes touched by active lanes (lane-granular;
    /// excludes the over-fetch of partially used segments).
    pub global_bytes: u64,
    /// Floating-point operations executed by active lanes (fma counts 2).
    pub flops: u64,
    /// All arithmetic operations executed by active lanes (int + float).
    pub arith_ops: u64,
    /// Barriers executed by the group.
    pub barriers: u64,
    /// Modeled cycles the group spent synchronising at barriers.
    pub barrier_stall_cycles: u64,
    /// Lane-granular issue-slot cost units: each charge contributes
    /// `cost x covered_lanes`, where covered lanes are every slot of every
    /// warp that issued (active or masked off). Denominator for
    /// [`LaunchCounters::divergence_fraction`].
    pub lane_cycles_issued: u64,
    /// Work-item-cycle cost units lost to divergence: each charge
    /// contributes `cost x (covered_lanes - active_lanes)` — issue slots
    /// spent on lanes the mask had switched off.
    pub divergence_lost_cycles: u64,
    /// Local (scratchpad) memory accesses by active lanes.
    pub local_accesses: u64,
    /// Local-memory bank conflicts: per warp access, the number of extra
    /// serialised passes caused by distinct words mapping to one bank.
    pub bank_conflicts: u64,
    /// Simulated L1 hits (cache-capable profiles only; see
    /// [`crate::prof::cache`]). `l1_hits + l1_misses` equals the global
    /// transactions the cache model observed — every coalesced transaction
    /// except atomics, which bypass the hierarchy.
    pub l1_hits: u64,
    /// Simulated L1 misses (each one probes the shared L2).
    pub l1_misses: u64,
    /// Simulated L2 hits. `l2_hits + l2_misses == l1_misses` by
    /// construction.
    pub l2_hits: u64,
    /// Simulated L2 misses (DRAM traffic in the cache-aware timing model).
    pub l2_misses: u64,
}

impl GroupCounters {
    /// Accumulate another group's counters (order-independent).
    pub fn merge(&mut self, other: &GroupCounters) {
        self.instr.merge(&other.instr);
        self.mem_transactions += other.mem_transactions;
        self.mem_transactions_min += other.mem_transactions_min;
        self.global_bytes += other.global_bytes;
        self.flops += other.flops;
        self.arith_ops += other.arith_ops;
        self.barriers += other.barriers;
        self.barrier_stall_cycles += other.barrier_stall_cycles;
        self.lane_cycles_issued += other.lane_cycles_issued;
        self.divergence_lost_cycles += other.divergence_lost_cycles;
        self.local_accesses += other.local_accesses;
        self.bank_conflicts += other.bank_conflicts;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
    }
}

/// Merged counters for one kernel launch plus the launch-level metrics
/// that only exist at the whole-launch scope (occupancy, stall fraction).
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchCounters {
    /// Sum of every group's counters.
    pub totals: GroupCounters,
    /// Counters attributed to individual source lines (1-based; line 0
    /// collects synthetic statements with no source location). The
    /// interpreter applies every delta to both the group totals and the
    /// current line, so the values here sum exactly to `totals`.
    pub lines: std::collections::BTreeMap<usize, GroupCounters>,
    /// Work-groups executed.
    pub num_groups: usize,
    /// Total modeled compute cycles of the launch (mirror of
    /// `TimingBreakdown::totals.cycles`, kept here so the counters are
    /// self-contained).
    pub total_cycles: u64,
    /// Per-CU busy fraction under the timing model's LPT group assignment:
    /// `load[cu] / makespan`. Deterministic for a given multiset of group
    /// cycle counts.
    pub cu_occupancy: Vec<f64>,
}

impl LaunchCounters {
    /// Fraction of issued transactions that a perfectly coalesced access
    /// pattern would also need (1.0 = fully coalesced). Clamped to 1.0:
    /// on CPU profiles the modeled segment cache can merge transactions
    /// *across* accesses and beat the per-access minimum, so the raw ratio
    /// can exceed 1. The same clamp matters for cache-capable GPU profiles:
    /// the L1/L2 model observes the already-coalesced transaction stream
    /// (`l1_hits + l1_misses <= mem_transactions`, atomics excluded), so
    /// cache hits never reduce `mem_transactions` below
    /// `mem_transactions_min` — but the modeled-time term mirrors this
    /// defensively with a `saturating_sub` so a hypothetical cache that
    /// beat the stream could never produce negative DRAM traffic (see
    /// `timing::model_launch`).
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.totals.mem_transactions == 0 {
            return 1.0;
        }
        (self.totals.mem_transactions_min as f64 / self.totals.mem_transactions as f64).min(1.0)
    }

    /// Simulated L1 hit rate, `None` when the launch ran without a cache
    /// capability (no transactions were observed by the model).
    pub fn l1_hit_rate(&self) -> Option<f64> {
        let seen = self.totals.l1_hits + self.totals.l1_misses;
        (seen > 0).then(|| self.totals.l1_hits as f64 / seen as f64)
    }

    /// Simulated L2 hit rate over L1 misses, `None` when nothing reached
    /// the L2.
    pub fn l2_hit_rate(&self) -> Option<f64> {
        let seen = self.totals.l2_hits + self.totals.l2_misses;
        (seen > 0).then(|| self.totals.l2_hits as f64 / seen as f64)
    }

    /// Mean per-CU busy fraction — achieved occupancy of the CU pool.
    pub fn mean_occupancy(&self) -> f64 {
        if self.cu_occupancy.is_empty() {
            return 0.0;
        }
        self.cu_occupancy.iter().sum::<f64>() / self.cu_occupancy.len() as f64
    }

    /// Fraction of modeled cycles spent synchronising at barriers.
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.totals.barrier_stall_cycles as f64 / self.total_cycles as f64
    }

    /// Fraction of issued work-item slots lost to divergence masking.
    pub fn divergence_fraction(&self) -> f64 {
        let issued = self.totals.lane_cycles_issued;
        if issued == 0 {
            return 0.0;
        }
        self.totals.divergence_lost_cycles as f64 / issued as f64
    }

    /// The source line with the most global-memory transactions, with ties
    /// broken towards the lowest line number (deterministic). Lines without
    /// a source location (line 0) are skipped; `None` when no attributed
    /// line issued any transactions.
    pub fn hot_line(&self) -> Option<(usize, &GroupCounters)> {
        self.lines
            .iter()
            .filter(|(&line, c)| line != 0 && c.mem_transactions > 0)
            .max_by(|(la, a), (lb, b)| {
                a.mem_transactions.cmp(&b.mem_transactions).then(lb.cmp(la)) // reversed: prefer the lower line on ties
            })
            .map(|(&line, c)| (line, c))
    }

    /// Sum of the per-line counters — by construction equal to `totals`
    /// (asserted by tests; exposed for invariant checks).
    pub fn lines_sum(&self) -> GroupCounters {
        let mut sum = GroupCounters::default();
        for c in self.lines.values() {
            sum.merge(c);
        }
        sum
    }
}

/// Direction of a modeled data movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host → device write.
    HostToDevice,
    /// Device → host read.
    DeviceToHost,
    /// Device-internal buffer→buffer copy.
    DeviceToDevice,
}

impl TransferDir {
    /// Short human-readable label ("h2d"/"d2h"/"d2d").
    pub fn label(&self) -> &'static str {
        match self {
            TransferDir::HostToDevice => "h2d",
            TransferDir::DeviceToHost => "d2h",
            TransferDir::DeviceToDevice => "d2d",
        }
    }
}

/// Metadata of one transfer/copy command, attached to its event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferInfo {
    /// Bytes moved.
    pub bytes: u64,
    /// Which way they moved.
    pub direction: TransferDir,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_mix_totals_and_merge() {
        let mut m = InstrMix::default();
        m.add(InstrClass::Int, 3);
        m.add(InstrClass::Mem, 2);
        m.add(InstrClass::Special, 1);
        assert_eq!(m.total(), 6);
        let mut n = InstrMix::default();
        n.add(InstrClass::Int, 4);
        n.merge(&m);
        assert_eq!(n.int_ops, 7);
        assert_eq!(n.total(), 10);
    }

    #[test]
    fn group_merge_is_commutative() {
        let a = GroupCounters {
            mem_transactions: 5,
            mem_transactions_min: 2,
            flops: 10,
            ..Default::default()
        };
        let b = GroupCounters {
            mem_transactions: 3,
            barriers: 1,
            ..Default::default()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn coalescing_efficiency_bounds() {
        let mut lc = LaunchCounters {
            totals: GroupCounters::default(),
            lines: Default::default(),
            num_groups: 0,
            total_cycles: 0,
            cu_occupancy: vec![],
        };
        // no traffic -> treated as fully coalesced
        assert_eq!(lc.coalescing_efficiency(), 1.0);
        lc.totals.mem_transactions = 32;
        lc.totals.mem_transactions_min = 1;
        assert!((lc.coalescing_efficiency() - 1.0 / 32.0).abs() < 1e-12);
        // a cache that beats the per-access minimum clamps at 1.0
        lc.totals.mem_transactions = 1;
        lc.totals.mem_transactions_min = 8;
        assert_eq!(lc.coalescing_efficiency(), 1.0);
    }

    #[test]
    fn occupancy_and_stalls() {
        let lc = LaunchCounters {
            totals: GroupCounters {
                barrier_stall_cycles: 25,
                ..Default::default()
            },
            lines: Default::default(),
            num_groups: 2,
            total_cycles: 100,
            cu_occupancy: vec![1.0, 0.5, 0.0, 0.5],
        };
        assert!((lc.mean_occupancy() - 0.5).abs() < 1e-12);
        assert!((lc.stall_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_rates_and_clamp_interaction() {
        let mut lc = LaunchCounters {
            totals: GroupCounters::default(),
            lines: Default::default(),
            num_groups: 1,
            total_cycles: 0,
            cu_occupancy: vec![],
        };
        // no cache capability: the model saw nothing
        assert_eq!(lc.l1_hit_rate(), None);
        assert_eq!(lc.l2_hit_rate(), None);
        lc.totals.mem_transactions = 10;
        lc.totals.mem_transactions_min = 10;
        lc.totals.l1_hits = 8;
        lc.totals.l1_misses = 2;
        lc.totals.l2_hits = 1;
        lc.totals.l2_misses = 1;
        assert!((lc.l1_hit_rate().unwrap() - 0.8).abs() < 1e-12);
        assert!((lc.l2_hit_rate().unwrap() - 0.5).abs() < 1e-12);
        // the cache observes the already-coalesced stream, so even a
        // perfect cache leaves the coalescing ratio clamped at <= 1.0
        assert_eq!(lc.coalescing_efficiency(), 1.0);
        // invariant the backends uphold: the hierarchy never sees more
        // transactions than were issued
        assert!(lc.totals.l1_hits + lc.totals.l1_misses <= lc.totals.mem_transactions);
    }

    #[test]
    fn cache_counters_merge_additively() {
        let a = GroupCounters {
            l1_hits: 3,
            l1_misses: 1,
            l2_hits: 1,
            ..Default::default()
        };
        let b = GroupCounters {
            l1_hits: 2,
            l2_misses: 4,
            ..Default::default()
        };
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab.l1_hits, 5);
        assert_eq!(ab.l1_misses, 1);
        assert_eq!(ab.l2_hits, 1);
        assert_eq!(ab.l2_misses, 4);
    }

    #[test]
    fn divergence_fraction_is_lost_over_issued() {
        let mut lc = LaunchCounters {
            totals: GroupCounters::default(),
            lines: Default::default(),
            num_groups: 1,
            total_cycles: 10,
            cu_occupancy: vec![1.0],
        };
        assert_eq!(lc.divergence_fraction(), 0.0);
        lc.totals.lane_cycles_issued = 200;
        lc.totals.divergence_lost_cycles = 50;
        assert!((lc.divergence_fraction() - 0.25).abs() < 1e-12);
    }
}
