//! Chrome `trace_event` JSON export of the modeled timeline.
//!
//! Renders a set of resolved events as a Perfetto/`chrome://tracing`
//! loadable trace: one process per device, thread 0 for the DMA engine,
//! threads 1..k for compute-unit pool lanes. Kernel and copy slices carry
//! their counters as `args`, so clicking a slice in the viewer shows
//! coalescing, occupancy and stall numbers next to its duration.
//!
//! The writer is hand-rolled (the workspace deliberately has no serde);
//! the companion [`crate::prof::json`] module parses the output back for
//! schema validation in tests.

use std::fmt::Write as _;

use crate::device::Device;
use crate::sched::{CommandKind, Event, EventStatus};

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn slice_name(ev: &Event) -> String {
    if let Some(label) = ev.label() {
        return label;
    }
    match ev.kind() {
        CommandKind::WriteBuffer => "write (h2d)".into(),
        CommandKind::ReadBuffer => "read (d2h)".into(),
        CommandKind::CopyBuffer => "copy (d2d)".into(),
        CommandKind::NdRangeKernel => "kernel".into(),
        CommandKind::Marker => "marker".into(),
        CommandKind::User => "user".into(),
    }
}

/// Append one `"key": value` pair (numeric) to an args body.
fn arg_num(body: &mut String, key: &str, value: f64) {
    if !body.is_empty() {
        body.push(',');
    }
    let _ = write!(body, "\"{key}\":{value}");
}

fn arg_str(body: &mut String, key: &str, value: &str) {
    if !body.is_empty() {
        body.push(',');
    }
    let _ = write!(body, "\"{key}\":\"{}\"", escape(value));
}

fn event_args(ev: &Event) -> String {
    let mut body = String::new();
    if let Some(t) = ev.transfer_info() {
        arg_num(&mut body, "bytes", t.bytes as f64);
        arg_str(&mut body, "direction", t.direction.label());
    }
    if let Some(c) = ev.counters() {
        arg_num(&mut body, "instructions", c.totals.instr.total() as f64);
        arg_num(
            &mut body,
            "mem_transactions",
            c.totals.mem_transactions as f64,
        );
        arg_num(
            &mut body,
            "coalescing_pct",
            100.0 * c.coalescing_efficiency(),
        );
        arg_num(&mut body, "occupancy_pct", 100.0 * c.mean_occupancy());
        arg_num(&mut body, "stall_pct", 100.0 * c.stall_fraction());
        arg_num(&mut body, "divergence_pct", 100.0 * c.divergence_fraction());
        arg_num(&mut body, "bank_conflicts", c.totals.bank_conflicts as f64);
        arg_num(&mut body, "work_groups", c.num_groups as f64);
    }
    body
}

/// Render `events` (commands of `device`) as a Chrome trace JSON string.
///
/// Unresolved and failed events are skipped; slices are sorted by start
/// time so the output is deterministic for a deterministic modeled
/// timeline. Kernel launches are laid out greedily over as many "CU pool"
/// display lanes as overlap requires; transfers and copies share the
/// single DMA lane, where the scheduler already serialised them.
pub fn chrome_trace(device: &Device, events: &[Event]) -> String {
    let pid = device.id();
    let mut resolved: Vec<&Event> = events
        .iter()
        .filter(|e| e.status() == EventStatus::Complete)
        .filter(|e| !matches!(e.kind(), CommandKind::Marker | CommandKind::User))
        .collect();
    resolved.sort_by(|a, b| {
        let (pa, pb) = (a.profile(), b.profile());
        pa.started
            .total_cmp(&pb.started)
            .then(pa.ended.total_cmp(&pb.ended))
            .then(a.id().cmp(&b.id()))
    });

    // Greedy display-lane assignment for compute slices (the timeline does
    // not record which CUs a launch took, only that it fit).
    let mut lane_free: Vec<f64> = Vec::new();
    let mut slices = String::new();
    for ev in &resolved {
        let p = ev.profile();
        let tid = if ev.kind() == CommandKind::NdRangeKernel {
            let lane = lane_free
                .iter()
                .position(|&free| free <= p.started)
                .unwrap_or_else(|| {
                    lane_free.push(0.0);
                    lane_free.len() - 1
                });
            lane_free[lane] = p.ended;
            lane + 1
        } else {
            0
        };
        let ts = p.started * 1.0e6;
        let dur = (p.ended - p.started) * 1.0e6;
        let args = event_args(ev);
        let _ = write!(
            slices,
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
            escape(&slice_name(ev)),
            if ev.kind() == CommandKind::NdRangeKernel {
                "compute"
            } else {
                "dma"
            },
        );
    }

    // Metadata: process = device, tid 0 = DMA, tids 1..k = CU pool lanes.
    let mut out = String::from("{\"traceEvents\":[");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(device.name()),
    );
    let _ = write!(
        out,
        ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"DMA engine\"}}}}"
    );
    for lane in 0..lane_free.len() {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
             \"args\":{{\"name\":\"CU pool lane {lane}\"}}}}",
            lane + 1,
        );
    }
    out.push_str(&slices);
    out.push_str("],\n\"displayTimeUnit\":\"ms\"}\n");
    out
}
