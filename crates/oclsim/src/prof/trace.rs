//! Chrome `trace_event` JSON export of the modeled timeline.
//!
//! Renders a set of resolved events as a Perfetto/`chrome://tracing`
//! loadable trace: one process per device, thread 0 for the DMA engine,
//! threads 1..k for compute-unit pool lanes. Kernel and copy slices carry
//! their counters as `args`, so clicking a slice in the viewer shows
//! coalescing, occupancy and stall numbers next to its duration.
//!
//! The writer is hand-rolled (the workspace deliberately has no serde);
//! the companion [`crate::prof::json`] module parses the output back for
//! schema validation in tests.

use std::fmt::Write as _;

use crate::device::Device;
use crate::sched::{CommandKind, Event, EventStatus};

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn slice_name(ev: &Event) -> String {
    if let Some(label) = ev.label() {
        return label;
    }
    match ev.kind() {
        CommandKind::WriteBuffer => "write (h2d)".into(),
        CommandKind::ReadBuffer => "read (d2h)".into(),
        CommandKind::CopyBuffer => "copy (d2d)".into(),
        CommandKind::NdRangeKernel => "kernel".into(),
        CommandKind::Marker => "marker".into(),
        CommandKind::User => "user".into(),
    }
}

/// Append one `"key": value` pair (numeric) to an args body.
fn arg_num(body: &mut String, key: &str, value: f64) {
    if !body.is_empty() {
        body.push(',');
    }
    let _ = write!(body, "\"{key}\":{value}");
}

fn arg_str(body: &mut String, key: &str, value: &str) {
    if !body.is_empty() {
        body.push(',');
    }
    let _ = write!(body, "\"{key}\":\"{}\"", escape(value));
}

fn event_args(ev: &Event) -> String {
    let mut body = String::new();
    if let Some(t) = ev.transfer_info() {
        arg_num(&mut body, "bytes", t.bytes as f64);
        arg_str(&mut body, "direction", t.direction.label());
    }
    if let Some(c) = ev.counters() {
        arg_num(&mut body, "instructions", c.totals.instr.total() as f64);
        arg_num(
            &mut body,
            "mem_transactions",
            c.totals.mem_transactions as f64,
        );
        arg_num(
            &mut body,
            "coalescing_pct",
            100.0 * c.coalescing_efficiency(),
        );
        arg_num(&mut body, "occupancy_pct", 100.0 * c.mean_occupancy());
        arg_num(&mut body, "stall_pct", 100.0 * c.stall_fraction());
        arg_num(&mut body, "divergence_pct", 100.0 * c.divergence_fraction());
        arg_num(&mut body, "bank_conflicts", c.totals.bank_conflicts as f64);
        // cache-capable devices only: traces from roofline-only profiles
        // keep their pre-cache-model byte layout
        if let Some(rate) = c.l1_hit_rate() {
            arg_num(&mut body, "l1_hit_pct", 100.0 * rate);
        }
        if let Some(rate) = c.l2_hit_rate() {
            arg_num(&mut body, "l2_hit_pct", 100.0 * rate);
        }
        arg_num(&mut body, "work_groups", c.num_groups as f64);
        if let Some((line, hot)) = c.hot_line() {
            arg_num(&mut body, "hot_line", line as f64);
            arg_num(
                &mut body,
                "hot_line_tx_pct",
                100.0 * hot.mem_transactions as f64 / c.totals.mem_transactions.max(1) as f64,
            );
        }
    }
    body
}

/// Render `events` (commands of `device`) as a Chrome trace JSON string.
///
/// Unresolved and failed events are skipped; slices are sorted by start
/// time so the output is deterministic for a deterministic modeled
/// timeline. Kernel launches are laid out greedily over as many "CU pool"
/// display lanes as overlap requires; transfers and copies share the
/// single DMA lane, where the scheduler already serialised them.
pub fn chrome_trace(device: &Device, events: &[Event]) -> String {
    let pid = device.id();
    let mut resolved: Vec<&Event> = events
        .iter()
        .filter(|e| e.status() == EventStatus::Complete)
        .filter(|e| !matches!(e.kind(), CommandKind::Marker | CommandKind::User))
        .collect();
    resolved.sort_by(|a, b| {
        let (pa, pb) = (a.profile(), b.profile());
        pa.started
            .total_cmp(&pb.started)
            .then(pa.ended.total_cmp(&pb.ended))
            .then(a.id().cmp(&b.id()))
    });

    // Greedy display-lane assignment for compute slices (the timeline does
    // not record which CUs a launch took, only that it fit).
    let mut lane_free: Vec<f64> = Vec::new();
    let mut slices = String::new();
    for ev in &resolved {
        let p = ev.profile();
        let tid = if ev.kind() == CommandKind::NdRangeKernel {
            let lane = lane_free
                .iter()
                .position(|&free| free <= p.started)
                .unwrap_or_else(|| {
                    lane_free.push(0.0);
                    lane_free.len() - 1
                });
            lane_free[lane] = p.ended;
            lane + 1
        } else {
            0
        };
        let ts = p.started * 1.0e6;
        let dur = (p.ended - p.started) * 1.0e6;
        let args = event_args(ev);
        let _ = write!(
            slices,
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
            escape(&slice_name(ev)),
            if ev.kind() == CommandKind::NdRangeKernel {
                "compute"
            } else {
                "dma"
            },
        );
    }

    // Metadata: process = device, tid 0 = DMA, tids 1..k = CU pool lanes.
    let mut out = String::from("{\"traceEvents\":[");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(device.name()),
    );
    let _ = write!(
        out,
        ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"DMA engine\"}}}}"
    );
    for lane in 0..lane_free.len() {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
             \"args\":{{\"name\":\"CU pool lane {lane}\"}}}}",
            lane + 1,
        );
    }
    out.push_str(&slices);
    out.push_str("],\n\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Splice extra pre-rendered Chrome-trace events (comma-joined JSON
/// objects, no enclosing array) into a trace produced by
/// [`chrome_trace`] / [`chrome_trace_with_host`], before the closing
/// bracket of `traceEvents`. Used to merge postmortem span trees
/// ([`crate::obs::Postmortem::chrome_trace_events`]) into the device
/// timeline. Returns the trace unchanged when `events` is empty.
pub fn splice_chrome_events(trace: &str, events: &str) -> String {
    if events.is_empty() {
        return trace.to_string();
    }
    let tail = "],\n\"displayTimeUnit\":\"ms\"}\n";
    let mut out = trace
        .strip_suffix(tail)
        .expect("chrome trace ends with its fixed tail")
        .to_string();
    out.push_str(",\n");
    out.push_str(events);
    out.push_str(tail);
    out
}

/// Synthetic pid for the host-runtime tracks injected by
/// [`chrome_trace_with_host`]; device pids are small, so this cannot
/// collide.
pub const HOST_PID: u64 = 1_000_000;

/// Like [`chrome_trace`], but additionally renders host-runtime telemetry
/// spans (see [`crate::telemetry`]) as slices of a synthetic "host
/// runtime" process ([`HOST_PID`]), one track per host thread, above the
/// device's CU/DMA tracks — so a single trace file shows the host
/// pipeline (cache lookup, codegen, clc stages, coherence, enqueue)
/// feeding the modeled device.
///
/// Host slices use wall time from the telemetry epoch; device slices use
/// the modeled timeline. The two time bases share only the µs unit — the
/// value of the combined file is seeing host-side structure, not
/// cross-base alignment.
pub fn chrome_trace_with_host(
    device: &Device,
    events: &[Event],
    spans: &[crate::telemetry::SpanRecord],
) -> String {
    let device_part = chrome_trace(device, events);
    // splice host events in before the closing "]" of traceEvents
    let tail = "],\n\"displayTimeUnit\":\"ms\"}\n";
    let mut out = device_part
        .strip_suffix(tail)
        .expect("chrome_trace output ends with its fixed tail")
        .to_string();

    let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    let _ = write!(
        out,
        ",\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{HOST_PID},\"tid\":0,\
         \"args\":{{\"name\":\"host runtime\"}}}}"
    );
    for t in &threads {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{HOST_PID},\"tid\":{t},\
             \"args\":{{\"name\":\"host thread {t}\"}}}}"
        );
    }
    let mut sorted: Vec<&crate::telemetry::SpanRecord> = spans.iter().collect();
    sorted.sort_by(|a, b| {
        a.wall_start_us
            .total_cmp(&b.wall_start_us)
            .then(a.id.cmp(&b.id))
    });
    for s in sorted {
        let mut args = String::new();
        for (k, v) in &s.args {
            arg_str(&mut args, k, v);
        }
        if let (Some(ms), Some(me)) = (s.modeled_start_us, s.modeled_end_us) {
            arg_num(&mut args, "modeled_start_us", ms);
            arg_num(&mut args, "modeled_end_us", me);
        }
        let dur = (s.wall_end_us - s.wall_start_us).max(0.0);
        let _ = write!(
            out,
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\
             \"pid\":{HOST_PID},\"tid\":{},\"args\":{{{args}}}}}",
            escape(&s.name),
            escape(s.category),
            s.wall_start_us,
            s.thread,
        );
    }
    out.push_str(tail);
    out
}
