//! Per-kernel roofline analysis from counters + device ceilings.
//!
//! The classic roofline model bounds a kernel's attainable throughput by
//! `min(peak_compute, arithmetic_intensity x peak_bandwidth)`. The
//! profiler has both coordinates for free: the interpreter counts
//! arithmetic operations and DRAM transactions, and the device profile
//! carries the ceilings the timing model already uses. The resulting
//! "fraction of roofline achieved" is how the report attributes modeled
//! time: a transpose pinned far below the bandwidth roof by uncoalesced
//! transactions looks very different from a reduction riding the roof.

use crate::device::DeviceProfile;
use crate::prof::counters::LaunchCounters;
use crate::timing::TimingBreakdown;

/// One kernel launch placed on the device's roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Kernel name.
    pub kernel: String,
    /// Arithmetic operations counted (lane-granular, int + float).
    pub arith_ops: u64,
    /// DRAM bytes actually moved: transactions x segment size.
    pub dram_bytes: u64,
    /// Useful bytes requested by active lanes (<= `dram_bytes` on GPUs;
    /// the gap is the over-fetch of partially used segments).
    pub useful_bytes: u64,
    /// Operations per DRAM byte.
    pub arithmetic_intensity: f64,
    /// Ops/s the launch achieved over its modeled time.
    pub attained_ops_per_sec: f64,
    /// The roofline at this intensity:
    /// `min(peak_ops, intensity x bandwidth)`.
    pub roof_ops_per_sec: f64,
    /// `attained / roof` — how close the launch came to its bound.
    pub fraction_of_roof: f64,
    /// DRAM bandwidth achieved, in GB/s.
    pub attained_bandwidth_gbps: f64,
    /// Fraction of the device's peak DRAM bandwidth achieved.
    pub bandwidth_fraction: f64,
    /// Whether the binding ceiling is compute (true) or bandwidth (false).
    pub compute_bound: bool,
}

/// Place one launch on `profile`'s roofline.
pub fn roofline(
    kernel: &str,
    profile: &DeviceProfile,
    timing: &TimingBreakdown,
    counters: &LaunchCounters,
) -> RooflinePoint {
    let arith_ops = counters.totals.arith_ops;
    let dram_bytes = counters.totals.mem_transactions * profile.mem_segment_bytes as u64;
    let seconds = timing.device_seconds;
    let peak_ops = profile.peak_ops_per_sec();
    let peak_bw = profile.global_bandwidth_gbps * 1.0e9;

    let intensity = if dram_bytes > 0 {
        arith_ops as f64 / dram_bytes as f64
    } else {
        f64::INFINITY
    };
    let roof = if dram_bytes > 0 {
        peak_ops.min(intensity * peak_bw)
    } else {
        peak_ops
    };
    let attained = if seconds > 0.0 {
        arith_ops as f64 / seconds
    } else {
        0.0
    };
    let attained_bw = if seconds > 0.0 {
        dram_bytes as f64 / seconds / 1.0e9
    } else {
        0.0
    };

    RooflinePoint {
        kernel: kernel.to_string(),
        arith_ops,
        dram_bytes,
        useful_bytes: counters.totals.global_bytes,
        arithmetic_intensity: intensity,
        attained_ops_per_sec: attained,
        roof_ops_per_sec: roof,
        fraction_of_roof: if roof > 0.0 { attained / roof } else { 0.0 },
        attained_bandwidth_gbps: attained_bw,
        bandwidth_fraction: attained_bw * 1.0e9 / peak_bw,
        compute_bound: roof >= peak_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prof::counters::GroupCounters;

    fn counters(ops: u64, tx: u64) -> LaunchCounters {
        LaunchCounters {
            totals: GroupCounters {
                arith_ops: ops,
                mem_transactions: tx,
                global_bytes: tx * 128,
                ..Default::default()
            },
            lines: Default::default(),
            num_groups: 1,
            total_cycles: 1,
            cu_occupancy: vec![1.0],
        }
    }

    #[test]
    fn bandwidth_bound_kernel_hits_bandwidth_roof() {
        let p = DeviceProfile::tesla_c2050();
        // 1 op per 128-byte transaction: intensity far left of the ridge
        let c = counters(1_000, 1_000);
        let t = TimingBreakdown {
            device_seconds: 1_000.0 * 128.0 / (144.0e9),
            ..Default::default()
        };
        let r = roofline("k", &p, &t, &c);
        assert!(!r.compute_bound);
        assert!((r.bandwidth_fraction - 1.0).abs() < 1e-9);
        assert!((r.fraction_of_roof - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_uses_peak_ops_roof() {
        let p = DeviceProfile::tesla_c2050();
        // enormous intensity: the flat compute roof binds
        let c = counters(u64::MAX / 2, 1);
        let t = TimingBreakdown {
            device_seconds: 1.0,
            ..Default::default()
        };
        let r = roofline("k", &p, &t, &c);
        assert!(r.compute_bound);
        assert!((r.roof_ops_per_sec - p.peak_ops_per_sec()).abs() < 1.0);
    }

    #[test]
    fn zero_traffic_is_compute_bound_without_nans() {
        let p = DeviceProfile::tesla_c2050();
        let c = counters(100, 0);
        let t = TimingBreakdown {
            device_seconds: 1e-6,
            ..Default::default()
        };
        let r = roofline("k", &p, &t, &c);
        assert!(r.compute_bound);
        assert!(r.fraction_of_roof.is_finite());
        assert_eq!(r.attained_bandwidth_gbps, 0.0);
    }
}
