//! A minimal JSON parser and Chrome-trace schema validator.
//!
//! The workspace has no serde; this hand-rolled recursive-descent parser
//! exists so tests can check that [`crate::prof::trace`] emits
//! Perfetto-loadable JSON (correct nesting, escaping, and the
//! `trace_event` required keys) without trusting the writer.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 code point
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

/// Validate that `text` is a Perfetto-loadable Chrome trace: a JSON object
/// with a `traceEvents` array whose entries carry the `trace_event`
/// required keys (`name`/`ph`/`pid`/`tid`, plus `ts` and `dur` on
/// complete-event `"X"` slices, with non-negative durations).
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing ph"))?;
        ev.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing name"))?;
        ev.get("pid")
            .and_then(Value::as_num)
            .ok_or_else(|| fail("missing pid"))?;
        ev.get("tid")
            .and_then(Value::as_num)
            .ok_or_else(|| fail("missing tid"))?;
        if ph == "X" {
            let ts = ev
                .get("ts")
                .and_then(Value::as_num)
                .ok_or_else(|| fail("X slice missing ts"))?;
            let dur = ev
                .get("dur")
                .and_then(Value::as_num)
                .ok_or_else(|| fail("X slice missing dur"))?;
            if !ts.is_finite() || !dur.is_finite() || dur < 0.0 {
                return Err(fail("non-finite or negative slice timing"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\n\"y\"","d":true},"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Value::Num(-300.0));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\n\"y\""
        );
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn validates_trace_schema() {
        let good = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"dev"}},
            {"name":"k","cat":"compute","ph":"X","ts":0.0,"dur":5.0,"pid":1,"tid":1,"args":{}}
        ],"displayTimeUnit":"ms"}"#;
        validate_chrome_trace(good).unwrap();
        assert!(validate_chrome_trace(r#"{"other":[]}"#).is_err());
        let missing_dur = r#"{"traceEvents":[{"name":"k","ph":"X","ts":0.0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(missing_dur).is_err());
        let negative_dur =
            r#"{"traceEvents":[{"name":"k","ph":"X","ts":0.0,"dur":-1.0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(negative_dur).is_err());
    }
}
