//! Perf-annotate-style source listings from per-line counters.
//!
//! Turns the [`LaunchCounters::lines`] map into an annotated source
//! listing — one row per source line with its counters, its share of the
//! kernel's global-memory transactions, and a heat marker — plus a JSONL
//! export for machine consumption. Rendering goes through the same
//! gutter format as the sanitizer's diagnostics ([`crate::clc::snippet`]),
//! so a lint and a hot-line report about one statement line up on screen.
//!
//! Everything here is derived from deterministic counters and renders in
//! line order, so output is byte-identical across `OCLSIM_THREADS`
//! settings.

use std::fmt::Write as _;

use crate::clc::snippet;
use crate::prof::counters::{GroupCounters, LaunchCounters};

/// One annotated source line, ready for rendering or JSONL export.
#[derive(Debug, Clone)]
pub struct AnnotatedLine {
    /// 1-based line in the kernel source (0 = synthetic, no location).
    pub line: usize,
    /// The source text of that line (empty when out of range).
    pub text: String,
    /// Provenance label when the kernel source was itself generated —
    /// for HPL kernels, the DSL recording site (`file.rs:line`) the
    /// generated line came from.
    pub site: Option<String>,
    /// Counters attributed to this line.
    pub counters: GroupCounters,
    /// This line's fraction of the kernel's global-memory transactions
    /// (0.0 when the kernel issued none).
    pub tx_share: f64,
}

/// Build the annotated-line table for one kernel: every line that has
/// counters, in line order, joined with its source text and provenance.
pub fn annotate(
    source: &str,
    counters: &LaunchCounters,
    site_for: impl Fn(usize) -> Option<String>,
) -> Vec<AnnotatedLine> {
    let total_tx = counters.totals.mem_transactions;
    counters
        .lines
        .iter()
        .map(|(&line, c)| AnnotatedLine {
            line,
            text: snippet::source_line(source, line).unwrap_or("").to_string(),
            site: site_for(line),
            counters: *c,
            tx_share: if total_tx == 0 {
                0.0
            } else {
                c.mem_transactions as f64 / total_tx as f64
            },
        })
        .collect()
}

/// Heat marker for a transaction share: one step per 12.5% (perf-style
/// eighth buckets), empty below 0.5%.
pub fn heat_marker(share: f64) -> String {
    let pct = share * 100.0;
    if pct < 0.5 {
        return String::new();
    }
    "#".repeat(((pct / 12.5).ceil() as usize).clamp(1, 8))
}

/// Render the perf-annotate listing for one kernel:
///
/// ```text
/// kernel `transpose` — 8320 mem tx
///     mem.tx  share     instr  bank.cf  heat
///       8192  98.5%      4096        0  ########  |  7 | dst[...] = src[...];
/// ```
///
/// Rows render in line order; a provenance site, when present, is
/// appended as a trailing `<- site` note. When any line carries simulated
/// cache activity (cache-capable device profile), two extra gutter
/// columns report per-line L1 and L2 hit rates; listings from profiles
/// without the `cache` capability render byte-identically to before the
/// cache model existed.
pub fn listing(kernel: &str, annotated: &[AnnotatedLine]) -> String {
    let mut out = String::new();
    let total_tx: u64 = annotated.iter().map(|a| a.counters.mem_transactions).sum();
    let cache = annotated
        .iter()
        .any(|a| a.counters.l1_hits + a.counters.l1_misses > 0);
    let _ = writeln!(out, "kernel `{kernel}` — {total_tx} mem tx");
    if cache {
        let _ = writeln!(
            out,
            "    {:>10}  {:>6}  {:>10}  {:>8}  {:>7}  {:>7}  {:<8}  source",
            "mem.tx", "share", "instr", "bank.cf", "l1.hit", "l2.hit", "heat"
        );
    } else {
        let _ = writeln!(
            out,
            "    {:>10}  {:>6}  {:>10}  {:>8}  {:<8}  source",
            "mem.tx", "share", "instr", "bank.cf", "heat"
        );
    }
    let width = snippet::gutter_width(annotated.iter().map(|a| a.line).max().unwrap_or(1));
    for a in annotated {
        let gutter = if a.line == 0 {
            format!("{:>width$} | <no source location>", "-")
        } else {
            snippet::gutter_line(a.line, width, &a.text)
        };
        let site = a
            .site
            .as_deref()
            .map(|s| format!("  <- {s}"))
            .unwrap_or_default();
        if cache {
            let _ = writeln!(
                out,
                "    {:>10}  {:>5.1}%  {:>10}  {:>8}  {:>7}  {:>7}  {:<8}  {gutter}{site}",
                a.counters.mem_transactions,
                a.tx_share * 100.0,
                a.counters.instr.total(),
                a.counters.bank_conflicts,
                hit_rate_cell(a.counters.l1_hits, a.counters.l1_misses),
                hit_rate_cell(a.counters.l2_hits, a.counters.l2_misses),
                heat_marker(a.tx_share),
            );
        } else {
            let _ = writeln!(
                out,
                "    {:>10}  {:>5.1}%  {:>10}  {:>8}  {:<8}  {gutter}{site}",
                a.counters.mem_transactions,
                a.tx_share * 100.0,
                a.counters.instr.total(),
                a.counters.bank_conflicts,
                heat_marker(a.tx_share),
            );
        }
    }
    out
}

/// A hit-rate gutter cell: `hits / (hits + misses)` as a percentage, or
/// `-` for a line with no observed traffic at that cache level.
fn hit_rate_cell(hits: u64, misses: u64) -> String {
    let seen = hits + misses;
    if seen == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * hits as f64 / seen as f64)
    }
}

/// JSONL export: one object per annotated line, in line order.
pub fn jsonl(kernel: &str, annotated: &[AnnotatedLine]) -> String {
    let mut out = String::new();
    for a in annotated {
        let c = &a.counters;
        let site = match &a.site {
            Some(s) => format!("\"{}\"", escape(s)),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "{{\"kernel\":\"{}\",\"line\":{},\"site\":{site},\"text\":\"{}\",\
             \"mem_transactions\":{},\"mem_transactions_min\":{},\"global_bytes\":{},\
             \"local_accesses\":{},\"bank_conflicts\":{},\
             \"l1_hits\":{},\"l1_misses\":{},\"l2_hits\":{},\"l2_misses\":{},\
             \"instructions\":{},\
             \"flops\":{},\"barriers\":{},\"barrier_stall_cycles\":{},\
             \"divergence_lost_cycles\":{},\"tx_share\":{:.6}}}",
            escape(kernel),
            a.line,
            escape(&a.text),
            c.mem_transactions,
            c.mem_transactions_min,
            c.global_bytes,
            c.local_accesses,
            c.bank_conflicts,
            c.l1_hits,
            c.l1_misses,
            c.l2_hits,
            c.l2_misses,
            c.instr.total(),
            c.flops,
            c.barriers,
            c.barrier_stall_cycles,
            c.divergence_lost_cycles,
            a.tx_share,
        );
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn launch_with_lines(lines: &[(usize, u64)]) -> LaunchCounters {
        let mut map = BTreeMap::new();
        let mut totals = GroupCounters::default();
        for &(line, tx) in lines {
            let c = GroupCounters {
                mem_transactions: tx,
                ..Default::default()
            };
            map.insert(line, c);
            totals.merge(&c);
        }
        LaunchCounters {
            totals,
            lines: map,
            num_groups: 1,
            total_cycles: 1,
            cu_occupancy: vec![1.0],
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let lc = launch_with_lines(&[(2, 30), (3, 70)]);
        let rows = annotate("a\nb\nc\n", &lc, |_| None);
        let sum: f64 = rows.iter().map(|r| r.tx_share).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((rows[1].tx_share - 0.7).abs() < 1e-12);
    }

    #[test]
    fn annotate_joins_source_text_and_sites() {
        let lc = launch_with_lines(&[(2, 10)]);
        let rows = annotate("int a;\nint b;\n", &lc, |l| Some(format!("dsl.rs:{l}")));
        assert_eq!(rows[0].text, "int b;");
        assert_eq!(rows[0].site.as_deref(), Some("dsl.rs:2"));
    }

    #[test]
    fn heat_marker_buckets() {
        assert_eq!(heat_marker(0.0), "");
        assert_eq!(heat_marker(0.004), "");
        assert_eq!(heat_marker(0.01), "#");
        assert_eq!(heat_marker(0.30), "###");
        assert_eq!(heat_marker(1.0), "########");
    }

    #[test]
    fn listing_renders_rows_in_line_order() {
        let lc = launch_with_lines(&[(3, 70), (2, 30)]);
        let rows = annotate("a\nb\nc\n", &lc, |_| None);
        let text = listing("k", &rows);
        let l2 = text.find("2 | b").expect("line 2 row");
        let l3 = text.find("3 | c").expect("line 3 row");
        assert!(l2 < l3, "{text}");
        assert!(text.contains("70.0%"), "{text}");
    }

    #[test]
    fn listing_without_cache_activity_has_no_cache_columns() {
        let lc = launch_with_lines(&[(2, 30)]);
        let rows = annotate("a\nb\n", &lc, |_| None);
        let text = listing("k", &rows);
        assert!(!text.contains("l1.hit"), "{text}");
        assert!(!text.contains("l2.hit"), "{text}");
    }

    #[test]
    fn listing_with_cache_activity_shows_hit_rate_gutters() {
        let mut lc = launch_with_lines(&[(2, 30), (3, 70)]);
        let c = lc.lines.get_mut(&2).unwrap();
        c.l1_hits = 3;
        c.l1_misses = 1;
        c.l2_hits = 1;
        // line 3 saw no cache traffic (e.g. only atomics): renders `-`
        let rows = annotate("a\nb\nc\n", &lc, |_| None);
        let text = listing("k", &rows);
        assert!(text.contains("l1.hit"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
        let dash_row = text.lines().find(|l| l.contains("3 | c")).unwrap();
        assert!(dash_row.contains('-'), "{dash_row}");
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let lc = launch_with_lines(&[(1, 5), (2, 5)]);
        let rows = annotate("x\ny\n", &lc, |_| None);
        let out = jsonl("k\"q", &rows);
        assert_eq!(out.lines().count(), 2);
        for line in out.lines() {
            crate::prof::json::parse(line).expect("valid JSON");
        }
        assert!(out.contains("\\\"q"), "kernel name escaped: {out}");
    }
}
