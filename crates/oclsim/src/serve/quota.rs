//! Per-tenant quotas: the limits a service enforces at admission time.
//!
//! Quotas are deliberately coarse — they bound the *demand* a tenant can
//! place on shared resources (launch slots, compile work), not the exact
//! device seconds consumed, which keeps every check a cheap integer
//! comparison on the admission path. A violated quota surfaces as
//! [`Error::QuotaExceeded`] with the tenant, resource, limit, and
//! attempted use, wrapped in [`Error::AdmissionRejected`] by the session
//! layer so causal chains match the scheduler's poisoning style.

use crate::error::{Error, Result};

/// Limits applied to one tenant. `None` means unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantQuota {
    /// Total launches the tenant may submit over the session's lifetime.
    pub max_launches: Option<u64>,
    /// Launches the tenant may have in flight at once.
    pub max_inflight: Option<u64>,
    /// Total source bytes the tenant may submit for compilation (cache
    /// misses only — hits are free).
    pub max_compile_bytes: Option<u64>,
}

impl TenantQuota {
    /// A quota with every limit disabled.
    pub fn unlimited() -> TenantQuota {
        TenantQuota::default()
    }

    /// Check one resource against its limit: `used` is the value the
    /// tenant would reach if admitted.
    pub(crate) fn check(
        tenant: &str,
        resource: &'static str,
        limit: Option<u64>,
        used: u64,
    ) -> Result<()> {
        match limit {
            Some(l) if used > l => Err(Error::QuotaExceeded {
                tenant: tenant.to_string(),
                resource,
                limit: l,
                used,
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_quota_admits_everything() {
        let q = TenantQuota::unlimited();
        assert_eq!(q.max_launches, None);
        TenantQuota::check("t", "launches", q.max_launches, u64::MAX).unwrap();
    }

    #[test]
    fn exceeded_limit_reports_structure() {
        let err = TenantQuota::check("alice", "launches", Some(4), 5).unwrap_err();
        match err {
            Error::QuotaExceeded {
                tenant,
                resource,
                limit,
                used,
            } => {
                assert_eq!(tenant, "alice");
                assert_eq!(resource, "launches");
                assert_eq!((limit, used), (4, 5));
            }
            other => panic!("unexpected error {other}"),
        }
        // reaching the limit exactly is admitted
        TenantQuota::check("alice", "launches", Some(4), 4).unwrap();
    }
}
