//! Sessions: the multi-tenant front door of the service.
//!
//! A [`Service`] owns a set of simulated devices (each with its own
//! context and out-of-order queue), one shared [`BinaryCache`], and a
//! tenant registry. Clients open a [`Session`] per tenant and submit
//! [`LaunchJob`]s; the session enforces the tenant's [`TenantQuota`] at
//! admission, attributes cache traffic and launch counts to the tenant in
//! the process metrics registry, and keeps **per-tenant state sharded**:
//! input buffers a tenant has uploaded are pooled per `(tenant, device,
//! content)` and reused across that tenant's launches, but never shared
//! with other tenants — the only cross-tenant shared resource is the
//! immutable binary cache. That split is what makes the service's metric
//! totals a pure function of the workload: upload counts depend only on
//! each tenant's distinct inputs, never on how tenants interleave.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::{Buffer, MemAccess};
use crate::context::Context;
use crate::device::{Device, DeviceProfile};
use crate::error::{Error, Result};
use crate::obs::{self, CacheState, Postmortem, QuotaState, Request, RequestTrace, TenantObs};
use crate::queue::CommandQueue;
use crate::sched::Event;
use crate::telemetry::metrics;

use super::cache::{BinaryCache, CacheOutcome};
use super::partition::{
    run_partitioned_with, JobArg, LaunchJob, PartitionOptions, PartitionOutcome, PartitionStrategy,
    PartitionTarget,
};
use super::quota::TenantQuota;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Capacity of the shared binary cache in estimated bytes.
    pub cache_capacity_bytes: u64,
    /// One simulated device per profile, in order.
    pub profiles: Vec<DeviceProfile>,
}

impl Default for ServiceConfig {
    /// A two-GPU heterogeneous box mirroring the paper's testbed: a Tesla
    /// C2050-class device and a Quadro FX380-class device, with a 16 MiB
    /// binary cache.
    fn default() -> ServiceConfig {
        ServiceConfig {
            cache_capacity_bytes: 16 << 20,
            profiles: vec![DeviceProfile::tesla_c2050(), DeviceProfile::quadro_fx380()],
        }
    }
}

/// One device of the service with its context and queue.
struct ServeDevice {
    device: Device,
    context: Context,
    queue: CommandQueue,
}

struct ServiceInner {
    devices: Vec<ServeDevice>,
    cache: BinaryCache,
    tenants: Mutex<BTreeMap<String, Arc<TenantState>>>,
}

/// Admission bookkeeping for one tenant.
struct TenantState {
    name: String,
    quota: TenantQuota,
    launches: AtomicU64,
    inflight: AtomicU64,
    compile_bytes: AtomicU64,
}

/// A multi-tenant kernel service over simulated devices (see the module
/// docs).
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Build a service from `config`.
    pub fn new(config: ServiceConfig) -> Result<Service> {
        let mut devices = Vec::with_capacity(config.profiles.len());
        for profile in config.profiles {
            let device = Device::new(profile);
            let context = Context::new(std::slice::from_ref(&device))?;
            let queue = CommandQueue::new_out_of_order(&context, &device)?;
            devices.push(ServeDevice {
                device,
                context,
                queue,
            });
        }
        if devices.is_empty() {
            return Err(Error::InvalidOperation(
                "a service needs at least one device".into(),
            ));
        }
        let cache = BinaryCache::new(config.cache_capacity_bytes);
        metrics()
            .serve_cache_capacity_bytes
            .set(config.cache_capacity_bytes as i64);
        Ok(Service {
            inner: Arc::new(ServiceInner {
                devices,
                cache,
                tenants: Mutex::new(BTreeMap::new()),
            }),
        })
    }

    /// The shared binary cache.
    pub fn cache(&self) -> &BinaryCache {
        &self.inner.cache
    }

    /// The service's devices, in configuration order.
    pub fn devices(&self) -> Vec<Device> {
        self.inner
            .devices
            .iter()
            .map(|d| d.device.clone())
            .collect()
    }

    /// Open (or re-join) the session of `tenant`. The quota is fixed at
    /// first join; re-joining with a different quota keeps the original.
    pub fn session(&self, tenant: &str, quota: TenantQuota) -> Session {
        let state = {
            let mut tenants = self.inner.tenants.lock();
            Arc::clone(tenants.entry(tenant.to_string()).or_insert_with(|| {
                Arc::new(TenantState {
                    name: tenant.to_string(),
                    quota,
                    launches: AtomicU64::new(0),
                    inflight: AtomicU64::new(0),
                    compile_bytes: AtomicU64::new(0),
                })
            }))
        };
        Session {
            svc: Arc::clone(&self.inner),
            obs: obs::tenant_obs(&state.name),
            tenant: state,
            input_pool: Mutex::new(HashMap::new()),
        }
    }

    /// Prepare one [`PartitionTarget`] per service device for `job`,
    /// building through the shared cache (no tenant attribution).
    pub fn partition_targets(&self, job: &LaunchJob) -> Result<Vec<PartitionTarget>> {
        self.inner
            .devices
            .iter()
            .map(|d| {
                PartitionTarget::new(
                    &d.device,
                    &d.context,
                    &d.queue,
                    &self.inner.cache,
                    job,
                    None,
                )
            })
            .collect()
    }
}

/// Outcome of one admitted and executed launch.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Final bytes of each writable (`Out`/`InOut`) argument, in argument
    /// order.
    pub outputs: Vec<Vec<u8>>,
    /// Modeled seconds the kernel occupied the device.
    pub modeled_seconds: f64,
    /// Whether the binary came out of the shared cache without a build.
    pub cache_hit: bool,
    /// Host wall seconds from admission to results (recorded in the
    /// non-canonical latency histogram too).
    pub wall_seconds: f64,
}

/// RAII guard for one in-flight launch slot of a tenant.
struct LaunchPermit {
    tenant: Arc<TenantState>,
}

impl Drop for LaunchPermit {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One tenant's handle on a [`Service`].
pub struct Session {
    svc: Arc<ServiceInner>,
    tenant: Arc<TenantState>,
    /// The tenant's observability state (trace-id mint + flight ring),
    /// cached so the hot path never takes the obs registry lock.
    obs: Arc<TenantObs>,
    /// Per-tenant pool of uploaded read-only inputs:
    /// `(device index, content hash, len)` → resident buffer.
    input_pool: Mutex<HashMap<(usize, u64, usize), Buffer>>,
}

impl Session {
    /// The tenant this session belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant.name
    }

    /// Launches this tenant has had admitted so far.
    pub fn launches(&self) -> u64 {
        self.tenant.launches.load(Ordering::Relaxed)
    }

    /// The service's shared binary cache (the one this session's builds
    /// go through).
    pub fn binary_cache(&self) -> &BinaryCache {
        &self.svc.cache
    }

    /// The tenant's observability state (trace-id mint + flight ring).
    pub fn obs_handle(&self) -> &Arc<TenantObs> {
        &self.obs
    }

    /// Open a request span tree for an externally-driven submission (the
    /// HPL facade builds its own tree through this).
    pub fn begin_request(&self, what: impl Into<String>) -> Request {
        Request::begin(&self.obs, what)
    }

    /// Snapshot of the shared cache for a postmortem dump.
    pub fn cache_state(&self) -> CacheState {
        let c = &self.svc.cache;
        CacheState {
            resident: c.len(),
            resident_bytes: c.resident_bytes(),
            capacity_bytes: c.capacity_bytes(),
            evictions: c.evictions(),
        }
    }

    /// Snapshot of this tenant's quota usage for a postmortem dump.
    pub fn quota_state(&self) -> QuotaState {
        let t = &self.tenant;
        QuotaState {
            launches: t.launches.load(Ordering::Relaxed),
            max_launches: t.quota.max_launches,
            inflight: t.inflight.load(Ordering::Relaxed),
            max_inflight: t.quota.max_inflight,
            compile_bytes: t.compile_bytes.load(Ordering::Relaxed),
            max_compile_bytes: t.quota.max_compile_bytes,
        }
    }

    /// Assemble and publish the postmortem dump of a failed request:
    /// its span tree, the causal error chain, the tenant's flight-recorder
    /// tail, and the cache/quota state at failure time.
    pub fn emit_postmortem(&self, request: RequestTrace, err: &Error) {
        obs::push_postmortem(Postmortem {
            trace: request.trace,
            tenant: request.tenant.clone(),
            error_chain: obs::error_chain(err),
            recorder_tail: self.obs.tail(),
            request,
            cache: self.cache_state(),
            quota: self.quota_state(),
        });
    }

    /// Admit one launch against the tenant's quotas; the permit holds an
    /// in-flight slot until dropped. Rejections surface as
    /// [`Error::AdmissionRejected`] wrapping the [`Error::QuotaExceeded`].
    fn admit_launch(&self, what: &str) -> Result<LaunchPermit> {
        let t = &self.tenant;
        let reject = |cause: Error| {
            let m = metrics();
            m.serve_rejections.inc();
            m.note_tenant(&t.name, |s| s.rejections += 1);
            Err(Error::AdmissionRejected {
                what: what.to_string(),
                cause: Box::new(cause),
            })
        };
        let launched = t.launches.load(Ordering::Relaxed) + 1;
        if let Err(e) = TenantQuota::check(&t.name, "launches", t.quota.max_launches, launched) {
            return reject(e);
        }
        let inflight = t.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        if let Err(e) =
            TenantQuota::check(&t.name, "inflight launches", t.quota.max_inflight, inflight)
        {
            t.inflight.fetch_sub(1, Ordering::Relaxed);
            return reject(e);
        }
        t.launches.fetch_add(1, Ordering::Relaxed);
        let m = metrics();
        m.serve_launches.inc();
        m.note_tenant(&t.name, |s| s.launches += 1);
        Ok(LaunchPermit {
            tenant: Arc::clone(t),
        })
    }

    /// Build (or fetch) a program through the shared cache on this
    /// tenant's behalf, charging compile bytes on misses. Usable with any
    /// context/device pair — the HPL runtime facade passes its own.
    pub fn build_program(
        &self,
        context: &Context,
        device: &Device,
        source: &str,
        options: &str,
    ) -> Result<CacheOutcome> {
        let t = &self.tenant;
        // the quota only applies to actual builds: resident binaries are
        // free for every tenant, so the check runs inside the miss path
        let admit = || {
            let charged = t.compile_bytes.load(Ordering::Relaxed) + source.len() as u64;
            TenantQuota::check(&t.name, "compile bytes", t.quota.max_compile_bytes, charged)
                .map_err(|e| {
                    let m = metrics();
                    m.serve_rejections.inc();
                    m.note_tenant(&t.name, |s| s.rejections += 1);
                    Error::AdmissionRejected {
                        what: format!("compilation of {} source bytes", source.len()),
                        cause: Box::new(e),
                    }
                })
        };
        let outcome = self.svc.cache.get_or_build_admitted(
            context,
            device,
            source,
            options,
            Some(&t.name),
            admit,
        )?;
        if !outcome.hit {
            t.compile_bytes
                .fetch_add(source.len() as u64, Ordering::Relaxed);
        }
        Ok(outcome)
    }

    /// Admit one HPL-facade launch (quota check + accounting) without
    /// running anything here; the caller performs the launch. Used by the
    /// `hpl` Session facade, which launches through its own runtime.
    pub fn admit_external_launch(&self, what: &str) -> Result<()> {
        let permit = self.admit_launch(what)?;
        // the facade's launch is synchronous: the slot frees immediately
        drop(permit);
        Ok(())
    }

    /// Submit one launch on service device `device_index`, blocking until
    /// the results are read back. The request is traced end to end; a
    /// failure emits a postmortem dump ([`crate::obs::take_postmortems`]).
    pub fn submit(&self, device_index: usize, job: &LaunchJob) -> Result<JobOutcome> {
        let mut req = self.begin_request(format!(
            "launch of kernel `{}` on device {device_index}",
            job.kernel
        ));
        let _trace = req.thread_guard();
        match self.submit_traced(device_index, job, &mut req) {
            Ok(outcome) => {
                req.finish(false);
                Ok(outcome)
            }
            Err(e) => {
                let root = req.root();
                req.set_error(root, &e);
                self.emit_postmortem(req.finish(true), &e);
                Err(e)
            }
        }
    }

    fn submit_traced(
        &self,
        device_index: usize,
        job: &LaunchJob,
        req: &mut Request,
    ) -> Result<JobOutcome> {
        let started = std::time::Instant::now();
        let root = req.root();
        let dev = self.svc.devices.get(device_index).ok_or_else(|| {
            Error::InvalidOperation(format!(
                "device index {device_index} out of range ({} devices)",
                self.svc.devices.len()
            ))
        })?;
        let what = format!("launch of kernel `{}`", job.kernel);
        let _permit = match self.admit_launch(&what) {
            Ok(permit) => {
                req.child(
                    root,
                    "admission",
                    format!("ok (launch {})", self.launches()),
                );
                permit
            }
            Err(e) => {
                let node = req.child(root, "admission", what);
                req.set_error(node, &e);
                return Err(e);
            }
        };
        let built =
            match self.build_program(&dev.context, &dev.device, &job.source, &job.build_options) {
                Ok(built) => {
                    req.child(
                        root,
                        "cache.lookup",
                        format!(
                            "device {device_index}: {}",
                            if built.hit { "hit" } else { "miss (build)" }
                        ),
                    );
                    built
                }
                Err(e) => {
                    let node = req.child(root, "cache.lookup", format!("device {device_index}"));
                    req.set_error(node, &e);
                    return Err(e);
                }
            };
        let kernel = built.program.kernel(&job.kernel)?;

        let mut wait: Vec<Event> = Vec::new();
        let mut writable: Vec<(usize, Buffer, usize)> = Vec::new();
        for (i, arg) in job.args.iter().enumerate() {
            match arg {
                JobArg::In(data) => {
                    let (buf, uploaded) = self.pooled_input(device_index, dev, data)?;
                    req.child(
                        root,
                        "sched.dma",
                        format!(
                            "arg {i}: {} bytes -> device {device_index} ({})",
                            data.len(),
                            if uploaded { "upload" } else { "pooled" }
                        ),
                    );
                    kernel.set_arg_buffer(i, &buf)?;
                }
                JobArg::InOut(data) => {
                    let buf = dev
                        .context
                        .create_buffer(data.len(), MemAccess::ReadWrite)?;
                    wait.push(dev.queue.enqueue_write_async(&buf, 0, data, &[])?);
                    req.child(
                        root,
                        "sched.dma",
                        format!("arg {i}: {} bytes -> device {device_index}", data.len()),
                    );
                    kernel.set_arg_buffer(i, &buf)?;
                    writable.push((i, buf, data.len()));
                }
                JobArg::Out(len) => {
                    let buf = dev.context.create_buffer(*len, MemAccess::ReadWrite)?;
                    kernel.set_arg_buffer(i, &buf)?;
                    writable.push((i, buf, *len));
                }
                JobArg::Scalar(v) => kernel.set_arg_scalar(i, *v)?,
            }
        }
        let sched = req.child(
            root,
            "sched.enqueue",
            format!("ndrange global {:?}", job.global),
        );
        let ev =
            dev.queue
                .enqueue_ndrange_async(&kernel, &job.global, job.local.as_deref(), &wait)?;
        if let Err(e) = ev.wait() {
            req.set_error(sched, &e);
            return Err(e);
        }
        let timing = ev.kernel_timing();
        let modeled_seconds = timing
            .as_ref()
            .map(|t| t.device_seconds)
            .unwrap_or_else(|| ev.modeled_seconds());
        req.set_modeled(sched, modeled_seconds);
        let launch = req.child(sched, "exec.launch", launch_detail(&job.kernel, &timing));
        req.set_modeled(launch, modeled_seconds);
        let mut outputs = Vec::with_capacity(writable.len());
        for (i, buf, len) in &writable {
            let handle =
                dev.queue
                    .enqueue_read_async::<u8>(buf, 0, *len, std::slice::from_ref(&ev))?;
            req.child(
                root,
                "sched.dma",
                format!("arg {i}: {len} bytes <- device {device_index}"),
            );
            outputs.push(handle.wait()?);
        }
        let wall_seconds = started.elapsed().as_secs_f64();
        // observed inside the request's trace scope, so the latency
        // histogram bucket gains this request's id as its exemplar
        metrics()
            .serve_launch_wall_us
            .observe((wall_seconds * 1.0e6) as u64);
        Ok(JobOutcome {
            outputs,
            modeled_seconds,
            cache_hit: built.hit,
            wall_seconds,
        })
    }

    /// Submit one launch on service device `device_index` without blocking:
    /// the launch is admitted, its inputs staged and the kernel enqueued,
    /// and a [`PendingJob`] is returned whose [`PendingJob::wait`] reads
    /// the results back. A poisoned dependency or launch fault surfaces at
    /// `wait()`, which emits the postmortem dump there.
    pub fn submit_async(
        &self,
        device_index: usize,
        job: &LaunchJob,
        deps: &[Event],
    ) -> Result<PendingJob<'_>> {
        let mut req = self.begin_request(format!(
            "async launch of kernel `{}` on device {device_index}",
            job.kernel
        ));
        let _trace = req.thread_guard();
        match self.submit_async_traced(device_index, job, deps, &mut req) {
            Ok((permit, event, writable, cache_hit, sched)) => Ok(PendingJob {
                session: self,
                req: Some(req),
                _permit: permit,
                event,
                device_index,
                writable,
                cache_hit,
                sched,
                kernel: job.kernel.clone(),
                started: std::time::Instant::now(),
            }),
            Err(e) => {
                let root = req.root();
                req.set_error(root, &e);
                self.emit_postmortem(req.finish(true), &e);
                Err(e)
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn submit_async_traced(
        &self,
        device_index: usize,
        job: &LaunchJob,
        deps: &[Event],
        req: &mut Request,
    ) -> Result<(
        LaunchPermit,
        Event,
        Vec<(usize, Buffer, usize)>,
        bool,
        obs::NodeId,
    )> {
        let root = req.root();
        let dev = self.svc.devices.get(device_index).ok_or_else(|| {
            Error::InvalidOperation(format!(
                "device index {device_index} out of range ({} devices)",
                self.svc.devices.len()
            ))
        })?;
        let what = format!("async launch of kernel `{}`", job.kernel);
        let permit = match self.admit_launch(&what) {
            Ok(permit) => {
                req.child(
                    root,
                    "admission",
                    format!("ok (launch {})", self.launches()),
                );
                permit
            }
            Err(e) => {
                let node = req.child(root, "admission", what);
                req.set_error(node, &e);
                return Err(e);
            }
        };
        let built =
            self.build_program(&dev.context, &dev.device, &job.source, &job.build_options)?;
        req.child(
            root,
            "cache.lookup",
            format!(
                "device {device_index}: {}",
                if built.hit { "hit" } else { "miss (build)" }
            ),
        );
        let kernel = built.program.kernel(&job.kernel)?;
        let mut wait: Vec<Event> = deps.to_vec();
        let mut writable: Vec<(usize, Buffer, usize)> = Vec::new();
        for (i, arg) in job.args.iter().enumerate() {
            match arg {
                JobArg::In(data) => {
                    let (buf, uploaded) = self.pooled_input(device_index, dev, data)?;
                    req.child(
                        root,
                        "sched.dma",
                        format!(
                            "arg {i}: {} bytes -> device {device_index} ({})",
                            data.len(),
                            if uploaded { "upload" } else { "pooled" }
                        ),
                    );
                    kernel.set_arg_buffer(i, &buf)?;
                }
                JobArg::InOut(data) => {
                    let buf = dev
                        .context
                        .create_buffer(data.len(), MemAccess::ReadWrite)?;
                    wait.push(dev.queue.enqueue_write_async(&buf, 0, data, &[])?);
                    req.child(
                        root,
                        "sched.dma",
                        format!("arg {i}: {} bytes -> device {device_index}", data.len()),
                    );
                    kernel.set_arg_buffer(i, &buf)?;
                    writable.push((i, buf, data.len()));
                }
                JobArg::Out(len) => {
                    let buf = dev.context.create_buffer(*len, MemAccess::ReadWrite)?;
                    kernel.set_arg_buffer(i, &buf)?;
                    writable.push((i, buf, *len));
                }
                JobArg::Scalar(v) => kernel.set_arg_scalar(i, *v)?,
            }
        }
        let sched = req.child(
            root,
            "sched.enqueue",
            format!(
                "ndrange global {:?}{}",
                job.global,
                if deps.is_empty() {
                    String::new()
                } else {
                    format!(", {} external dep(s)", deps.len())
                }
            ),
        );
        let event =
            dev.queue
                .enqueue_ndrange_async(&kernel, &job.global, job.local.as_deref(), &wait)?;
        Ok((permit, event, writable, built.hit, sched))
    }

    /// Submit one launch split across **all** service devices with
    /// `strategy`, blocking until the merged results are ready. Counts as
    /// a single admitted launch for the tenant.
    pub fn submit_partitioned(
        &self,
        job: &LaunchJob,
        strategy: PartitionStrategy,
    ) -> Result<PartitionOutcome> {
        self.submit_partitioned_with(job, strategy, None)
    }

    /// [`Session::submit_partitioned`] with an optional chunk gate: every
    /// chunk whose issue index is `>= gate.0` waits on event `gate.1`
    /// before running. Failing the gate from the host poisons those chunks
    /// with a deterministic [`Error::DependencyFailed`] chain — the
    /// fault-injection hook the postmortem tests and demo use.
    pub fn submit_partitioned_with(
        &self,
        job: &LaunchJob,
        strategy: PartitionStrategy,
        gate: Option<(usize, Event)>,
    ) -> Result<PartitionOutcome> {
        let mut req = self.begin_request(format!(
            "partitioned launch of kernel `{}` across {} devices",
            job.kernel,
            self.svc.devices.len()
        ));
        let _trace = req.thread_guard();
        match self.submit_partitioned_traced(job, strategy, gate, &mut req) {
            Ok(outcome) => {
                req.finish(false);
                Ok(outcome)
            }
            Err(e) => {
                let root = req.root();
                req.set_error(root, &e);
                self.emit_postmortem(req.finish(true), &e);
                Err(e)
            }
        }
    }

    fn submit_partitioned_traced(
        &self,
        job: &LaunchJob,
        strategy: PartitionStrategy,
        gate: Option<(usize, Event)>,
        req: &mut Request,
    ) -> Result<PartitionOutcome> {
        let started = std::time::Instant::now();
        let root = req.root();
        let what = format!("partitioned launch of kernel `{}`", job.kernel);
        let _permit = match self.admit_launch(&what) {
            Ok(permit) => {
                req.child(
                    root,
                    "admission",
                    format!("ok (launch {})", self.launches()),
                );
                permit
            }
            Err(e) => {
                let node = req.child(root, "admission", what);
                req.set_error(node, &e);
                return Err(e);
            }
        };
        let mut targets: Vec<PartitionTarget> = Vec::with_capacity(self.svc.devices.len());
        for (d, dev) in self.svc.devices.iter().enumerate() {
            match PartitionTarget::new(
                &dev.device,
                &dev.context,
                &dev.queue,
                &self.svc.cache,
                job,
                Some(&self.tenant.name),
            ) {
                Ok(target) => {
                    req.child(
                        root,
                        "cache.lookup",
                        format!(
                            "device {d}: {}",
                            if target.cache_hit() {
                                "hit"
                            } else {
                                "miss (build)"
                            }
                        ),
                    );
                    targets.push(target);
                }
                Err(e) => {
                    let node = req.child(root, "cache.lookup", format!("device {d}"));
                    req.set_error(node, &e);
                    return Err(e);
                }
            }
        }
        let sched = req.child(root, "sched.enqueue", format!("strategy {strategy:?}"));
        let outcome = run_partitioned_with(
            &targets,
            job,
            strategy,
            PartitionOptions {
                obs: Some((req, sched)),
                gate_from_chunk: gate,
            },
        )?;
        req.set_modeled(sched, outcome.makespan_seconds);
        metrics()
            .serve_launch_wall_us
            .observe((started.elapsed().as_secs_f64() * 1.0e6) as u64);
        Ok(outcome)
    }

    /// Fetch (or upload) the tenant's pooled read-only copy of `data` on
    /// device `device_index`; the boolean reports whether an upload
    /// happened. Repeated launches over the same input do not re-upload —
    /// the serve-layer analogue of HPL's coherence validity.
    fn pooled_input(
        &self,
        device_index: usize,
        dev: &ServeDevice,
        data: &[u8],
    ) -> Result<(Buffer, bool)> {
        let key = (device_index, super::cache::fnv1a(data), data.len());
        let mut pool = self.input_pool.lock();
        if let Some(buf) = pool.get(&key) {
            return Ok((buf.clone(), false));
        }
        let buf = dev.context.create_buffer(data.len(), MemAccess::ReadOnly)?;
        let ev = dev.queue.enqueue_write_async(&buf, 0, data, &[])?;
        // the upload completes before the buffer enters the pool, so later
        // launches may reuse it without re-waiting
        ev.wait()?;
        pool.insert(key, buf.clone());
        Ok((buf, true))
    }
}

/// The `exec.launch` span-tree node's detail line, built from the
/// launch event's modeled data on the request thread — identical for
/// both exec backends.
fn launch_detail(kernel: &str, timing: &Option<crate::timing::TimingBreakdown>) -> String {
    match timing {
        Some(t) => format!("kernel `{kernel}`: {} instrs", t.totals.instructions),
        None => format!("kernel `{kernel}`"),
    }
}

/// One asynchronously-submitted launch (see [`Session::submit_async`]).
/// Dropping it without waiting abandons the request's trace unfinished;
/// call [`PendingJob::wait`] to collect outputs and close the trace.
pub struct PendingJob<'a> {
    session: &'a Session,
    req: Option<Request>,
    _permit: LaunchPermit,
    event: Event,
    device_index: usize,
    writable: Vec<(usize, Buffer, usize)>,
    cache_hit: bool,
    /// The request's `sched.enqueue` node, completed at wait time.
    sched: obs::NodeId,
    kernel: String,
    started: std::time::Instant,
}

impl PendingJob<'_> {
    /// The launch's event (e.g. to gate later submissions on it).
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// The request's trace id.
    pub fn trace(&self) -> obs::TraceId {
        self.req.as_ref().expect("trace open until wait").trace()
    }

    /// Block until the launch resolves and read the outputs back. A
    /// poisoned dependency chain or launch fault closes the trace as
    /// failed and emits the postmortem dump before returning the error.
    pub fn wait(mut self) -> Result<JobOutcome> {
        let mut req = self.req.take().expect("wait consumes the request");
        let _trace = req.thread_guard();
        match self.wait_traced(&mut req) {
            Ok(outcome) => {
                req.finish(false);
                Ok(outcome)
            }
            Err(e) => {
                let root = req.root();
                req.set_error(root, &e);
                self.session.emit_postmortem(req.finish(true), &e);
                Err(e)
            }
        }
    }

    fn wait_traced(&self, req: &mut Request) -> Result<JobOutcome> {
        let root = req.root();
        if let Err(e) = self.event.wait() {
            req.set_error(self.sched, &e);
            return Err(e);
        }
        let timing = self.event.kernel_timing();
        let modeled_seconds = timing
            .as_ref()
            .map(|t| t.device_seconds)
            .unwrap_or_else(|| self.event.modeled_seconds());
        req.set_modeled(self.sched, modeled_seconds);
        let launch = req.child(
            self.sched,
            "exec.launch",
            launch_detail(&self.kernel, &timing),
        );
        req.set_modeled(launch, modeled_seconds);
        let dev = &self.session.svc.devices[self.device_index];
        let mut outputs = Vec::with_capacity(self.writable.len());
        for (i, buf, len) in &self.writable {
            let handle = dev.queue.enqueue_read_async::<u8>(
                buf,
                0,
                *len,
                std::slice::from_ref(&self.event),
            )?;
            req.child(
                root,
                "sched.dma",
                format!("arg {i}: {len} bytes <- device {}", self.device_index),
            );
            outputs.push(handle.wait()?);
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        metrics()
            .serve_launch_wall_us
            .observe((wall_seconds * 1.0e6) as u64);
        Ok(JobOutcome {
            outputs,
            modeled_seconds,
            cache_hit: self.cache_hit,
            wall_seconds,
        })
    }
}
