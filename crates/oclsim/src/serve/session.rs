//! Sessions: the multi-tenant front door of the service.
//!
//! A [`Service`] owns a set of simulated devices (each with its own
//! context and out-of-order queue), one shared [`BinaryCache`], and a
//! tenant registry. Clients open a [`Session`] per tenant and submit
//! [`LaunchJob`]s; the session enforces the tenant's [`TenantQuota`] at
//! admission, attributes cache traffic and launch counts to the tenant in
//! the process metrics registry, and keeps **per-tenant state sharded**:
//! input buffers a tenant has uploaded are pooled per `(tenant, device,
//! content)` and reused across that tenant's launches, but never shared
//! with other tenants — the only cross-tenant shared resource is the
//! immutable binary cache. That split is what makes the service's metric
//! totals a pure function of the workload: upload counts depend only on
//! each tenant's distinct inputs, never on how tenants interleave.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::{Buffer, MemAccess};
use crate::context::Context;
use crate::device::{Device, DeviceProfile};
use crate::error::{Error, Result};
use crate::queue::CommandQueue;
use crate::sched::Event;
use crate::telemetry::metrics;

use super::cache::{BinaryCache, CacheOutcome};
use super::partition::{
    run_partitioned, JobArg, LaunchJob, PartitionOutcome, PartitionStrategy, PartitionTarget,
};
use super::quota::TenantQuota;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Capacity of the shared binary cache in estimated bytes.
    pub cache_capacity_bytes: u64,
    /// One simulated device per profile, in order.
    pub profiles: Vec<DeviceProfile>,
}

impl Default for ServiceConfig {
    /// A two-GPU heterogeneous box mirroring the paper's testbed: a Tesla
    /// C2050-class device and a Quadro FX380-class device, with a 16 MiB
    /// binary cache.
    fn default() -> ServiceConfig {
        ServiceConfig {
            cache_capacity_bytes: 16 << 20,
            profiles: vec![DeviceProfile::tesla_c2050(), DeviceProfile::quadro_fx380()],
        }
    }
}

/// One device of the service with its context and queue.
struct ServeDevice {
    device: Device,
    context: Context,
    queue: CommandQueue,
}

struct ServiceInner {
    devices: Vec<ServeDevice>,
    cache: BinaryCache,
    tenants: Mutex<BTreeMap<String, Arc<TenantState>>>,
}

/// Admission bookkeeping for one tenant.
struct TenantState {
    name: String,
    quota: TenantQuota,
    launches: AtomicU64,
    inflight: AtomicU64,
    compile_bytes: AtomicU64,
}

/// A multi-tenant kernel service over simulated devices (see the module
/// docs).
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Build a service from `config`.
    pub fn new(config: ServiceConfig) -> Result<Service> {
        let mut devices = Vec::with_capacity(config.profiles.len());
        for profile in config.profiles {
            let device = Device::new(profile);
            let context = Context::new(std::slice::from_ref(&device))?;
            let queue = CommandQueue::new_out_of_order(&context, &device)?;
            devices.push(ServeDevice {
                device,
                context,
                queue,
            });
        }
        if devices.is_empty() {
            return Err(Error::InvalidOperation(
                "a service needs at least one device".into(),
            ));
        }
        let cache = BinaryCache::new(config.cache_capacity_bytes);
        metrics()
            .serve_cache_capacity_bytes
            .set(config.cache_capacity_bytes as i64);
        Ok(Service {
            inner: Arc::new(ServiceInner {
                devices,
                cache,
                tenants: Mutex::new(BTreeMap::new()),
            }),
        })
    }

    /// The shared binary cache.
    pub fn cache(&self) -> &BinaryCache {
        &self.inner.cache
    }

    /// The service's devices, in configuration order.
    pub fn devices(&self) -> Vec<Device> {
        self.inner
            .devices
            .iter()
            .map(|d| d.device.clone())
            .collect()
    }

    /// Open (or re-join) the session of `tenant`. The quota is fixed at
    /// first join; re-joining with a different quota keeps the original.
    pub fn session(&self, tenant: &str, quota: TenantQuota) -> Session {
        let state = {
            let mut tenants = self.inner.tenants.lock();
            Arc::clone(tenants.entry(tenant.to_string()).or_insert_with(|| {
                Arc::new(TenantState {
                    name: tenant.to_string(),
                    quota,
                    launches: AtomicU64::new(0),
                    inflight: AtomicU64::new(0),
                    compile_bytes: AtomicU64::new(0),
                })
            }))
        };
        Session {
            svc: Arc::clone(&self.inner),
            tenant: state,
            input_pool: Mutex::new(HashMap::new()),
        }
    }

    /// Prepare one [`PartitionTarget`] per service device for `job`,
    /// building through the shared cache (no tenant attribution).
    pub fn partition_targets(&self, job: &LaunchJob) -> Result<Vec<PartitionTarget>> {
        self.inner
            .devices
            .iter()
            .map(|d| {
                PartitionTarget::new(
                    &d.device,
                    &d.context,
                    &d.queue,
                    &self.inner.cache,
                    job,
                    None,
                )
            })
            .collect()
    }
}

/// Outcome of one admitted and executed launch.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Final bytes of each writable (`Out`/`InOut`) argument, in argument
    /// order.
    pub outputs: Vec<Vec<u8>>,
    /// Modeled seconds the kernel occupied the device.
    pub modeled_seconds: f64,
    /// Whether the binary came out of the shared cache without a build.
    pub cache_hit: bool,
    /// Host wall seconds from admission to results (recorded in the
    /// non-canonical latency histogram too).
    pub wall_seconds: f64,
}

/// RAII guard for one in-flight launch slot of a tenant.
struct LaunchPermit {
    tenant: Arc<TenantState>,
}

impl Drop for LaunchPermit {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One tenant's handle on a [`Service`].
pub struct Session {
    svc: Arc<ServiceInner>,
    tenant: Arc<TenantState>,
    /// Per-tenant pool of uploaded read-only inputs:
    /// `(device index, content hash, len)` → resident buffer.
    input_pool: Mutex<HashMap<(usize, u64, usize), Buffer>>,
}

impl Session {
    /// The tenant this session belongs to.
    pub fn tenant(&self) -> &str {
        &self.tenant.name
    }

    /// Launches this tenant has had admitted so far.
    pub fn launches(&self) -> u64 {
        self.tenant.launches.load(Ordering::Relaxed)
    }

    /// The service's shared binary cache (the one this session's builds
    /// go through).
    pub fn binary_cache(&self) -> &BinaryCache {
        &self.svc.cache
    }

    /// Admit one launch against the tenant's quotas; the permit holds an
    /// in-flight slot until dropped. Rejections surface as
    /// [`Error::AdmissionRejected`] wrapping the [`Error::QuotaExceeded`].
    fn admit_launch(&self, what: &str) -> Result<LaunchPermit> {
        let t = &self.tenant;
        let reject = |cause: Error| {
            let m = metrics();
            m.serve_rejections.inc();
            m.note_tenant(&t.name, |s| s.rejections += 1);
            Err(Error::AdmissionRejected {
                what: what.to_string(),
                cause: Box::new(cause),
            })
        };
        let launched = t.launches.load(Ordering::Relaxed) + 1;
        if let Err(e) = TenantQuota::check(&t.name, "launches", t.quota.max_launches, launched) {
            return reject(e);
        }
        let inflight = t.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        if let Err(e) =
            TenantQuota::check(&t.name, "inflight launches", t.quota.max_inflight, inflight)
        {
            t.inflight.fetch_sub(1, Ordering::Relaxed);
            return reject(e);
        }
        t.launches.fetch_add(1, Ordering::Relaxed);
        let m = metrics();
        m.serve_launches.inc();
        m.note_tenant(&t.name, |s| s.launches += 1);
        Ok(LaunchPermit {
            tenant: Arc::clone(t),
        })
    }

    /// Build (or fetch) a program through the shared cache on this
    /// tenant's behalf, charging compile bytes on misses. Usable with any
    /// context/device pair — the HPL runtime facade passes its own.
    pub fn build_program(
        &self,
        context: &Context,
        device: &Device,
        source: &str,
        options: &str,
    ) -> Result<CacheOutcome> {
        let t = &self.tenant;
        // the quota only applies to actual builds: resident binaries are
        // free for every tenant, so the check runs inside the miss path
        let admit = || {
            let charged = t.compile_bytes.load(Ordering::Relaxed) + source.len() as u64;
            TenantQuota::check(&t.name, "compile bytes", t.quota.max_compile_bytes, charged)
                .map_err(|e| {
                    let m = metrics();
                    m.serve_rejections.inc();
                    m.note_tenant(&t.name, |s| s.rejections += 1);
                    Error::AdmissionRejected {
                        what: format!("compilation of {} source bytes", source.len()),
                        cause: Box::new(e),
                    }
                })
        };
        let outcome = self.svc.cache.get_or_build_admitted(
            context,
            device,
            source,
            options,
            Some(&t.name),
            admit,
        )?;
        if !outcome.hit {
            t.compile_bytes
                .fetch_add(source.len() as u64, Ordering::Relaxed);
        }
        Ok(outcome)
    }

    /// Admit one HPL-facade launch (quota check + accounting) without
    /// running anything here; the caller performs the launch. Used by the
    /// `hpl` Session facade, which launches through its own runtime.
    pub fn admit_external_launch(&self, what: &str) -> Result<()> {
        let permit = self.admit_launch(what)?;
        // the facade's launch is synchronous: the slot frees immediately
        drop(permit);
        Ok(())
    }

    /// Submit one launch on service device `device_index`, blocking until
    /// the results are read back.
    pub fn submit(&self, device_index: usize, job: &LaunchJob) -> Result<JobOutcome> {
        let started = std::time::Instant::now();
        let dev = self.svc.devices.get(device_index).ok_or_else(|| {
            Error::InvalidOperation(format!(
                "device index {device_index} out of range ({} devices)",
                self.svc.devices.len()
            ))
        })?;
        let what = format!("launch of kernel `{}`", job.kernel);
        let _permit = self.admit_launch(&what)?;
        let built =
            self.build_program(&dev.context, &dev.device, &job.source, &job.build_options)?;
        let kernel = built.program.kernel(&job.kernel)?;

        let mut wait: Vec<Event> = Vec::new();
        let mut writable: Vec<(usize, Buffer, usize)> = Vec::new();
        for (i, arg) in job.args.iter().enumerate() {
            match arg {
                JobArg::In(data) => {
                    let buf = self.pooled_input(device_index, dev, data)?;
                    kernel.set_arg_buffer(i, &buf)?;
                }
                JobArg::InOut(data) => {
                    let buf = dev
                        .context
                        .create_buffer(data.len(), MemAccess::ReadWrite)?;
                    wait.push(dev.queue.enqueue_write_async(&buf, 0, data, &[])?);
                    kernel.set_arg_buffer(i, &buf)?;
                    writable.push((i, buf, data.len()));
                }
                JobArg::Out(len) => {
                    let buf = dev.context.create_buffer(*len, MemAccess::ReadWrite)?;
                    kernel.set_arg_buffer(i, &buf)?;
                    writable.push((i, buf, *len));
                }
                JobArg::Scalar(v) => kernel.set_arg_scalar(i, *v)?,
            }
        }
        let ev =
            dev.queue
                .enqueue_ndrange_async(&kernel, &job.global, job.local.as_deref(), &wait)?;
        ev.wait()?;
        let modeled_seconds = ev
            .kernel_timing()
            .map(|t| t.device_seconds)
            .unwrap_or_else(|| ev.modeled_seconds());
        let mut outputs = Vec::with_capacity(writable.len());
        for (_, buf, len) in &writable {
            let handle =
                dev.queue
                    .enqueue_read_async::<u8>(buf, 0, *len, std::slice::from_ref(&ev))?;
            outputs.push(handle.wait()?);
        }
        let wall_seconds = started.elapsed().as_secs_f64();
        metrics()
            .serve_launch_wall_us
            .observe((wall_seconds * 1.0e6) as u64);
        Ok(JobOutcome {
            outputs,
            modeled_seconds,
            cache_hit: built.hit,
            wall_seconds,
        })
    }

    /// Submit one launch split across **all** service devices with
    /// `strategy`, blocking until the merged results are ready. Counts as
    /// a single admitted launch for the tenant.
    pub fn submit_partitioned(
        &self,
        job: &LaunchJob,
        strategy: PartitionStrategy,
    ) -> Result<PartitionOutcome> {
        let started = std::time::Instant::now();
        let what = format!("partitioned launch of kernel `{}`", job.kernel);
        let _permit = self.admit_launch(&what)?;
        let targets: Vec<PartitionTarget> = self
            .svc
            .devices
            .iter()
            .map(|d| {
                PartitionTarget::new(
                    &d.device,
                    &d.context,
                    &d.queue,
                    &self.svc.cache,
                    job,
                    Some(&self.tenant.name),
                )
            })
            .collect::<Result<_>>()?;
        let outcome = run_partitioned(&targets, job, strategy)?;
        metrics()
            .serve_launch_wall_us
            .observe((started.elapsed().as_secs_f64() * 1.0e6) as u64);
        Ok(outcome)
    }

    /// Fetch (or upload) the tenant's pooled read-only copy of `data` on
    /// device `device_index`. Repeated launches over the same input do not
    /// re-upload — the serve-layer analogue of HPL's coherence validity.
    fn pooled_input(&self, device_index: usize, dev: &ServeDevice, data: &[u8]) -> Result<Buffer> {
        let key = (device_index, super::cache::fnv1a(data), data.len());
        let mut pool = self.input_pool.lock();
        if let Some(buf) = pool.get(&key) {
            return Ok(buf.clone());
        }
        let buf = dev.context.create_buffer(data.len(), MemAccess::ReadOnly)?;
        let ev = dev.queue.enqueue_write_async(&buf, 0, data, &[])?;
        // the upload completes before the buffer enters the pool, so later
        // launches may reuse it without re-waiting
        ev.wait()?;
        pool.insert(key, buf.clone());
        Ok(buf)
    }
}
