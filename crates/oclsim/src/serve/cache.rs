//! The shared kernel-binary cache: one pool of built [`Program`]s that
//! every tenant of a service draws from, with capacity accounting, LRU
//! eviction, and admission control.
//!
//! The cache is keyed by `(source hash, build options, device)` — the
//! same kernel text submitted by two different tenants for the same
//! device resolves to **one** resident binary, which is what makes a
//! multi-tenant soak cheap: the first tenant pays the compile, everyone
//! else hits. Builds are *single-flight*: a miss compiles while holding
//! the cache lock, so concurrent identical requests can never race into
//! duplicate builds, and the hit/miss totals for a given workload are
//! identical regardless of tenant interleaving or `OCLSIM_THREADS`.
//!
//! Capacity is accounted in estimated binary bytes
//! ([`Program::binary_size_estimate`], a deterministic figure derived
//! from the typed IR). When an insert would overflow the configured
//! capacity, least-recently-used binaries are evicted until it fits; a
//! binary that could never fit is rejected at admission with
//! [`Error::AdmissionRejected`] wrapping the underlying
//! [`Error::OutOfResources`].

use std::collections::HashMap;
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::context::Context;
use crate::device::Device;
use crate::error::{Error, Result};
use crate::program::Program;
use crate::telemetry::metrics;

/// FNV-1a over the source text: cheap, stable, and good enough to key a
/// cache whose entries also pin the full source via the [`Program`].
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    source_hash: u64,
    options: String,
    device: u64,
}

struct Entry {
    program: Program,
    bytes: u64,
    /// LRU stamp: the cache tick at the entry's last hit or insert.
    stamp: u64,
}

struct Inner {
    map: HashMap<Key, Entry>,
    resident_bytes: u64,
    tick: u64,
    evictions: u64,
}

/// Result of a [`BinaryCache::get_or_build`] lookup.
pub struct CacheOutcome {
    /// The resident (possibly freshly built) program.
    pub program: Program,
    /// Whether the lookup was served without compiling.
    pub hit: bool,
    /// Wall-clock seconds spent compiling (0.0 on a hit).
    pub build_seconds: f64,
}

impl std::fmt::Debug for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheOutcome")
            .field("hit", &self.hit)
            .field("build_seconds", &self.build_seconds)
            .finish_non_exhaustive()
    }
}

/// A shared, capacity-bounded pool of built kernel binaries (see the
/// module docs).
pub struct BinaryCache {
    capacity_bytes: u64,
    inner: Mutex<Inner>,
}

impl BinaryCache {
    /// Create a cache that holds at most `capacity_bytes` of estimated
    /// binary bytes.
    pub fn new(capacity_bytes: u64) -> BinaryCache {
        BinaryCache {
            capacity_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
                evictions: 0,
            }),
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Estimated bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().resident_bytes
    }

    /// Number of resident binaries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no binaries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Binaries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// How many distinct devices hold a resident binary for `source`
    /// (any build options).
    pub fn devices_built(&self, source: &str) -> usize {
        let hash = fnv1a(source.as_bytes());
        let inner = self.inner.lock();
        let mut devices: Vec<u64> = inner
            .map
            .keys()
            .filter(|k| k.source_hash == hash)
            .map(|k| k.device)
            .collect();
        devices.sort_unstable();
        devices.dedup();
        devices.len()
    }

    /// Drop every resident binary (counted as evictions).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let dropped = inner.map.len() as u64;
        inner.map.clear();
        inner.resident_bytes = 0;
        inner.evictions += dropped;
        let m = metrics();
        m.serve_cache_evictions.add(dropped);
        m.serve_cache_bytes.set(0);
    }

    /// Look up (or build) the binary for `source` compiled with `options`
    /// for `device`, attributing the hit/miss to `tenant` when given.
    ///
    /// `context` is only consulted on a miss, to host the fresh build —
    /// callers on different contexts share binaries as long as they name
    /// the same device.
    pub fn get_or_build(
        &self,
        context: &Context,
        device: &Device,
        source: &str,
        options: &str,
        tenant: Option<&str>,
    ) -> Result<CacheOutcome> {
        self.get_or_build_admitted(context, device, source, options, tenant, || Ok(()))
    }

    /// Like [`BinaryCache::get_or_build`], but runs `admit_build` before
    /// compiling on a miss — the hook where session layers charge
    /// per-tenant compile quotas. Hits never invoke the hook: a kernel
    /// already resident in the shared cache is free for every tenant.
    pub fn get_or_build_admitted(
        &self,
        context: &Context,
        device: &Device,
        source: &str,
        options: &str,
        tenant: Option<&str>,
        admit_build: impl FnOnce() -> Result<()>,
    ) -> Result<CacheOutcome> {
        let key = Key {
            source_hash: fnv1a(source.as_bytes()),
            options: options.to_string(),
            device: device.id(),
        };
        let m = metrics();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.stamp = tick;
            let program = entry.program.clone();
            m.serve_cache_hits.inc();
            if let Some(t) = tenant {
                m.note_tenant(t, |s| s.cache_hits += 1);
            }
            return Ok(CacheOutcome {
                program,
                hit: true,
                build_seconds: 0.0,
            });
        }

        // Miss: single-flight build under the cache lock.
        admit_build()?;
        m.serve_cache_misses.inc();
        if let Some(t) = tenant {
            m.note_tenant(t, |s| s.cache_misses += 1);
        }
        let started = std::time::Instant::now();
        let program = Program::from_source(context, source);
        program.build(options)?;
        let build_seconds = started.elapsed().as_secs_f64();
        let bytes = program.binary_size_estimate()?;
        if bytes > self.capacity_bytes {
            m.serve_rejections.inc();
            if let Some(t) = tenant {
                m.note_tenant(t, |s| s.rejections += 1);
            }
            return Err(Error::AdmissionRejected {
                what: format!("kernel binary of {bytes} bytes"),
                cause: Box::new(Error::OutOfResources(format!(
                    "binary needs {bytes} bytes but the shared cache capacity is {} bytes",
                    self.capacity_bytes
                ))),
            });
        }
        while inner.resident_bytes + bytes > self.capacity_bytes {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("resident_bytes > 0 implies a resident entry");
            let evicted = inner.map.remove(&victim).expect("victim is resident");
            inner.resident_bytes -= evicted.bytes;
            inner.evictions += 1;
            m.serve_cache_evictions.inc();
        }
        inner.resident_bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                program: program.clone(),
                bytes,
                stamp: tick,
            },
        );
        m.serve_cache_bytes.set(inner.resident_bytes as i64);
        Ok(CacheOutcome {
            program,
            hit: false,
            build_seconds,
        })
    }
}

/// The process-wide default binary cache, used by the HPL runtime when no
/// tenant session is active. Generously sized: single-client workloads
/// should never see capacity eviction, only explicit clears.
pub fn global_binary_cache() -> &'static BinaryCache {
    static GLOBAL: OnceLock<BinaryCache> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cache = BinaryCache::new(1 << 32);
        metrics().serve_cache_capacity_bytes.set(1 << 32);
        cache
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemAccess;
    use crate::device::DeviceProfile;
    use crate::queue::CommandQueue;

    fn rig() -> (Device, Context) {
        let d = Device::new(DeviceProfile::tesla_c2050());
        let ctx = Context::new(std::slice::from_ref(&d)).unwrap();
        (d, ctx)
    }

    fn fill_src(tag: u32) -> String {
        format!(
            "__kernel void fill{tag}(__global float* out) {{ out[get_global_id(0)] = {tag}.0f; }}"
        )
    }

    #[test]
    fn identical_sources_share_one_entry_across_tenants() {
        let (d, ctx) = rig();
        let cache = BinaryCache::new(1 << 20);
        let src = fill_src(1);
        let first = cache
            .get_or_build(&ctx, &d, &src, "", Some("alice"))
            .unwrap();
        let second = cache.get_or_build(&ctx, &d, &src, "", Some("bob")).unwrap();
        assert!(!first.hit);
        assert!(second.hit);
        assert_eq!(second.build_seconds, 0.0);
        assert_eq!(cache.len(), 1);
        // the shared program is usable by the second tenant
        let q = CommandQueue::new(&ctx, &d).unwrap();
        let k = second.program.kernel("fill1").unwrap();
        let buf = ctx.create_buffer(4 * 8, MemAccess::ReadWrite).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        q.enqueue_ndrange(&k, &[8], None).unwrap();
        assert_eq!(buf.read_vec::<f32>(0, 8).unwrap(), vec![1.0; 8]);
    }

    #[test]
    fn distinct_build_options_are_distinct_entries() {
        let (d, ctx) = rig();
        let cache = BinaryCache::new(1 << 20);
        let src = "__kernel void f(__global float* out) { out[get_global_id(0)] = (float)V; }";
        let a = cache.get_or_build(&ctx, &d, src, "-DV=1", None).unwrap();
        let b = cache.get_or_build(&ctx, &d, src, "-DV=2", None).unwrap();
        assert!(!a.hit && !b.hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_under_capacity_pressure() {
        let (d, ctx) = rig();
        // size the capacity for roughly two of these kernels
        let one = {
            let probe = BinaryCache::new(u64::MAX);
            let out = probe.get_or_build(&ctx, &ctx.devices()[0], &fill_src(0), "", None);
            out.unwrap().program.binary_size_estimate().unwrap()
        };
        let cache = BinaryCache::new(2 * one + one / 2);
        cache
            .get_or_build(&ctx, &d, &fill_src(1), "", None)
            .unwrap();
        cache
            .get_or_build(&ctx, &d, &fill_src(2), "", None)
            .unwrap();
        assert_eq!(cache.len(), 2);
        // touch kernel 1 so kernel 2 becomes the LRU victim
        assert!(
            cache
                .get_or_build(&ctx, &d, &fill_src(1), "", None)
                .unwrap()
                .hit
        );
        cache
            .get_or_build(&ctx, &d, &fill_src(3), "", None)
            .unwrap();
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        assert!(
            cache
                .get_or_build(&ctx, &d, &fill_src(1), "", None)
                .unwrap()
                .hit
        );
        assert!(
            !cache
                .get_or_build(&ctx, &d, &fill_src(2), "", None)
                .unwrap()
                .hit,
            "kernel 2 should have been evicted"
        );
    }

    #[test]
    fn oversized_binary_is_rejected_at_admission() {
        let (d, ctx) = rig();
        let cache = BinaryCache::new(16);
        let err = cache
            .get_or_build(&ctx, &d, &fill_src(9), "", Some("carol"))
            .unwrap_err();
        assert!(matches!(err, Error::AdmissionRejected { .. }), "{err}");
        assert!(
            matches!(err.root_cause(), Error::OutOfResources(_)),
            "{err}"
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn build_failures_propagate() {
        let (d, ctx) = rig();
        let cache = BinaryCache::new(1 << 20);
        let err = cache
            .get_or_build(&ctx, &d, "__kernel void broken(", "", None)
            .unwrap_err();
        assert!(matches!(err, Error::BuildFailure(_)), "{err}");
        assert!(cache.is_empty());
    }

    #[test]
    fn devices_built_counts_distinct_devices() {
        let d1 = Device::new(DeviceProfile::tesla_c2050());
        let d2 = Device::new(DeviceProfile::xeon_host());
        let ctx = Context::new(&[d1.clone(), d2.clone()]).unwrap();
        let cache = BinaryCache::new(1 << 20);
        let src = fill_src(7);
        cache.get_or_build(&ctx, &d1, &src, "", None).unwrap();
        assert_eq!(cache.devices_built(&src), 1);
        cache.get_or_build(&ctx, &d2, &src, "", None).unwrap();
        assert_eq!(cache.devices_built(&src), 2);
        assert_eq!(cache.devices_built("other"), 0);
    }
}
