//! EngineCL-style NDRange partitioning across heterogeneous devices.
//!
//! One logical kernel launch is split into chunks of contiguous
//! *linearized work-groups* and distributed over several simulated
//! devices. The exec layer runs each chunk with the **full launch
//! geometry** (see `run_ndrange_profiled`'s `group_span`), so every
//! builtin a kernel can observe — `get_global_id`, `get_num_groups`,
//! `get_global_size`, group ids — reports the same values it would in a
//! single-device launch. Any kernel therefore partitions *bit-identically*;
//! no kernel-side offset parameter is needed.
//!
//! Three schedulers, following EngineCL:
//!
//! - [`PartitionStrategy::Static`]: one contiguous span per device,
//!   proportional to the device's modeled peak throughput;
//! - [`PartitionStrategy::Dynamic`]: fixed-size chunks handed to whichever
//!   device's *modeled* clock is least loaded — work-stealing without the
//!   wall-clock nondeterminism (ties break toward the lowest device index);
//! - [`PartitionStrategy::HGuided`]: like dynamic, but the chunk size
//!   decays with the remaining work, scaled by the device's share of total
//!   peak throughput, with a floor — big chunks early for low overhead,
//!   small chunks late for load balance.
//!
//! Because every device holds its own full-size copy of each buffer, the
//! final result is assembled by *snapshot diffing*: bytes a device changed
//! relative to the initial contents overlay the merged output; two devices
//! changing the same byte to different values is reported as
//! [`Error::InvalidOperation`] (the kernel's write sets overlap across
//! groups, so it is not safely partitionable).

use crate::buffer::MemAccess;
use crate::context::Context;
use crate::device::Device;
use crate::error::{Error, Result};
use crate::exec::launch::Geometry;
use crate::program::{Kernel, Program};
use crate::queue::CommandQueue;
use crate::sched::Event;
use crate::types::Value;

use super::cache::BinaryCache;

/// One argument of a partitionable launch, as raw device bytes.
#[derive(Debug, Clone)]
pub enum JobArg {
    /// Read-only input: uploaded once per device.
    In(Vec<u8>),
    /// Write-only output of the given byte size (zero-initialized).
    Out(usize),
    /// Read-write buffer with initial contents.
    InOut(Vec<u8>),
    /// A scalar passed by value.
    Scalar(Value),
}

/// A device-agnostic description of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchJob {
    /// OpenCL C source containing the kernel.
    pub source: String,
    /// Kernel name within the source.
    pub kernel: String,
    /// Build options (`-D` defines etc.).
    pub build_options: String,
    /// Arguments in kernel-parameter order.
    pub args: Vec<JobArg>,
    /// Global NDRange sizes (1-3 dims).
    pub global: Vec<usize>,
    /// Explicit local sizes; `None` lets the runtime choose.
    pub local: Option<Vec<usize>>,
}

/// How to split the NDRange (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// One contiguous span per device, proportional to modeled peak.
    Static,
    /// Fixed-size chunks to the least-loaded modeled clock.
    Dynamic {
        /// Work-groups per chunk.
        chunk_groups: usize,
    },
    /// Decaying chunk size proportional to the device's peak share.
    HGuided {
        /// Smallest chunk ever issued.
        min_chunk_groups: usize,
    },
}

/// One device prepared to take chunks of a partitioned launch.
pub struct PartitionTarget {
    /// The simulated device.
    pub device: Device,
    context: Context,
    queue: CommandQueue,
    program: Program,
    cache_hit: bool,
}

impl PartitionTarget {
    /// Prepare a target on an existing device/context/queue trio, building
    /// (or fetching) the job's program through `cache` on behalf of
    /// `tenant`.
    pub fn new(
        device: &Device,
        context: &Context,
        queue: &CommandQueue,
        cache: &BinaryCache,
        job: &LaunchJob,
        tenant: Option<&str>,
    ) -> Result<PartitionTarget> {
        let built = cache.get_or_build(context, device, &job.source, &job.build_options, tenant)?;
        Ok(PartitionTarget {
            device: device.clone(),
            context: context.clone(),
            queue: queue.clone(),
            program: built.program,
            cache_hit: built.hit,
        })
    }

    /// Prepare a standalone target: a fresh device of `profile` with its
    /// own context and out-of-order queue (test and experiment helper).
    pub fn standalone(
        profile: crate::device::DeviceProfile,
        cache: &BinaryCache,
        job: &LaunchJob,
        tenant: Option<&str>,
    ) -> Result<PartitionTarget> {
        let device = Device::new(profile);
        let context = Context::new(std::slice::from_ref(&device))?;
        let queue = CommandQueue::new_out_of_order(&context, &device)?;
        PartitionTarget::new(&device, &context, &queue, cache, job, tenant)
    }

    /// Whether this target's program came out of the cache without a build.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }
}

/// Where one chunk ran and what it cost on the modeled timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkRecord {
    /// Index into the target list.
    pub device: usize,
    /// First linearized work-group (inclusive).
    pub start: usize,
    /// Last linearized work-group (exclusive).
    pub end: usize,
    /// Modeled seconds the chunk occupied the device.
    pub modeled_seconds: f64,
}

/// Result of a partitioned (or reference) launch.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// Final bytes of each writable (`Out`/`InOut`) argument, in argument
    /// order.
    pub outputs: Vec<Vec<u8>>,
    /// Modeled busy seconds per target.
    pub per_device_seconds: Vec<f64>,
    /// Modeled completion time: the maximum per-device busy time.
    pub makespan_seconds: f64,
    /// Every chunk in issue order.
    pub chunks: Vec<ChunkRecord>,
    /// Total work-groups in the launch.
    pub total_groups: usize,
}

/// Run `job` on a single device, unsplit — the reference every partitioned
/// run must match bit-for-bit.
pub fn run_reference(target: &PartitionTarget, job: &LaunchJob) -> Result<PartitionOutcome> {
    run_partitioned(std::slice::from_ref(target), job, PartitionStrategy::Static)
}

/// Observability and sequencing options for [`run_partitioned_with`].
#[derive(Default)]
pub struct PartitionOptions<'a> {
    /// Record the run into a request span tree: every upload becomes a
    /// `sched.dma` node and every chunk a `partition.chunk` node with an
    /// `exec.launch` child, all under the given parent node.
    pub obs: Option<(&'a mut crate::obs::Request, crate::obs::NodeId)>,
    /// Gate every chunk whose issue index is `>= .0` on event `.1` by
    /// appending it to the chunk's wait list. A host-failed gate poisons
    /// those chunks with a deterministic [`Error::DependencyFailed`]
    /// chain — the fault-injection hook the postmortem tests and demo use.
    pub gate_from_chunk: Option<(usize, Event)>,
}

/// Split `job` across `targets` according to `strategy` and merge the
/// per-device results (see the module docs for the exactness argument).
pub fn run_partitioned(
    targets: &[PartitionTarget],
    job: &LaunchJob,
    strategy: PartitionStrategy,
) -> Result<PartitionOutcome> {
    run_partitioned_with(targets, job, strategy, PartitionOptions::default())
}

/// [`run_partitioned`] with explicit [`PartitionOptions`].
pub fn run_partitioned_with(
    targets: &[PartitionTarget],
    job: &LaunchJob,
    strategy: PartitionStrategy,
    mut opts: PartitionOptions<'_>,
) -> Result<PartitionOutcome> {
    if targets.is_empty() {
        return Err(Error::InvalidOperation(
            "partitioned launch needs at least one target device".into(),
        ));
    }
    // Resolve the geometry once, against the most constrained device, so
    // every device runs the same local size and the linearized group space
    // is identical everywhere.
    let tightest = targets
        .iter()
        .min_by_key(|t| t.device.profile().max_work_group_size)
        .expect("targets is non-empty");
    let geom = Geometry::new(&job.global, job.local.as_deref(), &tightest.device)?;
    let local: Vec<usize> = geom.local[..geom.work_dim as usize].to_vec();
    let total_groups = geom.total_groups();

    // Per-target kernel instances with their own full-size buffers, all
    // initialized to identical contents.
    let mut kernels: Vec<Kernel> = Vec::with_capacity(targets.len());
    let mut buffers: Vec<Vec<Option<crate::buffer::Buffer>>> = Vec::with_capacity(targets.len());
    let mut upload_events: Vec<Vec<Event>> = Vec::with_capacity(targets.len());
    for (d, target) in targets.iter().enumerate() {
        let kernel = target.program.kernel(&job.kernel)?;
        let mut bufs: Vec<Option<crate::buffer::Buffer>> = Vec::with_capacity(job.args.len());
        let mut events: Vec<Event> = Vec::new();
        for (i, arg) in job.args.iter().enumerate() {
            match arg {
                JobArg::In(data) => {
                    let buf = target
                        .context
                        .create_buffer(data.len(), MemAccess::ReadOnly)?;
                    events.push(target.queue.enqueue_write_async(&buf, 0, data, &[])?);
                    if let Some((req, parent)) = opts.obs.as_mut() {
                        req.child(
                            *parent,
                            "sched.dma",
                            format!("upload arg {i} ({} bytes) -> device {d}", data.len()),
                        );
                    }
                    kernel.set_arg_buffer(i, &buf)?;
                    bufs.push(Some(buf));
                }
                JobArg::InOut(data) => {
                    let buf = target
                        .context
                        .create_buffer(data.len(), MemAccess::ReadWrite)?;
                    events.push(target.queue.enqueue_write_async(&buf, 0, data, &[])?);
                    if let Some((req, parent)) = opts.obs.as_mut() {
                        req.child(
                            *parent,
                            "sched.dma",
                            format!("upload arg {i} ({} bytes) -> device {d}", data.len()),
                        );
                    }
                    kernel.set_arg_buffer(i, &buf)?;
                    bufs.push(Some(buf));
                }
                JobArg::Out(len) => {
                    // fresh buffers are zero-initialized on every device
                    let buf = target.context.create_buffer(*len, MemAccess::ReadWrite)?;
                    kernel.set_arg_buffer(i, &buf)?;
                    bufs.push(Some(buf));
                }
                JobArg::Scalar(v) => {
                    kernel.set_arg_scalar(i, *v)?;
                    bufs.push(None);
                }
            }
        }
        kernels.push(kernel);
        buffers.push(bufs);
        upload_events.push(events);
    }

    // Plan and run chunks. Chunks run blocking, driven by per-device
    // *modeled* clocks, so the schedule (and thus the metrics) is a pure
    // function of the workload — never of host timing.
    let weights: Vec<f64> = targets
        .iter()
        .map(|t| t.device.profile().peak_ops_per_sec().max(1.0))
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut clocks = vec![0.0f64; targets.len()];
    let mut chunks: Vec<ChunkRecord> = Vec::new();

    let mut issued = 0usize;
    let mut run_chunk = |d: usize, start: usize, end: usize, clocks: &mut Vec<f64>| -> Result<()> {
        let mut wait: Vec<Event> = upload_events[d].clone();
        let gated = match &opts.gate_from_chunk {
            Some((from, gate)) if issued >= *from => {
                wait.push(gate.clone());
                true
            }
            _ => false,
        };
        let chunk_node = opts.obs.as_mut().map(|(req, parent)| {
            req.child(
                *parent,
                "partition.chunk",
                format!(
                    "chunk {issued}: groups {start}..{end} -> device {d}{}",
                    if gated { " (gated)" } else { "" }
                ),
            )
        });
        issued += 1;
        let result = targets[d]
            .queue
            .enqueue_ndrange_groups_async(
                &kernels[d],
                &job.global,
                Some(&local),
                (start, end),
                &wait,
            )
            .and_then(|ev| ev.wait().map(|()| ev));
        let ev = match result {
            Ok(ev) => ev,
            Err(e) => {
                if let (Some((req, _)), Some(node)) = (opts.obs.as_mut(), chunk_node) {
                    req.set_error(node, &e);
                }
                return Err(e);
            }
        };
        // the pure modeled duration, not a difference of absolute timeline
        // stamps — the latter loses different ulps as the device timeline
        // advances, which would make reruns disagree in the last digit
        let timing = ev.kernel_timing();
        let seconds = timing
            .as_ref()
            .map(|t| t.device_seconds)
            .unwrap_or_else(|| ev.modeled_seconds());
        if let (Some((req, _)), Some(node)) = (opts.obs.as_mut(), chunk_node) {
            req.set_modeled(node, seconds);
            // the launch node is built from the event's modeled data on
            // the request thread — identical for both exec backends
            let detail = match &timing {
                Some(t) => format!(
                    "kernel `{}`: {} groups, {} instrs",
                    job.kernel,
                    end - start,
                    t.totals.instructions
                ),
                None => format!("kernel `{}`: {} groups", job.kernel, end - start),
            };
            let launch = req.child(node, "exec.launch", detail);
            req.set_modeled(launch, seconds);
        }
        clocks[d] += seconds;
        chunks.push(ChunkRecord {
            device: d,
            start,
            end,
            modeled_seconds: seconds,
        });
        Ok(())
    };

    match strategy {
        PartitionStrategy::Static => {
            let mut cum = 0.0f64;
            let mut prev = 0usize;
            for (d, w) in weights.iter().enumerate() {
                cum += w;
                let mut bound = ((total_groups as f64) * cum / weight_sum).round() as usize;
                if d + 1 == targets.len() {
                    bound = total_groups;
                }
                let bound = bound.clamp(prev, total_groups);
                if bound > prev {
                    run_chunk(d, prev, bound, &mut clocks)?;
                }
                prev = bound;
            }
        }
        PartitionStrategy::Dynamic { chunk_groups } => {
            let chunk = chunk_groups.max(1);
            let mut next = 0usize;
            while next < total_groups {
                let d = least_loaded(&clocks);
                let end = (next + chunk).min(total_groups);
                run_chunk(d, next, end, &mut clocks)?;
                next = end;
            }
        }
        PartitionStrategy::HGuided { min_chunk_groups } => {
            let floor = min_chunk_groups.max(1);
            let mut next = 0usize;
            while next < total_groups {
                let d = least_loaded(&clocks);
                let remaining = total_groups - next;
                let guided = ((remaining as f64) * weights[d] / (2.0 * weight_sum)).ceil() as usize;
                let end = (next + guided.max(floor)).min(total_groups);
                run_chunk(d, next, end, &mut clocks)?;
                next = end;
            }
        }
    }

    // Snapshot-diff merge of every writable argument.
    let mut outputs: Vec<Vec<u8>> = Vec::new();
    for (i, arg) in job.args.iter().enumerate() {
        let initial: Vec<u8> = match arg {
            JobArg::InOut(data) => data.clone(),
            JobArg::Out(len) => vec![0u8; *len],
            JobArg::In(_) | JobArg::Scalar(_) => continue,
        };
        let mut merged = initial.clone();
        for (d, bufs) in buffers.iter().enumerate() {
            let buf = bufs[i].as_ref().expect("writable arg has a buffer");
            let mut dev_bytes = vec![0u8; initial.len()];
            buf.read_bytes(0, &mut dev_bytes)?;
            for (pos, (&dev, &init)) in dev_bytes.iter().zip(&initial).enumerate() {
                if dev == init {
                    continue;
                }
                if merged[pos] != init && merged[pos] != dev {
                    return Err(Error::InvalidOperation(format!(
                        "partitioned launch of `{}` is not exact: devices disagree at \
                         byte {pos} of argument {i} (device {d} wrote {dev:#04x} over \
                         an earlier {:#04x})",
                        job.kernel, merged[pos]
                    )));
                }
                merged[pos] = dev;
            }
        }
        outputs.push(merged);
    }

    let makespan = clocks.iter().cloned().fold(0.0f64, f64::max);
    Ok(PartitionOutcome {
        outputs,
        per_device_seconds: clocks,
        makespan_seconds: makespan,
        chunks,
        total_groups,
    })
}

/// Index of the target with the smallest modeled clock (ties: lowest
/// index), so the chunk schedule is deterministic.
fn least_loaded(clocks: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &c) in clocks.iter().enumerate().skip(1) {
        if c < clocks[best] {
            best = i;
        }
    }
    best
}
