//! # serve — a multi-tenant kernel service over the simulated platform
//!
//! The paper's runtime is single-client: one process, one kernel cache,
//! one device at a time. This module is the serving architecture on top —
//! what a production deployment of the HPL runtime would put in front of
//! heavy traffic:
//!
//! - **[`Service`]** owns the devices (each with its own context and
//!   out-of-order queue) and one **shared [`BinaryCache`]**: built kernel
//!   binaries keyed by `(source, options, device)` with capacity
//!   accounting, LRU eviction, and admission control. Identical kernels
//!   submitted by different tenants resolve to one resident binary;
//!   builds are single-flight, so hit/miss totals are deterministic under
//!   any tenant interleaving.
//! - **[`Session`]** is one tenant's handle: every submit passes
//!   admission ([`TenantQuota`] on total launches, in-flight launches,
//!   and compile bytes), is attributed to the tenant in the process
//!   metrics registry, and keeps the tenant's uploaded inputs pooled
//!   privately — the binary cache is the *only* cross-tenant shared
//!   state.
//! - **[`partition`]** splits one NDRange launch across heterogeneous
//!   devices EngineCL-style ([`PartitionStrategy::Static`] /
//!   [`PartitionStrategy::Dynamic`] / [`PartitionStrategy::HGuided`])
//!   with results bit-identical to a single-device launch, because
//!   chunks execute real subsets of the linearized group space under the
//!   full launch geometry.
//!
//! Rejections use the structured variants [`crate::Error::QuotaExceeded`]
//! and [`crate::Error::AdmissionRejected`]; the latter boxes its cause so
//! `root_cause()` walks service rejections exactly like scheduler
//! poisoning chains.

pub mod cache;
pub mod partition;
pub mod quota;
pub mod session;

pub use cache::{global_binary_cache, BinaryCache, CacheOutcome};
pub use partition::{
    run_partitioned, run_partitioned_with, run_reference, ChunkRecord, JobArg, LaunchJob,
    PartitionOptions, PartitionOutcome, PartitionStrategy, PartitionTarget,
};
pub use quota::TenantQuota;
pub use session::{JobOutcome, PendingJob, Service, ServiceConfig, Session};
